"""Ablation — per-optimization contribution (DESIGN.md design choices).

Starting from ``HYPRE_opt``, each node-level optimization is disabled in
isolation and the modeled single-node time-to-solution re-measured,
attributing the 2.0x base->opt gap to its ingredients.  Not a figure of the
paper, but the natural companion study its §3 invites.
"""

from dataclasses import replace

import pytest

from repro.bench import bench_scale, run_single_node
from repro.config import HYPRE_OPT_FLAGS, single_node_config
from repro.perf import format_table
from repro.problems import generate

from conftest import emit, tick

ABLATIONS = [
    ("parallel_setup_kernels", dict(parallel_setup_kernels=False)),
    ("spgemm_one_pass", dict(spgemm_one_pass=False)),
    ("rap cf_block -> hypre", dict(rap_scheme="hypre")),
    ("rap cf_block -> fused", dict(rap_scheme="fused")),
    ("rap cf_block -> unfused", dict(rap_scheme="unfused")),
    ("cf_reorder", dict(cf_reorder=False, rap_scheme="fused")),
    ("three_way_partition", dict(three_way_partition=False)),
    ("keep_transpose", dict(keep_transpose=False, cf_reorder=False,
                            rap_scheme="fused")),
    ("fuse_spmv_dot", dict(fuse_spmv_dot=False)),
    ("fused_truncation", dict(fused_truncation=False)),
    ("software_prefetch", dict(software_prefetch=False)),
]

MATRICES = ["lap2d_2000", "atmosmodd", "lap3d_128"]


@pytest.fixture(scope="module")
def ablation_results():
    out = {}
    for name in MATRICES:
        A, meta = generate(name, scale=bench_scale())
        cfg = single_node_config(True, strength_threshold=meta.strength_threshold)
        full = run_single_node(A, cfg, label="opt", name=name)
        rows = {}
        for label, changes in ABLATIONS:
            flags = replace(HYPRE_OPT_FLAGS, **changes)
            r = run_single_node(A, cfg.with_flags(flags), label=label, name=name)
            rows[label] = r.total_time / full.total_time
        out[name] = (full, rows)
    return out


def test_ablation_table(benchmark, ablation_results):
    tick(benchmark)
    labels = [l for l, _ in ABLATIONS]
    rows = []
    for label in labels:
        rows.append(
            [label]
            + [round(ablation_results[m][1][label], 3) for m in MATRICES]
        )
    emit(
        "ablation_flags",
        format_table(
            ["optimization disabled"] + MATRICES,
            rows,
            title="Slowdown from disabling one optimization "
                  "(1.0 = full HYPRE_opt).  Note: the CF-block RAP rows "
                  "show the reformulation is ~cost-neutral vs the plain "
                  "fused product at these coarsening ratios — its benefit "
                  "grows with n_{l+1}/n_l, as §3.1.1 says.",
        ),
    )
    # Levers the paper quantifies must each cost something when disabled.
    for label in ("parallel_setup_kernels", "spgemm_one_pass",
                  "rap cf_block -> hypre", "three_way_partition",
                  "keep_transpose", "software_prefetch"):
        vals = [ablation_results[m][1][label] for m in MATRICES]
        assert max(vals) > 1.0, label
    # No ablation may *help* materially (sanity of the attribution).
    for label in labels:
        vals = [ablation_results[m][1][label] for m in MATRICES]
        assert min(vals) > 0.85, label


def test_biggest_single_node_levers(benchmark, ablation_results):
    tick(benchmark)
    # The paper's biggest node-level levers: parallelizing the serial setup
    # kernels and keeping the transpose.
    for m in MATRICES:
        rows = ablation_results[m][1]
        assert rows["parallel_setup_kernels"] > 1.05, m
        assert rows["keep_transpose"] > 1.05, m
