"""§6 future work — what would AVX-512 ``vcompressd`` buy?

The paper closes by noting that sparse accumulation (the marker-array
branches in SpGEMM, interpolation and coarsening) is a large fraction of
setup time and asks what the then-upcoming AVX-512 compress instructions
would gain.  This bench answers the question in the model: re-evaluate the
HYPRE_opt setup times with the data-dependent accumulation branches
vectorized away (mispredict cost zeroed for sparse-accumulator kernels),
which is what ``vcompressd``-based accumulation achieves.
"""

import pytest

from repro.bench import SETUP_PHASES, bench_scale, machine_for
from repro.config import single_node_config
from repro.perf import collect, format_table, geomean
from repro.problems import TABLE2_SUITE, generate

from conftest import emit, tick

SUBSET = ["G3_circuit", "StocF-1465", "atmosmodd", "lap2d_2000",
          "lap3d_128", "thermal2"]

#: Kernels whose data-dependent branches are the sparse-accumulator idiom
#: (the ones vcompressd-style accumulation removes).
ACCUM_KERNELS = ("spgemm", "rap.", "interp.", "strength", "sp_add")


@pytest.fixture(scope="module")
def whatif():
    out = {}
    cfg = single_node_config(True)
    machine = machine_for(cfg)
    for meta in TABLE2_SUITE:
        if meta.name not in SUBSET:
            continue
        A, _ = generate(meta.name, scale=bench_scale())
        from repro.amg import AMGSolver

        solver = AMGSolver(
            single_node_config(True, strength_threshold=meta.strength_threshold)
        )
        with collect() as log:
            solver.setup(A)
        setup_recs = [r for r in log.records if r.phase in SETUP_PHASES]
        t_now = sum(machine.record_time(r) for r in setup_recs)
        t_simd = 0.0
        for r in setup_recs:
            saved = r
            if any(r.kernel.startswith(k) for k in ACCUM_KERNELS):
                import copy

                saved = copy.copy(r)
                saved.mispredicts = 0.0
            t_simd += machine.record_time(saved)
        out[meta.name] = (t_now, t_simd)
    return out


def test_avx512_projection(benchmark, whatif):
    tick(benchmark)
    rows = [
        [n, round(t0 * 1e3, 3), round(t1 * 1e3, 3), round(t0 / t1, 2)]
        for n, (t0, t1) in whatif.items()
    ]
    gm = geomean([t0 / t1 for t0, t1 in whatif.values()])
    rows.append(["GEOMEAN", "", "", round(gm, 2)])
    emit(
        "avx512_whatif",
        format_table(
            ["matrix", "setup now [ms]", "setup w/ vcompressd [ms]",
             "projected speedup"],
            rows,
            title="§6 future work: setup speedup if sparse accumulation "
                  "were branch-free (AVX-512 vcompressd projection)",
        ),
    )
    # The projection must be a real but bounded win (the kernels stay
    # memory-bound).
    assert 1.0 < gm < 2.0
