"""§3.1.1 — branching overhead in sparse accumulation.

The paper estimates the sparse-accumulator branch overhead by re-running
the triple product with pre-populated ``rowptr``/``colidx`` (pattern
reuse): ~2.1x faster on average.  This bench reproduces the experiment with
the modeled Haswell times of the full one-pass product vs the numeric-only
product.
"""

import pytest

from repro.amg import extended_i_interpolation, pmis, strength_matrix
from repro.bench import bench_scale
from repro.config import single_node_config
from repro.bench import machine_for
from repro.perf import collect, format_table, geomean
from repro.problems import TABLE2_SUITE, generate
from repro.sparse import spgemm, spgemm_numeric, spgemm_symbolic, transpose

from conftest import emit, tick

SUBSET = ["G2_circuit", "apache2", "atmosmodd", "lap2d_2000", "lap3d_128",
          "thermal2", "tmt_sym", "StocF-1465"]


@pytest.fixture(scope="module")
def branch_ratios():
    machine = machine_for(single_node_config(True))
    out = {}
    for meta in TABLE2_SUITE:
        if meta.name not in SUBSET:
            continue
        A, _ = generate(meta.name, scale=bench_scale())
        S = strength_matrix(A, meta.strength_threshold, 0.8)
        cf = pmis(S, seed=1)
        P = extended_i_interpolation(A, S, cf)
        R = transpose(P)
        with collect() as full_log:
            B = spgemm(R, A, kernel="bench")
            spgemm(B, P, kernel="bench")
        plan1 = spgemm_symbolic(R, A)
        plan2 = spgemm_symbolic(B, P)
        with collect() as reuse_log:
            B2 = spgemm_numeric(plan1, R, A)
            spgemm_numeric(plan2, B2, P)
        t_full = sum(machine.record_time(r) for r in full_log.records)
        t_reuse = sum(machine.record_time(r) for r in reuse_log.records)
        out[meta.name] = t_full / t_reuse
    return out


def test_pattern_reuse_speedup(benchmark, branch_ratios):
    tick(benchmark)
    gm = geomean(list(branch_ratios.values()))
    rows = [[n, round(v, 2)] for n, v in branch_ratios.items()]
    rows.append(["GEOMEAN", round(gm, 2)])
    emit(
        "branch_overhead",
        format_table(
            ["matrix", "full / pattern-reuse time"],
            rows,
            title="Triple product with pre-populated pattern "
                  "(paper: 2.1x faster on average)",
        ),
    )
    assert 1.3 < gm < 4.0


def test_numeric_only_wallclock(benchmark):
    A, meta = generate("lap2d_2000", scale=bench_scale())
    from repro.sparse import spgemm_symbolic

    plan = spgemm_symbolic(A, A)
    benchmark(lambda: spgemm_numeric(plan, A, A))
