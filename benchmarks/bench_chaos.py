"""Chaos benchmark — kill-and-rejoin recovery of the sharded service.

The fault-tolerance claim (ISSUE 7): under a seeded
:class:`~repro.faults.ShardFaultPlan` the sharded tier degrades
gracefully and recovers completely.  A mid-stream rank crash displaces
that rank's queued and in-flight work onto ring successors (failover,
charged backoff + re-forward on the modeled network), the rank rejoins
through a cache re-warm from a surviving replica, and once it is back
``up`` the fleet serves at its no-fault rate again.

Measured on the ``mixed`` preset widened to a fleet-sized key space and
replayed as an open Poisson stream (so the crash window hits a live
arrival process), baseline vs. the same workload under a one-crash plan,
at 4 and 8 ranks.  Throughput is windowed on the modeled clock — a
request *finishes* at ``arrival + latency_seconds`` — and the bench
compares the post-recovery window (after the dead rank has re-warmed and
rejoined) between the two runs.

Acceptance (ISSUE 7): every request under chaos terminates with a
structured status, failover and re-warm accounting are nonzero, and
post-recovery throughput is within 10% of the no-fault run.

Run as a script for the CI determinism smoke: ``python
benchmarks/bench_chaos.py --json OUT.json`` (optionally ``--smoke`` for
the 4-rank point) writes sorted JSON; two runs must produce identical
bytes.
"""

import json

from dataclasses import asdict

from repro.faults import ShardFaultPlan
from repro.perf import format_table
from repro.results import SERVICE_STATUSES
from repro.serve import (
    ServiceConfig,
    ShardedSolveService,
    WorkloadSpec,
    build,
    named_workload,
    widened,
)

RANKS = (4, 8)
SMOKE_RANKS = (4,)

#: Routing configuration of every sweep point (ranks vary); matches
#: bench_shard.py so the two benches describe the same fleet.
BASE = dict(replicas=2, max_batch=4, cache_entries=64, max_queue=256)

#: One mid-stream crash: rank 1 dies at 6 ms and rejoins at 12 ms, while
#: arrivals keep coming (the stream spans ~23 modeled ms at rate 4000).
PLAN = ShardFaultPlan(seed=7, crashes=((1, 0.006, 0.012),))

#: Post-recovery window start: crash end plus margin for re-warm + rejoin.
POST_RECOVERY = 0.014


def chaos_spec() -> WorkloadSpec:
    """The widened ``mixed`` stream as an open Poisson arrival process."""
    spec = widened(named_workload("mixed"), copies=4, requests=96)
    return WorkloadSpec.from_dict({**asdict(spec), "rate": 4000.0})


def _run(ranks: int, plan: ShardFaultPlan | None):
    cfg = ServiceConfig(ranks=ranks, replicas=min(BASE["replicas"], ranks),
                        max_batch=BASE["max_batch"],
                        cache_entries=BASE["cache_entries"],
                        max_queue=BASE["max_queue"])
    svc = ShardedSolveService(cfg, fault_plan=plan)
    workload = build(chaos_spec())
    results = svc.run_workload(workload)
    finishes = sorted(
        item.arrival + r.latency_seconds
        for item, r in zip(workload.items, results)
        if r.status == "completed")
    return svc.metrics_snapshot()["sharded"], results, finishes


def _windowed_rate(finishes, start: float, end: float) -> float:
    if end <= start:
        return 0.0
    return sum(1 for f in finishes if start <= f <= end) / (end - start)


def run_sweep(ranks=RANKS) -> dict:
    """Baseline vs. chaos at each rank count; JSON-able results."""
    points = []
    for r in ranks:
        base_sh, _, base_fin = _run(r, None)
        chaos_sh, chaos_res, chaos_fin = _run(r, PLAN)
        horizon = max(base_fin[-1], chaos_fin[-1])
        base_rate = _windowed_rate(base_fin, POST_RECOVERY, horizon)
        chaos_rate = _windowed_rate(chaos_fin, POST_RECOVERY, horizon)
        faults = chaos_sh["faults"]
        points.append({
            "ranks": r,
            "base_makespan": base_sh["virtual_seconds"],
            "chaos_makespan": chaos_sh["virtual_seconds"],
            "post_recovery_rps_base": base_rate,
            "post_recovery_rps_chaos": chaos_rate,
            "post_recovery_ratio": (chaos_rate / base_rate
                                    if base_rate else 0.0),
            "completed": sum(1 for x in chaos_res
                             if x.status == "completed"),
            "failed": sum(1 for x in chaos_res if x.status == "failed"),
            "all_terminal": all(x is not None
                                and x.status in SERVICE_STATUSES
                                for x in chaos_res),
            "failovers": faults["failovers"],
            "displaced": faults["evacuated"] + faults["lost_inflight"],
            "failover_bytes": faults["failover_bytes"],
            "rewarm_entries": faults["rewarm"]["entries"],
            "rewarm_bytes": faults["rewarm"]["bytes"],
            "availability": faults["health"]["availability"],
        })
    return {
        "workload": "mixed widened x4, 96 requests, open rate=4000/s",
        "plan": PLAN.to_dict(),
        "post_recovery_start": POST_RECOVERY,
        "config": dict(BASE),
        "points": points,
    }


def _report(res: dict) -> str:
    rows = [
        (p["ranks"], round(p["chaos_makespan"] * 1e3, 3),
         round(p["post_recovery_rps_base"], 1),
         round(p["post_recovery_rps_chaos"], 1),
         f"{p['post_recovery_ratio']:.3f}",
         p["failovers"], p["rewarm_entries"],
         f"{p['availability']:.4f}")
        for p in res["points"]
    ]
    return format_table(
        ["ranks", "makespan ms", "post rps (base)", "post rps (chaos)",
         "ratio", "failovers", "re-warm", "availability"],
        rows,
        title=f"Kill-and-rejoin recovery, {res['workload']}")


def test_chaos_recovery(benchmark):
    from conftest import emit, tick

    res = run_sweep()
    emit("chaos", _report(res))
    for p in res["points"]:
        # Every request terminates with a structured status.
        assert p["all_terminal"]
        # The crash actually displaced work and the rejoin re-warmed.
        assert p["failovers"] > 0 and p["displaced"] > 0
        assert p["rewarm_entries"] > 0 and p["rewarm_bytes"] > 0
        # ISSUE 7 acceptance: post-recovery throughput within 10%.
        assert p["post_recovery_ratio"] >= 0.9
        assert p["availability"] < 1.0
    tick(benchmark, chaos_spec)


def test_chaos_sweep_is_deterministic():
    a, b = run_sweep(ranks=SMOKE_RANKS), run_sweep(ranks=SMOKE_RANKS)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="sharded-service chaos benchmark (JSON output)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as sorted JSON to PATH")
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: 4 ranks only")
    args = parser.parse_args()
    result = run_sweep(SMOKE_RANKS if args.smoke else RANKS)
    text = json.dumps(result, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as f:
            f.write(text + "\n")
    print(_report(result))
