"""Extension study — coarsening and interpolation trade-offs (§2).

The paper's §2 narrates the history: classical (Ruge–Stüben) coarsening
converges fast but over-coarsens in 3-D; PMIS coarsens cheaply but breaks
distance-one interpolation; distance-two operators (extended+i) repair it.
This bench quantifies the whole story on one 3-D problem, plus the V/W/F
cycle and smoother menus.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import AMGSolver, single_node_config
from repro.perf import format_table
from repro.problems import laplace_3d_7pt

from conftest import emit, tick


@pytest.fixture(scope="module")
def A():
    return laplace_3d_7pt(14)


def _solve(A, **overrides):
    cfg = replace(single_node_config(nthreads=14), **overrides)
    s = AMGSolver(cfg)
    s.setup(A)
    res = s.solve(np.ones(A.nrows), tol=1e-7, max_iter=200)
    return s, res


def test_coarsening_interpolation_matrix(benchmark, A):
    tick(benchmark)
    rows = []
    results = {}
    for coarsening in ("rs", "pmis"):
        for interp in ("classical", "extended+i"):
            s, res = _solve(A, coarsening=coarsening, interp=interp)
            rows.append([coarsening, interp, res.iterations,
                         round(s.operator_complexity, 2), res.converged])
            results[(coarsening, interp)] = (s, res)
    emit(
        "coarsening_interp_matrix",
        format_table(
            ["coarsening", "interpolation", "iterations", "op complexity",
             "converged"],
            rows,
            title="The §2 story on 3-D 7-pt Poisson",
        ),
    )
    # PMIS + classical degrades; extended+i repairs it (§2).
    it_pc = results[("pmis", "classical")][1].iterations
    it_pe = results[("pmis", "extended+i")][1].iterations
    assert it_pc > it_pe
    # All converge.
    assert all(r.converged for _, r in results.values())


def test_cycle_comparison(benchmark, A):
    tick(benchmark)
    rows = []
    iters = {}
    for ct in ("V", "W", "F"):
        s, res = _solve(A, cycle_type=ct)
        rows.append([ct, res.iterations, res.converged])
        iters[ct] = res.iterations
    emit(
        "cycle_comparison",
        format_table(["cycle", "iterations", "converged"], rows,
                     title="Cycle types (W/F trade work per cycle for "
                           "fewer cycles)"),
    )
    assert iters["W"] <= iters["V"]
    assert iters["F"] <= iters["V"]


def test_smoother_menu(benchmark, A):
    tick(benchmark)
    rows = []
    its = {}
    for sm in ("hybrid_gs", "lex", "multicolor", "jacobi", "l1_jacobi",
               "chebyshev"):
        s, res = _solve(A, smoother=sm)
        rows.append([sm, res.iterations, res.converged])
        its[sm] = res.iterations
    emit(
        "smoother_menu",
        format_table(["smoother", "iterations", "converged"], rows,
                     title="Smoother comparison (hybrid GS is the paper's "
                           "default; polynomial smoothers trade iterations "
                           "for parallelism)"),
    )
    # GS variants must beat plain damped Jacobi.
    assert its["hybrid_gs"] <= its["jacobi"]
    assert its["lex"] <= its["jacobi"]
