"""§4.3 / §5.4 — filtered MPI transfers in interpolation construction.

The paper reduces the interpolation-construction communication volume by
more than 3x for both weak-scaling inputs, which (together with the §4.2
renumbering) speeds interpolation construction by 8.8x / 2.8x on 128 nodes
with ei(4).
"""

import os

import numpy as np
import pytest

from repro.bench import RANKS_PER_NODE, machine_for
from repro.config import multi_node_config
from repro.dist import (
    ParCSRMatrix,
    RowPartition,
    SimComm,
    dist_extended_i,
    dist_pmis,
    dist_strength,
)
from repro.perf import format_table
from repro.problems import amg2013_problem, laplace_3d_27pt

from conftest import emit, tick

NODES = int(os.environ.get("REPRO_FILTER_NODES", "16"))


def _run(kind: str, filter_comm: bool):
    nranks = NODES * RANKS_PER_NODE
    if kind == "lap27":
        edge = 6
        A = laplace_3d_27pt(edge, edge, edge * nranks)
        sizes = np.full(nranks, edge**3, dtype=np.int64)
    else:
        A, sizes = amg2013_problem(max(nranks, 8), r=5, seed=3)
    part = RowPartition.from_sizes(sizes)
    comm = SimComm(part.nranks)
    Ap = ParCSRMatrix.from_global(A, part)
    S = dist_strength(comm, Ap, 0.25, 0.8)
    cf = dist_pmis(comm, S, seed=1)
    before = comm.comm_volume(tag="interp")
    P, _ = dist_extended_i(comm, Ap, S, cf, filter_comm=filter_comm)
    vol = comm.comm_volume(tag="interp") - before
    return vol, P


@pytest.fixture(scope="module")
def volumes():
    out = {}
    for kind in ("lap27", "amg2013"):
        v_full, P_full = _run(kind, False)
        v_filt, P_filt = _run(kind, True)
        assert P_full.to_global().allclose(P_filt.to_global()), (
            f"{kind}: filtering changed the interpolation operator"
        )
        out[kind] = (v_full, v_filt)
    return out


def test_filtering_cuts_volume(benchmark, volumes):
    tick(benchmark)
    rows = []
    for kind, (v_full, v_filt) in volumes.items():
        rows.append([kind, round(v_full / 1e3, 1), round(v_filt / 1e3, 1),
                     round(v_full / v_filt, 2)])
    emit(
        "comm_filtering",
        format_table(
            ["input", "unfiltered [KB]", "filtered [KB]", "reduction"],
            rows,
            title=f"Interp-construction comm volume at {NODES} nodes "
                  "(paper: >3x reduction)",
        ),
    )
    # The reduction tracks the fraction of non-C, same-sign entries in the
    # shipped rows: >3x on the dense 27-pt stencil like the paper; the
    # amg2013 surrogate has a higher C fraction (sparser stencil), so less
    # of each row can be dropped.
    assert volumes["lap27"][0] / volumes["lap27"][1] > 3.0
    assert volumes["amg2013"][0] / volumes["amg2013"][1] > 1.4


def test_filtered_gather_wallclock(benchmark):
    benchmark.pedantic(lambda: _run("lap27", True), rounds=1, iterations=1)
