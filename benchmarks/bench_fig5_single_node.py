"""Fig. 5 — single-node comparison: HYPRE_base vs HYPRE_opt vs AmgX.

Regenerates, per Table 2 matrix, the normalized time-to-solution breakdown
(all bars normalized to HYPRE_base) plus the paper's aggregate claims:

* HYPRE_opt ~2.0x faster than HYPRE_base, ~1.3x faster than AmgX (averages);
* per-kernel speedups (Strength+Coarsen ~6.1x incl. PMIS ~3.1x, RAP ~1.4x,
  SpMV ~3.7x, GS ~1.2x);
* AmgX: more iterations, setup on par, solve slower;
* operator complexities within a few percent between base and opt.
"""

import numpy as np
import pytest

from repro.bench import (
    SETUP_PHASES,
    SOLVE_PHASES,
    bench_scale,
    run_amgx,
    run_single_node,
)
from repro.config import single_node_config
from repro.perf import format_breakdown, format_table, geomean
from repro.problems import TABLE2_SUITE, generate

from conftest import emit, tick

ORDER = list(SETUP_PHASES) + list(SOLVE_PHASES)


@pytest.fixture(scope="module")
def fig5_results():
    scale = bench_scale()
    results = {}
    for meta in TABLE2_SUITE:
        A, _ = generate(meta.name, scale=scale)
        kw = dict(strength_threshold=meta.strength_threshold)
        base = run_single_node(
            A, single_node_config(False, **kw), label="HYPRE_base", name=meta.name
        )
        opt = run_single_node(
            A, single_node_config(True, **kw), label="HYPRE_opt", name=meta.name
        )
        amgx = run_amgx(A, name=meta.name)
        results[meta.name] = (base, opt, amgx)
    return results


def test_fig5_breakdown(benchmark, fig5_results):
    tick(benchmark)
    lines = []
    for name, (base, opt, amgx) in fig5_results.items():
        norm = base.total_time
        lines.append(f"--- {name} (times normalized to HYPRE_base) ---")
        for r in (base, opt, amgx):
            lines.append(
                format_breakdown(
                    f"  {r.config_label}", r.phase_times(), normalize_to=norm,
                    order=ORDER,
                )
                + f"  iters={r.iterations} opcx={r.operator_complexity:.2f}"
            )
    emit("fig5_breakdown", "\n".join(lines))
    for name, (base, opt, amgx) in fig5_results.items():
        assert base.converged and opt.converged and amgx.converged, name


def test_fig5_headline_speedups(benchmark, fig5_results):
    tick(benchmark)
    vs_base = [b.total_time / o.total_time for b, o, _ in fig5_results.values()]
    vs_amgx = [a.total_time / o.total_time for _, o, a in fig5_results.values()]
    rows = [
        [name, round(b.total_time / o.total_time, 2),
         round(a.total_time / o.total_time, 2)]
        for name, (b, o, a) in fig5_results.items()
    ]
    rows.append(["GEOMEAN", round(geomean(vs_base), 2), round(geomean(vs_amgx), 2)])
    emit(
        "fig5_speedups",
        format_table(
            ["matrix", "opt vs base", "opt vs AmgX"],
            rows,
            title="Fig. 5 headline speedups (paper: 2.0x vs base, 1.3x vs AmgX)",
        ),
    )
    # Shape assertions: opt clearly beats base on average; AmgX comparison
    # is matrix-dependent but opt wins on average.
    assert geomean(vs_base) > 1.5
    assert geomean(vs_amgx) > 1.0


def test_fig5_kernel_speedups(benchmark, fig5_results):
    tick(benchmark)
    per_phase = {}
    for ph in ORDER:
        ratios = []
        for base, opt, _ in fig5_results.values():
            b = base.phase_times().get(ph, 0.0)
            o = opt.phase_times().get(ph, 0.0)
            if b > 0 and o > 0:
                ratios.append(b / o)
        per_phase[ph] = geomean(ratios) if ratios else float("nan")
    paper = {
        "Strength+Coarsen": "6.1x (strength) / 3.1x (PMIS)",
        "RAP": "1.4x",
        "SpMV": "3.7x",
        "GS": "1.2x",
    }
    rows = [
        [ph, round(per_phase[ph], 2), paper.get(ph, "-")]
        for ph in ORDER
        if not np.isnan(per_phase[ph])  # phase absent from a cold build (Resetup)
    ]
    emit(
        "fig5_kernel_speedups",
        format_table(["phase", "opt speedup (geomean)", "paper"], rows,
                     title="Per-kernel base->opt speedups"),
    )
    assert per_phase["Strength+Coarsen"] > 2.0
    assert per_phase["RAP"] > 1.1
    assert per_phase["SpMV"] > 1.3
    assert per_phase["GS"] > 1.0


def test_fig5_amgx_characteristics(benchmark, fig5_results):
    tick(benchmark)
    it_ratio = geomean(
        [a.iterations / o.iterations for _, o, a in fig5_results.values()]
    )
    setup_ratio = geomean(
        [a.setup_time / o.setup_time for _, o, a in fig5_results.values()]
    )
    solve_ratio = geomean(
        [a.solve_time / o.solve_time for _, o, a in fig5_results.values()]
    )
    per_iter = geomean(
        [a.time_per_iteration / o.time_per_iteration
         for _, o, a in fig5_results.values()]
    )
    emit(
        "fig5_amgx",
        format_table(
            ["quantity", "measured", "paper"],
            [
                ["AmgX iterations vs opt", round(it_ratio, 2), "1.3x"],
                ["AmgX setup vs opt", round(setup_ratio, 2), "0.9x (1.1x faster)"],
                ["AmgX solve vs opt", round(solve_ratio, 2), "2.1x slower"],
                ["AmgX time/iter vs opt", round(per_iter, 2), "1.6x slower"],
            ],
            title="AmgX vs HYPRE_opt characteristics (§5.2)",
        ),
    )
    assert it_ratio >= 1.0
    assert solve_ratio > 1.2
    assert setup_ratio < 1.3


def test_fig5_operator_complexity_parity(benchmark, fig5_results):
    tick(benchmark)
    diffs = [
        (o.operator_complexity - b.operator_complexity) / b.operator_complexity
        for b, o, _ in fig5_results.values()
    ]
    emit(
        "fig5_opcx",
        format_table(
            ["matrix", "base opcx", "opt opcx", "diff %"],
            [
                [n, round(b.operator_complexity, 2), round(o.operator_complexity, 2),
                 round(100 * (o.operator_complexity - b.operator_complexity)
                       / b.operator_complexity, 1)]
                for n, (b, o, _) in fig5_results.items()
            ],
            title="Operator complexity parity (paper: -14%..2%, avg -0.2%)",
        ),
    )
    assert max(abs(d) for d in diffs) < 0.2


def test_setup_solve_wallclock(benchmark, fig5_results):
    """pytest-benchmark hook: wall-clock of one representative solve."""
    from repro.amg import AMGSolver

    A, meta = generate("G2_circuit", scale=bench_scale())
    b = np.ones(A.nrows)

    def run():
        s = AMGSolver(single_node_config(True,
                                         strength_threshold=meta.strength_threshold))
        s.setup(A)
        return s.solve(b, tol=1e-7)

    res = benchmark(run)
    assert res.converged
