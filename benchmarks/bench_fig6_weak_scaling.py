"""Fig. 6 — weak scaling on the 3-D 27-pt Laplace (HPCG) and the AMG2013
semi-structured input.

Per node count and interpolation scheme (base-mp plus opt-{ei(4),
2s-ei(444), mp}) the bench reports modeled setup time, solve time, and
iteration count — the three panels of Fig. 6 — and checks the paper's
shapes:

* HYPRE_opt improves the best setup and solve times at the largest scale
  (paper: setup 2.0x / 2.7x with mp, solve 2.1x / 1.5x);
* multipass has the fastest setup, extended+i-based schemes converge in
  fewer iterations;
* iteration counts drift up slowly for the 27-pt Laplacian and stay ~flat
  for the semi-structured input.
"""

import os

import numpy as np
import pytest

from repro.bench import RANKS_PER_NODE, run_distributed
from repro.config import multi_node_config
from repro.perf import format_table
from repro.problems import amg2013_problem, laplace_3d_27pt

from conftest import emit, tick

#: Node counts (paper: 1..128; scaled down for the Python vehicle —
#: override with REPRO_WEAK_NODES="1,2,4,8,16,32,64").
NODES = [int(x) for x in os.environ.get("REPRO_WEAK_NODES", "1,2,4,8,16,32").split(",")]
#: Per-rank subdomain edge for the 27-pt input (paper: 96^3 per rank).
LAP_EDGE = int(os.environ.get("REPRO_WEAK_EDGE", "6"))

SCHEMES = [
    ("base-mp", multi_node_config("mp", optimized=False)),
    ("opt-ei(4)", multi_node_config("ei", optimized=True)),
    ("opt-2s-ei(444)", multi_node_config("2s-ei", optimized=True)),
    ("opt-mp", multi_node_config("mp", optimized=True)),
]


def lap27_weak_problem(nodes: int):
    """Constant work per rank: stack rank subdomains along z."""
    nranks = nodes * RANKS_PER_NODE
    A = laplace_3d_27pt(LAP_EDGE, LAP_EDGE, LAP_EDGE * nranks)
    sizes = np.full(nranks, LAP_EDGE * LAP_EDGE * LAP_EDGE, dtype=np.int64)
    return A, sizes


def amg2013_weak_problem(nodes: int):
    nranks = nodes * RANKS_PER_NODE
    A, sizes = amg2013_problem(max(nranks, 8), r=5, seed=3)
    if nranks < 8:
        # pooldist=1 requires >= 8 ranks (paper); merge blocks for tiny runs.
        merged = sizes.reshape(nranks, -1).sum(axis=1)
        return A, merged
    return A, sizes


def _run_input(problem, label, tol):
    rows = []
    results = {}
    for nodes in NODES:
        A, sizes = problem(nodes)
        for name, cfg in SCHEMES:
            r = run_distributed(A, cfg, nodes, label=name, rank_sizes=sizes,
                                tol=tol, outer="fgmres")
            rows.append([nodes, name, round(r.setup_time * 1e3, 3),
                         round(r.solve_time * 1e3, 3), r.iterations,
                         round(r.operator_complexity, 2)])
            results[(nodes, name)] = r
            assert r.converged, (label, nodes, name)
    emit(
        label,
        format_table(
            ["nodes", "scheme", "setup [ms]", "solve [ms]", "iters", "opcx"],
            rows,
            title=f"Fig. 6 weak scaling — {label} "
                  f"(per-rank constant size, {RANKS_PER_NODE} ranks/node)",
        ),
    )
    return results


@pytest.fixture(scope="module")
def lap27_results():
    return _run_input(lap27_weak_problem, "fig6_weak_lap27", 1e-7)


@pytest.fixture(scope="module")
def amg2013_results():
    return _run_input(amg2013_weak_problem, "fig6_weak_amg2013", 1e-7)


class TestLap27:
    def test_opt_beats_base_setup_at_scale(self, benchmark, lap27_results):
        tick(benchmark)
        top = NODES[-1]
        base = lap27_results[(top, "base-mp")]
        opt = lap27_results[(top, "opt-mp")]
        assert opt.setup_time < base.setup_time
        assert opt.solve_time < base.solve_time

    def test_mp_setup_fastest_ei_solve_fastest(self, benchmark, lap27_results):
        tick(benchmark)
        top = NODES[-1]
        mp = lap27_results[(top, "opt-mp")]
        ei = lap27_results[(top, "opt-ei(4)")]
        assert mp.setup_time < ei.setup_time
        assert ei.iterations <= mp.iterations

    def test_iterations_bounded(self, benchmark, lap27_results):
        tick(benchmark)
        for name, _ in SCHEMES:
            its = [lap27_results[(n, name)].iterations for n in NODES]
            # Fig. 6(c): slow upward drift, no blow-up.
            assert max(its) <= its[0] + 10, (name, its)


class TestAMG2013:
    def test_opt_improvements(self, benchmark, amg2013_results):
        tick(benchmark)
        top = NODES[-1]
        base = amg2013_results[(top, "base-mp")]
        opt = amg2013_results[(top, "opt-mp")]
        assert opt.setup_time < base.setup_time

    def test_iterations_mostly_flat(self, benchmark, amg2013_results):
        tick(benchmark)
        # Fig. 6(f): iteration counts stay roughly constant.
        for name, _ in SCHEMES:
            its = [amg2013_results[(n, name)].iterations for n in NODES]
            assert max(its) - min(its) <= 8, (name, its)

    def test_speedup_summary(self, benchmark, lap27_results, amg2013_results):
        tick(benchmark)
        top = NODES[-1]
        rows = []
        for label, res in (("lap27", lap27_results), ("amg2013", amg2013_results)):
            base = res[(top, "base-mp")]
            best_setup = min(r.setup_time for (n, s), r in res.items()
                             if n == top and s.startswith("opt"))
            best_solve = min(r.solve_time for (n, s), r in res.items()
                             if n == top and s.startswith("opt"))
            rows.append([label, round(base.setup_time / best_setup, 2),
                         round(base.solve_time / best_solve, 2)])
        emit(
            "fig6_speedup_summary",
            format_table(
                ["input", "best setup speedup", "best solve speedup"],
                rows,
                title=f"Opt vs base at {top} nodes "
                      "(paper: setup 2.0x/2.7x, solve 2.1x/1.5x at 128 nodes)",
            ),
        )
        for _, s_up, s_ol in rows:
            assert s_up > 1.0 and s_ol > 0.9
