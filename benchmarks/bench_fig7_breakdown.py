"""Fig. 7 — breakdown of total (setup+solve) time at the largest weak-scaling
point, per interpolation scheme.

Checks the paper's structural observations:

* 2-stage aggressive coarsening trades longer interpolation construction
  for cheaper RAP and solve;
* the solve phase spends a large share of its time in MPI (paper: >60% at
  128 nodes), dominated by halo exchanges.
"""

import os

import numpy as np
import pytest

from repro.bench import RANKS_PER_NODE, run_distributed
from repro.config import multi_node_config
from repro.perf import format_table
from repro.problems import laplace_3d_27pt

from conftest import emit, tick

NODES = int(os.environ.get("REPRO_FIG7_NODES", "32"))
EDGE = int(os.environ.get("REPRO_WEAK_EDGE", "6"))

PHASE_ORDER = [
    "Strength+Coarsen", "Interp", "RAP", "Setup_etc", "Setup_MPI",
    "GS", "SpMV", "BLAS1", "Solve_etc", "Solve_MPI",
]


@pytest.fixture(scope="module")
def breakdowns():
    nranks = NODES * RANKS_PER_NODE
    A = laplace_3d_27pt(EDGE, EDGE, EDGE * nranks)
    sizes = np.full(nranks, EDGE**3, dtype=np.int64)
    out = {}
    for scheme in ("ei", "2s-ei", "mp"):
        cfg = multi_node_config(scheme, optimized=True)
        out[scheme] = run_distributed(
            A, cfg, NODES, label=scheme, rank_sizes=sizes, tol=1e-7
        )
    return out


def test_fig7_breakdown_table(benchmark, breakdowns):
    tick(benchmark)
    rows = []
    for scheme, r in breakdowns.items():
        pt = r.phase_times()
        total = r.total_time
        rows.append(
            [scheme]
            + [round(1e3 * pt.get(ph, 0.0), 3) for ph in PHASE_ORDER]
            + [round(1e3 * total, 3), r.iterations]
        )
    emit(
        "fig7_breakdown",
        format_table(
            ["scheme"] + PHASE_ORDER + ["total [ms]", "iters"],
            rows,
            title=f"Fig. 7 — HYPRE_opt time breakdown at {NODES} nodes "
                  f"({NODES * RANKS_PER_NODE} ranks)",
        ),
    )
    for r in breakdowns.values():
        assert r.converged


def test_two_stage_trades_interp_for_rap_and_solve(benchmark, breakdowns):
    tick(benchmark)
    ei = breakdowns["ei"].phase_times()
    ts = breakdowns["2s-ei"].phase_times()
    # 2-stage interpolation construction costs more...
    assert ts["Interp"] > ei["Interp"]
    # ...in exchange for a cheaper Galerkin product (smaller operators).
    assert ts["RAP"] < ei["RAP"]


def test_solve_mpi_share(benchmark, breakdowns):
    tick(benchmark)
    rows = []
    for scheme, r in breakdowns.items():
        share = r.solve_comm / r.solve_time
        rows.append([scheme, round(100 * share, 1)])
    emit(
        "fig7_solve_mpi_share",
        format_table(
            ["scheme", "Solve_MPI share [%]"],
            rows,
            title="Share of solve time spent in MPI "
                  "(paper: >60% at 128 nodes)",
        ),
    )
    # At our largest point the solve must already be communication-heavy.
    assert max(r.solve_comm / r.solve_time for r in breakdowns.values()) > 0.4
