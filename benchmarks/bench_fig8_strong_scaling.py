"""Fig. 8 — strong scaling on the reservoir-simulation input.

Fixed global problem (lognormal-permeability elliptic system, 7 nnz/row,
tol 1e-5 per §5.1.2), scaled from 1 to REPRO_STRONG_NODES nodes.  Checks:

* iteration counts stay constant per scheme as ranks grow, ordered
  ei <= 2s-ei <= mp (paper: 8 / 10 / 14);
* setup scales worse than solve, with interpolation construction and RAP
  the worst setup scalers (paper: interp 4.5-6.4x, RAP 4.2-5.0x speedup
  over a 64x rank increase);
* the optimized code beats the baseline throughout.
"""

import os

import numpy as np
import pytest

from repro.bench import run_distributed
from repro.config import multi_node_config
from repro.perf import format_table
from repro.problems import reservoir_problem

from conftest import emit, tick

NODES = [int(x) for x in os.environ.get(
    "REPRO_STRONG_NODES", "1,2,4,8,16").split(",")]
GRID = tuple(int(x) for x in os.environ.get(
    "REPRO_STRONG_GRID", "40,40,16").split(","))
#: Permeability contrast (decades).  The paper's field spans more decades
#: but also has ~8000x more cells; at the bench's grid resolution 4 decades
#: already gives the badly conditioned regime with stable iteration counts.
CONTRAST = float(os.environ.get("REPRO_STRONG_CONTRAST", "4.0"))

SCHEMES = [
    ("opt-ei(4)", multi_node_config("ei", optimized=True)),
    ("opt-2s-ei(444)", multi_node_config("2s-ei", optimized=True)),
    ("opt-mp", multi_node_config("mp", optimized=True)),
    ("base-mp", multi_node_config("mp", optimized=False)),
]


@pytest.fixture(scope="module")
def strong_results():
    A, b, _ = reservoir_problem(*GRID, seed=5, log10_contrast=CONTRAST)
    out = {}
    rows = []
    for nodes in NODES:
        for name, cfg in SCHEMES:
            r = run_distributed(A, cfg, nodes, label=name, tol=1e-5)
            out[(nodes, name)] = r
            rows.append([
                nodes, name, round(r.setup_time * 1e3, 3),
                round(r.solve_time * 1e3, 3),
                round(r.total_time * 1e3, 3), r.iterations,
            ])
            assert r.converged, (nodes, name)
    emit(
        "fig8_strong_scaling",
        format_table(
            ["nodes", "scheme", "setup [ms]", "solve [ms]", "total [ms]",
             "iters"],
            rows,
            title=f"Fig. 8 strong scaling — reservoir input {GRID}, tol 1e-5",
        ),
    )
    return out


def test_iterations_constant_and_ordered(benchmark, strong_results):
    tick(benchmark)
    per_scheme = {}
    for name, _ in SCHEMES:
        its = [strong_results[(n, name)].iterations for n in NODES]
        per_scheme[name] = its
        assert max(its) - min(its) <= 3, (name, its)
    # Paper: 8 (ei) <= 10 (2s-ei) <= 14 (mp).
    assert per_scheme["opt-ei(4)"][0] <= per_scheme["opt-2s-ei(444)"][0] + 1
    assert per_scheme["opt-2s-ei(444)"][0] <= per_scheme["opt-mp"][0] + 2
    emit(
        "fig8_iterations",
        format_table(
            ["scheme", "iterations per node count"],
            [[k, str(v)] for k, v in per_scheme.items()],
            title="Strong-scaling iteration counts (paper: 8/10/14 constant)",
        ),
    )


def test_setup_scales_worse_than_solve(benchmark, strong_results):
    tick(benchmark)
    lo, hi = NODES[0], NODES[-1]
    rows = []
    for name, _ in SCHEMES:
        r_lo = strong_results[(lo, name)]
        r_hi = strong_results[(hi, name)]
        setup_eff = (r_lo.setup_time / r_hi.setup_time)
        solve_eff = (r_lo.solve_time / r_hi.solve_time)
        rows.append([name, round(setup_eff, 2), round(solve_eff, 2)])
    emit(
        "fig8_scaling_efficiency",
        format_table(
            ["scheme", f"setup speedup {lo}->{hi} nodes",
             f"solve speedup {lo}->{hi} nodes"],
            rows,
            title="Strong-scaling speedups (paper: setup scales worse "
                  "than solve)",
        ),
    )
    opt_rows = [r for r in rows if r[0].startswith("opt")]
    # Strong scaling must actually speed things up...
    assert all(su > 1.0 or so > 1.0 for _, su, so in opt_rows)
    # ...and the paper's headline: setup scalability lags solve scalability
    # for most schemes.
    assert sum(1 for _, su, so in opt_rows if su <= so + 0.5) >= 2


def test_interp_and_rap_worst_setup_scalers(benchmark, strong_results):
    tick(benchmark)
    lo, hi = NODES[0], NODES[-1]
    rows = []
    for name in ("opt-ei(4)", "opt-2s-ei(444)", "opt-mp"):
        r_lo = strong_results[(lo, name)]
        r_hi = strong_results[(hi, name)]
        for ph in ("Interp", "RAP", "Strength+Coarsen"):
            t_lo = r_lo.setup_compute.get(ph, 0.0)
            t_hi = r_hi.setup_compute.get(ph, 0.0)
            if t_lo > 0 and t_hi > 0:
                rows.append([name, ph, round(t_lo / t_hi, 2)])
    emit(
        "fig8_setup_phase_scaling",
        format_table(
            ["scheme", "phase", f"compute speedup {lo}->{hi} nodes"],
            rows,
            title="Setup-phase strong-scaling speedups (paper: interp "
                  "4.5-6.4x, RAP 4.2-5.0x over 2->128 nodes)",
        ),
    )


def test_opt_beats_base(benchmark, strong_results):
    tick(benchmark)
    for nodes in NODES:
        base = strong_results[(nodes, "base-mp")]
        opt = strong_results[(nodes, "opt-mp")]
        assert opt.total_time < base.total_time, nodes
