"""§5.2 — lexicographic (wavefront) Gauss–Seidel vs hybrid GS.

The paper: lexicographic GS converges 1.26x faster on average, but its
dependency-graph pre-processing and limited parallelism only pay off when
the setup cost is amortized over many solves (it wins for 5 of the 14
matrices in the amortized scenario).
"""

import numpy as np
import pytest

from repro.bench import bench_scale, run_single_node
from repro.config import single_node_config
from repro.perf import format_table, geomean
from repro.problems import TABLE2_SUITE, generate

from conftest import emit, tick

from dataclasses import replace

SUBSET = ["G3_circuit", "StocF-1465", "lap3d_128", "parabolic_fem",
          "thermal2", "lap2d_2000", "tmt_sym"]


@pytest.fixture(scope="module")
def gs_results():
    out = {}
    for meta in TABLE2_SUITE:
        if meta.name not in SUBSET:
            continue
        A, _ = generate(meta.name, scale=bench_scale())
        kw = dict(strength_threshold=meta.strength_threshold)
        hybrid = run_single_node(
            A, single_node_config(True, **kw), label="hybrid", name=meta.name
        )
        lex_cfg = replace(single_node_config(True, **kw), smoother="lex")
        lex = run_single_node(A, lex_cfg, label="lex", name=meta.name)
        out[meta.name] = (hybrid, lex)
    return out


def test_lex_converges_faster(benchmark, gs_results):
    tick(benchmark)
    ratios = [h.iterations / max(l.iterations, 1) for h, l in gs_results.values()]
    gm = geomean(ratios)
    rows = [
        [n, h.iterations, l.iterations, round(h.iterations / max(l.iterations, 1), 2)]
        for n, (h, l) in gs_results.items()
    ]
    rows.append(["GEOMEAN", "", "", round(gm, 2)])
    emit(
        "lex_gs_convergence",
        format_table(
            ["matrix", "hybrid iters", "lex iters", "ratio"],
            rows,
            title="Lexicographic vs hybrid GS convergence "
                  "(paper: lex 1.26x faster on average)",
        ),
    )
    assert gm >= 1.0


def test_lex_tradeoff_one_setup_per_solve(benchmark, gs_results):
    """In the one-setup-per-solve scenario lex GS usually loses (limited
    parallelism + scheduling pre-processing); it wins for some matrices."""
    tick(benchmark)
    wins = []
    for n, (h, l) in gs_results.items():
        if l.total_time < h.total_time:
            wins.append(n)
    emit(
        "lex_gs_tradeoff",
        format_table(
            ["matrix", "hybrid total [ms]", "lex total [ms]", "lex wins"],
            [
                [n, round(h.total_time * 1e3, 3), round(l.total_time * 1e3, 3),
                 l.total_time < h.total_time]
                for n, (h, l) in gs_results.items()
            ],
            title="One setup per solve (paper: lex wins only for matrices "
                  "with high inherent parallelism)",
        ),
    )
    # Not a universal win — that is the paper's point.
    assert len(wins) < len(gs_results)


def test_gs_sweep_wallclock(benchmark):
    from repro.amg import HybridGSSmoother

    A, meta = generate("lap2d_2000", scale=bench_scale())
    sm = HybridGSSmoother(A, nthreads=14)
    x = np.zeros(A.nrows)
    b = np.ones(A.nrows)
    benchmark(lambda: sm.presmooth(x, b))
