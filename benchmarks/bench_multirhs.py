"""Multi-RHS batching — amortizing the hierarchy stream over k solves.

Every solve-phase kernel is memory-bound on the matrix stream (Fig. 5's
GS/SpMV buckets).  Solving a block of k right-hand sides with the blocked
kernels reads each level matrix, smoother structure, and coarse factor once
per cycle for all k columns instead of once per column, so the modeled
per-RHS solve time drops toward the pure vector-stream floor.  This bench
measures that amortization on lap3d27 (27-point stencil: matrix-heavy, the
best case the paper's Table 2 suite contains) and verifies the batched
answers match the one-at-a-time solves.
"""

import numpy as np
import pytest

from repro.amg import AMGSolver
from repro.config import single_node_config
from repro.perf import HaswellModel, collect, format_table
from repro.problems import laplace_3d_27pt

from conftest import emit, tick

SIZE = 12          # 12^3 = 1728 rows, 27-point stencil
BATCHES = (2, 4, 8, 16)


@pytest.fixture(scope="module")
def setup():
    A = laplace_3d_27pt(SIZE)
    cfg = single_node_config()
    solver = AMGSolver(cfg)
    solver.setup(A)
    machine = HaswellModel(threads=cfg.nthreads)
    rng = np.random.default_rng(7)
    B = rng.standard_normal((A.nrows, max(BATCHES)))
    return A, solver, machine, B


def test_multirhs_amortization(benchmark, setup):
    A, solver, machine, B = setup
    kmax = max(BATCHES)

    # k independent single-RHS solves (hierarchy reused, solve phase only).
    singles = []
    t_single = 0.0
    for j in range(kmax):
        with collect() as log:
            singles.append(solver.solve(B[:, j]))
        t_single += machine.log_time(log)
    t_single_per_rhs = t_single / kmax

    rows = [[1, round(t_single_per_rhs * 1e3, 4), 1.0]]
    speedup_at = {}
    for k in BATCHES:
        with collect() as log:
            results = solver.solve_many(B[:, :k])
        t_batch = machine.log_time(log)
        per_rhs = t_batch / k
        speedup_at[k] = t_single_per_rhs / per_rhs
        rows.append([k, round(per_rhs * 1e3, 4), round(speedup_at[k], 2)])
        for j, r in enumerate(results):
            ref = singles[j]
            assert r.converged and ref.converged
            err = np.linalg.norm(r.x - ref.x) / np.linalg.norm(ref.x)
            assert err <= 1e-10, (k, j, err)

    emit(
        "multirhs_amortization",
        format_table(
            ["k (block size)", "per-RHS solve (ms)", "speedup vs k solos"],
            rows,
            title=f"Batched multi-RHS V-cycles, lap3d27 n={A.nrows} "
                  "(modeled Haswell solve time per right-hand side)",
        ),
    )
    # The headline claim: at k=8 the per-RHS modeled time is at least 1.5x
    # lower than running 8 independent solves.
    assert speedup_at[8] >= 1.5, speedup_at
    # Amortization is monotone in k (each step spreads the matrix stream
    # over more columns).
    ks = sorted(speedup_at)
    assert all(speedup_at[a] <= speedup_at[b] + 1e-9
               for a, b in zip(ks, ks[1:]))
    tick(benchmark, lambda: solver.solve_many(B[:, :4], maxiter=2))


def test_multirhs_krylov_amortization(benchmark, setup):
    """The same effect through the blocked Krylov drivers."""
    from repro.krylov import fgmres, fgmres_multi

    A, solver, machine, B = setup
    k = 8
    t_single = 0.0
    for j in range(k):
        with collect() as log:
            r = fgmres(A, B[:, j], precondition=solver.precondition)
        assert r.converged
        t_single += machine.log_time(log)
    with collect() as log:
        results = fgmres_multi(A, B[:, :k],
                               precondition_multi=solver.precondition_multi)
    t_batch = machine.log_time(log)
    assert all(r.converged for r in results)
    speedup = t_single / t_batch
    emit(
        "multirhs_krylov",
        f"AMG-preconditioned FGMRES, lap3d27 n={A.nrows}, k={k}:\n"
        f"  {t_single / k * 1e3:.4f} ms/RHS solo -> "
        f"{t_batch / k * 1e3:.4f} ms/RHS batched "
        f"({speedup:.2f}x)",
    )
    assert speedup >= 1.5
    tick(benchmark)
