"""Node-aware halo aggregation — inter-node traffic and scaling deltas.

For each node count the bench builds the same lap3d27 hierarchy twice on
``nodes * ppn`` ranks: once flat (no topology — the wire schedule is the
logical halo pattern) and once node-aware (``repro.topo`` 3-step
aggregation where the two-tier model says it wins).  Both runs must
produce **bit-identical** solve iterates — aggregation only re-routes the
wire messages — so the comparison isolates pure communication effects:

* per level: off-node wire messages/bytes of the flat vs aggregated
  schedule (the static-schedule wire split of ``repro.analysis.sched``),
  plus each A-halo plan's modeled flat/aggregated exchange times;
* per point: modeled solve-phase communication seconds under the *same*
  two-tier network, flat vs node-aware — the fig6/fig8-style delta.

Acceptance (ISSUE 9): at >= 16 ranks with ppn >= 4 the node-aware
schedule reduces modeled inter-node message counts on coarse levels with
bit-identical iterates.

Run as a script for the CI determinism smoke: ``python
benchmarks/bench_nodeaware.py --smoke --json OUT.json`` writes sorted
JSON; two runs must produce identical bytes.
"""

import json
import os

import numpy as np

from repro.analysis.sched import extract_schedule, message_matrix, scan_schedule
from repro.bench import net_scale
from repro.config import multi_node_config
from repro.dist import DistAMGSolver, ParCSRMatrix, ParVector, RowPartition, SimComm
from repro.perf import FDRInfinibandModel, format_table
from repro.problems import laplace_3d_27pt
from repro.topo import NodeTopology

PPN = int(os.environ.get("REPRO_NODEAWARE_PPN", "4"))
SIZE = int(os.environ.get("REPRO_NODEAWARE_SIZE", "14"))
NODES = tuple(int(x) for x in os.environ.get(
    "REPRO_NODEAWARE_NODES", "2,4,8").split(","))
SMOKE_NODES = NODES[:2]
TOL = 1e-7


def _solve(A, part, comm, topo, net, b):
    solver = DistAMGSolver(comm, multi_node_config("ei"),
                           topology=topo, net=net)
    solver.setup(Ap := ParCSRMatrix.from_global(A, part))
    pre_msgs = len(comm.messages)
    pre_coll = len(comm.collectives)
    res = solver.solve(ParVector.from_global(b, part), tol=TOL)
    t_comm = net.exchange_time(
        [m.event for m in comm.messages[pre_msgs:]], comm.nranks)
    for c in comm.collectives[pre_coll:]:
        t_comm += net.allreduce_time(c.nranks, c.nbytes)
    del Ap
    return solver, res, t_comm


def run_point(nodes: int, *, size: int = SIZE, ppn: int = PPN) -> dict:
    """Flat vs node-aware run of one strong-scaling point."""
    nranks = nodes * ppn
    topo = NodeTopology(nranks, ppn)
    net = topo.network(FDRInfinibandModel()).scaled(net_scale())
    A = laplace_3d_27pt(size)
    part = RowPartition.uniform(A.nrows, nranks)
    b = np.random.default_rng(7).standard_normal(A.nrows)

    s_flat, r_flat, t_flat = _solve(A, part, SimComm(nranks), None, net, b)
    s_node, r_node, t_node = _solve(A, part, SimComm(nranks), topo, net, b)

    identical = (
        r_flat.residuals == r_node.residuals
        and r_flat.iterations == r_node.iterations
        and all(np.array_equal(a, c)
                for a, c in zip(r_flat.x.parts, r_node.x.parts))
    )

    # Static wire schedules, both split by the same topology.
    sched_flat = extract_schedule(s_flat.hierarchy)
    sched_flat.topology = topo  # flat wire schedule, node-split accounting
    sched_node = extract_schedule(s_node.hierarchy)
    assert not scan_schedule(sched_node), "node-aware schedule must verify"
    mat_flat = message_matrix(sched_flat)
    mat_node = message_matrix(sched_node)

    levels = []
    for ent_f, ent_n, lvl in zip(mat_flat["levels"], mat_node["levels"],
                                 s_node.hierarchy.levels):
        plan = lvl.halo.node_plan if lvl.halo is not None else None
        levels.append({
            "level": ent_f["level"],
            "flat_offnode_msgs": ent_f["off_node"]["counts"],
            "flat_offnode_bytes": ent_f["off_node"]["bytes"],
            "nodeaware_offnode_msgs": ent_n["off_node"]["counts"],
            "nodeaware_offnode_bytes": ent_n["off_node"]["bytes"],
            "aggregated": bool(plan is not None and plan.aggregated),
            "halo_t_flat": plan.t_flat if plan is not None else 0.0,
            "halo_t_aggregated": (plan.t_aggregated
                                  if plan is not None else 0.0),
        })

    return {
        "nodes": nodes,
        "ppn": ppn,
        "nranks": nranks,
        "n": A.nrows,
        "iterations": r_node.iterations,
        "converged": bool(r_node.converged),
        "bit_identical": bool(identical),
        "levels": levels,
        "solve_comm_flat": t_flat,
        "solve_comm_nodeaware": t_node,
        "comm_delta": (t_flat - t_node) / t_flat if t_flat > 0 else 0.0,
    }


def run_sweep(nodes=NODES) -> dict:
    return {
        "problem": f"lap3d27 n={SIZE}^3, strong scaling, tol {TOL:g}",
        "ppn": PPN,
        "points": [run_point(n) for n in nodes],
    }


def _report(res: dict) -> str:
    rows = []
    for p in res["points"]:
        coarse = [l for l in p["levels"] if l["level"] >= 1]
        rows.append([
            p["nodes"], p["nranks"], p["iterations"],
            sum(l["flat_offnode_msgs"] for l in coarse),
            sum(l["nodeaware_offnode_msgs"] for l in coarse),
            round(p["solve_comm_flat"] * 1e3, 3),
            round(p["solve_comm_nodeaware"] * 1e3, 3),
            f"{p['comm_delta'] * 100:.1f}%",
            "yes" if p["bit_identical"] else "NO",
        ])
    return format_table(
        ["nodes", "ranks", "iters", "coarse off-node msgs (flat)",
         "(node-aware)", "solve comm flat [ms]", "node-aware [ms]",
         "delta", "bit-identical"],
        rows,
        title=f"Node-aware halo aggregation — {res['problem']}, "
              f"ppn={res['ppn']}")


def _point(res: dict, nodes: int) -> dict:
    return next(p for p in res["points"] if p["nodes"] == nodes)


def test_nodeaware_reduces_internode_messages(benchmark):
    from conftest import emit, tick

    res = run_sweep()
    emit("nodeaware", _report(res))
    for p in res["points"]:
        # Aggregation must never change the numerics, only the wire.
        assert p["bit_identical"], p["nodes"]
        assert p["converged"], p["nodes"]
    # ISSUE 9 acceptance: >= 16 ranks, ppn >= 4 -> fewer modeled inter-node
    # messages on the coarse levels, where the halo surfaces are small and
    # the flat schedule pays per-message latency ppn^2 times per node pair.
    big = [p for p in res["points"] if p["nranks"] >= 16]
    assert big, "sweep must include a >=16-rank point"
    for p in big:
        coarse = [l for l in p["levels"] if l["level"] >= 1]
        assert any(l["aggregated"] for l in coarse), p["nodes"]
        flat = sum(l["flat_offnode_msgs"] for l in coarse)
        node = sum(l["nodeaware_offnode_msgs"] for l in coarse)
        assert node < flat, (p["nodes"], flat, node)
    tick(benchmark)


def test_aggregation_follows_model(benchmark):
    from conftest import tick

    res = run_point(4)
    for l in res["levels"]:
        if l["aggregated"]:
            assert l["halo_t_aggregated"] < l["halo_t_flat"], l
    tick(benchmark)


def test_sweep_is_deterministic():
    a = run_point(SMOKE_NODES[0])
    b = run_point(SMOKE_NODES[0])
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="node-aware halo aggregation benchmark (JSON output)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as sorted JSON to PATH")
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI subset: nodes {SMOKE_NODES} only")
    args = parser.parse_args()
    result = run_sweep(SMOKE_NODES if args.smoke else NODES)
    text = json.dumps(result, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as f:
            f.write(text + "\n")
    print(_report(result))
    bad = [p["nodes"] for p in result["points"] if not p["bit_identical"]]
    if bad:
        raise SystemExit(f"bit-identity violated at nodes={bad}")
