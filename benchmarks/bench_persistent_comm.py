"""§4.4 / §5.4 — persistent communication for halo exchanges.

The paper measures 1.8x / 1.7x speedups of the solve-phase halo exchanges
from replacing per-exchange Isend/Irecv setup with persistent requests
(one MPI_Startall per exchange).
"""

import os

import numpy as np
import pytest

from repro.dist import (
    ParCSRMatrix,
    ParVector,
    RowPartition,
    SimComm,
    build_halo,
    dist_spmv,
)
from repro.perf import FDRInfinibandModel, format_table
from repro.problems import laplace_3d_27pt


from conftest import emit, tick

NRANKS = int(os.environ.get("REPRO_PERSIST_RANKS", "32"))
EXCHANGES = 200


def _halo_time(persistent: bool) -> float:
    edge = 6
    A = laplace_3d_27pt(edge, edge, edge * NRANKS)
    part = RowPartition.from_sizes(np.full(NRANKS, edge**3, dtype=np.int64))
    comm = SimComm(NRANKS)
    Ap = ParCSRMatrix.from_global(A, part)
    halo = build_halo(comm, Ap, persistent=persistent)
    x = ParVector.from_global(np.ones(A.nrows), part)
    for _ in range(EXCHANGES):
        dist_spmv(comm, Ap, x, halo)
    # Unscaled network: this is a per-message-cost claim (request setup vs
    # wire time), not a compute:comm balance claim, so the physical
    # InfiniBand constants apply directly.
    net = FDRInfinibandModel()
    return comm.comm_time(net)


@pytest.fixture(scope="module")
def halo_times():
    return {"persistent": _halo_time(True), "per-exchange": _halo_time(False)}


def test_persistent_speedup(benchmark, halo_times):
    tick(benchmark)
    ratio = halo_times["per-exchange"] / halo_times["persistent"]
    emit(
        "persistent_comm",
        format_table(
            ["mode", f"halo time for {EXCHANGES} exchanges [ms]"],
            [
                ["per-exchange requests", round(halo_times["per-exchange"] * 1e3, 3)],
                ["persistent requests", round(halo_times["persistent"] * 1e3, 3)],
                ["speedup", round(ratio, 2)],
            ],
            title=f"Halo exchange on {NRANKS} ranks "
                  "(paper: 1.8x / 1.7x on 128 nodes)",
        ),
    )
    assert 1.2 < ratio < 4.0


def test_halo_wallclock(benchmark):
    edge = 6
    A = laplace_3d_27pt(edge, edge, edge * 8)
    part = RowPartition.from_sizes(np.full(8, edge**3, dtype=np.int64))
    comm = SimComm(8)
    Ap = ParCSRMatrix.from_global(A, part)
    halo = build_halo(comm, Ap, persistent=True)
    x = ParVector.from_global(np.ones(A.nrows), part)
    benchmark(lambda: halo(x))
