"""§3.1.1 — the Fig. 1(a) vs Fig. 1(b) RAP fusion flop comparison.

The paper measures that its fusion (materialize row B_i, then multiply)
needs on average 1.73x fewer floating-point operations than HYPRE's scalar
fusion on the finest-level triple product of the evaluation matrices.
"""

import pytest

from repro.amg import extended_i_interpolation, pmis, strength_matrix
from repro.bench import bench_scale
from repro.perf import format_table, geomean
from repro.problems import TABLE2_SUITE, generate
from repro.sparse import fusion_flop_counts, rap_fused, transpose

from conftest import emit, tick


@pytest.fixture(scope="module")
def flop_ratios():
    out = {}
    for meta in TABLE2_SUITE:
        A, _ = generate(meta.name, scale=bench_scale())
        S = strength_matrix(A, meta.strength_threshold, 0.8)
        cf = pmis(S, seed=1)
        P = extended_i_interpolation(A, S, cf)
        R = transpose(P)
        out[meta.name] = fusion_flop_counts(R, A, P)
    return out


def test_fusion_flop_ratio(benchmark, flop_ratios):
    tick(benchmark)
    rows = [
        [n, f"{fc['fused_a']:.3g}", f"{fc['hypre_b']:.3g}", round(fc["ratio"], 2)]
        for n, fc in flop_ratios.items()
    ]
    gm = geomean([fc["ratio"] for fc in flop_ratios.values()])
    rows.append(["GEOMEAN", "", "", round(gm, 2)])
    emit(
        "rap_fusion_flops",
        format_table(
            ["matrix", "Fig.1a flops", "Fig.1b flops", "ratio b/a"],
            rows,
            title="Finest-level RAP flop counts "
                  "(paper: Fig.1b needs 1.73x more on average)",
        ),
    )
    assert gm > 1.3
    assert all(fc["ratio"] > 1.0 for fc in flop_ratios.values())


def test_rap_fused_wallclock(benchmark):
    A, meta = generate("lap2d_2000", scale=bench_scale())
    S = strength_matrix(A, meta.strength_threshold, 0.8)
    cf = pmis(S, seed=1)
    P = extended_i_interpolation(A, S, cf)
    R = transpose(P)
    benchmark(lambda: rap_fused(R, A, P))
