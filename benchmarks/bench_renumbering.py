"""§4.2 / §5.4 — parallel column-index renumbering.

The paper reports that the Fig. 4 renumbering speeds the distributed RAP
product up by 2.6x and 3.5x on 128 nodes for its two weak-scaling inputs.
This bench times the distributed RAP (modeled setup compute + comm) with
the baseline ordered-set renumbering vs the parallel algorithm.
"""

import os

import numpy as np
import pytest

from repro.amg import extended_i_interpolation, pmis, strength_matrix
from repro.bench import RANKS_PER_NODE, machine_for
from repro.config import multi_node_config
from repro.dist import (
    ParCSRMatrix,
    RowPartition,
    SimComm,
    dist_rap,
    renumber_baseline,
    renumber_parallel,
)
from repro.perf import format_table
from repro.problems import amg2013_problem, laplace_3d_27pt
from repro.sparse import transpose

from conftest import emit, tick

NODES = int(os.environ.get("REPRO_RENUM_NODES", "16"))


def _dist_problem(kind: str):
    nranks = NODES * RANKS_PER_NODE
    if kind == "lap27":
        edge = 6
        A = laplace_3d_27pt(edge, edge, edge * nranks)
        sizes = np.full(nranks, edge**3, dtype=np.int64)
    else:
        A, sizes = amg2013_problem(max(nranks, 8), r=5, seed=3)
    S = strength_matrix(A, 0.25, 0.8)
    cf = pmis(S, seed=1)
    P = extended_i_interpolation(A, S, cf)
    part = RowPartition.from_sizes(sizes)
    nc = int((cf > 0).sum())
    # Coarse partition follows the fine ownership.
    c_owner = part.owner_of(np.flatnonzero(cf > 0))
    csizes = np.bincount(c_owner, minlength=nranks)
    return A, P, part, RowPartition.from_sizes(csizes)


def _rap_time(kind: str, parallel_renumber: bool) -> float:
    A, P, part, cpart = _dist_problem(kind)
    comm = SimComm(part.nranks)
    Ap = ParCSRMatrix.from_global(A, part)
    Pp = ParCSRMatrix.from_global(P, part, cpart)
    machine = machine_for(multi_node_config("ei"))
    dist_rap(comm, Ap, Pp, parallel_renumber=parallel_renumber)
    compute = sum(comm.compute_phase_makespan(machine).values())
    return compute


@pytest.fixture(scope="module")
def rap_times():
    return {
        kind: {
            "baseline": _rap_time(kind, False),
            "parallel": _rap_time(kind, True),
        }
        for kind in ("lap27", "amg2013")
    }


def test_renumbering_speeds_rap(benchmark, rap_times):
    tick(benchmark)
    rows = []
    for kind, t in rap_times.items():
        ratio = t["baseline"] / t["parallel"]
        rows.append([kind, round(t["baseline"] * 1e3, 3),
                     round(t["parallel"] * 1e3, 3), round(ratio, 2)])
    emit(
        "renumbering_rap",
        format_table(
            ["input", "serial renumber [ms]", "parallel renumber [ms]",
             "speedup"],
            rows,
            title=f"Distributed RAP at {NODES} nodes "
                  "(paper: 2.6x / 3.5x on 128 nodes)",
        ),
    )
    for kind, t in rap_times.items():
        assert t["baseline"] / t["parallel"] > 1.3, kind


def test_renumber_kernel_wallclock(benchmark, rng):
    old = np.sort(rng.choice(1_000_000, 2_000, replace=False)).astype(np.int64)
    q = rng.integers(0, 1_000_000, 200_000).astype(np.int64)
    benchmark(lambda: renumber_parallel(old, q, nthreads=14))


@pytest.fixture
def rng():
    return np.random.default_rng(3)
