"""Pattern-reuse numeric resetup — cold build vs. ``Hierarchy.refresh``.

The §3.1.1 claim applied to the whole setup phase: on a time-step /
Newton sequence whose operators share one sparsity pattern, every
symbolic decision of setup (strength pattern, PMIS split, interpolation
pattern, RAP patterns) can be frozen once and only the numerics redone.
Measured here on the Fig. 5 Laplacian (27-point stencil, seeded symmetric
coefficient jitter so weight-ratio ties with the truncation threshold
are generic) walked through a sequence of same-pattern value updates:

* per-step modeled setup time, flops, and data-dependent branches for a
  from-scratch ``build_hierarchy`` vs. a plan-driven ``refresh``;
* bit-identity of every refreshed level against the cold build;
* the Fig. 5-style phase breakdown, where the entire refresh lands in
  the ``Resetup`` bucket.

Acceptance (ISSUE 5): refresh cuts modeled setup flops and branches by
>= 2x (branches drop to exactly zero — the numeric path is branch-free).

Run as a script for the CI determinism smoke: ``python
benchmarks/bench_resetup.py --json OUT.json`` writes the measured
numbers as sorted JSON; two runs must produce identical bytes.
"""

import json

import numpy as np

from repro.amg import build_hierarchy
from repro.bench import SETUP_PHASES, machine_for
from repro.config import single_node_config
from repro.perf import collect, format_breakdown, format_table
from repro.serve.workload import PROBLEM_BUILDERS
from repro.sparse import CSRMatrix

SIZE = 12        # 12^3 = 1728 rows, 27-point stencil
STEPS = 8        # operators in the same-pattern sequence
STEP_SHIFT = 0.02


def _sequence():
    """The timestep-workload operator sequence: one pattern, STEPS values."""
    A0 = PROBLEM_BUILDERS["lap3d27g"](SIZE)
    return [
        CSRMatrix(A0.shape, A0.indptr.copy(), A0.indices.copy(),
                  A0.data * (1.0 + STEP_SHIFT * t))
        for t in range(STEPS)
    ]


def _totals(log, machine):
    return {
        "seconds": machine.log_time(log),
        "flops": sum(r.flops for r in log.records),
        "branches": sum(r.branches for r in log.records),
    }


def run_sequence() -> dict:
    """Measure the sequence both ways; returns a JSON-able result dict."""
    config = single_node_config(True)
    machine = machine_for(config)
    seq = _sequence()

    cold_steps, cold_phases = [], {}
    cold_hierarchies = []
    for A in seq:
        with collect() as log:
            cold_hierarchies.append(build_hierarchy(A, config))
        cold_steps.append(_totals(log, machine))
        for ph, t in machine.phase_times(log).items():
            cold_phases[ph] = cold_phases.get(ph, 0.0) + t

    refresh_steps, refresh_phases = [], {}
    with collect() as log:
        h = build_hierarchy(seq[0], config, capture_plan=True)
    first = _totals(log, machine)
    assert h.plan is not None
    identical = True
    for t, A in enumerate(seq[1:], start=1):
        with collect() as log:
            h = h.refresh(A)
        refresh_steps.append(_totals(log, machine))
        for ph, tt in machine.phase_times(log).items():
            refresh_phases[ph] = refresh_phases.get(ph, 0.0) + tt
        ref = cold_hierarchies[t]
        for la, lb in zip(h.levels, ref.levels):
            identical &= bool(
                np.array_equal(la.A.indptr, lb.A.indptr)
                and np.array_equal(la.A.indices, lb.A.indices)
                and np.array_equal(la.A.data, lb.A.data)
            )

    def avg(steps, key):
        return sum(s[key] for s in steps) / len(steps)

    # Steady-state comparison: per-step cost once the sequence is rolling
    # (the capture step itself costs exactly a cold build — capture is
    # silent in the performance model).
    cold_avg = {k: avg(cold_steps[1:], k) for k in ("seconds", "flops", "branches")}
    refresh_avg = {k: avg(refresh_steps, k) for k in ("seconds", "flops", "branches")}
    return {
        "problem": f"lap3d27g n={seq[0].nrows} (27-pt Laplacian, jittered)",
        "steps": STEPS,
        "bit_identical": identical,
        "capture_build": first,
        "cold_per_step": cold_avg,
        "refresh_per_step": refresh_avg,
        "speedup": {
            "seconds": cold_avg["seconds"] / refresh_avg["seconds"],
            "flops": cold_avg["flops"] / refresh_avg["flops"],
            "branches": (cold_avg["branches"] / refresh_avg["branches"]
                         if refresh_avg["branches"] else float("inf")),
        },
        "cold_phase_seconds": {k: cold_phases[k] for k in sorted(cold_phases)},
        "refresh_phase_seconds": {k: refresh_phases[k]
                                  for k in sorted(refresh_phases)},
    }


def _report(res: dict) -> str:
    rows = []
    for key in ("seconds", "flops", "branches"):
        cold = res["cold_per_step"][key]
        warm = res["refresh_per_step"][key]
        ratio = res["speedup"][key]
        fmt = (lambda v: f"{v * 1e3:.3f} ms") if key == "seconds" else \
              (lambda v: f"{v:.3e}")
        rows.append([f"setup {key}/step", fmt(cold), fmt(warm),
                     "inf" if ratio == float("inf") else f"{ratio:.2f}x"])
    table = format_table(
        ["quantity", "cold build", "refresh", "cold/refresh"],
        rows,
        title=(f"Numeric resetup vs cold setup, {res['problem']}, "
               f"{res['steps']}-step same-pattern sequence"),
    )
    order = list(SETUP_PHASES)
    breakdown = "\n".join([
        "Fig. 5-style setup breakdown (modeled s over the sequence):",
        format_breakdown("  cold x7", res["cold_phase_seconds"], order=order),
        format_breakdown("  refresh x7", res["refresh_phase_seconds"],
                         order=order),
    ])
    tail = (f"refresh bit-identical to cold per level: "
            f"{res['bit_identical']}")
    return "\n".join([table, "", breakdown, tail])


def test_resetup_speedup(benchmark):
    from conftest import emit, tick

    res = run_sequence()
    emit("resetup", _report(res))
    assert res["bit_identical"]
    # ISSUE 5 acceptance: >= 2x modeled setup flops and branches.
    assert res["speedup"]["flops"] >= 2.0
    assert res["refresh_per_step"]["branches"] == 0.0
    assert res["speedup"]["seconds"] > 1.0
    # Cold builds spread over the real setup phases; refresh is Resetup-only.
    assert set(res["refresh_phase_seconds"]) == {"Resetup"}
    assert "RAP" in res["cold_phase_seconds"]
    tick(benchmark, lambda: _sequence())


def test_resetup_run_is_deterministic():
    a, b = run_sequence(), run_sequence()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="cold-vs-refresh resetup benchmark (JSON output)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as sorted JSON to PATH")
    args = parser.parse_args()
    result = run_sequence()
    text = json.dumps(result, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as f:
            f.write(text + "\n")
    print(_report(result))
