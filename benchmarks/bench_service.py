"""Service coalescing — throughput of micro-batched vs. serial serving.

The serving claim of docs/serving.md: for traffic that keeps hitting the
same operator, coalescing queued requests into blocked multi-RHS
micro-batches (one hierarchy stream per cycle for the whole batch) beats
serving each request with its own ``repro.solve`` call.  Both sides get
the same hierarchy-cache treatment — the serial baseline pays setup once
too — so the entire win is the solve-phase matrix-stream amortization of
PR 1, now harvested by the service scheduler across independent requests.

Measured: requests per modeled second on a closed same-matrix workload
(every request at t=0, the coalescing best case) at batch caps k=1..8.
The k=8 service must clear 1.5x the serial throughput, and the whole
service run must be bit-identical (results and metrics JSON) across
repeated runs of the same seeded workload.
"""

import numpy as np
import pytest

from repro.perf import HaswellModel, collect, format_table
from repro.problems import laplace_3d_27pt
from repro.serve import ServiceConfig, SolveService, Workload, WorkloadItem, WorkloadSpec

from conftest import emit, tick

SIZE = 12          # 12^3 = 1728 rows, 27-point stencil
REQUESTS = 16
CAPS = (1, 2, 4, 8)


def _workload() -> Workload:
    """Closed same-matrix workload: REQUESTS arrivals at t=0, seeded RHS."""
    A = laplace_3d_27pt(SIZE)
    rng = np.random.default_rng(11)
    spec = WorkloadSpec(seed=11, requests=REQUESTS,
                        problems=({"problem": "lap3d27", "size": SIZE,
                                   "weight": 1.0},))
    items = [WorkloadItem(arrival=0.0, matrix_index=0,
                          b=rng.standard_normal(A.nrows), priority="batch")
             for _ in range(REQUESTS)]
    return Workload(spec=spec, matrices=[A], items=items)


@pytest.fixture(scope="module")
def workload():
    return _workload()


def _serial_throughput(workload) -> tuple[float, list]:
    """Serial per-request repro.solve with a private (warm) cache."""
    import repro
    from repro.amg.cache import HierarchyCache

    cache = HierarchyCache()
    machine = HaswellModel(threads=14)
    A = workload.matrices[0]
    t = 0.0
    results = []
    for item in workload.items:
        with collect() as log:
            results.append(repro.solve(A, item.b, cache=cache))
        t += machine.log_time(log)
    return REQUESTS / t, results


def test_service_coalescing_throughput(benchmark, workload):
    serial_rps, serial_results = _serial_throughput(workload)
    assert all(r.converged for r in serial_results)

    rows = [["serial repro.solve", 1, round(serial_rps, 1), 1.0]]
    rps_at = {}
    for k in CAPS:
        svc = SolveService(ServiceConfig(max_batch=k, max_queue=REQUESTS))
        results = svc.run_workload(workload)
        assert all(r.status == "completed" and r.converged for r in results)
        # The batched columns are bit-identical to the serial solves —
        # coalescing is a scheduling decision, not a numerical one.
        for r, ref in zip(results, serial_results):
            np.testing.assert_array_equal(r.x, ref.x)
        snap = svc.metrics_snapshot()
        rps_at[k] = snap["service"]["throughput_rps"]
        rows.append([f"service k={k}", k, round(rps_at[k], 1),
                     round(rps_at[k] / serial_rps, 2)])

    emit(
        "service_coalescing",
        format_table(
            ["configuration", "batch cap", "req/modeled-s", "vs serial"],
            rows,
            title=f"Batching solve service, lap3d27 n={workload.matrices[0].nrows}, "
                  f"{REQUESTS} same-matrix requests (closed workload)",
        ),
    )
    # Headline: the k=8 coalescing service clears 1.5x serial throughput.
    assert rps_at[8] >= 1.5 * serial_rps, (rps_at, serial_rps)
    # Coalescing monotone in the batch cap on a same-key workload.
    ks = sorted(rps_at)
    assert all(rps_at[a] <= rps_at[b] + 1e-9 for a, b in zip(ks, ks[1:]))
    tick(benchmark, lambda: SolveService(
        ServiceConfig(max_batch=4, max_queue=REQUESTS)).run_workload(workload))


def test_service_run_is_bit_identical(workload):
    """Same workload, same seed -> identical solutions and metrics JSON."""
    def run():
        svc = SolveService(ServiceConfig(max_batch=8, max_queue=REQUESTS))
        results = svc.run_workload(workload)
        return results, svc.metrics_json()

    res1, json1 = run()
    res2, json2 = run()
    assert json1 == json2
    for a, b in zip(res1, res2):
        assert a.status == b.status == "completed"
        assert a.iterations == b.iterations
        assert a.residuals == b.residuals
        np.testing.assert_array_equal(a.x, b.x)
