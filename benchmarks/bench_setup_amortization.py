"""Setup amortization — who wins depends on the setup:solve ratio (§5.2).

The paper stresses that "while solving individual linear systems requires
one setup for every solve, in time dependent problems, setup will be called
only occasionally."  This bench recombines the Fig. 5 measurements into
time-to-solution under *k* solves per setup and reports where the
base/opt/AmgX ranking changes — the decision chart a practitioner needs.
"""

import pytest

from repro.bench import bench_scale, run_amgx, run_single_node
from repro.config import single_node_config
from repro.perf import format_table, geomean
from repro.problems import TABLE2_SUITE, generate

from conftest import emit, tick

SUBSET = ["G3_circuit", "StocF-1465", "atmosmodd", "lap2d_2000",
          "lap3d_128", "thermal2", "tmt_sym"]
SOLVES_PER_SETUP = (1, 4, 16, 64)


@pytest.fixture(scope="module")
def results():
    out = {}
    for meta in TABLE2_SUITE:
        if meta.name not in SUBSET:
            continue
        A, _ = generate(meta.name, scale=bench_scale())
        kw = dict(strength_threshold=meta.strength_threshold)
        out[meta.name] = (
            run_single_node(A, single_node_config(False, **kw),
                            label="base", name=meta.name),
            run_single_node(A, single_node_config(True, **kw),
                            label="opt", name=meta.name),
            run_amgx(A, name=meta.name),
        )
    return out


def _tts(r, k):
    """Time to solve *k* systems after one setup."""
    return r.setup_time + k * r.solve_time


def test_amortization_table(benchmark, results):
    tick(benchmark)
    rows = []
    for k in SOLVES_PER_SETUP:
        vs_base = geomean([_tts(b, k) / _tts(o, k) for b, o, _ in results.values()])
        vs_amgx = geomean([_tts(a, k) / _tts(o, k) for _, o, a in results.values()])
        rows.append([k, round(vs_base, 2), round(vs_amgx, 2)])
    emit(
        "setup_amortization",
        format_table(
            ["solves per setup", "opt speedup vs base", "opt speedup vs AmgX"],
            rows,
            title="Time-to-solution vs setup amortization "
                  "(geomean over a 7-matrix subset)",
        ),
    )
    # Solve-phase advantages dominate as amortization grows: opt's edge over
    # AmgX *grows* with k (AmgX loses the solve phase), and opt keeps
    # beating base everywhere.
    assert all(r[1] > 1.2 for r in rows)
    assert rows[-1][2] >= rows[0][2]


def test_amgx_never_recovers_at_high_amortization(benchmark, results):
    tick(benchmark)
    # At 64 solves/setup the comparison is essentially solve time, where
    # the paper (and our model) has AmgX ~2x slower.
    ratios = [_tts(a, 64) / _tts(o, 64) for _, o, a in results.values()]
    assert geomean(ratios) > 1.3
