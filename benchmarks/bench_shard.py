"""Sharded service scaling — modeled throughput vs. rank count.

The sharded tier's claim: on a setup-dominated request mix with enough
distinct fingerprints, consistent-hash routing keeps each fingerprint's
traffic cache-warm on its home rank, and work-aware replica spill keeps
the ranks busy, so modeled fleet throughput scales near-linearly with the
rank count until the heaviest single key chain bounds the makespan.

Measured on the ``mixed`` preset widened to a fleet-sized key space
(every problem entry replicated at 8 consecutive sizes -> 24 distinct
fingerprints spanning 2-D/3-D stencils of very different cost) replayed
as a closed batch, so the makespan measures pure service capacity rather
than the arrival process.  For each rank count the bench reports modeled
throughput, speedup over one rank, cache-locality hit rate (completed
requests served home-rank-warm), busy-time imbalance, and the modeled
forwarding traffic the spilled requests paid.

Acceptance (ISSUE 6): near-linear modeled throughput scaling from 1 to 8
ranks (>= 3x at 4 ranks, >= 4.5x at 8 on a 30x-cost-spread key set) with
the locality hit rate reported; ranks=1 must match the plain single-rank
service bit-for-bit.

Run as a script for the CI determinism smoke: ``python
benchmarks/bench_shard.py --json OUT.json`` (optionally ``--smoke`` for
the 1/2/4-rank subset) writes sorted JSON; two runs must produce
identical bytes.
"""

import json

from dataclasses import asdict

from repro.perf import format_table
from repro.serve import (
    ServiceConfig,
    ShardedSolveService,
    SolveService,
    WorkloadSpec,
    build,
    named_workload,
    widened,
)

RANKS = (1, 2, 4, 8, 16)
SMOKE_RANKS = (1, 2, 4)

#: Routing configuration of every sweep point (ranks vary).  ``replicas=2``
#: gives each key one spill target (power-of-two-choices); the work-aware
#: spill penalty keeps spilling rare enough that locality survives.
BASE = dict(replicas=2, spill_penalty=2, max_batch=4, cache_entries=64,
            max_queue=256)


def fleet_spec() -> WorkloadSpec:
    """The widened ``mixed`` stream, replayed as a closed batch."""
    spec = widened(named_workload("mixed"), copies=8, requests=192)
    return WorkloadSpec.from_dict({**asdict(spec), "rate": None})


def run_sweep(ranks=RANKS) -> dict:
    """Run the fleet workload at each rank count; JSON-able results."""
    spec = fleet_spec()
    points = []
    base_seconds = None
    for r in ranks:
        cfg = ServiceConfig(ranks=r, replicas=min(BASE["replicas"], r),
                            spill_penalty=BASE["spill_penalty"],
                            max_batch=BASE["max_batch"],
                            cache_entries=BASE["cache_entries"],
                            max_queue=BASE["max_queue"])
        svc = ShardedSolveService(cfg)
        results = svc.run_workload(build(spec))
        sh = svc.metrics_snapshot()["sharded"]
        if base_seconds is None:
            base_seconds = sh["virtual_seconds"]
        points.append({
            "ranks": r,
            "virtual_seconds": sh["virtual_seconds"],
            "throughput_rps": sh["throughput_rps"],
            "speedup": base_seconds / sh["virtual_seconds"],
            "completed": sh["counters"]["completed"],
            "forwarded": sh["counters"]["forwarded"],
            "shipments": sh["counters"]["shipments"],
            "locality_hit_rate": sh["locality"]["hit_rate"],
            "busy_imbalance": sh["load_balance"]["busy_imbalance"],
            "forward_bytes": sh["network"]["forward_bytes"],
            "net_seconds": (sh["network"]["forward_seconds"]
                            + sh["network"]["return_seconds"]),
            "all_completed": all(x.status == "completed" for x in results),
        })
    return {
        "workload": (f"mixed widened x8 ({len(spec.problems)} fingerprints, "
                     f"{spec.requests} requests, closed batch)"),
        "config": dict(BASE),
        "points": points,
    }


def single_rank_identity() -> bool:
    """ranks=1 sharded run vs. a plain SolveService: same metrics bytes."""
    spec = fleet_spec()
    plain = SolveService(ServiceConfig(
        max_batch=BASE["max_batch"], cache_entries=BASE["cache_entries"],
        max_queue=BASE["max_queue"]))
    plain.run_workload(build(spec))
    shard = ShardedSolveService(ServiceConfig(
        ranks=1, max_batch=BASE["max_batch"],
        cache_entries=BASE["cache_entries"], max_queue=BASE["max_queue"]))
    shard.run_workload(build(spec))
    return plain.metrics_json() == shard.services[0].metrics_json()


def _report(res: dict) -> str:
    rows = [
        (p["ranks"], round(p["virtual_seconds"] * 1e3, 3),
         round(p["throughput_rps"], 1), f"{p['speedup']:.2f}x",
         f"{p['locality_hit_rate']:.2f}", p["forwarded"],
         f"{p['busy_imbalance']:.2f}")
        for p in res["points"]
    ]
    return format_table(
        ["ranks", "makespan ms", "req/s (modeled)", "speedup",
         "locality", "forwards", "busy imb."],
        rows,
        title=f"Sharded service scaling, {res['workload']}")


def _point(res: dict, ranks: int) -> dict | None:
    return next((p for p in res["points"] if p["ranks"] == ranks), None)


def test_shard_scaling(benchmark):
    from conftest import emit, tick

    res = run_sweep()
    emit("shard", _report(res))
    assert all(p["all_completed"] for p in res["points"])
    # ISSUE 6 acceptance: near-linear modeled throughput 1 -> 8 ranks.
    assert _point(res, 2)["speedup"] >= 1.6
    assert _point(res, 4)["speedup"] >= 3.0
    assert _point(res, 8)["speedup"] >= 4.5
    # The locality metric is meaningful: repeated-key batches are served
    # warm on their home rank.
    assert _point(res, 8)["locality_hit_rate"] > 0.1
    # Spilled requests paid for their forwarding on the modeled network.
    p8 = _point(res, 8)
    assert (p8["forward_bytes"] > 0) == (p8["forwarded"] > 0)
    tick(benchmark, fleet_spec)


def test_single_rank_bit_identity():
    assert single_rank_identity()


def test_shard_sweep_is_deterministic():
    a, b = run_sweep(ranks=(1, 2)), run_sweep(ranks=(1, 2))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="sharded-service scaling benchmark (JSON output)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as sorted JSON to PATH")
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: ranks 1/2/4 only")
    args = parser.parse_args()
    result = run_sweep(SMOKE_RANKS if args.smoke else RANKS)
    text = json.dumps(result, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as f:
            f.write(text + "\n")
    print(_report(result))
    if not args.smoke:
        print(f"ranks=1 bit-identical to SolveService: "
              f"{single_rank_identity()}")
