"""Table 2 — the single-node matrix suite (surrogates, DESIGN.md §2)."""

import numpy as np
import pytest

from repro.bench import bench_scale
from repro.perf import format_table
from repro.problems import TABLE2_SUITE, generate

from conftest import emit, tick


def test_table2_inventory(benchmark):
    tick(benchmark)
    scale = bench_scale()
    rows = []
    for meta in TABLE2_SUITE:
        A, _ = generate(meta.name, scale=scale)
        rows.append(
            [
                meta.name,
                meta.paper_rows,
                meta.paper_nnz_per_row,
                A.nrows,
                round(A.nnz / A.nrows, 1),
                meta.strength_threshold,
            ]
        )
        # nnz/row must track the paper's column.
        assert abs(A.nnz / A.nrows - meta.paper_nnz_per_row) < 0.35 * meta.paper_nnz_per_row
    emit(
        "table2_matrices",
        format_table(
            ["matrix", "paper rows", "paper nnz/row", f"rows (1/{scale})",
             "nnz/row", "str_thr"],
            rows,
            title=f"Table 2 surrogate suite (scale = 1/{scale} of paper rows)",
        ),
    )


def test_generate_speed(benchmark):
    benchmark(lambda: generate("lap3d_128", scale=bench_scale()))
