"""Real wall-clock timing of the plan-driven solve phase (ISSUE 10).

Every other benchmark in this directory reports *modeled* time — the
machine model applied to the structural kernel counts.  This one holds a
stopwatch to the Python harness itself: each tier-1-representative path is
executed with the precompiled :class:`repro.amg.solveplan.SolvePlan`
engaged (``REPRO_SOLVEPLAN=on``, the default) and again with the plans
bypassed (``REPRO_SOLVEPLAN=off``), timing both with
``time.perf_counter``.

The hard invariant of the plan layer is checked in the same breath: for
every path the **modeled** outputs — record count, flops, bytes, branches,
modeled seconds, iteration counts — must be bit-identical between the two
modes.  The plans may only change how fast the simulation runs, never what
it computes.

Paths: ``solve`` (single-RHS PCG+AMG), ``solve_many`` (blocked 8-RHS),
``serve`` (the ``tiny`` serving workload end-to-end), ``setup`` (hierarchy
build, including plan compilation — the price of planning), and
``refresh`` (same-pattern numeric resetup).  The acceptance aggregate is
over the solve-phase paths (``solve``, ``solve_many``, ``serve``): summed
plan-off wall time over summed plan-on wall time must be >= 2x.

Run as a script:

    python benchmarks/bench_wallclock.py                  # report + BENCH_wallclock.json
    python benchmarks/bench_wallclock.py --smoke          # CI-sized problems
    python benchmarks/bench_wallclock.py --json OUT.json  # full results (has wall fields)
    python benchmarks/bench_wallclock.py --modeled-json OUT.json

``--modeled-json`` writes only the modeled fields — wall-clock numbers are
machine noise and are excluded — so two runs must produce identical bytes
(the CI determinism smoke cmp's them).
"""

import json
import os
import time

import numpy as np

SOLVE_PHASE_PATHS = ("solve", "solve_many", "serve")
ALL_PATHS = SOLVE_PHASE_PATHS + ("setup", "refresh")


def _modeled_totals(log, machine, extra=None):
    """The modeled fingerprint of one path run — must not depend on the mode."""
    out = {
        "records": len(log.records),
        "flops": sum(r.flops for r in log.records),
        "bytes_read": sum(r.bytes_read for r in log.records),
        "bytes_written": sum(r.bytes_written for r in log.records),
        "branches": sum(r.branches for r in log.records),
        "modeled_seconds": machine.log_time(log),
    }
    if extra:
        out.update(extra)
    return out


def _time(body, reps):
    """Best-of-``reps`` wall time of ``body`` (ignoring its return value)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - t0)
    return best


def _build_paths(smoke):
    """Construct the benchmark paths; returns ``{name: run_fn}``.

    Each ``run_fn()`` executes the path once under a fresh collector and
    returns ``(modeled_totals, body)`` where ``body`` is the timeable
    closure (state already warmed so lazy plan caches do not pollute the
    timing of either mode).
    """
    from repro.amg import build_hierarchy
    from repro.amg.solver import AMGSolver
    from repro.bench import machine_for
    from repro.config import single_node_config
    from repro.perf import collect
    from repro.serve import ServiceConfig, SolveService, build, named_workload
    from repro.serve.workload import PROBLEM_BUILDERS

    size = 8 if smoke else 14
    k = 4 if smoke else 8
    config = single_node_config(True)
    machine = machine_for(config)

    def problem():
        A = PROBLEM_BUILDERS["lap3d27g"](size)
        rng = np.random.default_rng(7)
        b = rng.standard_normal(A.nrows)
        return A, b

    def path_solve():
        A, b = problem()
        s = AMGSolver(config)
        s.setup(A)
        body = lambda: s.solve(b, tol=1e-8)
        with collect() as log:
            res = body()
        return _modeled_totals(log, machine,
                               {"iterations": res.iterations}), body

    def path_solve_many():
        A, b = problem()
        rng = np.random.default_rng(11)
        B = rng.standard_normal((A.nrows, k))
        s = AMGSolver(config)
        s.setup(A)
        body = lambda: s.solve_many(B, tol=1e-8)
        with collect() as log:
            results = body()
        return _modeled_totals(log, machine, {
            "iterations": sum(r.iterations for r in results)}), body

    def path_serve():
        spec = named_workload("tiny", seed=0)
        svc_config = ServiceConfig(max_batch=k)

        def body():
            service = SolveService(svc_config)
            return service.run_workload(build(spec))

        with collect() as log:
            results = body()
        return _modeled_totals(log, machine, {
            "requests": len(results),
            "statuses": sorted(r.status for r in results)}), body

    def path_setup():
        A, _ = problem()
        body = lambda: build_hierarchy(A, config)
        with collect() as log:
            body()
        return _modeled_totals(log, machine), body

    def path_refresh():
        A, _ = problem()
        steps = [A.data * (1.0 + 0.02 * t) for t in range(1, 4)]
        h = build_hierarchy(A, config, capture_plan=True)

        def body():
            from repro.sparse import CSRMatrix

            cur = h
            for data in steps:
                cur = cur.refresh(CSRMatrix(
                    A.shape, A.indptr, A.indices, data))
            return cur

        with collect() as log:
            body()
        return _modeled_totals(log, machine), body

    return {
        "solve": path_solve,
        "solve_many": path_solve_many,
        "serve": path_serve,
        "setup": path_setup,
        "refresh": path_refresh,
    }


def run(smoke=False, reps=None) -> dict:
    """Time every path under both modes; assert modeled bit-identity."""
    reps = reps if reps is not None else (1 if smoke else 3)
    prev = os.environ.get("REPRO_SOLVEPLAN")
    modeled = {}
    wall = {"on": {}, "off": {}}
    try:
        for mode in ("on", "off"):
            os.environ["REPRO_SOLVEPLAN"] = mode
            paths = _build_paths(smoke)
            for name in ALL_PATHS:
                totals, body = paths[name]()
                if name in modeled:
                    if modeled[name] != totals:
                        raise AssertionError(
                            f"modeled outputs differ between plan modes for "
                            f"path {name!r}:\n  on : {modeled[name]}\n"
                            f"  off: {totals}")
                else:
                    modeled[name] = totals
                wall[mode][name] = _time(body, reps)
    finally:
        if prev is None:
            os.environ.pop("REPRO_SOLVEPLAN", None)
        else:
            os.environ["REPRO_SOLVEPLAN"] = prev

    per_path = {
        name: {
            "wall_on_seconds": wall["on"][name],
            "wall_off_seconds": wall["off"][name],
            "speedup": wall["off"][name] / wall["on"][name],
        }
        for name in ALL_PATHS
    }
    agg_on = sum(wall["on"][p] for p in SOLVE_PHASE_PATHS)
    agg_off = sum(wall["off"][p] for p in SOLVE_PHASE_PATHS)
    return {
        "smoke": smoke,
        "reps": reps,
        "solve_phase_paths": list(SOLVE_PHASE_PATHS),
        "modeled": modeled,
        "modeled_identical": True,   # run() raises otherwise
        "paths": per_path,
        "aggregate": {
            "wall_on_seconds": agg_on,
            "wall_off_seconds": agg_off,
            "speedup": agg_off / agg_on,
        },
    }


def modeled_view(res: dict) -> dict:
    """The deterministic subset: everything except wall-clock numbers."""
    return {
        "smoke": res["smoke"],
        "solve_phase_paths": res["solve_phase_paths"],
        "modeled": res["modeled"],
        "modeled_identical": res["modeled_identical"],
    }


def _report(res: dict) -> str:
    from repro.perf import format_table

    rows = []
    for name in ALL_PATHS:
        p = res["paths"][name]
        tag = "solve-phase" if name in SOLVE_PHASE_PATHS else "setup-phase"
        rows.append([
            name, tag,
            f"{p['wall_off_seconds'] * 1e3:.1f} ms",
            f"{p['wall_on_seconds'] * 1e3:.1f} ms",
            f"{p['speedup']:.2f}x",
        ])
    a = res["aggregate"]
    rows.append(["aggregate (solve-phase)", "",
                 f"{a['wall_off_seconds'] * 1e3:.1f} ms",
                 f"{a['wall_on_seconds'] * 1e3:.1f} ms",
                 f"{a['speedup']:.2f}x"])
    table = format_table(
        ["path", "kind", "plan off", "plan on", "off/on"],
        rows,
        title="Wall-clock: planned solve schedules vs per-sweep re-derivation",
    )
    return "\n".join([
        table,
        "",
        f"modeled outputs bit-identical across modes: "
        f"{res['modeled_identical']}",
    ])


if __name__ == "__main__":
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="wall-clock benchmark of the SolvePlan layer")
    parser.add_argument("--smoke", action="store_true",
                        help="small problems, single rep (CI)")
    parser.add_argument("--reps", type=int, default=None,
                        help="timing repetitions per path (best-of)")
    parser.add_argument("--json", metavar="PATH",
                        help="write full results (incl. wall clock) to PATH")
    parser.add_argument("--modeled-json", metavar="PATH",
                        help="write only the deterministic modeled fields")
    args = parser.parse_args()

    result = run(smoke=args.smoke, reps=args.reps)
    if args.json:
        Path(args.json).write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n")
    if args.modeled_json:
        Path(args.modeled_json).write_text(
            json.dumps(modeled_view(result), indent=2, sort_keys=True) + "\n")
    if not args.json and not args.modeled_json and not args.smoke:
        # Seed the perf trajectory: the default run records its numbers.
        out = Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"
        out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(_report(result))
