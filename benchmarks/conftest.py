"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table/figure of the paper: it prints
the rows (run pytest with ``-s`` to see them live) *and* writes them to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can quote them.  The
pytest-benchmark fixture wraps one representative kernel per file so
``pytest benchmarks/ --benchmark-only`` also reports wall-clock timings of
the Python vehicle (which are *not* the paper's numbers — modeled times
are; see DESIGN.md §2).
"""

from __future__ import annotations

import os
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
    return text


def tick(benchmark, fn=None):
    """Register the test with pytest-benchmark (so ``--benchmark-only``
    still runs every figure-regeneration test) by timing *fn* once —
    a representative sub-piece when provided, else a no-op marker."""
    benchmark.pedantic(fn if fn is not None else (lambda: None),
                       rounds=1, iterations=1)
