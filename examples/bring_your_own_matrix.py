#!/usr/bin/env python
"""Bring your own matrix: MatrixMarket / NPZ / COO workflows.

Shows the three ways to get an operator into the solver:
  1. assemble from COO triplets (e.g. from your own discretization);
  2. load a MatrixMarket file (the format the UF/SuiteSparse collection
     ships — drop in the paper's *actual* Table 2 matrices if you have
     them);
  3. fast NPZ round-trips for generated problems.

Run:  python examples/bring_your_own_matrix.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import AMGSolver, single_node_config
from repro.problems import laplace_3d_7pt
from repro.sparse import (
    CSRMatrix,
    load_matrix_market,
    load_npz,
    save_matrix_market,
    save_npz,
)
from repro.sparse.spmv import spmv


def assemble_from_coo() -> CSRMatrix:
    """A 1-D reaction-diffusion operator assembled from triplets."""
    n = 400
    rows, cols, vals = [], [], []
    for i in range(n):
        rows.append(i)
        cols.append(i)
        vals.append(2.0 + 0.1)  # diffusion + reaction
        for j in (i - 1, i + 1):
            if 0 <= j < n:
                rows.append(i)
                cols.append(j)
                vals.append(-1.0)
    return CSRMatrix.from_coo(
        (n, n), np.array(rows), np.array(cols), np.array(vals)
    )


def main() -> None:
    # -- 1. from COO ---------------------------------------------------------
    A = assemble_from_coo()
    solver = AMGSolver(single_node_config())
    solver.setup(A)
    b = np.ones(A.nrows)
    res = solver.solve(b, tol=1e-10)
    print(f"COO-assembled operator: n={A.nrows}, "
          f"{res.iterations} iterations, converged={res.converged}")

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # -- 2. MatrixMarket round-trip --------------------------------------
        mtx = tmp / "operator.mtx"
        save_matrix_market(mtx, A, comment="1-D reaction-diffusion demo")
        B = load_matrix_market(mtx)
        print(f"MatrixMarket round-trip: {mtx.name}, "
              f"identical={B.allclose(A)}")

        # To run on a real UF matrix instead (e.g. thermal2.mtx downloaded
        # from SuiteSparse), just point load_matrix_market at it:
        #   A = load_matrix_market("thermal2.mtx")

        # -- 3. NPZ for generated problems ------------------------------------
        big = laplace_3d_7pt(16)
        npz = tmp / "lap3d.npz"
        save_npz(npz, big)
        big2 = load_npz(npz)
        solver = AMGSolver(single_node_config())
        solver.setup(big2)
        b = np.random.default_rng(0).standard_normal(big2.nrows)
        res = solver.solve(b, tol=1e-7)
        err = np.linalg.norm(b - spmv(big2, res.x)) / np.linalg.norm(b)
        print(f"NPZ-loaded 3-D Laplacian: n={big2.nrows}, "
              f"{res.iterations} iterations, relres={err:.1e}")


if __name__ == "__main__":
    main()
