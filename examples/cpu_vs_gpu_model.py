#!/usr/bin/env python
"""HYPRE_opt (Haswell) vs AmgX (K40c) — the paper's headline comparison.

Runs the same classical-AMG algorithms under the two machine models and
the two smoothing regimes (14 hybrid blocks vs GPU CTA-granularity) and
prints the setup/solve/total comparison of §5.2: despite 4.6x the STREAM
bandwidth, the GPU loses the solve phase on convergence and per-kernel
efficiency.

Run:  python examples/cpu_vs_gpu_model.py
"""

from repro.bench import run_amgx, run_single_node
from repro.config import single_node_config
from repro.problems import generate


def main() -> None:
    print("STREAM bandwidth: Haswell socket 54 GB/s vs K40c 249 GB/s — "
          "yet (paper §5.2):\n")
    header = (f"{'matrix':<14} {'cfg':<10} {'iters':>5} {'setup':>9} "
              f"{'solve':>9} {'total':>9}")
    for name in ("lap2d_2000", "atmosmodd", "thermal2"):
        A, meta = generate(name, scale=96)
        opt = run_single_node(
            A,
            single_node_config(True, strength_threshold=meta.strength_threshold),
            label="HYPRE_opt", name=name,
        )
        amgx = run_amgx(A, name=name)
        print(header)
        for r in (opt, amgx):
            print(f"{name:<14} {r.config_label:<10} {r.iterations:>5} "
                  f"{r.setup_time * 1e3:>7.2f}ms {r.solve_time * 1e3:>7.2f}ms "
                  f"{r.total_time * 1e3:>7.2f}ms")
        print(f"{'':14} -> opt is {amgx.total_time / opt.total_time:.2f}x "
              "faster in total "
              f"(solve {amgx.solve_time / opt.solve_time:.2f}x, "
              f"per-iteration "
              f"{amgx.time_per_iteration / opt.time_per_iteration:.2f}x)\n")


if __name__ == "__main__":
    main()
