#!/usr/bin/env python
"""Weak scaling with the simulated distributed solver (§4, Fig. 6).

Grows a 3-D 27-point Laplacian with the rank count (constant rows per
rank, 2 ranks per node like the Endeavor cluster) and reports, per node
count: modeled setup/solve time on the Haswell+InfiniBand models, the
iteration count, and the communication volume — the quantities behind
Fig. 6's panels.

Run:  python examples/distributed_weak_scaling.py
"""

import numpy as np

from repro.bench import RANKS_PER_NODE, run_distributed
from repro.config import multi_node_config
from repro.problems import laplace_3d_27pt


def main() -> None:
    edge = 6  # rows per rank = edge^3 (the paper uses 96^3; DESIGN.md §2)
    config = multi_node_config("ei")
    print(f"{'nodes':>5} {'ranks':>5} {'rows':>8} {'setup[ms]':>10} "
          f"{'solve[ms]':>10} {'iters':>5} {'comm[KB]':>9} {'MPI%':>5}")
    for nodes in (1, 2, 4, 8, 16):
        nranks = nodes * RANKS_PER_NODE
        A = laplace_3d_27pt(edge, edge, edge * nranks)
        sizes = np.full(nranks, edge**3, dtype=np.int64)
        r = run_distributed(A, config, nodes, label="ei", rank_sizes=sizes,
                            tol=1e-7)
        mpi_share = 100 * r.solve_comm / r.solve_time
        print(f"{nodes:>5} {nranks:>5} {A.nrows:>8} "
              f"{r.setup_time * 1e3:>10.3f} {r.solve_time * 1e3:>10.3f} "
              f"{r.iterations:>5} {r.comm_volume / 1e3:>9.1f} "
              f"{mpi_share:>5.1f}")
    print("\nIdeal weak scaling would keep the times flat; the drift is the "
          "communication share growing with the machine — Fig. 6's story.")


if __name__ == "__main__":
    main()
