#!/usr/bin/env python
"""A guided tour of the paper's node-level optimizations (§3).

For one matrix, runs the individual kernels in their baseline and
optimized forms and prints the counted work each optimization removes —
flops for the RAP fusion (Fig. 1), branches for the sparse accumulator and
hybrid GS (Fig. 2), and memory traffic for the kept transpose and the
identity-block grid transfers.

Run:  python examples/optimization_tour.py
"""

import numpy as np

from repro.amg import (
    HybridGSSmoother,
    extended_i_interpolation,
    pmis,
    strength_matrix,
)
from repro.perf import HaswellModel, collect
from repro.problems import laplace_3d_7pt
from repro.sparse import (
    fusion_flop_counts,
    spgemm,
    spgemm_numeric,
    spgemm_symbolic,
    spmv,
    spmv_transposed,
    transpose,
)


def main() -> None:
    A = laplace_3d_7pt(14)
    S = strength_matrix(A, 0.25, 0.8)
    cf = pmis(S, seed=1)
    P = extended_i_interpolation(A, S, cf)
    R = transpose(P)
    machine = HaswellModel()
    print(f"matrix: n = {A.nrows}, nnz = {A.nnz}; "
          f"coarse points: {(cf > 0).sum()}")

    # -- Fig. 1: RAP fusion strategies ---------------------------------------
    fc = fusion_flop_counts(R, A, P)
    print("\n[RAP fusion, Fig. 1]")
    print(f"  Fig. 1a (ours)  : {fc['fused_a']:.3g} flops")
    print(f"  Fig. 1b (HYPRE) : {fc['hypre_b']:.3g} flops "
          f"({fc['ratio']:.2f}x more; paper average 1.73x)")

    # -- sparse accumulator branches ------------------------------------------
    with collect() as full:
        B = spgemm(R, A)
    plan = spgemm_symbolic(R, A)
    with collect() as reuse:
        spgemm_numeric(plan, R, A)
    print("\n[sparse accumulation, §3.1.1]")
    print(f"  full product      : {full.total('branches'):.3g} branches")
    print(f"  pattern reuse     : {reuse.total('branches'):.3g} branches "
          "(the marker-array test disappears)")

    # -- the kept transpose ----------------------------------------------------
    r = np.random.default_rng(0).standard_normal(A.nrows)
    with collect() as base_log:
        spmv_transposed(P, r[: P.nrows], materialize=True)
    with collect() as opt_log:
        spmv(R, r[: P.nrows], kernel="spmv.restrict")
    t_base = machine.log_time(base_log)
    t_opt = machine.log_time(opt_log)
    print("\n[restriction, §3.2]")
    print(f"  transpose per restriction : {t_base * 1e6:8.1f} us (modeled)")
    print(f"  keep R = P^T from setup   : {t_opt * 1e6:8.1f} us "
          f"({t_base / t_opt:.1f}x)")

    # -- hybrid GS branch removal ----------------------------------------------
    b = np.ones(A.nrows)
    for optimized, label in ((False, "Fig. 2a (branchy)"),
                             (True, "Fig. 2b (partitioned)")):
        sm = HybridGSSmoother(A, nthreads=14, cf_marker=cf,
                              optimized=optimized)
        x = np.zeros(A.nrows)
        with collect() as log:
            sm.presmooth(x, b)
        t = machine.log_time(log)
        print(f"\n[hybrid GS, {label}]")
        print(f"  branches {log.total('branches'):10.3g}   "
              f"modeled sweep {t * 1e6:.1f} us")


if __name__ == "__main__":
    main()
