#!/usr/bin/env python
"""Quickstart: solve a Poisson problem with the optimized AMG solver.

Covers the core workflow:
  1. build (or bring) a sparse matrix as a ``repro.sparse.CSRMatrix``;
  2. run the AMG setup phase (Table 3 configuration);
  3. solve standalone, or use AMG as an FGMRES preconditioner;
  4. inspect the instrumentation: modeled Haswell times per phase.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.amg import AMGSolver
from repro.config import single_node_config
from repro.krylov import fgmres
from repro.perf import HaswellModel, collect
from repro.problems import laplace_2d_5pt
from repro.sparse.spmv import spmv


def main() -> None:
    # -- 1. a problem: 2-D Poisson on a 96x96 grid --------------------------
    A = laplace_2d_5pt(96)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.nrows)
    print(f"problem: n = {A.nrows}, nnz = {A.nnz}")

    # -- 2. AMG setup, instrumented -----------------------------------------
    config = single_node_config(optimized=True)
    solver = AMGSolver(config)
    with collect() as setup_log:
        hierarchy = solver.setup(A)
    print(f"hierarchy: {hierarchy.num_levels} levels, "
          f"operator complexity {hierarchy.operator_complexity():.2f}")
    for l, (n, nnz) in enumerate(hierarchy.level_sizes()):
        print(f"  level {l}: {n:>6} rows, {nnz:>7} nnz")

    # -- 3a. standalone AMG solve (Table 3 style) ----------------------------
    with collect() as solve_log:
        result = solver.solve(b, tol=1e-7)
    res = np.linalg.norm(b - spmv(A, result.x)) / np.linalg.norm(b)
    print(f"\nstandalone AMG: {result.iterations} V-cycles, "
          f"relative residual {res:.2e}")

    # -- 3b. AMG-preconditioned FGMRES (Table 4 style) -----------------------
    k = fgmres(A, b, precondition=solver.precondition, tol=1e-7)
    print(f"FGMRES + AMG:   {k.iterations} iterations, converged={k.converged}")

    # -- 4. what would this cost on the paper's Haswell? ---------------------
    machine = HaswellModel()
    print("\nmodeled phase times (one socket Xeon E5-2697 v3):")
    for phase, t in sorted(machine.phase_times(setup_log).items()):
        print(f"  setup {phase:<18} {t * 1e3:8.3f} ms")
    for phase, t in sorted(machine.phase_times(solve_log).items()):
        print(f"  solve {phase:<18} {t * 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
