#!/usr/bin/env python
"""Quickstart: solve a Poisson problem with the optimized AMG solver.

Covers the core workflow through the top-level ``repro`` facade:
  1. build (or bring) a sparse matrix — a ``repro.sparse.CSRMatrix``, a
     ``scipy.sparse`` matrix, or a dense array all work;
  2. one-call solve (``repro.solve``), or ``repro.setup`` once and reuse
     the hierarchy for many right-hand sides;
  3. batched multi-RHS solves (``solve_many``) that stream the hierarchy
     once for a whole block;
  4. inspect the instrumentation: modeled Haswell times per phase.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.perf import HaswellModel, collect
from repro.problems import laplace_2d_5pt
from repro.sparse.spmv import spmv


def main() -> None:
    # -- 1. a problem: 2-D Poisson on a 96x96 grid --------------------------
    A = laplace_2d_5pt(96)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.nrows)
    print(f"problem: n = {A.nrows}, nnz = {A.nnz}")

    # -- 2. setup once, solve many (instrumented) ---------------------------
    with collect() as setup_log:
        handle = repro.setup(A)          # Table 3 configuration, all opts on
    hierarchy = handle.hierarchy
    print(f"hierarchy: {hierarchy.num_levels} levels, "
          f"operator complexity {hierarchy.operator_complexity():.2f}")
    for l, (n, nnz) in enumerate(hierarchy.level_sizes()):
        print(f"  level {l}: {n:>6} rows, {nnz:>7} nnz")

    # -- 3a. standalone AMG solve (Table 3 style) ----------------------------
    with collect() as solve_log:
        result = handle.solve(b, tol=1e-7)
    res = np.linalg.norm(b - spmv(A, result.x)) / np.linalg.norm(b)
    print(f"\nstandalone AMG: {result.iterations} V-cycles, "
          f"relative residual {res:.2e}")

    # -- 3b. AMG-preconditioned FGMRES (Table 4 style) -----------------------
    k = handle.solve(b, method="fgmres", tol=1e-7)
    print(f"FGMRES + AMG:   {k.iterations} iterations, converged={k.converged}")

    # One-call form (repeats hit the hierarchy cache, so setup is free):
    one_shot = repro.solve(A, b)
    assert one_shot.iterations == result.iterations

    # -- 3c. a block of right-hand sides through the batched path ------------
    B = rng.standard_normal((A.nrows, 8))
    with collect() as batch_log:
        results = handle.solve_many(B)   # hierarchy streamed once per cycle
    machine = HaswellModel()
    t_solo = machine.log_time(solve_log)
    t_batch = machine.log_time(batch_log) / B.shape[1]
    print(f"multi-RHS (k=8): {results[0].iterations} V-cycles/RHS, modeled "
          f"{t_batch * 1e3:.3f} ms per RHS vs {t_solo * 1e3:.3f} ms solo "
          f"({t_solo / t_batch:.2f}x)")

    # -- 4. what would this cost on the paper's Haswell? ---------------------
    print("\nmodeled phase times (one socket Xeon E5-2697 v3):")
    for phase, t in sorted(machine.phase_times(setup_log).items()):
        print(f"  setup {phase:<18} {t * 1e3:8.3f} ms")
    for phase, t in sorted(machine.phase_times(solve_log).items()):
        print(f"  solve {phase:<18} {t * 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
