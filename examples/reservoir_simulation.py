#!/usr/bin/env python
"""Reservoir pressure solve — the paper's strong-scaling workload (§5.1.2).

Builds an elliptic pressure equation over a lognormal permeability field
with several decades of contrast (the sequential-Gaussian-simulation
surrogate of DESIGN.md §2), solves it with AMG-preconditioned Flexible
GMRES at the paper's strong-scaling tolerance (1e-5), and compares the
three Table 4 interpolation schemes: ei(4), 2s-ei(444), and mp.

Run:  python examples/reservoir_simulation.py
"""

import numpy as np

from repro.amg import AMGSolver
from repro.config import multi_node_config
from repro.krylov import fgmres
from repro.problems import reservoir_problem
from repro.sparse.spmv import spmv


def main() -> None:
    nx, ny, nz = 40, 40, 16
    A, b, kappa = reservoir_problem(nx, ny, nz, log10_contrast=5.0, seed=11)
    print(f"reservoir grid {nx}x{ny}x{nz}: n = {A.nrows}, "
          f"permeability contrast {kappa.max() / kappa.min():.1e}")

    for scheme in ("ei", "2s-ei", "mp"):
        config = multi_node_config(scheme)
        solver = AMGSolver(config)
        hierarchy = solver.setup(A)
        result = fgmres(A, b, precondition=solver.precondition, tol=1e-5)
        res = np.linalg.norm(b - spmv(A, result.x)) / np.linalg.norm(b)
        print(
            f"  {scheme:>7}: {hierarchy.num_levels} levels, "
            f"opcx {hierarchy.operator_complexity():.2f}, "
            f"{result.iterations:>3} FGMRES iterations, "
            f"relres {res:.1e}"
        )

    # The well pair drives a pressure dipole; sanity-check the physics.
    config = multi_node_config("ei")
    solver = AMGSolver(config)
    solver.setup(A)
    result = fgmres(A, b, precondition=solver.precondition, tol=1e-8)
    p = result.x.reshape(nx, ny, nz)
    inj = p[nx // 8, ny // 8, nz // 2]
    prod = p[7 * nx // 8, 7 * ny // 8, nz // 2]
    print(f"\npressure at injector {inj:+.3e}, at producer {prod:+.3e} "
          "(expected: opposite signs)")
    assert inj > 0 > prod


if __name__ == "__main__":
    main()
