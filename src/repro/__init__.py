"""repro — reproduction of "High-Performance Algebraic Multigrid Solver
Optimized for Multi-Core Based Distributed Parallel Systems" (SC'15).

A from-scratch classical AMG (BoomerAMG-style) library with every
node-level and multi-node optimization of the paper implemented as a
switchable flag, running on an instrumented simulated-parallel substrate
(see DESIGN.md).

Quick start::

    import repro
    from repro.problems import laplace_2d_5pt

    A = laplace_2d_5pt(96)
    result = repro.solve(A, b)              # AMG, Table 3 defaults

    handle = repro.setup(A)                 # reusable hierarchy
    results = handle.solve_many(B)          # batched (n, k) block of RHS

``repro.solve``/``repro.setup`` also accept ``scipy.sparse`` matrices and
dense arrays; ``method="fgmres"``/``"cg"`` selects an AMG-preconditioned
Krylov solve.  The class-based API (below) remains for full control::

    from repro import AMGSolver, single_node_config

    solver = AMGSolver(single_node_config())
    solver.setup(A)
    result = solver.solve(b, tol=1e-7)

Subpackages
-----------
``repro.sparse``
    CSR substrate: SpMV/SpGEMM/transpose/RAP kernels (§3.1).
``repro.amg``
    Strength, PMIS, interpolation operators, smoothers, hierarchy (§2–3).
``repro.krylov``
    FGMRES / GMRES / CG (Table 4's outer solver).
``repro.dist``
    Simulated distributed-memory layer: ParCSR, halo exchange, renumbering,
    distributed AMG (§4).
``repro.faults``
    Fault-injection harness: seeded comm-fault plans, retry/backoff
    delivery, residual guards (docs/robustness.md).
``repro.analysis``
    Invariant sanitizers (``REPRO_CHECK`` / ``--check``), comm-trace
    replay, and the repo-convention AST lint (docs/analysis.md).
``repro.serve``
    Batching solve service: admission control, micro-batch coalescing on
    the hierarchy fingerprint, service metrics, and the sharded multi-rank
    tier with consistent-hash routing (docs/serving.md).
``repro.perf``
    Instrumentation + Haswell/K40c/InfiniBand models (DESIGN.md §2).
``repro.problems``
    Workload generators (Table 2 surrogates, AMG2013, reservoir GRF).
``repro.bench``
    Drivers that regenerate the paper's tables and figures.
"""

from .amg import AMGSolver, SolveResult, build_hierarchy, vcycle
from .analysis import InvariantViolation, get_check_level, set_check_level
from .api import (
    SolveOptions,
    SolverHandle,
    fingerprint,
    pattern_fingerprint,
    setup,
    solve,
    solve_many,
)
from .results import ServiceResult
from .serve import ServiceConfig, ShardedSolveService, SolveService
from .faults import FaultEvent, FaultPlan, RetryPolicy, ShardFaultPlan
from .config import (
    AMGConfig,
    HYPRE_BASE_FLAGS,
    HYPRE_OPT_FLAGS,
    OptimizationFlags,
    amgx_config,
    multi_node_config,
    single_node_config,
)
from .krylov import fgmres, gmres, pcg
from .sparse import CSRMatrix

__version__ = "1.0.0"

#: Kept sorted (tests/test_shard.py pins this) so the public surface is
#: scannable and additions show up as clean one-line diffs.
__all__ = [
    "AMGConfig",
    "AMGSolver",
    "CSRMatrix",
    "FaultEvent",
    "FaultPlan",
    "HYPRE_BASE_FLAGS",
    "HYPRE_OPT_FLAGS",
    "InvariantViolation",
    "OptimizationFlags",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceResult",
    "ShardFaultPlan",
    "ShardedSolveService",
    "SolveOptions",
    "SolveResult",
    "SolveService",
    "SolverHandle",
    "__version__",
    "amgx_config",
    "build_hierarchy",
    "fgmres",
    "fingerprint",
    "get_check_level",
    "gmres",
    "multi_node_config",
    "pattern_fingerprint",
    "pcg",
    "set_check_level",
    "setup",
    "single_node_config",
    "solve",
    "solve_many",
    "vcycle",
]
