"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Generate a problem, run AMG (standalone or FGMRES-preconditioned),
    print convergence and modeled Haswell times.  ``--rhs K`` (K > 1) solves
    a block of K random right-hand sides through the batched multi-RHS path
    (one hierarchy, blocked kernels) and reports the modeled solve time
    per right-hand side.  ``--ranks N`` runs the distributed solver on N
    simulated ranks; ``--faults PLAN.json`` additionally injects the
    communication faults described by the plan (see docs/robustness.md)
    and prints a fault/retry summary.
``info``
    Print the hierarchy a configuration produces for a problem.
``suite``
    List the Table 2 surrogate suite.
``serve-bench``
    Replay a seeded workload (a named preset or a WorkloadSpec JSON file)
    through the batching solve service (see docs/serving.md) and print the
    combined service/kernel metrics report.  ``--ranks N`` shards the
    service across N modeled ranks behind the consistent-hash router
    (``--replicas``/``--shed-depth``/``--autoscale`` configure the tier)
    and prints the fleet report instead.  ``--chaos PLAN.json`` injects
    seeded rank failures (crash/flap/slow windows) through the fault-
    tolerant router — health-tracked failover, hedged retries via
    ``--hedge-delay``, cache re-warm on rejoin — and appends a fault
    lifecycle section to the report.  ``--json PATH`` additionally
    writes the deterministic metrics snapshot (bit-identical across runs
    of the same workload and seed, with or without chaos; CI diffs it).
    Under ``--check cheap`` (or stricter) the service also records the
    ticket-lifecycle event log and runs the happens-before checker on it
    after the workload drains (see docs/analysis.md).
``verify-comm``
    Build a distributed hierarchy on N simulated ranks and *statically*
    verify its communication schedule — no solve is executed.  The
    verifier reconstructs every level's send/recv graphs from the frozen
    halos and colmaps, cross-checks them against independently recomputed
    patterns, runs the compiled per-rank message programs through a
    rendezvous deadlock detector, and prints the per-level message
    count/volume matrix.  ``--json PATH`` writes the schedule snapshot
    (deterministic; CI diffs it); exits non-zero on any finding.

Examples::

    python -m repro solve --problem lap3d27 --size 16 --scheme ei
    python -m repro solve --problem lap3d27 --size 16 --rhs 8
    python -m repro solve --problem lap3d27 --size 12 --ranks 8
    python -m repro solve --problem lap3d27 --size 12 --ranks 8 --faults plan.json
    python -m repro solve --problem reservoir --size 24 --baseline
    python -m repro info --problem lap2d --size 64
    python -m repro suite
    python -m repro serve-bench --workload tiny --seed 0
    python -m repro serve-bench --workload fleet --ranks 4 --replicas 2
    python -m repro serve-bench --workload tiny --ranks 4 --chaos chaos.json
    python -m repro serve-bench --workload W.json --k 8 --json metrics.json
    python -m repro verify-comm --problem lap3d27 --size 12 --ranks 8
    python -m repro verify-comm --problem lap2d --size 48 --ranks 4 --json s.json
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

import numpy as np

from .amg import AMGSolver
from .config import multi_node_config, single_node_config
from .krylov import fgmres
from .perf import HaswellModel, collect
from .problems import (
    TABLE2_SUITE,
    generate,
    laplace_2d_5pt,
    laplace_3d_7pt,
    laplace_3d_27pt,
    reservoir_problem,
    suite_names,
)
from .sparse.spmv import spmv


def _build_problem(name: str, size: int, seed: int):
    if name == "lap2d":
        A = laplace_2d_5pt(size)
    elif name == "lap3d7":
        A = laplace_3d_7pt(size)
    elif name == "lap3d27":
        A = laplace_3d_27pt(size)
    elif name == "reservoir":
        A, b, _ = reservoir_problem(size, size, max(size // 2, 2), seed=seed)
        return A, b
    elif name in suite_names():
        A, _ = generate(name, scale=64)
    else:
        raise SystemExit(
            f"unknown problem {name!r}; pick from lap2d, lap3d7, lap3d27, "
            f"reservoir, or a Table 2 name: {', '.join(suite_names())}"
        )
    b = np.random.default_rng(seed).standard_normal(A.nrows)
    return A, b


def _config(args):
    if args.scheme:
        cfg = multi_node_config(args.scheme, optimized=not args.baseline,
                                nthreads=args.threads)
    else:
        cfg = single_node_config(optimized=not args.baseline,
                                 strength_threshold=args.theta,
                                 nthreads=args.threads)
    if args.smoother:
        cfg = replace(cfg, smoother=args.smoother)
    if args.cycle:
        cfg = replace(cfg, cycle_type=args.cycle)
    return cfg


def _topology(args, nranks: int):
    """The ``--topology ppn=N`` knob as a NodeTopology (None = flat)."""
    spec = getattr(args, "topology", None)
    if not spec:
        return None
    from .topo import NodeTopology

    return NodeTopology.parse(spec, nranks)


def _solve_distributed(args, A, b, cfg) -> int:
    """``--ranks``/``--faults`` path: distributed AMG, optionally faulty."""
    from .dist import DistAMGSolver, ParCSRMatrix, ParVector, RowPartition, SimComm
    from .perf import FDRInfinibandModel

    nranks = args.ranks if args.ranks > 0 else 4
    plan = None
    if args.faults:
        from .faults import FaultPlan
        from .faults.comm import FaultyComm

        plan = FaultPlan.from_json_file(args.faults)
        comm = FaultyComm(nranks, plan)
    else:
        comm = SimComm(nranks)

    part = RowPartition.uniform(A.nrows, nranks)
    Ad = ParCSRMatrix.from_global(A, part)
    bd = ParVector.from_global(b, part)
    topo = _topology(args, nranks)
    net = topo.network(FDRInfinibandModel()) if topo else FDRInfinibandModel()
    solver = DistAMGSolver(comm, cfg, topology=topo, net=net)
    machine = HaswellModel(threads=args.threads)

    with collect() as setup_log:
        solver.setup(Ad)
    t_setup = machine.log_time(setup_log) / nranks
    t_comm_setup = comm.comm_time(net)
    comm.clear_logs()

    with collect() as solve_log:
        res = solver.solve(bd, tol=args.tol)
    t_solve = machine.log_time(solve_log) / nranks
    t_comm_solve = comm.comm_time(net)

    x = res.x.to_global()
    true_res = np.linalg.norm(b - spmv(A, x)) / np.linalg.norm(b)
    print(f"problem       : {args.problem}  (n={A.nrows}, nnz={A.nnz}, "
          f"ranks={nranks})")
    print(f"configuration : {'baseline' if args.baseline else 'optimized'}"
          f", cycle={cfg.cycle_type}, smoother={cfg.smoother}"
          f"{', faults=' + args.faults if args.faults else ''}")
    print(f"hierarchy     : {solver.hierarchy.num_levels} levels")
    if topo:
        agg = sum(1 for lvl in solver.hierarchy.levels
                  if lvl.halo is not None and lvl.halo.node_aware)
        print(f"topology      : {topo.ppn} ranks/node x {topo.nnodes} "
              f"nodes, node-aware halos on {agg}/"
              f"{solver.hierarchy.num_levels} levels")
    print(f"convergence   : {res.iterations} iterations, "
          f"converged={res.converged}, degraded={res.degraded}, "
          f"true relres={true_res:.2e}")
    print(f"modeled time  : setup {(t_setup + t_comm_setup) * 1e3:.3f} ms, "
          f"solve {(t_solve + t_comm_solve) * 1e3:.3f} ms "
          f"(comm {t_comm_solve * 1e3:.3f} ms)  (Haswell + FDR IB model)")
    if plan is not None:
        from .perf.report import format_fault_summary

        print(format_fault_summary(res.fault_events,
                                   title="fault summary"))
    return 0 if res.converged else 1


def cmd_solve(args) -> int:
    A, b = _build_problem(args.problem, args.size, args.seed)
    cfg = _config(args)
    if args.rhs < 1:
        raise SystemExit("--rhs must be >= 1")
    if args.ranks > 0 or args.faults:
        if args.rhs > 1 or args.krylov:
            raise SystemExit("--ranks/--faults use the distributed V-cycle "
                             "solver; combine with neither --rhs nor --krylov")
        return _solve_distributed(args, A, b, cfg)
    solver = AMGSolver(cfg)
    with collect() as setup_log:
        solver.setup(A)
    machine = HaswellModel(threads=args.threads)
    t_setup = machine.log_time(setup_log)
    print(f"problem       : {args.problem}  (n={A.nrows}, nnz={A.nnz})")
    print(f"configuration : {'baseline' if args.baseline else 'optimized'}"
          f"{' + FGMRES' if args.krylov else ''}"
          f", cycle={cfg.cycle_type}, smoother={cfg.smoother}")
    print(f"hierarchy     : {solver.hierarchy.num_levels} levels, "
          f"operator complexity {solver.operator_complexity:.2f}")

    if args.rhs > 1:
        from .krylov import fgmres_multi

        rng = np.random.default_rng(args.seed)
        B = np.column_stack([b] + [rng.standard_normal(A.nrows)
                                   for _ in range(args.rhs - 1)])
        with collect() as solve_log:
            if args.krylov:
                results = fgmres_multi(
                    A, B, precondition_multi=solver.precondition_multi,
                    tol=args.tol)
            else:
                results = solver.solve_many(B, tol=args.tol)
        t_solve = machine.log_time(solve_log)
        iters = [r.iterations for r in results]
        all_conv = all(r.converged for r in results)
        print(f"convergence   : k={args.rhs} right-hand sides, "
              f"{min(iters)}-{max(iters)} iterations, converged={all_conv}")
        print(f"modeled time  : setup {t_setup * 1e3:.3f} ms, "
              f"batched solve {t_solve * 1e3:.3f} ms "
              f"= {t_solve / args.rhs * 1e3:.3f} ms per RHS  (Haswell model)")
        return 0 if all_conv else 1

    with collect() as solve_log:
        if args.krylov:
            res = fgmres(A, b, precondition=solver.precondition, tol=args.tol)
        else:
            res = solver.solve(b, tol=args.tol)
    true_res = np.linalg.norm(b - spmv(A, res.x)) / np.linalg.norm(b)
    t_solve = machine.log_time(solve_log)
    print(f"convergence   : {res.iterations} iterations, "
          f"converged={res.converged}, true relres={true_res:.2e}")
    print(f"modeled time  : setup {t_setup * 1e3:.3f} ms, "
          f"solve {t_solve * 1e3:.3f} ms  (Haswell model)")
    return 0 if res.converged else 1


def cmd_info(args) -> int:
    A, _ = _build_problem(args.problem, args.size, args.seed)
    solver = AMGSolver(_config(args))
    h = solver.setup(A)
    print(f"{args.problem}: n={A.nrows}, nnz={A.nnz}")
    print(f"{'level':>5} {'rows':>9} {'nnz':>10} {'nnz/row':>8}")
    for l, (n, nnz) in enumerate(h.level_sizes()):
        print(f"{l:>5} {n:>9} {nnz:>10} {nnz / max(n, 1):>8.1f}")
    print(f"operator complexity {h.operator_complexity():.3f}, "
          f"grid complexity {h.grid_complexity():.3f}")
    return 0


def cmd_serve_bench(args) -> int:
    from pathlib import Path

    from .perf.report import format_service_report, format_shard_report
    from .results import SERVICE_STATUSES
    from .serve import (ServiceConfig, ShardedSolveService, SolveService,
                        build, named_workload)
    from .serve.workload import WorkloadSpec

    if Path(args.workload).suffix == ".json":
        spec = WorkloadSpec.from_json_file(args.workload)
        if args.seed is not None:
            from dataclasses import asdict

            spec = WorkloadSpec.from_dict({**asdict(spec), "seed": args.seed})
    else:
        spec = named_workload(args.workload, seed=args.seed)

    plan = None
    if args.chaos:
        from .faults import ShardFaultPlan

        plan = ShardFaultPlan.from_json_file(args.chaos)

    config = ServiceConfig(
        max_queue=args.queue, max_batch=args.k, max_wait=args.max_wait,
        threads=args.threads, ranks=args.ranks,
        replicas=min(args.replicas, args.ranks), shed_depth=args.shed_depth,
        autoscale=args.autoscale, min_ranks=min(args.min_ranks, args.ranks),
        heartbeat_interval=args.heartbeat, hedge_delay=args.hedge_delay)
    # A plain single-rank request is served by SolveService itself so the
    # report (and --json bytes) stay exactly what this command has always
    # produced; any sharded-tier feature routes through the sharded front.
    sharded = (config.ranks > 1 or config.shed_depth is not None
               or config.autoscale or plan is not None)
    service = (ShardedSolveService(config, fault_plan=plan) if sharded
               else SolveService(config))
    results = service.run_workload(build(spec))

    from .analysis import check_event_log, checking
    if checking("cheap"):
        # The drained workload's ticket-lifecycle log must pass the
        # happens-before checks (double completions, slot leaks, lost
        # cancels); at 'off' the log is empty and this is skipped.
        check_event_log(service.events)

    print(f"workload      : {args.workload}  (seed={spec.seed}, "
          f"{spec.requests} requests, rate="
          f"{spec.rate if spec.rate is not None else 'closed'})")
    print(f"service       : k={args.k}, queue={args.queue}, "
          f"max_wait={args.max_wait:g}s"
          + (f", ranks={config.ranks}, replicas={config.replicas}"
             if sharded else ""))
    if sharded:
        print(format_shard_report(service.metrics_snapshot()))
    else:
        print(format_service_report(service.metrics_snapshot()))
    if args.json:
        Path(args.json).write_text(service.metrics_json() + "\n")
        print(f"metrics JSON  : wrote {args.json}")
    ok = all(r is not None and r.status in SERVICE_STATUSES for r in results)
    completed = [r for r in results if r.status == "completed"]
    return 0 if ok and all(r.converged or r.degraded for r in completed) else 1


def cmd_verify_comm(args) -> int:
    from pathlib import Path

    from .analysis.sched import (extract_schedule, format_schedule_report,
                                 scan_schedule, schedule_to_json)
    from .dist import DistAMGSolver, ParCSRMatrix, RowPartition, SimComm

    A, _b = _build_problem(args.problem, args.size, args.seed)
    cfg = _config(args)
    nranks = args.ranks if args.ranks > 0 else 4
    comm = SimComm(nranks)
    part = RowPartition.uniform(A.nrows, nranks)
    Ad = ParCSRMatrix.from_global(A, part)
    topo = _topology(args, nranks)
    solver = DistAMGSolver(comm, cfg, topology=topo)
    solver.setup(Ad)

    sched = extract_schedule(solver.hierarchy)
    findings = scan_schedule(sched)
    print(f"problem       : {args.problem}  (n={A.nrows}, nnz={A.nnz}, "
          f"ranks={nranks})")
    print(f"configuration : {'baseline' if args.baseline else 'optimized'}"
          f", cycle={cfg.cycle_type}, smoother={cfg.smoother}"
          f"{f', topology=ppn={topo.ppn}' if topo else ''}")
    print(format_schedule_report(sched, findings=findings))
    if args.json:
        Path(args.json).write_text(schedule_to_json(sched) + "\n")
        print(f"schedule JSON : wrote {args.json}")
    return 1 if findings else 0


def cmd_suite(_args) -> int:
    print(f"{'name':<16} {'paper rows':>11} {'nnz/row':>8} {'str_thr':>8}")
    for m in TABLE2_SUITE:
        print(f"{m.name:<16} {m.paper_rows:>11} {m.paper_nnz_per_row:>8} "
              f"{m.strength_threshold:>8}")
    return 0


def _common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--problem", default="lap2d")
    p.add_argument("--size", type=int, default=48, help="grid edge length")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--baseline", action="store_true",
                   help="HYPRE_base flags (all optimizations off)")
    p.add_argument("--scheme", choices=["ei", "2s-ei", "mp"], default=None,
                   help="Table 4 multi-node preset instead of Table 3")
    p.add_argument("--smoother", default=None,
                   choices=["hybrid_gs", "lex", "multicolor", "jacobi",
                            "l1_jacobi", "chebyshev"])
    p.add_argument("--cycle", default=None, choices=["V", "W", "F"])
    p.add_argument("--threads", type=int, default=14)
    p.add_argument("--theta", type=float, default=0.25,
                   help="strength threshold")
    p.add_argument("--topology", default=None, metavar="ppn=N",
                   help="model N ranks per node (repro.topo): two-tier "
                        "network pricing and node-aware halo aggregation "
                        "on distributed runs (default: flat network)")
    p.add_argument("--check", default=None, choices=["off", "cheap", "full"],
                   help="run the repro.analysis invariant sanitizers at this "
                        "level (overrides the REPRO_CHECK environment "
                        "variable; default: off)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="run an AMG solve")
    _common(p_solve)
    p_solve.add_argument("--tol", type=float, default=1e-7)
    p_solve.add_argument("--krylov", action="store_true",
                         help="use AMG as FGMRES preconditioner")
    p_solve.add_argument("--rhs", type=int, default=1, metavar="K",
                         help="solve K right-hand sides through the batched "
                              "multi-RHS path (default 1)")
    p_solve.add_argument("--ranks", type=int, default=0, metavar="N",
                         help="run the distributed solver on N simulated "
                              "ranks (default: single-node path)")
    p_solve.add_argument("--faults", default=None, metavar="PLAN.json",
                         help="inject communication faults from a FaultPlan "
                              "JSON file (implies --ranks, default 4)")
    p_solve.set_defaults(func=cmd_solve)

    p_info = sub.add_parser("info", help="print the AMG hierarchy")
    _common(p_info)
    p_info.set_defaults(func=cmd_info)

    p_suite = sub.add_parser("suite", help="list the Table 2 suite")
    p_suite.set_defaults(func=cmd_suite)

    p_serve = sub.add_parser(
        "serve-bench",
        help="replay a seeded workload through the batching solve service")
    p_serve.add_argument("--workload", default="tiny",
                         help="named preset (tiny/small/mixed) or a "
                              "WorkloadSpec JSON file path")
    p_serve.add_argument("--seed", type=int, default=None,
                         help="override the workload seed")
    p_serve.add_argument("--k", type=int, default=8, metavar="K",
                         help="micro-batch cap (default 8)")
    p_serve.add_argument("--queue", type=int, default=64,
                         help="admission queue capacity (default 64)")
    p_serve.add_argument("--max-wait", type=float, default=1e-3,
                         help="micro-batch deadline in modeled seconds "
                              "(default 1e-3)")
    p_serve.add_argument("--threads", type=int, default=14)
    p_serve.add_argument("--ranks", type=int, default=1, metavar="N",
                         help="shard the service across N modeled ranks "
                              "with consistent-hash routing (default 1: "
                              "the plain single-rank service)")
    p_serve.add_argument("--replicas", type=int, default=2, metavar="R",
                         help="candidate ranks per routing key (home + "
                              "R-1 spill targets; default 2, capped at "
                              "--ranks)")
    p_serve.add_argument("--shed-depth", type=int, default=None,
                         metavar="D",
                         help="shed requests at the router when every "
                              "candidate queue is >= D deep (default: "
                              "no shedding)")
    p_serve.add_argument("--autoscale", action="store_true",
                         help="grow/shrink active ranks from queue depth "
                              "(starts at --min-ranks)")
    p_serve.add_argument("--min-ranks", type=int, default=1,
                         help="autoscaler floor (default 1)")
    p_serve.add_argument("--chaos", default=None, metavar="PLAN.json",
                         help="inject the rank failures described by a "
                              "ShardFaultPlan JSON file: health-tracked "
                              "failover, cache re-warm, and a faults "
                              "section in the report (docs/robustness.md)")
    p_serve.add_argument("--hedge-delay", type=float, default=None,
                         metavar="S",
                         help="hedge interactive requests still unresolved "
                              "after S modeled seconds with one duplicate "
                              "on another rank (default: no hedging)")
    p_serve.add_argument("--heartbeat", type=float, default=1e-3,
                         metavar="S",
                         help="health-tracker heartbeat interval in modeled "
                              "seconds (default 1e-3; only meaningful with "
                              "--chaos or --hedge-delay)")
    p_serve.add_argument("--json", default=None, metavar="PATH",
                         help="write the deterministic metrics snapshot "
                              "JSON here")
    p_serve.add_argument("--check", default=None,
                         choices=["off", "cheap", "full"],
                         help="at cheap or stricter, record the ticket-"
                              "lifecycle event log and run the happens-"
                              "before checker after the workload drains "
                              "(overrides REPRO_CHECK; default: off)")
    p_serve.set_defaults(func=cmd_serve_bench)

    p_verify = sub.add_parser(
        "verify-comm",
        help="statically verify a distributed hierarchy's comm schedule")
    _common(p_verify)
    p_verify.add_argument("--ranks", type=int, default=4, metavar="N",
                          help="simulated ranks to build the hierarchy on "
                               "(default 4)")
    p_verify.add_argument("--json", default=None, metavar="PATH",
                          help="write the deterministic schedule snapshot "
                               "JSON here")
    p_verify.set_defaults(func=cmd_verify_comm)

    args = parser.parse_args(argv)
    if getattr(args, "check", None):
        from .analysis import set_check_level

        set_check_level(args.check)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
