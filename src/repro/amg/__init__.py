"""Classical AMG (BoomerAMG-style): the paper's primary contribution.

Setup: strength -> PMIS / aggressive PMIS -> {direct, extended+i, multipass,
2-stage extended+i} interpolation with fused truncation -> Galerkin product.
Solve: V-cycles with C-F hybrid Gauss–Seidel smoothing.
"""

from .cache import (
    DEFAULT_CACHE,
    HierarchyCache,
    fingerprint,
    matrix_fingerprint,
    pattern_fingerprint,
)
from .coarse import CoarseSolver
from .coarsen_rs import rs_coarsening
from .interp_classical import classical_interpolation, classical_numeric
from .cycle import cycle, cycle_multi, fcycle, vcycle, vcycle_multi, wcycle
from .fmg import full_multigrid
from .interp_direct import direct_interpolation, direct_numeric
from .interp_extended import (
    extended_i_interpolation,
    extended_i_numeric,
    extended_i_reference,
)
from .interp_multipass import multipass_interpolation
from .interp_twostage import two_stage_extended_i
from .level import Level
from .pmis import C_PT, F_PT, aggressive_pmis, pmis, random_measures
from .resetup import LevelPlan, PlanBuilder, SetupPlan, refresh_hierarchy
from .setup import Hierarchy, build_hierarchy
from .smoothers import (
    chebyshev_sweep,
    estimate_lambda_max,
    l1_diagonal,
    l1_jacobi_sweep,
    GSSchedule,
    HybridGSSmoother,
    block_of_rows,
    build_gs_schedule,
    greedy_coloring,
    gs_sweep,
    gs_sweep_reference,
    jacobi_sweep,
    multicolor_gs_sweep,
)
from .solver import AMGSolver, SolveResult
from .strength import strength_matrix
from .truncation import truncate_interpolation

__all__ = [
    "DEFAULT_CACHE",
    "HierarchyCache",
    "fingerprint",
    "matrix_fingerprint",
    "pattern_fingerprint",
    "CoarseSolver",
    "rs_coarsening",
    "classical_interpolation",
    "classical_numeric",
    "chebyshev_sweep",
    "estimate_lambda_max",
    "l1_diagonal",
    "l1_jacobi_sweep",
    "vcycle",
    "wcycle",
    "fcycle",
    "cycle",
    "vcycle_multi",
    "cycle_multi",
    "full_multigrid",
    "direct_interpolation",
    "direct_numeric",
    "extended_i_interpolation",
    "extended_i_numeric",
    "extended_i_reference",
    "multipass_interpolation",
    "two_stage_extended_i",
    "Level",
    "C_PT",
    "F_PT",
    "aggressive_pmis",
    "pmis",
    "random_measures",
    "Hierarchy",
    "build_hierarchy",
    "LevelPlan",
    "PlanBuilder",
    "SetupPlan",
    "refresh_hierarchy",
    "GSSchedule",
    "HybridGSSmoother",
    "block_of_rows",
    "build_gs_schedule",
    "greedy_coloring",
    "gs_sweep",
    "gs_sweep_reference",
    "jacobi_sweep",
    "multicolor_gs_sweep",
    "AMGSolver",
    "SolveResult",
    "strength_matrix",
    "truncate_interpolation",
]
