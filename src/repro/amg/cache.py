"""Hierarchy-reuse cache.

AMG setup is the expensive half of the algorithm (Fig. 4: strength,
coarsening, interpolation, and the Galerkin product dominate until the
cycle count grows).  Workloads that solve against the *same* matrix many
times — time stepping with a frozen operator, multiple right-hand sides
arriving one at a time, parameter sweeps over ``b`` — should pay for setup
once.  :class:`HierarchyCache` memoizes built hierarchies keyed by

* a **fingerprint** of the matrix (shape plus a SHA-256 over the raw
  ``indptr`` / ``indices`` / ``data`` buffers, so any structural or
  numerical change misses), and
* the :class:`~repro.config.AMGConfig` (a frozen, hashable dataclass —
  different flag sets build different hierarchies).

Entries are evicted LRU: the cache is bounded by ``max_entries`` (the
legacy ``maxsize`` spelling is accepted), evictions are counted in
``.evictions`` and logged on the ``repro.amg.cache`` logger so long-running
sweeps can see hierarchies being dropped.  Fingerprinting is deliberately
**not** counted
against the performance model: it is an artifact of the simulation (a real
code would compare pointers or version counters), and keeping it silent
means a cache hit shows *zero* setup-phase kernel records — which is
exactly how the tests assert reuse.
"""

from __future__ import annotations

import hashlib
import logging
from collections import OrderedDict

logger = logging.getLogger("repro.amg.cache")

from ..config import AMGConfig
from ..sparse.csr import CSRMatrix
from .setup import Hierarchy, build_hierarchy

__all__ = ["matrix_fingerprint", "HierarchyCache", "DEFAULT_CACHE"]


def matrix_fingerprint(A: CSRMatrix) -> str:
    """SHA-256 fingerprint of a CSR matrix's structure and values."""
    h = hashlib.sha256()
    h.update(f"{A.nrows}x{A.ncols}:{A.nnz};".encode())
    h.update(A.indptr.tobytes())
    h.update(A.indices.tobytes())
    h.update(A.data.tobytes())
    return h.hexdigest()


class HierarchyCache:
    """Bounded LRU cache of built AMG hierarchies, keyed by (matrix, config).

    ``max_entries`` bounds the number of retained hierarchies (``maxsize``
    is the legacy spelling of the same knob).  Evictions bump
    ``.evictions`` and emit a log record on ``repro.amg.cache``.
    """

    def __init__(self, max_entries: int | None = None, *,
                 maxsize: int | None = None) -> None:
        if max_entries is None:
            max_entries = 8 if maxsize is None else maxsize
        elif maxsize is not None and maxsize != max_entries:
            raise ValueError("pass max_entries or maxsize, not both")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, AMGConfig], Hierarchy] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def maxsize(self) -> int:
        """Legacy alias for :attr:`max_entries`."""
        return self.max_entries

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, A: CSRMatrix, config: AMGConfig) -> tuple[str, AMGConfig]:
        return (matrix_fingerprint(A), config)

    def get(self, A: CSRMatrix, config: AMGConfig) -> Hierarchy | None:
        """Return the cached hierarchy for (A, config), or None."""
        key = self.key(A, config)
        h = self._entries.get(key)
        if h is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return h

    def put(self, A: CSRMatrix, config: AMGConfig, hierarchy: Hierarchy) -> None:
        key = self.key(A, config)
        self._entries[key] = hierarchy
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            evicted_key, _ = self._entries.popitem(last=False)
            self.evictions += 1
            logger.info("evicted hierarchy %s (cache bound %d reached)",
                        evicted_key[0][:12], self.max_entries)

    def get_or_build(self, A: CSRMatrix, config: AMGConfig) -> Hierarchy:
        """Cached hierarchy for (A, config); builds (and counts) on a miss."""
        h = self.get(A, config)
        if h is None:
            h = build_hierarchy(A, config)
            self.put(A, config, h)
        return h

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


#: Process-wide cache used by :mod:`repro.api` unless a private one is given.
DEFAULT_CACHE = HierarchyCache()
