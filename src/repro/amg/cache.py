"""Hierarchy-reuse cache and the (matrix, config) fingerprints.

AMG setup is the expensive half of the algorithm (Fig. 4: strength,
coarsening, interpolation, and the Galerkin product dominate until the
cycle count grows).  Workloads that solve against the *same* matrix many
times — time stepping with a frozen operator, multiple right-hand sides
arriving one at a time, parameter sweeps over ``b`` — should pay for setup
once.  :class:`HierarchyCache` memoizes built hierarchies in **two tiers**:

* **Exact tier** — keyed by :func:`fingerprint`, which combines a
  **matrix fingerprint** (shape plus a SHA-256 over the raw
  ``indptr`` / ``indices`` / ``data`` buffers, so any structural or
  numerical change misses) with a digest of the
  :class:`~repro.config.AMGConfig` (a frozen dataclass with a
  deterministic ``repr`` — different flag sets build different
  hierarchies).  An exact hit returns the cached hierarchy as-is.
* **Pattern tier** — keyed by :func:`pattern_fingerprint`, which hashes
  the *sparsity structure only* (shape + ``indptr`` + ``indices``, no
  values) plus the config digest.  When the exact tier misses but a cached
  hierarchy was built for a matrix with the **same pattern** (a time step,
  a Newton iteration), the cache runs the numeric-only
  :meth:`Hierarchy.refresh <repro.amg.setup.Hierarchy.refresh>` resetup
  path (§3.1.1 pattern reuse) instead of a cold build and inserts the
  resulting **new** hierarchy under the new exact fingerprint.  Refresh
  never mutates its input, so the seed entry stays cached — still valid
  for, and exact-hittable by, the operator it was built with.
  Pattern-tier hits are counted in ``.pattern_hits`` (see
  :meth:`HierarchyCache.stats`).

The exact fingerprint is also the *coalescing key* of the solve service
(:mod:`repro.serve`): requests whose operators share a fingerprint can be
batched through one hierarchy.  :func:`repro.api.fingerprint` is the
public spelling (it additionally coerces scipy/dense inputs).

Entries are evicted LRU: the cache is bounded by ``max_entries`` (the
legacy ``maxsize`` spelling is accepted), evictions are counted in
``.evictions`` and logged on the ``repro.amg.cache`` logger so long-running
sweeps can see hierarchies being dropped.  All bookkeeping (entry map,
pattern index, hit/miss/eviction counters) is guarded by one lock, so a
cache shared by the service worker and submitting threads stays consistent
and the eviction counter stays exact.  Fingerprinting is deliberately
**not** counted against the performance model: it is an artifact of the
simulation (a real code would compare pointers or version counters), and
keeping it silent means a cache hit shows *zero* setup-phase kernel
records — which is exactly how the tests assert reuse.
"""

from __future__ import annotations

import hashlib
import logging
import threading

from collections import OrderedDict

logger = logging.getLogger("repro.amg.cache")

from ..config import AMGConfig
from ..sparse.csr import CSRMatrix
from .setup import Hierarchy, build_hierarchy

__all__ = ["matrix_fingerprint", "pattern_fingerprint", "fingerprint",
           "HierarchyCache", "DEFAULT_CACHE"]


def matrix_fingerprint(A: CSRMatrix) -> str:
    """SHA-256 fingerprint of a CSR matrix's structure **and values**.

    Keys the cache's exact tier: two matrices share it iff their
    ``indptr``/``indices``/``data`` buffers are bit-identical.  See
    :func:`pattern_fingerprint` for the values-blind companion.
    """
    h = hashlib.sha256()
    h.update(f"{A.nrows}x{A.ncols}:{A.nnz};".encode())
    h.update(A.indptr.tobytes())
    h.update(A.indices.tobytes())
    h.update(A.data.tobytes())
    return h.hexdigest()


def pattern_fingerprint(A: CSRMatrix) -> str:
    """SHA-256 fingerprint of a CSR matrix's sparsity structure only.

    Hashes shape + ``indptr`` + ``indices`` and deliberately ignores
    ``data``: two operators from successive time steps (or Newton
    iterations) with updated coefficients but an unchanged stencil share
    this fingerprint while their :func:`matrix_fingerprint` differs.  The
    hierarchy cache uses it as the second-tier key that routes same-pattern
    updates through the numeric-only :meth:`Hierarchy.refresh
    <repro.amg.setup.Hierarchy.refresh>` path instead of a cold setup.
    """
    h = hashlib.sha256()
    h.update(f"p:{A.nrows}x{A.ncols}:{A.nnz};".encode())
    h.update(A.indptr.tobytes())
    h.update(A.indices.tobytes())
    return h.hexdigest()


def _config_digest(config: AMGConfig) -> str:
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


def fingerprint(A: CSRMatrix, config: AMGConfig | None = None) -> str:
    """Stable identity of a (matrix, config) pair.

    This is the *one* keying function in the library: the hierarchy cache
    keys entries with it and the solve service coalesces requests on it.
    With ``config=None`` it degenerates to the matrix fingerprint alone.
    ``AMGConfig`` is a frozen dataclass whose ``repr`` lists every field
    (including the optimization flags), so the digest changes whenever any
    hierarchy-shaping parameter does.
    """
    mfp = matrix_fingerprint(A)
    if config is None:
        return mfp
    return f"{mfp}:{_config_digest(config)}"


class HierarchyCache:
    """Bounded LRU cache of built AMG hierarchies, keyed by (matrix, config).

    ``max_entries`` bounds the number of retained hierarchies (``maxsize``
    is the legacy spelling of the same knob).  Evictions bump
    ``.evictions`` and emit a log record on ``repro.amg.cache``.

    Two lookup tiers (see the module docstring): the exact tier keys on
    :func:`fingerprint` and returns the hierarchy untouched; the pattern
    tier keys on :func:`pattern_fingerprint` + config digest and, on a hit,
    derives a **new** hierarchy from the cached one's captured
    :class:`~repro.amg.resetup.SetupPlan` (numeric-only refresh) and
    inserts it under the new exact fingerprint.  ``get``/``put`` speak the
    exact tier only; ``get_or_build`` orchestrates both.

    The cache is safe for concurrent use: a single internal lock guards the
    entry map, the pattern index, and every counter, so
    ``get``/``put``/``get_or_build`` may be called from multiple threads
    (the solve service shares one cache between its worker and
    submitters).  ``get_or_build`` builds and refreshes *outside* the
    lock — two threads missing on the same key may both build, but the
    second ``put`` just replaces the first entry without distorting the
    eviction count.  Cached hierarchies are frozen once handed out:
    :meth:`Hierarchy.refresh <repro.amg.setup.Hierarchy.refresh>` returns
    a fresh object and never mutates the entry it read, so references
    returned by earlier lookups — including solves in flight on other
    threads — are never rewired to different numerics.
    """

    def __init__(self, max_entries: int | None = None, *,
                 maxsize: int | None = None) -> None:
        if max_entries is None:
            max_entries = 8 if maxsize is None else maxsize
        elif maxsize is not None and maxsize != max_entries:
            raise ValueError("pass max_entries or maxsize, not both")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        #: exact key -> (hierarchy, pattern key)
        self._entries: OrderedDict[str, tuple[Hierarchy, str]] = OrderedDict()
        #: pattern key -> exact key of the most recent same-pattern entry
        self._patterns: dict[str, str] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.pattern_hits = 0

    @property
    def maxsize(self) -> int:
        """Legacy alias for :attr:`max_entries`."""
        return self.max_entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def key(self, A: CSRMatrix, config: AMGConfig) -> str:
        """Exact-tier cache key for (A, config) — the shared :func:`fingerprint`."""
        return fingerprint(A, config)

    def pattern_key(self, A: CSRMatrix, config: AMGConfig) -> str:
        """Pattern-tier key: :func:`pattern_fingerprint` + config digest."""
        return f"{pattern_fingerprint(A)}:{_config_digest(config)}"

    def stats(self) -> dict[str, int]:
        """Consistent snapshot of the counters (one lock acquisition).

        ``hits``/``misses`` count the exact tier; ``pattern_hits`` counts
        same-pattern refreshes served by the second tier.  Under
        ``reuse="auto"`` every pattern hit is also an exact miss; the
        ``reuse="pattern"`` policy skips the exact tier entirely, so its
        lookups touch ``pattern_hits`` only.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "pattern_hits": self.pattern_hits,
            }

    def has_pattern(self, pattern_key: str) -> bool:
        """Peek: is a refreshable entry cached under *pattern_key*?

        *pattern_key* is a :meth:`pattern_key` string.  Touches no counters
        and moves no LRU state — this is the warmness probe the sharded
        solve service uses to break routing ties toward ranks whose cache
        already holds a same-pattern hierarchy.
        """
        with self._lock:
            exact = self._patterns.get(pattern_key)
            return exact is not None and exact in self._entries

    def get(self, A: CSRMatrix, config: AMGConfig) -> Hierarchy | None:
        """Exact-tier lookup: the cached hierarchy for (A, config), or None."""
        key = self.key(A, config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, A: CSRMatrix, config: AMGConfig, hierarchy: Hierarchy) -> None:
        self.seed(self.key(A, config), self.pattern_key(A, config), hierarchy)

    def seed(self, exact_key: str, pattern_key: str,
             hierarchy: Hierarchy) -> None:
        """Insert a pre-built hierarchy under explicit keys.

        The state-transfer spelling of :meth:`put`: the sharded service's
        cache re-warm copies hot entries from a surviving replica into a
        rejoining rank's cache without re-deriving the keys from a matrix
        it does not hold (the wire cost is charged separately through the
        network model).  Cached hierarchies are frozen, so sharing one
        object between two ranks' caches is safe.
        """
        with self._lock:
            self._entries[exact_key] = (hierarchy, pattern_key)
            self._entries.move_to_end(exact_key)
            self._patterns[pattern_key] = exact_key
            while len(self._entries) > self.max_entries:
                evicted_key, (_, evicted_pkey) = self._entries.popitem(last=False)
                if self._patterns.get(evicted_pkey) == evicted_key:
                    del self._patterns[evicted_pkey]
                self.evictions += 1
                logger.info("evicted hierarchy %s (cache bound %d reached)",
                            evicted_key[:12], self.max_entries)

    def peek_pattern(self, pattern_key: str) -> tuple[str, Hierarchy] | None:
        """The newest ``(exact key, hierarchy)`` entry under *pattern_key*.

        Touches no counters and moves no LRU state — the donor-side probe
        of the cache re-warm: a rejoining rank copies the hot entry a
        surviving replica holds, keyed exactly as the survivor keys it.
        """
        with self._lock:
            exact = self._patterns.get(pattern_key)
            if exact is None:
                return None
            entry = self._entries.get(exact)
            if entry is None:
                return None
            return exact, entry[0]

    def drop_all(self) -> None:
        """Forget every entry but keep the hit/miss/eviction counters.

        Models state loss (a crashed service rank loses its in-memory
        hierarchies) without rewriting history: unlike :meth:`clear`, the
        counters keep accumulating across the crash, so a rank's metrics
        snapshot still reflects everything it did before dying.
        """
        with self._lock:
            self._entries.clear()
            self._patterns.clear()

    def _pattern_lookup(self, A: CSRMatrix, config: AMGConfig) -> Hierarchy | None:
        """Find a refreshable same-pattern entry, or None on a pattern miss.

        The entry *stays in the cache* under its own exact key:
        :meth:`Hierarchy.refresh <repro.amg.setup.Hierarchy.refresh>` never
        mutates the hierarchy it reads, so the cached object remains valid
        for the operator it was built with and keeps serving exact hits
        (and should a refresh fail, nothing is lost).  The caller ``put``\\ s
        the refreshed hierarchy under the new fingerprint, which also
        repoints the pattern index at the most recent same-pattern entry.
        """
        pkey = self.pattern_key(A, config)
        with self._lock:
            exact = self._patterns.get(pkey)
            if exact is None:
                return None
            entry = self._entries.get(exact)
            if entry is None:  # stale index entry
                del self._patterns[pkey]
                return None
            hierarchy, _ = entry
            if hierarchy.plan is None:
                # Built without plan capture: not refreshable.
                return None
            self._entries.move_to_end(exact)
            self.pattern_hits += 1
            return hierarchy

    def get_or_build(self, A: CSRMatrix, config: AMGConfig, *,
                     reuse: str = "auto") -> Hierarchy:
        """Cached hierarchy for (A, config); refreshes or builds on a miss.

        ``reuse`` selects the lookup policy:

        * ``"auto"`` (default) — exact tier, then pattern tier (numeric
          refresh), then cold build.
        * ``"pattern"`` — skip the exact tier and force the pattern tier:
          a same-pattern entry seeds a refresh even if an exact entry
          exists (useful for benchmarking the resetup path); cold build
          otherwise.
        * ``"never"`` — bypass both lookup tiers and build from scratch.
          The result is still ``put`` so later requests can reuse it.
        """
        if reuse not in ("auto", "pattern", "never"):
            raise ValueError(f"reuse must be auto|pattern|never, got {reuse!r}")
        if reuse != "never":
            if reuse == "auto":
                h = self.get(A, config)
                if h is not None:
                    return h
            seed = self._pattern_lookup(A, config)
            if seed is not None:
                # Refreshed outside the lock, like builds: the numeric
                # resetup is the long pole and must not serialize gets.
                # refresh() returns a new hierarchy (seed stays frozen in
                # the cache), so a failure here loses no cached state.
                h = seed.refresh(A)
                self.put(A, config, h)
                return h
        # Built outside the lock: hierarchy construction is the long
        # pole and must not serialize unrelated gets.
        h = build_hierarchy(A, config, capture_plan=True)
        self.put(A, config, h)
        return h

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._patterns.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.pattern_hits = 0


#: Process-wide cache used by :mod:`repro.api` unless a private one is given.
DEFAULT_CACHE = HierarchyCache()
