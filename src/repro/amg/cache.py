"""Hierarchy-reuse cache.

AMG setup is the expensive half of the algorithm (Fig. 4: strength,
coarsening, interpolation, and the Galerkin product dominate until the
cycle count grows).  Workloads that solve against the *same* matrix many
times — time stepping with a frozen operator, multiple right-hand sides
arriving one at a time, parameter sweeps over ``b`` — should pay for setup
once.  :class:`HierarchyCache` memoizes built hierarchies keyed by

* a **fingerprint** of the matrix (shape plus a SHA-256 over the raw
  ``indptr`` / ``indices`` / ``data`` buffers, so any structural or
  numerical change misses), and
* the :class:`~repro.config.AMGConfig` (a frozen, hashable dataclass —
  different flag sets build different hierarchies).

Entries are evicted LRU.  Fingerprinting is deliberately **not** counted
against the performance model: it is an artifact of the simulation (a real
code would compare pointers or version counters), and keeping it silent
means a cache hit shows *zero* setup-phase kernel records — which is
exactly how the tests assert reuse.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from ..config import AMGConfig
from ..sparse.csr import CSRMatrix
from .setup import Hierarchy, build_hierarchy

__all__ = ["matrix_fingerprint", "HierarchyCache", "DEFAULT_CACHE"]


def matrix_fingerprint(A: CSRMatrix) -> str:
    """SHA-256 fingerprint of a CSR matrix's structure and values."""
    h = hashlib.sha256()
    h.update(f"{A.nrows}x{A.ncols}:{A.nnz};".encode())
    h.update(A.indptr.tobytes())
    h.update(A.indices.tobytes())
    h.update(A.data.tobytes())
    return h.hexdigest()


class HierarchyCache:
    """LRU cache of built AMG hierarchies, keyed by (matrix, config)."""

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple[str, AMGConfig], Hierarchy] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, A: CSRMatrix, config: AMGConfig) -> tuple[str, AMGConfig]:
        return (matrix_fingerprint(A), config)

    def get(self, A: CSRMatrix, config: AMGConfig) -> Hierarchy | None:
        """Return the cached hierarchy for (A, config), or None."""
        key = self.key(A, config)
        h = self._entries.get(key)
        if h is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return h

    def put(self, A: CSRMatrix, config: AMGConfig, hierarchy: Hierarchy) -> None:
        key = self.key(A, config)
        self._entries[key] = hierarchy
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def get_or_build(self, A: CSRMatrix, config: AMGConfig) -> Hierarchy:
        """Cached hierarchy for (A, config); builds (and counts) on a miss."""
        h = self.get(A, config)
        if h is None:
            h = build_hierarchy(A, config)
            self.put(A, config, h)
        return h

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide cache used by :mod:`repro.api` unless a private one is given.
DEFAULT_CACHE = HierarchyCache()
