"""Hierarchy-reuse cache and the (matrix, config) fingerprint.

AMG setup is the expensive half of the algorithm (Fig. 4: strength,
coarsening, interpolation, and the Galerkin product dominate until the
cycle count grows).  Workloads that solve against the *same* matrix many
times — time stepping with a frozen operator, multiple right-hand sides
arriving one at a time, parameter sweeps over ``b`` — should pay for setup
once.  :class:`HierarchyCache` memoizes built hierarchies keyed by
:func:`fingerprint`, which combines

* a **matrix fingerprint** (shape plus a SHA-256 over the raw
  ``indptr`` / ``indices`` / ``data`` buffers, so any structural or
  numerical change misses), and
* a digest of the :class:`~repro.config.AMGConfig` (a frozen dataclass
  with a deterministic ``repr`` — different flag sets build different
  hierarchies).

The same fingerprint is the *coalescing key* of the solve service
(:mod:`repro.serve`): requests whose operators share a fingerprint can be
batched through one hierarchy.  :func:`repro.api.fingerprint` is the
public spelling (it additionally coerces scipy/dense inputs).

Entries are evicted LRU: the cache is bounded by ``max_entries`` (the
legacy ``maxsize`` spelling is accepted), evictions are counted in
``.evictions`` and logged on the ``repro.amg.cache`` logger so long-running
sweeps can see hierarchies being dropped.  All bookkeeping (entry map,
hit/miss/eviction counters) is guarded by one lock, so a cache shared by
the service worker and submitting threads stays consistent and the
eviction counter stays exact.  Fingerprinting is deliberately **not**
counted against the performance model: it is an artifact of the simulation
(a real code would compare pointers or version counters), and keeping it
silent means a cache hit shows *zero* setup-phase kernel records — which is
exactly how the tests assert reuse.
"""

from __future__ import annotations

import hashlib
import logging
import threading

from collections import OrderedDict

logger = logging.getLogger("repro.amg.cache")

from ..config import AMGConfig
from ..sparse.csr import CSRMatrix
from .setup import Hierarchy, build_hierarchy

__all__ = ["matrix_fingerprint", "fingerprint", "HierarchyCache",
           "DEFAULT_CACHE"]


def matrix_fingerprint(A: CSRMatrix) -> str:
    """SHA-256 fingerprint of a CSR matrix's structure and values."""
    h = hashlib.sha256()
    h.update(f"{A.nrows}x{A.ncols}:{A.nnz};".encode())
    h.update(A.indptr.tobytes())
    h.update(A.indices.tobytes())
    h.update(A.data.tobytes())
    return h.hexdigest()


def fingerprint(A: CSRMatrix, config: AMGConfig | None = None) -> str:
    """Stable identity of a (matrix, config) pair.

    This is the *one* keying function in the library: the hierarchy cache
    keys entries with it and the solve service coalesces requests on it.
    With ``config=None`` it degenerates to the matrix fingerprint alone.
    ``AMGConfig`` is a frozen dataclass whose ``repr`` lists every field
    (including the optimization flags), so the digest changes whenever any
    hierarchy-shaping parameter does.
    """
    mfp = matrix_fingerprint(A)
    if config is None:
        return mfp
    cfg = hashlib.sha256(repr(config).encode()).hexdigest()[:16]
    return f"{mfp}:{cfg}"


class HierarchyCache:
    """Bounded LRU cache of built AMG hierarchies, keyed by (matrix, config).

    ``max_entries`` bounds the number of retained hierarchies (``maxsize``
    is the legacy spelling of the same knob).  Evictions bump
    ``.evictions`` and emit a log record on ``repro.amg.cache``.

    The cache is safe for concurrent use: a single internal lock guards the
    entry map and every counter, so ``get``/``put``/``get_or_build`` may be
    called from multiple threads (the solve service shares one cache
    between its worker and submitters).  ``get_or_build`` builds *outside*
    the lock — two threads missing on the same key may both build, but the
    second ``put`` just replaces the first entry without distorting the
    eviction count.
    """

    def __init__(self, max_entries: int | None = None, *,
                 maxsize: int | None = None) -> None:
        if max_entries is None:
            max_entries = 8 if maxsize is None else maxsize
        elif maxsize is not None and maxsize != max_entries:
            raise ValueError("pass max_entries or maxsize, not both")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, Hierarchy] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def maxsize(self) -> int:
        """Legacy alias for :attr:`max_entries`."""
        return self.max_entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def key(self, A: CSRMatrix, config: AMGConfig) -> str:
        """Cache key for (A, config) — the shared :func:`fingerprint`."""
        return fingerprint(A, config)

    def stats(self) -> dict[str, int]:
        """Consistent snapshot of the counters (one lock acquisition)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def get(self, A: CSRMatrix, config: AMGConfig) -> Hierarchy | None:
        """Return the cached hierarchy for (A, config), or None."""
        key = self.key(A, config)
        with self._lock:
            h = self._entries.get(key)
            if h is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return h

    def put(self, A: CSRMatrix, config: AMGConfig, hierarchy: Hierarchy) -> None:
        key = self.key(A, config)
        with self._lock:
            self._entries[key] = hierarchy
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                self.evictions += 1
                logger.info("evicted hierarchy %s (cache bound %d reached)",
                            evicted_key[:12], self.max_entries)

    def get_or_build(self, A: CSRMatrix, config: AMGConfig) -> Hierarchy:
        """Cached hierarchy for (A, config); builds (and counts) on a miss."""
        h = self.get(A, config)
        if h is None:
            # Built outside the lock: hierarchy construction is the long
            # pole and must not serialize unrelated gets.
            h = build_hierarchy(A, config)
            self.put(A, config, h)
        return h

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


#: Process-wide cache used by :mod:`repro.api` unless a private one is given.
DEFAULT_CACHE = HierarchyCache()
