"""Coarsest-level solver.

Small coarsest grids are solved directly (dense factorization precomputed in
the setup phase, applied as a matvec per cycle); grids that are still large
when ``max_levels`` is hit fall back to a few symmetric smoothing sweeps —
the same policy BoomerAMG follows.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import VAL_BYTES, count, phase
from ..sparse.csr import CSRMatrix
from .smoothers import HybridGSSmoother

__all__ = ["CoarseSolver"]


class CoarseSolver:
    """Direct (dense pseudo-inverse) or smoothing-based coarsest solver."""

    def __init__(
        self,
        A: CSRMatrix,
        *,
        dense_threshold: int = 500,
        nthreads: int = 1,
        sweeps: int = 4,
    ) -> None:
        self.A = A
        self.n = A.nrows
        self.sweeps = sweeps
        self.direct = self.n <= dense_threshold
        if self.direct:
            dense = A.to_dense()
            # Pseudo-inverse tolerates the singular coarse operators of pure
            # Neumann-like problems.
            self.inv = np.linalg.pinv(dense)
            count(
                "coarse.factorize",
                flops=2.0 * self.n**3,
                bytes_read=self.n * self.n * VAL_BYTES,
                bytes_written=self.n * self.n * VAL_BYTES,
                phase="Setup_etc",
            )
            self.smoother = None
        else:
            self.inv = None
            self.smoother = HybridGSSmoother(A, nthreads=nthreads)

    def solve(self, b: np.ndarray) -> np.ndarray:
        with phase("Solve_etc"):
            if self.direct:
                x = self.inv @ b
                count(
                    "coarse.direct_solve",
                    flops=2.0 * self.n * self.n,
                    bytes_read=self.n * self.n * VAL_BYTES + self.n * VAL_BYTES,
                    bytes_written=self.n * VAL_BYTES,
                )
                return x
            x = np.zeros(self.n)
            self.smoother.presmooth(x, b, zero_guess=True)
            for _ in range(self.sweeps - 1):
                self.smoother.presmooth(x, b)
                self.smoother.postsmooth(x, b)
            return x

    def solve_multi(self, B: np.ndarray) -> np.ndarray:
        """Blocked coarsest solve over an ``(n, k)`` block.

        Column *j* matches :meth:`solve` on ``B[:, j]`` exactly; the direct
        variant reads the factor once for all *k* right-hand sides.
        """
        k = B.shape[1]
        with phase("Solve_etc"):
            if self.direct:
                X = np.empty((self.n, k))
                for j in range(k):
                    X[:, j] = self.inv @ B[:, j]
                count(
                    "coarse.direct_solve",
                    flops=2.0 * self.n * self.n * k,
                    bytes_read=self.n * self.n * VAL_BYTES + k * self.n * VAL_BYTES,
                    bytes_written=k * self.n * VAL_BYTES,
                )
                return X
            X = np.zeros((self.n, k))
            self.smoother.presmooth_multi(X, B, zero_guess=True)
            for _ in range(self.sweeps - 1):
                self.smoother.presmooth_multi(X, B)
                self.smoother.postsmooth_multi(X, B)
            return X
