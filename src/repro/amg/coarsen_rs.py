"""Ruge–Stüben (classical, serial) coarsening — the §2 comparator.

The original classical AMG coarsening: a greedy sequential pass that picks
the unassigned point with the largest measure ``lambda(i) = |S_i^T|`` as C,
makes everything it strongly influences F, and bumps the measures of points
those new F points depend on (so their interpolation sets grow).

The paper's §2 notes this converges fast but "often generates excessive
operator complexities, especially for three-dimensional problems" — which
motivated PMIS.  The extension benchmark
(``benchmarks/bench_coarsening_comparison.py``) reproduces that trade-off.

This is the *serial* algorithm (a priority loop); it is counted as serial
work and intended as an algorithmic comparator, not a performance kernel.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..perf.counters import IDX_BYTES, count
from ..sparse.csr import CSRMatrix
from ..sparse.transpose import transpose
from .pmis import C_PT, F_PT

__all__ = ["rs_coarsening"]


def rs_coarsening(S: CSRMatrix) -> np.ndarray:
    """First-pass Ruge–Stüben CF splitting on strength matrix *S*.

    Returns a cf marker (+1 C, -1 F).  Points with no strong connections in
    either direction become F immediately.
    """
    n = S.nrows
    St = transpose(S, kernel="rs.transpose", parallel=False)

    def rows(M, i):
        return M.indices[M.indptr[i]: M.indptr[i + 1]]

    lam = St.row_nnz().astype(np.int64).copy()
    state = np.zeros(n, dtype=np.int64)
    isolated = (lam == 0) & (S.row_nnz() == 0)
    state[isolated] = F_PT

    # Lazy-deletion max-heap keyed by (-lambda, index).
    heap = [(-lam[i], i) for i in range(n) if state[i] == 0]
    heapq.heapify(heap)
    stamp = lam.copy()  # value at push time, for lazy invalidation

    ops = 0
    while heap:
        neg, i = heapq.heappop(heap)
        if state[i] != 0 or -neg != lam[i]:
            continue  # stale entry
        state[i] = C_PT
        # Everything i strongly influences becomes F.
        for j in rows(St, i):
            ops += 1
            if state[j] != 0:
                continue
            state[j] = F_PT
            # New F point j: the points j depends on become more valuable.
            for k in rows(S, j):
                ops += 1
                if state[k] == 0:
                    lam[k] += 1
                    heapq.heappush(heap, (-lam[k], k))
        # Points i depends on lose one potential dependent.
        for j in rows(S, i):
            ops += 1
            if state[j] == 0 and lam[j] > 0:
                lam[j] -= 1
                heapq.heappush(heap, (-lam[j], j))

    # Leftover untouched points (no strong relations) are F.
    state[state == 0] = F_PT
    count("coarsen.ruge_stueben", branches=float(ops),
          bytes_read=ops * IDX_BYTES, parallel=False)
    return state
