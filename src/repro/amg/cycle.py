"""Multigrid cycles (§2).

The paper evaluates V-cycles (Table 3/4); W- and F-cycles are provided as
the standard extensions (§2 discusses K-cycles as the related-work
alternative for weak aggregation — W/F are their fixed-schedule cousins):

* V-cycle — one recursive visit per level;
* W-cycle — two recursive visits (``gamma = 2``);
* F-cycle — an F(1,1) schedule: a full cycle visits each coarse level with
  one W-like descent followed by V-cycle ascents.

Pre-smoothing at levels below the finest starts from a zero iterate,
enabling the §3.2 skip-the-upper-triangle optimization (``zero_guess``).
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import phase
from ..planexec import plan_enabled
from ..sparse.blas1 import axpy, axpy_multi
from ..sparse.spmv import residual, residual_multi
from .setup import Hierarchy


def _level_exec(h: Hierarchy, level: int):
    """The level's prebound solve-plan transfers, or ``None`` (legacy)."""
    sp = getattr(h, "solve_plan", None)
    if sp is not None and plan_enabled():
        return sp.levels[level]
    return None

__all__ = ["vcycle", "wcycle", "fcycle", "cycle", "vcycle_multi", "cycle_multi"]


def _smooth_correct(h: Hierarchy, b: np.ndarray, level: int, recurse) -> np.ndarray:
    """Shared smoothing/correction skeleton around a recursion strategy."""
    flags = h.config.flags
    if level == h.num_levels - 1:
        return h.coarse_solver.solve(b)

    lvl = h.levels[level]
    lx = _level_exec(h, level)
    x = np.zeros(lvl.n)

    with phase("GS"):
        lvl.smoother.presmooth(x, b, zero_guess=True)

    with phase("SpMV"):
        r = residual(lvl.A, x, b)
        rc = lx.restrict(r) if lx is not None else lvl.restrict(r, flags)

    xc = recurse(h, rc, level + 1)

    with phase("SpMV"):
        corr = lx.interpolate(xc) if lx is not None else lvl.interpolate(xc, flags)
    with phase("BLAS1"):
        axpy(1.0, corr, x)

    with phase("GS"):
        lvl.smoother.postsmooth(x, b)
    return x


def vcycle(h: Hierarchy, b: np.ndarray, level: int = 0) -> np.ndarray:
    """One V-cycle applied to *b* at *level* (zero initial guess)."""
    return _smooth_correct(h, b, level, vcycle)


def wcycle(h: Hierarchy, b: np.ndarray, level: int = 0) -> np.ndarray:
    """One W-cycle (``gamma = 2``): recurse twice per level."""

    def recurse(hh, bb, lv):
        if lv >= hh.num_levels - 1:
            return hh.coarse_solver.solve(bb)
        x1 = wcycle(hh, bb, lv)
        # Second visit solves the residual equation of the first.
        lvl = hh.levels[lv]
        with phase("SpMV"):
            r = residual(lvl.A, x1, bb)
        x2 = wcycle(hh, r, lv)
        with phase("BLAS1"):
            axpy(1.0, x2, x1)
        return x1

    return _smooth_correct(h, b, level, recurse)


def fcycle(h: Hierarchy, b: np.ndarray, level: int = 0) -> np.ndarray:
    """One F-cycle: descend like W once, then ascend with V-cycles."""

    def recurse(hh, bb, lv):
        if lv >= hh.num_levels - 1:
            return hh.coarse_solver.solve(bb)
        x1 = fcycle(hh, bb, lv)
        lvl = hh.levels[lv]
        with phase("SpMV"):
            r = residual(lvl.A, x1, bb)
        x2 = vcycle(hh, r, lv)
        with phase("BLAS1"):
            axpy(1.0, x2, x1)
        return x1

    return _smooth_correct(h, b, level, recurse)


_CYCLES = {"V": vcycle, "W": wcycle, "F": fcycle}


def cycle(h: Hierarchy, b: np.ndarray, kind: str = "V") -> np.ndarray:
    """Apply one cycle of the given kind ('V', 'W', or 'F')."""
    try:
        return _CYCLES[kind.upper()](h, b)
    except KeyError:
        raise ValueError(f"unknown cycle type {kind!r}; know {sorted(_CYCLES)}")


# ---------------------------------------------------------------------------
# Batched cycles (multiple RHS)
# ---------------------------------------------------------------------------

def vcycle_multi(h: Hierarchy, B: np.ndarray, level: int = 0) -> np.ndarray:
    """One V-cycle applied column-wise to an ``(n, k)`` block.

    Column *j* is bit-identical to ``vcycle(h, B[:, j], level)``; every
    kernel along the way streams its matrix once for all *k* columns, which
    is where the multi-RHS amortization comes from.
    """
    flags = h.config.flags
    if level == h.num_levels - 1:
        return h.coarse_solver.solve_multi(B)

    lvl = h.levels[level]
    lx = _level_exec(h, level)
    X = np.zeros((lvl.n, B.shape[1]))

    with phase("GS"):
        lvl.smoother.presmooth_multi(X, B, zero_guess=True)

    with phase("SpMV"):
        R = residual_multi(lvl.A, X, B)
        RC = lx.restrict_multi(R) if lx is not None else lvl.restrict_multi(R, flags)

    XC = vcycle_multi(h, RC, level + 1)

    with phase("SpMV"):
        corr = (lx.interpolate_multi(XC) if lx is not None
                else lvl.interpolate_multi(XC, flags))
    with phase("BLAS1"):
        axpy_multi(1.0, corr, X)

    with phase("GS"):
        lvl.smoother.postsmooth_multi(X, B)
    return X


def cycle_multi(h: Hierarchy, B: np.ndarray, kind: str = "V") -> np.ndarray:
    """Apply one batched cycle of the given kind to an ``(n, k)`` block.

    Only the V-cycle (the paper's evaluated schedule) has a blocked
    implementation; W- and F-cycles fall back to one column at a time.
    """
    kind = kind.upper()
    if kind == "V":
        return vcycle_multi(h, B)
    if kind not in _CYCLES:
        raise ValueError(f"unknown cycle type {kind!r}; know {sorted(_CYCLES)}")
    out = np.empty_like(np.asarray(B, dtype=np.float64))
    for j in range(B.shape[1]):
        out[:, j] = _CYCLES[kind](h, B[:, j])
    return out
