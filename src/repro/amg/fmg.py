"""Full multigrid (FMG / nested iteration).

Instead of starting V-cycles from a zero guess on the finest grid, FMG
restricts the right-hand side to the coarsest level, solves there, and
interpolates upward, running one V-cycle per level on the way — producing
an O(n) initial guess that is already accurate to the level of a few
V-cycles.  A standard AMG-library feature (the natural companion of the
paper's V-cycle solve phase); used by
:meth:`repro.amg.solver.AMGSolver.solve` when ``fmg_start`` is requested.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import phase
from ..sparse.blas1 import axpy
from ..sparse.spmv import residual
from .cycle import vcycle
from .setup import Hierarchy

__all__ = ["full_multigrid"]


def full_multigrid(h: Hierarchy, b: np.ndarray, *, vcycles_per_level: int = 1) -> np.ndarray:
    """One FMG pass for ``A_0 x = b``; returns the fine-level approximation.

    ``b`` must be given in level-0's stored ordering (callers inside
    :class:`AMGSolver` handle the user-ordering translation).
    """
    flags = h.config.flags

    # Restrict the right-hand side down the hierarchy.
    rhs = [np.asarray(b, dtype=np.float64)]
    for l in range(h.num_levels - 1):
        with phase("SpMV"):
            rhs.append(h.levels[l].restrict(rhs[-1], flags))

    # Coarsest solve.
    x = h.coarse_solver.solve(rhs[-1])

    # Interpolate upward, smoothing with V-cycles on each level.
    for l in range(h.num_levels - 2, -1, -1):
        lvl = h.levels[l]
        with phase("SpMV"):
            x = lvl.interpolate(x, flags)
        for _ in range(vcycles_per_level):
            with phase("SpMV"):
                r = residual(lvl.A, x, rhs[l])
            corr = vcycle(h, r, l)
            with phase("BLAS1"):
                axpy(1.0, corr, x)
    return x
