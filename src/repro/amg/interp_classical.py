"""Classical (distance-one, modified) interpolation — the §2 comparator.

For an F point *i* with strong C neighbours ``C_i^s``::

    w_ij = -(1/a~_ii) * ( a_ij + sum_{k in F_i^s} a_ik * abar_kj / b_ik ),
    b_ik = sum_{l in C_i^s} abar_kl,
    a~_ii = a_ii + sum over weak neighbours of a_in,

with the same sign filter ``abar`` as extended+i.  Unlike extended+i, the
interpolation set is only ``C_i^s`` (distance one), so a strong F-F pair
without a common C neighbour leaves ``b_ik = 0`` — the classical breakdown
under PMIS coarsening that distance-two operators fix (§2).  Such ``k``
are lumped into the diagonal, degrading (not crashing) the operator; the
tests and the extension bench quantify the resulting convergence gap.

Structurally a strict simplification of
:mod:`repro.amg.interp_extended` and implemented with the same vectorized
expansion machinery.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import IDX_BYTES, PTR_BYTES, VAL_BYTES, collect, count
from ..sparse.csr import CSRMatrix
from ..sparse.ops import gather_range_indices, segment_sum
from .interp_common import coarse_index, entries_in_pattern, identity_rows, pattern_keys
from .truncation import truncate_interpolation

__all__ = ["classical_interpolation", "classical_numeric"]

_TINY = 1e-300


def classical_interpolation(
    A: CSRMatrix,
    S: CSRMatrix,
    cf_marker: np.ndarray,
    *,
    trunc_fact: float = 0.0,
    max_elmts: int = 0,
    truncate: bool = False,
    _stats: dict | None = None,
) -> CSRMatrix:
    """Classical modified interpolation ``P`` (``n x n_coarse``)."""
    n = A.nrows
    cf_marker = np.asarray(cf_marker)
    c_idx, nc = coarse_index(cf_marker)

    rid = A.row_ids()
    cols = A.indices
    vals = A.data
    diag = A.diagonal()
    offdiag = cols != rid
    f_row = cf_marker[rid] <= 0

    strong = entries_in_pattern(rid, cols, S)
    is_c_col = cf_marker[cols] > 0

    # Strong-C pattern per row: the (distance-one) interpolation set.
    sc = strong & is_c_col & f_row & offdiag
    Chat = CSRMatrix.from_coo((n, n), rid[sc], cols[sc], np.ones(int(sc.sum())))
    chat_keys = pattern_keys(Chat)

    abar = np.where(np.sign(diag)[rid] == np.sign(vals), 0.0, vals)

    # Expansion over strong F-F pairs (i, k).
    fs = strong & ~is_c_col & f_row & offdiag
    AFS = CSRMatrix.from_coo((n, n), rid[fs], cols[fs], vals[fs])
    kcounts = A.indptr[AFS.indices + 1] - A.indptr[AFS.indices]
    eidx = gather_range_indices(A.indptr[AFS.indices], kcounts)
    p_pair = np.repeat(np.arange(AFS.nnz, dtype=np.int64), kcounts)
    p_i = np.repeat(AFS.row_ids(), kcounts)
    p_aik = np.repeat(AFS.data, kcounts)
    p_l = A.indices[eidx]
    p_abar = abar[eidx]

    in_chat = entries_in_pattern(p_i, p_l, Chat, keys=chat_keys)
    if _stats is not None:
        # Term counts for the pattern-reuse numeric cost model (see
        # classical_numeric).
        _stats["expansion"] = len(p_l)
        _stats["contrib"] = int(np.count_nonzero(in_chat))
        _stats["afs_nnz"] = AFS.nnz
    b = segment_sum(np.where(in_chat, p_abar, 0.0), p_pair, AFS.nnz)
    b_ok = np.abs(b) > _TINY
    b_safe = np.where(b_ok, b, 1.0)

    # Diagonal: a_ii + weak neighbours + lumped degenerate strong-F terms.
    atil = diag.copy()
    wk = f_row & offdiag & ~strong
    atil += segment_sum(np.where(wk, vals, 0.0), rid, n)
    if AFS.nnz:
        np.add.at(atil, AFS.row_ids()[~b_ok], AFS.data[~b_ok])

    wsel = b_ok[p_pair] & in_chat
    num_rows = [rid[sc]]
    num_cols = [cols[sc]]
    num_vals = [vals[sc]]
    if wsel.any():
        num_rows.append(p_i[wsel])
        num_cols.append(p_l[wsel])
        num_vals.append(p_aik[wsel] * p_abar[wsel] / b_safe[p_pair[wsel]])
    nr = np.concatenate(num_rows)
    ncol = np.concatenate(num_cols)
    nv = np.concatenate(num_vals)
    atil_safe = np.where(np.abs(atil) > _TINY, atil, 1.0)
    nv = -nv / atil_safe[nr]

    cr, cc, cv = identity_rows(cf_marker)
    P = CSRMatrix.from_coo(
        (n, nc),
        np.concatenate([cr, nr]),
        np.concatenate([cc, c_idx[ncol]]),
        np.concatenate([cv, nv]),
    ).eliminate_zeros()

    expansion = len(p_l)
    count(
        "interp.classical",
        flops=4 * expansion + 3 * A.nnz,
        bytes_read=A.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES
        + expansion * (VAL_BYTES + IDX_BYTES),
        bytes_written=P.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES,
        branches=float(expansion + A.nnz),
    )
    if truncate:
        P = truncate_interpolation(P, trunc_fact, max_elmts)
    return P


def classical_numeric(
    A: CSRMatrix,
    S: CSRMatrix,
    cf_marker: np.ndarray,
    pattern: CSRMatrix,
    *,
    trunc_fact: float = 0.0,
    max_elmts: int = 0,
    fused_truncation: bool = True,
) -> CSRMatrix | None:
    """Numeric-only classical weight recomputation against a frozen pattern.

    Pattern-reuse counterpart of :func:`classical_interpolation` (plus its
    separate truncation pass), mirroring
    :func:`repro.amg.interp_extended.extended_i_numeric`: the structural
    work is replayed in a discarded collection scope, the result's pattern
    is checked against *pattern*, and only the irreducible numeric work is
    charged (zero data-dependent branches).  Returns ``None`` on pattern
    drift — the caller must rebuild from scratch.
    """
    stats: dict = {}
    with collect():
        P = classical_interpolation(A, S, cf_marker, _stats=stats)
        P = truncate_interpolation(
            P, trunc_fact, max_elmts, fused=fused_truncation
        )
    if P.shape != pattern.shape or not (
        np.array_equal(P.indptr, pattern.indptr)
        and np.array_equal(P.indices, pattern.indices)
    ):
        return None
    n = A.nrows
    flops = 2 * stats["contrib"] + 3 * A.nnz + 2 * P.nnz
    count(
        "interp.classical.numeric_only",
        flops=flops,
        bytes_read=A.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES
        + stats["expansion"] * VAL_BYTES + P.nnz * IDX_BYTES,
        bytes_written=P.nnz * VAL_BYTES,
        branches=0.0,
    )
    return P
