"""Shared helpers for interpolation construction."""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = [
    "entries_in_pattern",
    "coarse_index",
    "identity_rows",
    "pattern_keys",
]


def pattern_keys(M: CSRMatrix) -> np.ndarray:
    """Sorted ``row * ncols + col`` keys of a pattern matrix.

    Requires sorted, duplicate-free column indices (guaranteed for matrices
    produced by this library's kernels).
    """
    return M.row_ids() * np.int64(M.ncols) + M.indices


def entries_in_pattern(
    rows: np.ndarray, cols: np.ndarray, pattern: CSRMatrix, keys: np.ndarray | None = None
) -> np.ndarray:
    """Boolean mask: is ``(rows[t], cols[t])`` a stored entry of *pattern*?

    Vectorized membership test through a binary search on the pattern's
    sorted entry keys — the bulk equivalent of the marker-array test in the
    paper's sparse-accumulator idiom.
    """
    if keys is None:
        keys = pattern_keys(pattern)
    q = np.asarray(rows, dtype=np.int64) * np.int64(pattern.ncols) + np.asarray(
        cols, dtype=np.int64
    )
    pos = np.searchsorted(keys, q)
    pos = np.minimum(pos, len(keys) - 1) if len(keys) else pos
    if len(keys) == 0:
        return np.zeros(len(q), dtype=bool)
    return keys[pos] == q


def coarse_index(cf_marker: np.ndarray) -> tuple[np.ndarray, int]:
    """Map each point to its coarse id (valid only where ``cf > 0``)."""
    is_c = np.asarray(cf_marker) > 0
    idx = np.cumsum(is_c) - 1
    return idx.astype(np.int64), int(is_c.sum())


def identity_rows(cf_marker: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets of the identity interpolation rows for the C points."""
    c_rows = np.flatnonzero(np.asarray(cf_marker) > 0).astype(np.int64)
    c_idx = np.arange(len(c_rows), dtype=np.int64)
    return c_rows, c_idx, np.ones(len(c_rows))
