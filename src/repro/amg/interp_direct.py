"""Direct (distance-one) interpolation.

The classical building block (used here by multipass interpolation and as a
cheap standalone option).  For an F point *i* with strong coarse neighbours
``C_i``, signed weight distribution::

    w_ij = -alpha * a_ij / d_i   (a_ij < 0),   w_ij = -beta * a_ij / d_i  (a_ij > 0)

    alpha = sum of negative off-diagonals / sum of negative a_ij over C_i
    beta  = sum of positive off-diagonals / sum of positive a_ij over C_i

When a row has positive off-diagonals but no positive strong C entry, the
positive mass is lumped into the diagonal ``d_i`` instead (BoomerAMG
behaviour).  C-point rows are identity.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import IDX_BYTES, PTR_BYTES, VAL_BYTES, collect, count
from ..sparse.csr import CSRMatrix
from ..sparse.ops import segment_sum
from .interp_common import coarse_index, entries_in_pattern, identity_rows
from .truncation import truncate_interpolation

__all__ = ["direct_interpolation", "direct_numeric"]


def direct_interpolation(
    A: CSRMatrix,
    S: CSRMatrix,
    cf_marker: np.ndarray,
    *,
    rows: np.ndarray | None = None,
) -> CSRMatrix:
    """Direct interpolation operator ``P`` (``n x n_coarse``).

    ``rows`` optionally restricts construction to a subset of F rows (used
    by multipass interpolation's first pass); other F rows come out empty.
    """
    n = A.nrows
    cf_marker = np.asarray(cf_marker)
    c_idx, nc = coarse_index(cf_marker)

    rid = A.row_ids()
    cols = A.indices
    vals = A.data
    offdiag = cols != rid
    diag = A.diagonal()

    is_f_row = cf_marker[rid] <= 0
    if rows is not None:
        sel_row = np.zeros(n, dtype=bool)
        sel_row[rows] = True
        is_f_row &= sel_row[rid]

    strong = entries_in_pattern(rid, cols, S)
    strong_c = strong & (cf_marker[cols] > 0) & is_f_row

    neg = vals < 0
    pos = (vals > 0) & offdiag

    sum_neg = segment_sum(np.where(neg & offdiag & is_f_row, vals, 0.0), rid, n)
    sum_pos = segment_sum(np.where(pos & is_f_row, vals, 0.0), rid, n)
    sum_cneg = segment_sum(np.where(strong_c & neg, vals, 0.0), rid, n)
    sum_cpos = segment_sum(np.where(strong_c & pos, vals, 0.0), rid, n)

    has_cpos = sum_cpos != 0.0
    # Lump positive mass into the diagonal when no positive strong C entry.
    d = diag + np.where(~has_cpos, sum_pos, 0.0)

    alpha = np.where(sum_cneg != 0.0, sum_neg / np.where(sum_cneg != 0, sum_cneg, 1.0), 0.0)
    beta = np.where(has_cpos, sum_pos / np.where(has_cpos, sum_cpos, 1.0), 0.0)

    sel = strong_c & (np.abs(d[rid]) > 1e-300)
    coef = np.where(neg, alpha[rid], beta[rid])
    w = -coef[sel] * vals[sel] / d[rid[sel]]

    cr, cc, cv = identity_rows(cf_marker)
    P = CSRMatrix.from_coo(
        (n, nc),
        np.concatenate([cr, rid[sel]]),
        np.concatenate([cc, c_idx[cols[sel]]]),
        np.concatenate([cv, w]),
    )
    a_bytes = A.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES
    count(
        "interp.direct",
        flops=6 * A.nnz,
        bytes_read=a_bytes,
        bytes_written=P.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES,
        branches=float(A.nnz),
    )
    return P


def direct_numeric(
    A: CSRMatrix,
    S: CSRMatrix,
    cf_marker: np.ndarray,
    pattern: CSRMatrix,
    *,
    trunc_fact: float = 0.0,
    max_elmts: int = 0,
    fused_truncation: bool = True,
) -> CSRMatrix | None:
    """Numeric-only direct-interpolation recomputation against a frozen
    pattern (plus the separate truncation pass).

    Mirrors :func:`repro.amg.interp_extended.extended_i_numeric`: replay in
    a discarded collection scope, pattern check, then one record charging
    only the segment sums and weight scalings (zero data-dependent
    branches).  Returns ``None`` on pattern drift — direct interpolation's
    pattern is value-dependent (zero strong-C weight sums drop entries), so
    a sign change can genuinely invalidate the plan.
    """
    with collect():
        P = direct_interpolation(A, S, cf_marker)
        P = truncate_interpolation(
            P, trunc_fact, max_elmts, fused=fused_truncation
        )
    if P.shape != pattern.shape or not (
        np.array_equal(P.indptr, pattern.indptr)
        and np.array_equal(P.indices, pattern.indices)
    ):
        return None
    n = A.nrows
    count(
        "interp.direct.numeric_only",
        flops=4 * A.nnz + 2 * P.nnz,
        bytes_read=A.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES
        + P.nnz * IDX_BYTES,
        bytes_written=P.nnz * VAL_BYTES,
        branches=0.0,
    )
    return P
