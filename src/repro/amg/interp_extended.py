"""Extended+i (distance-two) interpolation, Eq. (1) of the paper (§3.1.2).

For an F point *i*::

    w_ij = -(1/a~_ii) * ( a_ij + sum_{k in F_i^s} a_ik * abar_kj / b_ik ),  j in Chat_i

    a~_ii = a_ii + sum_{n in N_i^w \\ Chat_i} a_in + sum_{k in F_i^s} a_ik * abar_ki / b_ik
    b_ik  = sum_{l in Chat_i + {i}} abar_kl
    abar_kl = 0 when sign(a_kk) == sign(a_kl), else a_kl
    Chat_i = C_i^s  union  (union over k in F_i^s of C_k^s)

Two implementations:

* :func:`extended_i_interpolation` — fully vectorized.  The distance-two
  structure is exactly a SpGEMM expansion over the strong-F pairs (the paper
  makes the same observation), so the kernel reuses the expansion machinery
  of :mod:`repro.sparse.spgemm`; the set-membership tests that the native
  code does with a marker array become bulk binary searches.
* :func:`extended_i_reference` — a literal per-row transcription of Eq. (1)
  with marker arrays, used as the oracle in tests.

Degenerate strong-F neighbours with ``b_ik == 0`` are treated as weak
(``a_ik`` lumped into the diagonal), matching BoomerAMG's guard.

The ``reordered`` flag mirrors §3.1.2's branch optimization: with the CF
permutation + 3-way in-row partition (coarse>=0 / coarse<0 / fine) the
kernel's per-entry classification branches disappear; only the irreducible
sparse-accumulation branches remain.  Truncation is fused (§3.1.2) unless
``fused_truncation=False``.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import IDX_BYTES, PTR_BYTES, VAL_BYTES, collect, count
from ..sparse.csr import CSRMatrix
from ..sparse.ops import gather_range_indices, segment_sum
from ..sparse.spgemm import spgemm
from .interp_common import coarse_index, entries_in_pattern, identity_rows, pattern_keys
from .truncation import truncate_interpolation

__all__ = ["extended_i_interpolation", "extended_i_numeric",
           "extended_i_reference"]

_TINY = 1e-300


def _strong_mask(A: CSRMatrix, S: CSRMatrix) -> np.ndarray:
    return entries_in_pattern(A.row_ids(), A.indices, S)


def extended_i_interpolation(
    A: CSRMatrix,
    S: CSRMatrix,
    cf_marker: np.ndarray,
    *,
    trunc_fact: float = 0.1,
    max_elmts: int = 4,
    reordered: bool = True,
    fused_truncation: bool = True,
    truncate: bool = True,
    active_rows: np.ndarray | None = None,
    _stats: dict | None = None,
) -> CSRMatrix:
    """Vectorized extended+i interpolation ``P`` (``n x n_coarse``).

    ``active_rows`` (bool mask) restricts which rows get interpolation
    entries: inactive rows still serve as distance-two neighbours (their
    strong-C sets feed ``Chat``) but receive no P rows.  The distributed
    construction uses this to interpolate only locally owned rows while
    gathered ghost rows provide the distance-two information (§4.3).
    """
    n = A.nrows
    cf_marker = np.asarray(cf_marker)
    c_idx, nc = coarse_index(cf_marker)

    rid = A.row_ids()
    cols = A.indices
    vals = A.data
    diag = A.diagonal()
    offdiag = cols != rid
    f_row = cf_marker[rid] <= 0
    if active_rows is not None:
        active_rows = np.asarray(active_rows, dtype=bool)
        f_row &= active_rows[rid]

    strong = _strong_mask(A, S)
    is_c_col = cf_marker[cols] > 0

    # Strong-C adjacency (all rows) and strong-F pairs (F rows only).
    sc = strong & is_c_col
    SC = CSRMatrix.from_coo((n, n), rid[sc], cols[sc], np.ones(int(sc.sum())))
    fs = strong & ~is_c_col & f_row & offdiag
    AFS = CSRMatrix.from_coo((n, n), rid[fs], cols[fs], vals[fs])

    # Chat pattern: strong C of i plus strong C of i's strong F neighbours.
    D2 = spgemm(AFS, SC, kernel="interp.exti_dist2")
    chat_rows = np.concatenate([rid[sc & f_row], D2.row_ids()])
    chat_cols = np.concatenate([cols[sc & f_row], D2.indices])
    Chat = CSRMatrix.from_coo((n, n), chat_rows, chat_cols, np.ones(len(chat_rows)))
    chat_keys = pattern_keys(Chat)

    # abar: sign-filtered matrix values on A's pattern.
    abar = np.where(np.sign(diag)[rid] == np.sign(vals), 0.0, vals)

    # ---- pairwise expansion over (i, k in F_i^s) through rows of abar ----
    kcounts = A.indptr[AFS.indices + 1] - A.indptr[AFS.indices]
    eidx = gather_range_indices(A.indptr[AFS.indices], kcounts)
    p_pair = np.repeat(np.arange(AFS.nnz, dtype=np.int64), kcounts)
    p_i = np.repeat(AFS.row_ids(), kcounts)
    p_aik = np.repeat(AFS.data, kcounts)
    p_l = A.indices[eidx]
    p_abar = abar[eidx]
    expansion = len(p_l)

    in_chat = entries_in_pattern(p_i, p_l, Chat, keys=chat_keys)
    is_diag_i = p_l == p_i
    if _stats is not None:
        # Term counts for the pattern-reuse numeric cost model (see
        # extended_i_numeric): only terms that actually contribute to a
        # b_ik sum or a weight survive a frozen-pattern recomputation.
        _stats["expansion"] = expansion
        _stats["contrib"] = int(np.count_nonzero(in_chat | is_diag_i))
        _stats["afs_nnz"] = AFS.nnz

    b = segment_sum(np.where(in_chat | is_diag_i, p_abar, 0.0), p_pair, AFS.nnz)
    b_ok = np.abs(b) > _TINY
    b_safe = np.where(b_ok, b, 1.0)

    # Degenerate pairs: lump a_ik into the diagonal.
    atil = diag.copy()
    if AFS.nnz:
        np.add.at(atil, AFS.row_ids()[~b_ok], AFS.data[~b_ok])

    ok_e = b_ok[p_pair]
    # Diagonal-return term of a~_ii.
    dsel = ok_e & is_diag_i
    if dsel.any():
        np.add.at(atil, p_i[dsel], p_aik[dsel] * p_abar[dsel] / b_safe[p_pair[dsel]])

    # Weak neighbours not in Chat.
    in_chat_A = entries_in_pattern(rid, cols, Chat, keys=chat_keys)
    wk = f_row & offdiag & ~strong & ~in_chat_A
    atil += segment_sum(np.where(wk, vals, 0.0), rid, n)

    # ---- numerator accumulation ----
    wsel = ok_e & in_chat
    num_rows = [rid[f_row & in_chat_A]]
    num_cols = [cols[f_row & in_chat_A]]
    num_vals = [vals[f_row & in_chat_A]]
    if wsel.any():
        num_rows.append(p_i[wsel])
        num_cols.append(p_l[wsel])
        num_vals.append(p_aik[wsel] * p_abar[wsel] / b_safe[p_pair[wsel]])
    nrows_all = np.concatenate(num_rows)
    ncols_all = np.concatenate(num_cols)
    nvals_all = np.concatenate(num_vals)

    atil_safe = np.where(np.abs(atil) > _TINY, atil, 1.0)
    nvals_all = -nvals_all / atil_safe[nrows_all]

    cr, cc, cv = identity_rows(cf_marker)
    if active_rows is not None:
        keep_c = active_rows[cr]
        cr, cc, cv = cr[keep_c], cc[keep_c], cv[keep_c]
    P = CSRMatrix.from_coo(
        (n, nc),
        np.concatenate([cr, nrows_all]),
        np.concatenate([cc, c_idx[ncols_all]]),
        np.concatenate([cv, nvals_all]),
    )
    P = P.eliminate_zeros()

    a_bytes = A.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES
    gathered = expansion * (VAL_BYTES + IDX_BYTES) + AFS.nnz * 2 * PTR_BYTES
    # Branch model: the irreducible sparse-accumulator branch per expanded
    # term, plus (baseline only) a per-term C/F/sign classification branch
    # that the 3-way partial sort removes.
    branches = float(expansion) if reordered else float(2 * expansion + A.nnz)
    count(
        "interp.extended_i",
        flops=5 * expansion + 4 * A.nnz,
        bytes_read=a_bytes + gathered,
        bytes_written=P.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES,
        branches=branches,
    )
    if truncate:
        P = truncate_interpolation(
            P, trunc_fact, max_elmts, fused=fused_truncation
        )
    return P


def extended_i_numeric(
    A: CSRMatrix,
    S: CSRMatrix,
    cf_marker: np.ndarray,
    pattern: CSRMatrix,
    *,
    trunc_fact: float = 0.1,
    max_elmts: int = 4,
    reordered: bool = True,
    fused_truncation: bool = True,
) -> CSRMatrix | None:
    """Numeric-only extended+i weight recomputation against a frozen pattern.

    The §3.1.1 pattern-reuse idea applied to interpolation: when the
    operator's values changed but its sparsity (hence ``S``'s pattern, the
    CF split, ``Chat``, and the truncation keep-set) did not, every
    set-membership test, sparse accumulation, and size-discovery pass of
    :func:`extended_i_interpolation` is redundant — only the ``b_ik`` sums,
    the weight numerators, and the row scalings must be recomputed.

    Returns the recomputed ``P``, or ``None`` when the resulting pattern
    deviates from *pattern* (values drifted far enough to change the
    interpolation structure — e.g. a truncation keep-set flipped), in which
    case the caller must fall back to a full rebuild.  On success the
    counted record charges only the irreducible numeric work, with **zero**
    data-dependent branches.
    """
    stats: dict = {}
    with collect():
        P = extended_i_interpolation(
            A, S, cf_marker,
            trunc_fact=trunc_fact, max_elmts=max_elmts,
            reordered=reordered, fused_truncation=fused_truncation,
            _stats=stats,
        )
    if P.shape != pattern.shape or not (
        np.array_equal(P.indptr, pattern.indptr)
        and np.array_equal(P.indices, pattern.indices)
    ):
        return None
    n = A.nrows
    # Irreducible numeric work on a frozen pattern: abar sign filter and
    # diagonal accumulations over A's entries (~4 per entry), one
    # multiply-divide-accumulate per contributing distance-two term, the
    # row scaling, and the (frozen keep-set) truncation rescale.
    flops = 3 * stats["contrib"] + 4 * A.nnz + 2 * P.nnz + 2 * stats["afs_nnz"]
    a_bytes = A.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES
    gathered = stats["expansion"] * VAL_BYTES + stats["afs_nnz"] * 2 * PTR_BYTES
    count(
        "interp.extended_i.numeric_only",
        flops=flops,
        bytes_read=a_bytes + gathered + P.nnz * IDX_BYTES,
        bytes_written=P.nnz * VAL_BYTES,
        branches=0.0,
    )
    return P


def extended_i_reference(
    A: CSRMatrix,
    S: CSRMatrix,
    cf_marker: np.ndarray,
) -> CSRMatrix:
    """Literal per-row Eq. (1) with marker arrays (test oracle, untruncated)."""
    n = A.nrows
    cf_marker = np.asarray(cf_marker)
    c_idx, nc = coarse_index(cf_marker)
    diag = A.diagonal()
    strong = _strong_mask(A, S)

    def row(i):
        lo, hi = A.indptr[i], A.indptr[i + 1]
        return A.indices[lo:hi], A.data[lo:hi], strong[lo:hi]

    out_r, out_c, out_v = [], [], []
    for i in range(n):
        if cf_marker[i] > 0:
            out_r.append(i)
            out_c.append(int(c_idx[i]))
            out_v.append(1.0)
            continue
        cols_i, vals_i, strong_i = row(i)
        od = cols_i != i
        cs = cols_i[strong_i & od & (cf_marker[cols_i] > 0)]
        fs = cols_i[strong_i & od & (cf_marker[cols_i] <= 0)]
        a_ik_map = dict(zip(cols_i.tolist(), vals_i.tolist()))

        chat = set(cs.tolist())
        for k in fs:
            ck, vk, sk = row(int(k))
            chat.update(ck[sk & (ck != k) & (cf_marker[ck] > 0)].tolist())
        chat_list = sorted(chat)
        pos = {j: t for t, j in enumerate(chat_list)}

        w = np.zeros(len(chat_list))
        atil = diag[i]
        # a_ij term for j in Chat.
        for j, v in zip(cols_i, vals_i):
            if j in pos:
                w[pos[j]] += v
        # weak neighbours outside Chat.
        for j, v, s in zip(cols_i, vals_i, strong_i):
            if j != i and not s and j not in pos:
                atil += v
        for k in fs:
            ck, vk, _ = row(int(k))
            abar_k = np.where(np.sign(diag[k]) == np.sign(vk), 0.0, vk)
            mask = np.array([(c in pos) or (c == i) for c in ck])
            b_ik = float(abar_k[mask].sum()) if mask.any() else 0.0
            a_ik = a_ik_map[int(k)]
            if abs(b_ik) <= _TINY:
                atil += a_ik
                continue
            for c, ab in zip(ck, abar_k):
                if c == i:
                    atil += a_ik * ab / b_ik
                elif c in pos:
                    w[pos[c]] += a_ik * ab / b_ik
        if abs(atil) <= _TINY:
            continue
        for j, t in pos.items():
            if w[t] != 0.0:
                out_r.append(i)
                out_c.append(int(c_idx[j]))
                out_v.append(-w[t] / atil)
    return CSRMatrix.from_coo(
        (n, nc),
        np.array(out_r, dtype=np.int64),
        np.array(out_c, dtype=np.int64),
        np.array(out_v),
    )
