"""Multipass interpolation for aggressive coarsening (Stüben [35], Table 4 ``mp``).

With aggressive coarsening many F points have no strong C neighbour, so
interpolation is built in passes:

* pass 1 — F points with at least one strong C neighbour get *direct*
  interpolation from those C points;
* pass p — remaining F points with at least one strong neighbour that was
  interpolated in an earlier pass combine their neighbours' interpolation
  rows: ``w_i = -(alpha_i / a_ii) * sum_{j in S_i, done} a_ij * P_j`` with
  ``alpha_i = (sum of all off-diagonals) / (sum over the used neighbours)``
  so that interpolation of constants is preserved.

F points that never become reachable (disconnected from C through strong
paths) end with empty rows.  Each pass is one restricted SpGEMM, which is
how the counted work scales.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import IDX_BYTES, PTR_BYTES, VAL_BYTES, count
from ..sparse.csr import CSRMatrix
from ..sparse.ops import segment_sum
from ..sparse.spgemm import spgemm
from .interp_common import coarse_index, entries_in_pattern
from .interp_direct import direct_interpolation
from .truncation import truncate_interpolation

__all__ = ["multipass_interpolation"]


def multipass_interpolation(
    A: CSRMatrix,
    S: CSRMatrix,
    cf_marker: np.ndarray,
    *,
    trunc_fact: float = 0.1,
    max_elmts: int = 4,
    truncate: bool = True,
    max_passes: int = 10,
) -> CSRMatrix:
    """Multipass interpolation operator ``P`` (``n x n_coarse``)."""
    n = A.nrows
    cf_marker = np.asarray(cf_marker)
    c_idx, nc = coarse_index(cf_marker)

    rid = A.row_ids()
    cols = A.indices
    vals = A.data
    offdiag = cols != rid
    diag = A.diagonal()
    strong = entries_in_pattern(rid, cols, S)
    strong_od = strong & offdiag

    # Pass 1: F points with a strong C neighbour -> direct interpolation.
    has_strong_c = (
        segment_sum(
            np.where(strong_od & (cf_marker[cols] > 0), 1.0, 0.0), rid, n
        )
        > 0
    )
    done = cf_marker > 0
    pass1_rows = np.flatnonzero((cf_marker <= 0) & has_strong_c)
    P = direct_interpolation(A, S, cf_marker, rows=pass1_rows)
    done[pass1_rows] = True

    sum_all_od = segment_sum(np.where(offdiag, vals, 0.0), rid, n)

    npass = 1
    while not done.all() and npass < max_passes:
        todo = (cf_marker <= 0) & ~done
        # Strong neighbours already interpolated.
        usable = strong_od & todo[rid] & done[cols]
        rows_ready = segment_sum(usable.astype(np.float64), rid, n) > 0
        work = todo & rows_ready
        if not work.any():
            break
        npass += 1
        sel = usable & work[rid]
        # Row-normalization factor.
        sum_used = segment_sum(np.where(sel, vals, 0.0), rid, n)
        safe = np.abs(sum_used) > 1e-300
        alpha = np.where(safe, sum_all_od / np.where(safe, sum_used, 1.0), 0.0)

        # Combine neighbour interpolation rows: one restricted SpGEMM.
        wrows = np.flatnonzero(work)
        remap = np.full(n, -1, dtype=np.int64)
        remap[wrows] = np.arange(len(wrows))
        W = CSRMatrix.from_coo(
            (len(wrows), n), remap[rid[sel]], cols[sel], vals[sel]
        )
        contrib = spgemm(W, P, kernel="interp.multipass_pass")
        scale = -(alpha[wrows] / np.where(np.abs(diag[wrows]) > 1e-300, diag[wrows], 1.0))
        contrib = contrib.scale_rows(scale)

        # Merge the new rows into P.
        P = CSRMatrix.from_coo(
            (n, nc),
            np.concatenate([P.row_ids(), wrows[contrib.row_ids()]]),
            np.concatenate([P.indices, contrib.indices]),
            np.concatenate([P.data, contrib.data]),
        )
        done[wrows] = True

    count(
        "interp.multipass",
        bytes_read=A.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES,
        bytes_written=P.nnz * (VAL_BYTES + IDX_BYTES),
        branches=float(A.nnz),
    )
    if truncate:
        P = truncate_interpolation(P, trunc_fact, max_elmts)
    return P
