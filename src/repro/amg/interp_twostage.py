"""Two-stage extended+i interpolation for aggressive coarsening
(Yang [14], Table 4 ``2s-ei(444)``).

Aggressive coarsening runs PMIS twice (:func:`repro.amg.pmis.aggressive_pmis`),
leaving the final C points two strength-graph hops apart.  The long-range
operator is built as a product of two ordinary extended+i operators,
**truncated at every stage** (Table 4):

* stage 1: ``P1`` interpolates all points from the stage-1 C points, using
  extended+i on ``A`` with the stage-1 splitting;
* the intermediate operator ``A1 = P1^T A P1`` and its strength matrix are
  formed;
* stage 2: ``P2`` interpolates stage-1 C points from the final C points,
  using extended+i on ``A1``;
* the result is ``P = trunc(trunc(P1) * trunc(P2))``.

This reproduces the paper's cost trade-off (Fig. 7): interpolation
construction gets *more* expensive (two extended+i passes plus an extra
triple product), in exchange for lower operator complexity and fewer
iterations than multipass.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix
from ..sparse.spgemm import spgemm
from ..sparse.transpose import transpose
from ..sparse.triple_product import rap_fused
from .interp_extended import extended_i_interpolation
from .strength import strength_matrix
from .truncation import truncate_interpolation

__all__ = ["two_stage_extended_i"]


def two_stage_extended_i(
    A: CSRMatrix,
    S: CSRMatrix,
    cf_final: np.ndarray,
    cf_stage1: np.ndarray,
    *,
    theta: float = 0.25,
    max_row_sum: float = 1.0,
    trunc_fact: float = 0.1,
    max_elmts: int = 4,
    reordered: bool = True,
) -> CSRMatrix:
    """Two-stage extended+i operator ``P`` (``n x n_final_coarse``)."""
    cf_final = np.asarray(cf_final)
    cf_stage1 = np.asarray(cf_stage1)
    if np.any((cf_final > 0) & (cf_stage1 <= 0)):
        raise ValueError("final C points must be a subset of stage-1 C points")

    # Stage 1: interpolate everything from the stage-1 C points.
    P1 = extended_i_interpolation(
        A,
        S,
        cf_stage1,
        trunc_fact=trunc_fact,
        max_elmts=max_elmts,
        reordered=reordered,
        truncate=True,
    )

    # Intermediate operator on the stage-1 coarse grid.
    R1 = transpose(P1, kernel="interp.2s_transpose")
    A1 = rap_fused(R1, A, P1)
    S1 = strength_matrix(A1, theta, max_row_sum)

    # Final C points expressed in stage-1 coarse numbering.
    c1 = np.flatnonzero(cf_stage1 > 0)
    cf2 = np.where(cf_final[c1] > 0, 1, -1).astype(np.int64)

    P2 = extended_i_interpolation(
        A1,
        S1,
        cf2,
        trunc_fact=trunc_fact,
        max_elmts=max_elmts,
        reordered=reordered,
        truncate=True,
    )

    P = spgemm(P1, P2, kernel="interp.2s_product")
    return truncate_interpolation(P, trunc_fact, max_elmts)
