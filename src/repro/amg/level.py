"""One level of the AMG hierarchy and its grid-transfer applications."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import OptimizationFlags
from ..sparse.csr import CSRMatrix
from ..sparse.spmv import (
    spmv,
    spmv_identity_block,
    spmv_identity_block_multi,
    spmv_identity_block_transposed,
    spmv_identity_block_transposed_multi,
    spmv_multi,
    spmv_transposed,
    spmv_transposed_multi,
)
from .smoothers import HybridGSSmoother

__all__ = ["Level"]


@dataclass
class Level:
    """Level *l* of the hierarchy.

    ``A`` is stored in this level's own ordering (CF-permuted when the
    ``cf_reorder`` optimization is on, so C points occupy rows
    ``[0, n_coarse)``); the parent level's ``P``/``R`` columns are expressed
    in this ordering too, so no vector ever needs permuting between levels.
    """

    A: CSRMatrix
    cf_marker: np.ndarray | None = None
    #: Full interpolation to the next level (rows: this level's ordering).
    P: CSRMatrix | None = None
    #: Fine-point block of P when CF-reordered (``P = [I; P_F]``).
    P_F: CSRMatrix | None = None
    #: Kept restriction ``R = P^T`` (``keep_transpose`` optimization).
    R: CSRMatrix | None = None
    smoother: HybridGSSmoother | None = None
    #: Permutation from the level's *incoming* ordering (the parent's coarse
    #: numbering, or the user ordering at level 0) to the stored ordering.
    new2old: np.ndarray | None = None
    #: When the *next* level was CF-permuted, the coarse block of ``P`` is a
    #: permutation matrix rather than the identity: ``P[i, cperm[i]] = 1``
    #: for coarse point *i* (``cperm = old2new`` of the child level).
    cperm: np.ndarray | None = None
    n_coarse: int = 0

    @property
    def n(self) -> int:
        return self.A.nrows

    # -- grid transfers ---------------------------------------------------
    def restrict(self, r: np.ndarray, flags: OptimizationFlags) -> np.ndarray:
        """``r_coarse = R r`` with the configured restriction strategy."""
        if flags.cf_reorder and self.P_F is not None:
            return spmv_identity_block_transposed(self.P_F, r, self.cperm)
        if flags.keep_transpose and self.R is not None:
            return spmv(self.R, r, kernel="spmv.restrict")
        # Baseline: transpose P for every restriction (§3.2).
        return spmv_transposed(self.P, r, materialize=True)

    def interpolate(self, xc: np.ndarray, flags: OptimizationFlags) -> np.ndarray:
        """``x_fine = P x_coarse``."""
        if flags.cf_reorder and self.P_F is not None:
            return spmv_identity_block(self.P_F, xc, self.cperm)
        return spmv(self.P, xc, kernel="spmv.interp")

    # -- blocked grid transfers (multiple RHS) ----------------------------
    def restrict_multi(self, R: np.ndarray, flags: OptimizationFlags) -> np.ndarray:
        """``R_coarse = R r`` column-wise on an ``(n, k)`` block."""
        if flags.cf_reorder and self.P_F is not None:
            return spmv_identity_block_transposed_multi(self.P_F, R, self.cperm)
        if flags.keep_transpose and self.R is not None:
            return spmv_multi(self.R, R, kernel="spmv.restrict")
        return spmv_transposed_multi(self.P, R, materialize=True)

    def interpolate_multi(self, Xc: np.ndarray, flags: OptimizationFlags) -> np.ndarray:
        """``X_fine = P X_coarse`` column-wise on an ``(nc, k)`` block."""
        if flags.cf_reorder and self.P_F is not None:
            return spmv_identity_block_multi(self.P_F, Xc, self.cperm)
        return spmv_multi(self.P, Xc, kernel="spmv.interp")
