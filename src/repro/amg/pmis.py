"""PMIS coarsening and aggressive (two-pass) coarsening (§2, Table 3/4).

PMIS (parallel modified independent set, De Sterck/Yang) selects coarse
points as a maximal independent set of the strong-connection graph weighted
by ``measure(i) = |{j : i strongly influences j}| + rand_i``:

1. points that influence nobody are made F immediately;
2. repeatedly, every undecided point whose measure beats all its undecided
   neighbours' becomes C, and undecided points that strongly depend on a new
   C point become F.

The random tie-break stream mirrors the paper's §3.3 note: the baseline
HYPRE uses a serial RNG; the optimized implementation uses a parallel
(per-thread-chunk) generator, so base and opt coarsenings differ slightly
and iteration counts differ by ~2% on average (§5.2).  Pass
``parallel_rng=False`` to reproduce the baseline stream bit-for-bit.

Aggressive coarsening (Table 4, top level of ``2s-ei(444)``/``mp``): a
second PMIS pass over the C points of the first pass, connected by strong
paths of length <= 2, keeping only the surviving points as coarse.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import IDX_BYTES, PTR_BYTES, count
from ..sparse.csr import CSRMatrix
from ..sparse.ops import segment_sum
from ..sparse.spgemm import spgemm
from ..sparse.transpose import transpose

__all__ = ["pmis", "aggressive_pmis", "random_measures", "C_PT", "F_PT"]

C_PT = 1
F_PT = -1


def random_measures(n: int, seed: int, nthreads: int, parallel: bool) -> np.ndarray:
    """The fractional part of the PMIS measure.

    ``parallel=True`` models MKL's parallel RNG: the index range is split
    into ``nthreads`` chunks, each drawn from an independent spawned stream.
    ``parallel=False`` draws the whole vector from one serial stream (the
    baseline HYPRE generator).  Values are in ``[0, 1)``.
    """
    if not parallel or nthreads <= 1:
        return np.random.default_rng(seed).random(n)
    out = np.empty(n, dtype=np.float64)
    children = np.random.SeedSequence(seed).spawn(nthreads)
    bounds = np.linspace(0, n, nthreads + 1).astype(np.int64)
    for t in range(nthreads):
        lo, hi = bounds[t], bounds[t + 1]
        out[lo:hi] = np.random.default_rng(children[t]).random(hi - lo)
    return out


def _sym_pattern(S: CSRMatrix) -> CSRMatrix:
    """Union pattern of ``S`` and ``S^T`` (unit values, no diagonal)."""
    St = transpose(S, kernel="pmis.transpose")
    rows = np.concatenate([S.row_ids(), St.row_ids()])
    cols = np.concatenate([S.indices, St.indices])
    adj = CSRMatrix.from_coo(S.shape, rows, cols, np.ones(len(rows)))
    return adj


def pmis(
    S: CSRMatrix,
    *,
    seed: int = 0,
    nthreads: int = 14,
    parallel_rng: bool = True,
    measures: np.ndarray | None = None,
    parallel: bool = True,
) -> np.ndarray:
    """PMIS CF splitting on strength matrix *S*.

    Returns ``cf_marker`` with ``C_PT`` (= 1) for coarse and ``F_PT`` (= -1)
    for fine points.  Points with no strong connections in either direction
    become F points with empty interpolation rows.
    """
    n = S.nrows
    St = transpose(S, kernel="pmis.transpose")
    influence = St.row_nnz().astype(np.float64)
    if measures is None:
        measures = random_measures(n, seed, nthreads, parallel_rng)
    measure = influence + measures

    adj = _sym_pattern(S)
    arid = adj.row_ids()

    state = np.zeros(n, dtype=np.int8)  # 0 undecided
    # Points that influence nobody cannot serve as coarse points.
    state[influence < 1] = F_PT

    rounds = 0
    while True:
        undecided = state == 0
        if not undecided.any():
            break
        rounds += 1
        # Max measure among undecided neighbours of each point.
        nbr_vals = np.where(undecided[adj.indices], measure[adj.indices], -np.inf)
        nbr_max = np.full(n, -np.inf)
        np.maximum.at(nbr_max, arid, nbr_vals)
        new_c = undecided & (measure > nbr_max)
        if not new_c.any():
            # Numerically tied measures (vanishingly unlikely with random
            # fractions): break ties by index to guarantee progress.
            cand = np.flatnonzero(undecided)
            new_c = np.zeros(n, dtype=bool)
            new_c[cand[np.argmax(measure[cand])]] = True
        state[new_c] = C_PT
        # Undecided neighbours of new C points (in the symmetrized strong
        # graph) become F — this is what makes C an independent set even
        # when the strength relation is asymmetric.
        adj_c = segment_sum(
            new_c[adj.indices].astype(np.float64), arid, n
        ) > 0
        state[(state == 0) & adj_c] = F_PT

        count(
            "pmis.round",
            bytes_read=adj.nnz * IDX_BYTES + n * (IDX_BYTES + PTR_BYTES),
            branches=float(undecided.sum()),
            parallel=parallel,
        )

    count("pmis.finalize", bytes_written=n * IDX_BYTES)
    return state.astype(np.int64)


def aggressive_pmis(
    S: CSRMatrix,
    *,
    seed: int = 0,
    nthreads: int = 14,
    parallel_rng: bool = True,
    parallel: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Two-pass aggressive coarsening.

    Returns ``(cf_final, cf_stage1)``.  ``cf_stage1`` is the ordinary PMIS
    splitting; ``cf_final`` keeps only the C points that survive a second
    PMIS over the distance-<=2 strong graph restricted to stage-1 C points.
    """
    cf1 = pmis(S, seed=seed, nthreads=nthreads, parallel_rng=parallel_rng,
               parallel=parallel)
    c1 = np.flatnonzero(cf1 == C_PT)
    nc1 = len(c1)
    if nc1 <= 1:
        return cf1.copy(), cf1

    # Distance-2 strength among stage-1 C points: pattern of (S + S @ S)
    # restricted to C1 x C1, diagonal removed.
    S2 = spgemm(S, S, kernel="pmis.dist2")
    rows = np.concatenate([S.row_ids(), S2.row_ids()])
    cols = np.concatenate([S.indices, S2.indices])
    keep = (cf1[rows] == C_PT) & (cf1[cols] == C_PT) & (rows != cols)
    c_index = np.cumsum(cf1 == C_PT) - 1
    Sc = CSRMatrix.from_coo(
        (nc1, nc1), c_index[rows[keep]], c_index[cols[keep]], np.ones(int(keep.sum()))
    )
    Sc = CSRMatrix(Sc.shape, Sc.indptr, Sc.indices, np.ones(Sc.nnz))

    cf2 = pmis(Sc, seed=seed + 1, nthreads=nthreads, parallel_rng=parallel_rng,
               parallel=parallel)
    cf_final = np.full(S.nrows, F_PT, dtype=np.int64)
    cf_final[c1[cf2 == C_PT]] = C_PT
    return cf_final, cf1
