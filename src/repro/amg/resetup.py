"""Pattern-reuse numeric resetup: refresh a hierarchy's numerics (§3.1.1).

Time-dependent and Newton-type workloads re-solve with operators whose
**values change but sparsity does not**.  For those, every symbolic
decision of the setup phase — the strength pattern, the PMIS CF split, the
CF permutation, the interpolation pattern (including the truncation
keep-set), and the Galerkin product patterns — is identical across builds,
so all of the branchy symbolic work can be frozen once and only the
numerics recomputed.  This module implements both halves:

* **Capture** (:class:`PlanBuilder`, driven by
  :func:`~repro.amg.setup.build_hierarchy` with ``capture_plan=True``):
  while a hierarchy is built, a per-level :class:`LevelPlan` freezes the
  CF split's entry permutation, the strength mask, the strength matrix
  (a pattern matrix — its unit values never change), the raw and stored
  interpolation patterns, and the RAP reuse plan
  (:class:`~repro.sparse.triple_product.RAPCFBlockPlan` /
  :class:`~repro.sparse.triple_product.RAPFusedPlan`).  Capture is
  **silent**: all replay work runs in discarded collection scopes, so a
  capturing build emits exactly the kernel records of a plain one.

* **Refresh** (:func:`refresh_hierarchy`, the implementation of
  :meth:`Hierarchy.refresh <repro.amg.setup.Hierarchy.refresh>`): re-runs
  setup branch-free through the frozen plans under a dedicated
  ``Resetup`` phase and returns a **new** hierarchy — the input hierarchy
  is never mutated, so handles and cache entries that still reference it
  keep solving the operator it was built for (hierarchies are frozen once
  handed out; the two share only the immutable plan and symbolic arrays).
  Cheap vectorized guards validate that the frozen symbolic artifacts are
  still correct for the new values — the level-0 sparsity pattern, the
  per-level strength mask, and the interpolation pattern produced by each
  numeric recomputation.  Any guard failure logs its reason on the
  ``repro.amg.resetup`` logger and falls back to a full (re-capturing)
  rebuild, so ``refresh`` is always correct and at worst costs one cold
  setup.

Bit-identity: on a same-pattern update, every per-level matrix produced by
refresh (``A``, ``P``, ``P_F``, ``R``) is bit-identical to what a
from-scratch :func:`~repro.amg.setup.build_hierarchy` on the new values
would store — the guards are exactly the conditions under which the fresh
build's symbolic decisions coincide with the frozen ones, and every
numeric kernel (gathers through frozen entry maps,
:func:`~repro.sparse.spgemm.spgemm_numeric`,
:func:`~repro.sparse.spgemm.sp_add_numeric`, interpolation replays)
reproduces the fresh kernel's floating-point operation order exactly.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..config import AMGConfig
from ..perf.counters import IDX_BYTES, VAL_BYTES, collect, count, phase
from ..sparse.csr import CSRMatrix
from ..sparse.ops import row_ids_from_indptr
from ..sparse.triple_product import (
    RAPCFBlockPlan,
    RAPFusedPlan,
    rap_cf_block_numeric,
    rap_fused_numeric,
)
from .interp_classical import classical_numeric
from .interp_direct import direct_numeric
from .interp_extended import extended_i_numeric
from .strength import _strong_connections_mask

logger = logging.getLogger("repro.amg.resetup")

__all__ = ["LevelPlan", "SetupPlan", "PlanBuilder", "refresh_hierarchy"]


@dataclass
class LevelPlan:
    """Frozen symbolic state of one setup level (see module docstring)."""

    #: incoming-entry -> stored-entry gather map for the level operator
    #: (``stored.data = incoming.data[entry_perm]``); None when the level
    #: is not CF-permuted (stored order == incoming order).
    entry_perm: np.ndarray | None
    #: frozen strong-connection mask over the stored operator's entries
    strong_mask: np.ndarray
    #: frozen strength matrix (unit values — never changes on refresh)
    S: CSRMatrix
    #: interpolation family: "extended_i" | "classical" | "direct"
    interp: str
    #: raw interpolation operator as the RAP consumed it (pre column
    #: renumbering); pattern reference for the refresh guard.
    p_raw: CSRMatrix | None = None
    #: RAP reuse plan for this level's Galerkin product
    rap: RAPCFBlockPlan | RAPFusedPlan | None = None
    #: raw-P -> stored-P entry map (column renumbering + re-sort); None
    #: when the child level was never CF-permuted (stored P == raw P).
    p_perm: np.ndarray | None = None
    #: frozen stored (renumbered) P, pattern reference when p_perm is set
    stored_p: CSRMatrix | None = None
    #: stored-P -> R transpose permutation for kept ``R = P^T``
    r_perm: np.ndarray | None = None
    #: frozen R pattern when r_perm is set
    r_frozen: CSRMatrix | None = None


@dataclass
class SetupPlan:
    """Everything :func:`refresh_hierarchy` needs to redo setup branch-free."""

    #: level-0 operator pattern (the refresh compatibility guard)
    a0_shape: tuple[int, int]
    a0_indptr: np.ndarray
    a0_indices: np.ndarray
    levels: list[LevelPlan] = field(default_factory=list)


def _entry_permutation(
    in_indptr: np.ndarray, in_indices: np.ndarray, ncols: int,
    stored: CSRMatrix, new2old: np.ndarray,
) -> np.ndarray | None:
    """Gather map from incoming entry order to CF-permuted stored order.

    Matches stored entries to incoming ones through their original
    ``(row, col)`` keys; the incoming matrix must be canonical (sorted,
    duplicate-free), in which case its key sequence is strictly
    increasing.  Returns None if any key fails to match (non-canonical
    input — capture is then unsupported).
    """
    r_old = new2old[stored.row_ids()]
    c_old = new2old[stored.indices]
    keys_stored = r_old * np.int64(ncols) + c_old
    keys_in = row_ids_from_indptr(in_indptr) * np.int64(ncols) + in_indices
    perm = np.searchsorted(keys_in, keys_stored)
    if perm.size and perm.max() >= len(keys_in):
        return None
    if not np.array_equal(keys_in[perm], keys_stored):
        return None
    return perm.astype(np.int64)


class PlanBuilder:
    """Incrementally captures a :class:`SetupPlan` during a hierarchy build.

    Created through :meth:`begin`, which returns None for configurations
    the resetup path does not support (aggressive-coarsening interpolation
    families, non-plan-capable RAP schemes) — the build then proceeds
    exactly as without capture and the hierarchy simply carries no plan.
    All methods are cheap and silent (no kernel records).
    """

    SUPPORTED_RAP = ("cf_block", "fused")

    def __init__(self, A0: CSRMatrix, config: AMGConfig) -> None:
        self.config = config
        self.plan = SetupPlan(A0.shape, A0.indptr, A0.indices)
        self._dead = False
        self._incoming: CSRMatrix = A0

    @classmethod
    def begin(cls, A0: CSRMatrix, config: AMGConfig) -> "PlanBuilder | None":
        if config.interp in ("2s-ei", "multipass"):
            return None  # aggressive-coarsening families: no numeric path
        if config.flags.rap_scheme not in cls.SUPPORTED_RAP:
            return None
        return cls(A0, config)

    def abort(self, reason: str) -> None:
        if not self._dead:
            logger.debug("setup plan capture aborted: %s", reason)
            self._dead = True

    def start_level(self, A_incoming: CSRMatrix) -> None:
        """Snapshot the level operator before any CF reordering."""
        self._incoming = A_incoming

    def capture_level(self, lvl, S: CSRMatrix) -> None:
        """Freeze the split/reorder/strength state of one level.

        Called once the level's ``A``/``cf_marker``/``n_coarse`` are final
        (post CF permutation), with the (permuted) strength matrix.
        """
        if self._dead:
            return
        config = self.config
        A = lvl.A
        if lvl.new2old is not None:
            entry_perm = _entry_permutation(
                self._incoming.indptr, self._incoming.indices,
                self._incoming.ncols, A, lvl.new2old,
            )
            if entry_perm is None:
                self.abort("level operator is not canonical CSR")
                return
        else:
            entry_perm = None
        mask = _strong_connections_mask(
            A, config.strength_threshold, config.max_row_sum
        )
        if config.interp == "classical":
            interp = "classical"
        elif config.interp == "direct":
            interp = "direct"
        else:
            interp = "extended_i"
        self.plan.levels.append(LevelPlan(
            entry_perm=entry_perm, strong_mask=mask, S=S, interp=interp,
        ))

    def capture_interp(self, P: CSRMatrix) -> None:
        """Freeze the raw (pre-renumbering) interpolation pattern."""
        if self._dead:
            return
        self.plan.levels[-1].p_raw = P

    def capture_rap(self, rap_plan) -> None:
        if self._dead:
            return
        self.plan.levels[-1].rap = rap_plan

    def wants_rap_plan(self) -> bool:
        """Whether the Galerkin product should run its plan-capturing twin."""
        return not self._dead

    def finish(self, levels) -> SetupPlan | None:
        """Resolve cross-level artifacts once every ordering is final.

        Computes, per level, the raw->stored interpolation entry map (the
        child level's column renumbering re-sorts entries) and the kept
        ``R = P^T`` transpose permutation.  Returns the completed plan, or
        None if capture was aborted.
        """
        if self._dead:
            return None
        flags = self.config.flags
        for l, lp in enumerate(self.plan.levels):
            if lp.p_raw is None or lp.rap is None:
                self.abort(f"level {l} plan is incomplete")
                return None
            child = levels[l + 1]
            stored_p = levels[l].P
            if child.new2old is not None:
                raw = lp.p_raw
                keys_raw = (raw.row_ids() * np.int64(raw.ncols)
                            + raw.indices)
                c_raw = child.new2old[stored_p.indices]
                keys_stored = (stored_p.row_ids() * np.int64(raw.ncols)
                               + c_raw)
                perm = np.searchsorted(keys_raw, keys_stored)
                if not np.array_equal(keys_raw[perm], keys_stored):
                    self.abort(f"level {l} interpolation is not canonical")
                    return None
                lp.p_perm = perm.astype(np.int64)
                lp.stored_p = stored_p
            if levels[l].R is not None:
                # Kept transpose: capture R's entry permutation by pushing
                # entry ids through the transpose (silently).
                with collect():
                    from ..sparse.transpose import transpose

                    rid = transpose(CSRMatrix(
                        stored_p.shape, stored_p.indptr, stored_p.indices,
                        np.arange(stored_p.nnz, dtype=np.float64),
                    ))
                lp.r_perm = rid.data.astype(np.int64)
                lp.r_frozen = levels[l].R
        del flags
        return self.plan


def _interp_numeric(lp: LevelPlan, A: CSRMatrix, cf_marker: np.ndarray,
                    config: AMGConfig) -> CSRMatrix | None:
    flags = config.flags
    if lp.interp == "classical":
        return classical_numeric(
            A, lp.S, cf_marker, lp.p_raw,
            trunc_fact=config.trunc_fact, max_elmts=config.max_elmts,
            fused_truncation=flags.fused_truncation,
        )
    if lp.interp == "direct":
        return direct_numeric(
            A, lp.S, cf_marker, lp.p_raw,
            trunc_fact=config.trunc_fact, max_elmts=config.max_elmts,
            fused_truncation=flags.fused_truncation,
        )
    return extended_i_numeric(
        A, lp.S, cf_marker, lp.p_raw,
        trunc_fact=config.trunc_fact, max_elmts=config.max_elmts,
        reordered=flags.three_way_partition,
        fused_truncation=flags.fused_truncation,
    )


def refresh_hierarchy(hierarchy, A_new: CSRMatrix):
    """Numeric-only resetup of *hierarchy* for same-pattern operator *A_new*.

    Always returns a **new** hierarchy: on the fast path a freshly
    assembled one whose per-level matrices carry *A_new*'s numerics
    (sharing only the immutable symbolic state — CF markers, permutations,
    and the captured plan — with the input), or a from-scratch build when a
    guard detects that the frozen symbolic state no longer matches the new
    values (reason logged on ``repro.amg.resetup``).  *hierarchy* itself is
    never mutated, so callers holding it (solver handles, cache entries)
    can keep solving the operator it was built for.

    All modeled work is charged under the ``Resetup`` phase; the numeric
    path executes zero data-dependent branches.
    """
    from ..analysis import check_hierarchy, checking
    from .level import Level
    from .setup import (
        Hierarchy,
        _build_coarse_solver,
        _build_smoothers,
        build_hierarchy,
    )
    from .smoothers import HybridGSSmoother
    from .solveplan import attach_solve_plan, refresh_plans

    config = hierarchy.config
    plan = hierarchy.plan

    def fallback(reason: str):
        logger.info("resetup falling back to full rebuild: %s", reason)
        return build_hierarchy(A_new, config, capture_plan=True)

    if A_new.nrows != A_new.ncols:
        raise ValueError("AMG requires a square operator")
    if plan is None:
        return fallback("hierarchy carries no setup plan "
                        "(capture disabled or config unsupported)")
    if (A_new.shape != plan.a0_shape
            or not np.array_equal(A_new.indptr, plan.a0_indptr)
            or not np.array_equal(A_new.indices, plan.a0_indices)):
        return fallback("operator sparsity pattern differs from the "
                        "captured hierarchy")

    flags = config.flags
    levels = hierarchy.levels
    staged: list[dict] = []
    incoming = A_new
    with phase("Resetup"):
        for l, lp in enumerate(plan.levels):
            lvl = levels[l]
            if lp.entry_perm is not None:
                stored = CSRMatrix(lvl.A.shape, lvl.A.indptr, lvl.A.indices,
                                   incoming.data[lp.entry_perm])
                count(
                    "resetup.reorder_gather",
                    bytes_read=stored.nnz * (VAL_BYTES + IDX_BYTES),
                    bytes_written=stored.nnz * VAL_BYTES,
                    branches=0.0,
                )
            else:
                stored = CSRMatrix(lvl.A.shape, lvl.A.indptr, lvl.A.indices,
                                   incoming.data)
            # Guard: the frozen strength pattern (hence the frozen CF
            # split and permutation) must still hold for the new values.
            mask = _strong_connections_mask(
                stored, config.strength_threshold, config.max_row_sum
            )
            count(
                "resetup.guard",
                flops=2 * stored.nnz,
                bytes_read=stored.nnz * (VAL_BYTES + IDX_BYTES),
                branches=0.0,
            )
            if not np.array_equal(mask, lp.strong_mask):
                return fallback(
                    f"strength-of-connection pattern drifted at level {l}")

            P_raw = _interp_numeric(lp, stored, lvl.cf_marker, config)
            if P_raw is None:
                return fallback(
                    f"interpolation pattern drifted at level {l}")

            if isinstance(lp.rap, RAPCFBlockPlan):
                P_F_raw = P_raw.extract_rows(
                    np.arange(lvl.n_coarse, stored.nrows, dtype=np.int64))
                A_next = rap_cf_block_numeric(lp.rap, stored, P_F_raw)
            else:
                A_next = rap_fused_numeric(lp.rap, stored, P_raw)

            if lp.p_perm is not None:
                P_stored = CSRMatrix(
                    lp.stored_p.shape, lp.stored_p.indptr,
                    lp.stored_p.indices, P_raw.data[lp.p_perm])
                count(
                    "resetup.renumber_gather",
                    bytes_read=P_stored.nnz * (VAL_BYTES + IDX_BYTES),
                    bytes_written=P_stored.nnz * VAL_BYTES,
                    branches=0.0,
                )
            else:
                P_stored = P_raw

            entry: dict = {"A": stored, "P": P_stored}
            if flags.cf_reorder:
                entry["P_F"] = P_stored.extract_rows(
                    np.arange(lvl.n_coarse, stored.nrows, dtype=np.int64))
            if lp.r_perm is not None:
                entry["R"] = CSRMatrix(
                    lp.r_frozen.shape, lp.r_frozen.indptr,
                    lp.r_frozen.indices, P_stored.data[lp.r_perm])
                count(
                    "resetup.transpose_gather",
                    bytes_read=P_stored.nnz * (VAL_BYTES + IDX_BYTES),
                    bytes_written=P_stored.nnz * VAL_BYTES,
                    branches=0.0,
                )
            staged.append(entry)
            incoming = A_next

        # All guards passed: assemble a fresh hierarchy around the staged
        # numerics.  The input hierarchy is left untouched — it may still
        # be referenced by live solver handles or the cache's exact tier,
        # so its levels must stay frozen.  The new levels share only the
        # immutable symbolic arrays (CF markers, permutations) and the
        # captured plan, which refresh never writes to.
        new_levels: list[Level] = []
        for entry, lvl in zip(staged, levels):
            new_levels.append(Level(
                A=entry["A"],
                cf_marker=lvl.cf_marker,
                P=entry["P"],
                P_F=entry.get("P_F"),
                R=entry.get("R"),
                new2old=lvl.new2old,
                cperm=lvl.cperm,
                n_coarse=lvl.n_coarse,
            ))
        old_last = levels[-1]
        new_levels.append(Level(
            A=incoming,
            cf_marker=old_last.cf_marker,
            new2old=old_last.new2old,
            cperm=old_last.cperm,
            n_coarse=old_last.n_coarse,
        ))

        # Smoothers and the coarse solve are rebuilt from the refreshed
        # operators.  Their construction is replayed silently and charged
        # as numeric-only records: the schedules, colorings, and thread
        # partitions are pattern-only (reused), so the real numeric work
        # is the diagonal/value re-extraction and, on the coarsest level,
        # the dense refactorization.
        with collect():
            old_smoothers = [lv.smoother for lv in levels[:-1]]
            if all(sm is not None for sm in old_smoothers):
                # Numeric-only rebuild: share the wavefront schedules, thread
                # partitions, and colorings (pure pattern functions) and
                # regather values/diagonals — bit-identical to, and much
                # cheaper than, replaying the constructors.
                for nl, sm in zip(new_levels[:-1], old_smoothers):
                    nl.smoother = HybridGSSmoother.from_numeric(sm, nl.A)
            else:
                _build_smoothers(new_levels, config)
            coarse = _build_coarse_solver(new_levels, config)
        refreshed = Hierarchy(
            levels=new_levels, coarse_solver=coarse, config=config, plan=plan
        )
        # Solve plan: rebuild the numeric parts only, sharing every index
        # array / flat-gather cache / record table with the old plan.
        if getattr(hierarchy, "solve_plan", None) is not None:
            refresh_plans(refreshed, hierarchy)
        else:
            attach_solve_plan(refreshed)
        fine_nnz = sum(lv.A.nnz for lv in new_levels[:-1])
        count(
            "resetup.smoother",
            flops=2.0 * sum(lv.A.nrows for lv in new_levels[:-1]),
            bytes_read=fine_nnz * (VAL_BYTES + IDX_BYTES),
            bytes_written=sum(lv.A.nrows for lv in new_levels[:-1]) * VAL_BYTES,
            branches=0.0,
        )
        if coarse.direct:
            count(
                "resetup.coarse_factorize",
                flops=2.0 * coarse.n ** 3,
                bytes_read=coarse.n * coarse.n * VAL_BYTES,
                bytes_written=coarse.n * coarse.n * VAL_BYTES,
                branches=0.0,
            )

    if checking():
        check_hierarchy(refreshed)
    return refreshed
