"""AMG setup phase: build the multigrid hierarchy (§3.1).

Per level: strength matrix -> PMIS (or aggressive PMIS) -> optional CF
reordering of the level operator -> interpolation (+ fused truncation) ->
Galerkin product.  The paper's Fig. 5 breakdown buckets are attributed here:
``Strength+Coarsen``, ``Interp``, ``RAP``, ``Setup_etc`` (reordering
pre-processing, kept transposes, smoother/coarse-solver setup).

Ordering convention (see :class:`repro.amg.level.Level`): every level matrix
lives in its own ordering; when ``cf_reorder`` is on, a level is permuted
C-points-first as soon as its splitting is known, and the *parent's*
interpolation columns are renumbered once to match — after which vectors
flow through the hierarchy with no per-cycle permutations.

Pattern reuse (§3.1.1 applied to the whole setup): ``build_hierarchy(...,
capture_plan=True)`` additionally freezes every symbolic decision into a
:class:`~repro.amg.resetup.SetupPlan` carried on the hierarchy, and
:meth:`Hierarchy.refresh` re-runs setup numerically (branch-free) through
that plan for matrix sequences that share one sparsity pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import check_csr, check_hierarchy, checking
from ..config import AMGConfig
from ..perf.counters import phase
from ..sparse.csr import CSRMatrix
from ..sparse.reorder import cf_permutation, partition_rows_by_category, permute_matrix
from ..sparse.transpose import transpose
from ..sparse.triple_product import (
    rap_cf_block,
    rap_cf_block_plan,
    rap_fused,
    rap_fused_plan,
    rap_hypre_fusion,
    rap_unfused,
)
from .coarse import CoarseSolver
from .coarsen_rs import rs_coarsening
from .interp_classical import classical_interpolation
from .interp_direct import direct_interpolation
from .interp_extended import extended_i_interpolation
from .interp_multipass import multipass_interpolation
from .interp_twostage import two_stage_extended_i
from .level import Level
from .pmis import aggressive_pmis, pmis
from .resetup import PlanBuilder, SetupPlan
from .smoothers import HybridGSSmoother
from .solveplan import attach_solve_plan
from .strength import strength_matrix
from .truncation import truncate_interpolation

__all__ = ["Hierarchy", "build_hierarchy"]

_SMOOTHER_VARIANTS = {
    "hybrid_gs": "hybrid",
    "lex": "lex",
    "multicolor": "multicolor",
    "jacobi": "jacobi",
    "l1_jacobi": "l1_jacobi",
    "chebyshev": "chebyshev",
}


@dataclass
class Hierarchy:
    """The complete multigrid hierarchy produced by :func:`build_hierarchy`."""

    levels: list[Level]
    coarse_solver: CoarseSolver
    config: AMGConfig
    #: frozen symbolic setup state for pattern-reuse resetup; None unless
    #: the hierarchy was built with ``capture_plan=True`` (and the config
    #: is plan-capable — see :meth:`repro.amg.resetup.PlanBuilder.begin`).
    plan: SetupPlan | None = None
    #: frozen solve-phase schedules (:class:`repro.amg.solveplan.SolvePlan`),
    #: attached at the end of every build; execution through it is gated by
    #: ``REPRO_SOLVEPLAN`` and bit-identical to the legacy path.
    solve_plan: object | None = None

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def refresh(self, A_new: CSRMatrix) -> "Hierarchy":
        """Numeric-only resetup for a same-pattern operator *A_new*.

        Re-runs the setup phase branch-free through the captured
        :class:`~repro.amg.resetup.SetupPlan`, producing per-level matrices
        bit-identical to a from-scratch build on *A_new*.  Falls back to a
        full (re-capturing) rebuild when no plan was captured or a guard
        detects symbolic drift.  Always returns a **new** hierarchy;
        ``self`` is never mutated and stays valid for the operator it was
        built with (cached or handed-out hierarchies are frozen, so a
        refresh can never rewire a live solver to different numerics).
        """
        from .resetup import refresh_hierarchy

        return refresh_hierarchy(self, A_new)

    def operator_complexity(self) -> float:
        """Sum of level nnz over finest nnz (§2)."""
        return sum(l.A.nnz for l in self.levels) / self.levels[0].A.nnz

    def grid_complexity(self) -> float:
        return sum(l.A.nrows for l in self.levels) / self.levels[0].A.nrows

    def level_sizes(self) -> list[tuple[int, int]]:
        return [(l.A.nrows, l.A.nnz) for l in self.levels]


def _build_interp(A, S, cf, cf_stage1, config: AMGConfig, level: int) -> CSRMatrix:
    flags = config.flags
    aggressive = cf_stage1 is not None
    if aggressive and config.interp == "2s-ei":
        return two_stage_extended_i(
            A, S, cf, cf_stage1,
            theta=config.strength_threshold,
            max_row_sum=config.max_row_sum,
            trunc_fact=config.trunc_fact,
            max_elmts=config.max_elmts,
            reordered=flags.three_way_partition,
        )
    if aggressive and config.interp == "multipass":
        return multipass_interpolation(
            A, S, cf, trunc_fact=config.trunc_fact, max_elmts=config.max_elmts
        )
    if config.interp == "classical":
        P = classical_interpolation(A, S, cf)
        return truncate_interpolation(
            P, config.trunc_fact, config.max_elmts, fused=flags.fused_truncation
        )
    if config.interp == "direct":
        P = direct_interpolation(A, S, cf)
        return truncate_interpolation(
            P, config.trunc_fact, config.max_elmts, fused=flags.fused_truncation
        )
    # Default / deeper levels: extended+i.
    return extended_i_interpolation(
        A, S, cf,
        trunc_fact=config.trunc_fact,
        max_elmts=config.max_elmts,
        reordered=flags.three_way_partition,
        fused_truncation=flags.fused_truncation,
    )


def _galerkin(
    A: CSRMatrix,
    P: CSRMatrix,
    cf: np.ndarray,
    config: AMGConfig,
    plan_builder: PlanBuilder | None = None,
) -> CSRMatrix:
    flags = config.flags
    scheme = flags.rap_scheme
    capture = plan_builder is not None and plan_builder.wants_rap_plan()
    if scheme == "cf_block":
        nc = int((cf > 0).sum())
        P_F = P.extract_rows(np.arange(nc, A.nrows, dtype=np.int64))
        kwargs = dict(
            method="one_pass" if flags.spgemm_one_pass else "two_pass",
            already_partitioned=flags.cf_reorder and flags.three_way_partition,
        )
        if capture:
            A_next, rap_plan = rap_cf_block_plan(A, P_F, cf, **kwargs)
            plan_builder.capture_rap(rap_plan)
            return A_next
        return rap_cf_block(A, P_F, cf, **kwargs)
    R = transpose(P, kernel="rap.transpose", parallel=flags.parallel_setup_kernels)
    if scheme == "fused":
        if capture:
            A_next, rap_plan = rap_fused_plan(R, A, P)
            plan_builder.capture_rap(rap_plan)
            return A_next
        return rap_fused(R, A, P)
    if scheme == "hypre":
        return rap_hypre_fusion(R, A, P, two_pass=not flags.spgemm_one_pass)
    if scheme == "unfused":
        return rap_unfused(
            R, A, P, method="one_pass" if flags.spgemm_one_pass else "two_pass"
        )
    raise ValueError(f"unknown rap_scheme {scheme!r}")


def _build_smoothers(levels: list[Level], config: AMGConfig) -> None:
    """Construct the per-level smoothers (every level but the coarsest)."""
    flags = config.flags
    for l in range(len(levels) - 1):
        lvl = levels[l]
        nthreads_l = config.nthreads
        if config.gpu_rows_per_block > 0:
            nthreads_l = max(4, lvl.A.nrows // config.gpu_rows_per_block)
        lvl.smoother = HybridGSSmoother(
            lvl.A,
            nthreads=nthreads_l,
            cf_marker=lvl.cf_marker,
            variant=_SMOOTHER_VARIANTS[config.smoother],
            optimized=flags.three_way_partition,
            cf_contiguous=flags.cf_reorder,
            seed=config.seed,
        )


def _build_coarse_solver(levels: list[Level], config: AMGConfig) -> CoarseSolver:
    return CoarseSolver(
        levels[-1].A,
        dense_threshold=config.dense_coarse_threshold,
        nthreads=config.nthreads,
    )


def build_hierarchy(
    A0: CSRMatrix,
    config: AMGConfig | None = None,
    *,
    capture_plan: bool = False,
) -> Hierarchy:
    """Run the AMG setup phase on operator *A0*.

    With ``capture_plan=True`` the build additionally freezes its symbolic
    decisions into a :class:`~repro.amg.resetup.SetupPlan` (carried on
    ``Hierarchy.plan``) so that :meth:`Hierarchy.refresh` can redo setup
    numerically for later same-pattern operators.  Capture is silent in the
    performance model — the build emits exactly the records of a plain one.
    Unsupported configs simply yield ``plan=None``.
    """
    config = config or AMGConfig()
    flags = config.flags
    if A0.nrows != A0.ncols:
        raise ValueError("AMG requires a square operator")

    builder = PlanBuilder.begin(A0, config) if capture_plan else None
    levels: list[Level] = [Level(A=A0)]

    for l in range(config.max_levels - 1):
        lvl = levels[l]
        A = lvl.A
        if A.nrows <= config.coarse_size:
            break
        if builder is not None:
            builder.start_level(A)

        with phase("Strength+Coarsen"):
            S = strength_matrix(
                A,
                config.strength_threshold,
                config.max_row_sum,
                parallel=flags.parallel_setup_kernels,
            )
            aggressive = (
                l < config.aggressive_levels
                and config.interp in ("2s-ei", "multipass")
            )
            if aggressive:
                cf, cf_stage1 = aggressive_pmis(
                    S, seed=config.seed + l, nthreads=config.nthreads,
                    parallel_rng=flags.parallel_rng,
                    parallel=flags.parallel_setup_kernels,
                )
            elif config.coarsening == "rs":
                cf = rs_coarsening(S)
                cf_stage1 = None
            else:
                cf = pmis(
                    S, seed=config.seed + l, nthreads=config.nthreads,
                    parallel_rng=flags.parallel_rng,
                    parallel=flags.parallel_setup_kernels,
                )
                cf_stage1 = None
            if checking():
                check_csr(S, name=f"S[{l}]", level=l)

        nc = int((cf > 0).sum())
        if nc == 0 or nc == A.nrows:
            break

        if flags.cf_reorder:
            with phase("Setup_etc"):
                new2old, old2new = cf_permutation(cf)
                A = permute_matrix(A, new2old, kernel="reorder.operator")
                S = permute_matrix(S, new2old, kernel="reorder.strength")
                cf = cf[new2old]
                if cf_stage1 is not None:
                    cf_stage1 = cf_stage1[new2old]
                lvl.A = A
                lvl.new2old = new2old
                if l > 0:
                    # Renumber the parent's interpolation columns into this
                    # level's new ordering (one-time cost).  The parent's
                    # coarse block of P becomes a permutation matrix; record
                    # it so the identity-block SpMVs stay exact.
                    parent = levels[l - 1]
                    parent.P = CSRMatrix(
                        parent.P.shape,
                        parent.P.indptr,
                        old2new[parent.P.indices],
                        parent.P.data,
                    ).sort_indices()
                    parent.cperm = old2new
                if flags.three_way_partition:
                    # In-row 3-way partial sort: coarse>=0 | coarse<0 | fine,
                    # fused into the permutation's data sweep (§3.1.2).
                    is_c_col = cf[A.indices] > 0
                    cat = np.where(
                        is_c_col & (A.data >= 0), 0, np.where(is_c_col, 1, 2)
                    )
                    partition_rows_by_category(
                        A, cat, 3, kernel="reorder.threeway",
                        fused_with_permute=True,
                    )

        lvl.cf_marker = cf
        lvl.n_coarse = nc
        if builder is not None:
            builder.capture_level(lvl, S)

        with phase("Interp"):
            P = _build_interp(A, S, cf, cf_stage1, config, l)
            if checking():
                check_csr(P, name=f"P[{l}]", level=l)
        lvl.P = P
        if builder is not None:
            builder.capture_interp(P)

        with phase("RAP"):
            A_next = _galerkin(A, P, cf, config, plan_builder=builder)
            if checking():
                check_csr(A_next, name=f"A[{l + 1}]", level=l + 1)

        levels.append(Level(A=A_next))
        if A_next.nrows <= config.coarse_size:
            break

    with phase("Setup_etc"):
        # Finalize grid transfers now that every level's ordering is fixed.
        for l in range(len(levels) - 1):
            lvl = levels[l]
            if flags.cf_reorder:
                lvl.P_F = lvl.P.extract_rows(
                    np.arange(lvl.n_coarse, lvl.A.nrows, dtype=np.int64)
                )
            if flags.keep_transpose and not flags.cf_reorder:
                lvl.R = transpose(
                    lvl.P, kernel="setup.keep_transpose",
                    parallel=flags.parallel_setup_kernels,
                )
        # Smoothers on every level but the coarsest.
        _build_smoothers(levels, config)
        coarse = _build_coarse_solver(levels, config)

    plan = builder.finish(levels) if builder is not None else None
    hierarchy = Hierarchy(
        levels=levels, coarse_solver=coarse, config=config, plan=plan
    )
    # Freeze the solve-phase schedules (compiled sweeps, prebound transfers,
    # plan-table records).  Pure pattern arithmetic: emits no perf records.
    attach_solve_plan(hierarchy)
    if checking():
        # Cross-level invariants: CF bookkeeping, P = [I; P_F], R == P^T,
        # Galerkin probe (the last three only under --check full).
        check_hierarchy(hierarchy)
    return hierarchy
