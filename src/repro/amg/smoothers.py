"""Smoothers: hybrid Gauss–Seidel (Fig. 2), lexicographic wavefront GS,
multicolor GS, and Jacobi (§2, §3.2).

**Hybrid GS** is Gauss–Seidel within a thread's row block and Jacobi across
blocks: the output vector is copied to ``temp_x`` at sweep start, in-block
columns read the live ``x``, out-of-block columns read ``temp_x`` (write-
after-read dependency, Fig. 2).  The baseline (Fig. 2a) tests every column
``j in [is, ie)`` — one data-dependent branch per non-zero; the optimized
variant (Fig. 2b) pre-partitions each row (lower-local / upper-local /
external, ``extptr``) so the sweep is branch-free.  Both code paths produce
bit-identical iterates; only the counted work differs.

**Execution strategy** (the Python-vectorization substitute for the tight C
loop): the sequential dependence of GS inside a block follows only the
*lower-local* couplings, so rows are scheduled into **wavefront levels** —
rows in a level have no lower-local coupling to each other and are updated
with one vectorized step.  For structurally symmetric matrices this
reproduces the sequential in-block GS exactly (verified against a literal
per-row reference in the tests).  With one block covering all rows the same
machinery yields the **lexicographic GS** of [38] (point-to-point
synchronization = level scheduling), whose pre-processing cost (dependency
analysis) is what §5.2 charges against its better convergence.

**C-F smoothing** (§3.2): the C rows are swept first, then the F rows (and
vice versa in post-smoothing).  The optimized path iterates over the two
contiguous ranges of the CF-permuted matrix; the baseline pays a branch per
row.  With a zero initial guess the upper-triangle reads are skipped
(counted; the values are zero so the numerics are unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf.counters import IDX_BYTES, PTR_BYTES, VAL_BYTES, count
from ..planexec import plan_enabled
from ..sparse.csr import CSRMatrix
from ..sparse.ops import gather_range_indices, segment_sum
from ..sparse.transpose import balanced_nnz_partition

__all__ = [
    "GSSchedule",
    "build_gs_schedule",
    "schedule_with_values",
    "gs_sweep",
    "gs_sweep_multi",
    "gs_sweep_reference",
    "jacobi_sweep",
    "jacobi_sweep_multi",
    "greedy_coloring",
    "multicolor_gs_sweep",
    "multicolor_gs_sweep_multi",
    "HybridGSSmoother",
    "block_of_rows",
]


# ---------------------------------------------------------------------------
# Wavefront schedule
# ---------------------------------------------------------------------------

@dataclass
class GSSchedule:
    """Wavefront schedule of one GS sweep over a row subset.

    ``rows`` lists the swept rows packed level by level
    (``level_row_ptr`` delimits levels).  ``e_*`` arrays hold the off-
    diagonal entries of those rows in the same packing (``e_ptr`` delimits
    levels): ``e_out`` is the entry's position within ``rows``, ``e_local``
    marks in-block (live ``x``) reads vs external (``temp_x``) reads.
    ``nlevels`` is the synchronization depth — the quantity that limits
    lexicographic-GS parallelism.
    """

    rows: np.ndarray
    level_row_ptr: np.ndarray
    e_ptr: np.ndarray
    e_cols: np.ndarray
    e_vals: np.ndarray
    e_out: np.ndarray
    e_local: np.ndarray
    e_lower: np.ndarray
    diag: np.ndarray
    nnz: int
    #: Position of each packed entry in ``A.data`` (and of each packed row's
    #: diagonal; ``-1`` = structurally missing).  Lets a same-pattern numeric
    #: refresh regather ``e_vals``/``diag`` without re-running the wavefront
    #: analysis (:func:`schedule_with_values`).
    e_entry: np.ndarray | None = None
    diag_entry: np.ndarray | None = None

    @property
    def nlevels(self) -> int:
        return len(self.level_row_ptr) - 1

    @property
    def nrows(self) -> int:
        return len(self.rows)


def block_of_rows(n: int, nblocks: int, A: CSRMatrix | None = None,
                  rows: np.ndarray | None = None) -> np.ndarray:
    """Assign rows to ``nblocks`` contiguous blocks, balanced by non-zeros.

    Returns a length-``n`` array with block ids for the selected ``rows``
    (all rows by default) and ``-1`` elsewhere.
    """
    block = np.full(n, -1, dtype=np.int64)
    if rows is None:
        rows = np.arange(n, dtype=np.int64)
    if len(rows) == 0:
        return block
    if A is not None:
        sub = A.extract_rows(rows)
        bounds = balanced_nnz_partition(sub, nblocks)
    else:
        bounds = np.linspace(0, len(rows), nblocks + 1).astype(np.int64)
    for t in range(nblocks):
        block[rows[bounds[t]: bounds[t + 1]]] = t
    return block


def build_gs_schedule(
    A: CSRMatrix,
    block_of: np.ndarray,
    *,
    forward: bool = True,
) -> GSSchedule:
    """Build the wavefront schedule for a (hybrid) GS sweep.

    ``block_of[i] >= 0`` selects the swept rows and gives their thread
    block; ``-1`` rows are treated as external (their values are read from
    ``temp_x``).  Dependencies follow lower (forward) or upper (backward)
    in-block couplings.
    """
    n = A.nrows
    in_range = block_of >= 0
    rows_sel = np.flatnonzero(in_range)
    m = len(rows_sel)
    local_id = np.full(n, -1, dtype=np.int64)
    local_id[rows_sel] = np.arange(m)

    # Expanded row_slice_arrays that also keeps the global entry positions
    # (``idx``) so the schedule records where its values live in ``A.data``.
    counts = A.indptr[rows_sel + 1] - A.indptr[rows_sel]
    idx = gather_range_indices(A.indptr[rows_sel], counts)
    lr = np.repeat(np.arange(m), counts)
    cols = A.indices[idx]
    vals = A.data[idx]
    grows = rows_sel[lr]
    off = cols != grows
    same_block = in_range[cols] & (block_of[cols] == block_of[grows])
    if forward:
        dep = off & same_block & (cols < grows)
    else:
        dep = off & same_block & (cols > grows)
    local = off & same_block

    # Level assignment by topological peeling of the dependency DAG.
    indeg = np.bincount(lr[dep], minlength=m).astype(np.int64)
    level = np.full(m, -1, dtype=np.int64)
    frontier = np.flatnonzero(indeg == 0)
    lev = 0
    # dependents: for symmetric patterns, the dependents of local row r are
    # its same-block neighbours on the other triangle.
    rev = off & same_block & ((cols > grows) if forward else (cols < grows))
    rev_src = lr[rev]
    rev_dst = local_id[cols[rev]]
    order_rev = np.argsort(rev_src, kind="stable")
    rev_src_s = rev_src[order_rev]
    rev_dst_s = rev_dst[order_rev]
    rev_ptr = np.searchsorted(rev_src_s, np.arange(m + 1))

    while len(frontier):
        level[frontier] = lev
        lev += 1
        # Decrement in-degrees of the dependents of the frontier rows.
        segs = [rev_dst_s[rev_ptr[r]: rev_ptr[r + 1]] for r in frontier]
        if segs:
            dst = np.concatenate(segs) if len(segs) > 1 else segs[0]
        else:
            dst = np.empty(0, dtype=np.int64)
        if len(dst):
            dec = np.bincount(dst, minlength=m)
            indeg -= dec
            frontier = np.flatnonzero((indeg == 0) & (level == -1) & (dec[: m] > 0))
            # Rows whose last dependency cleared this round:
            frontier = np.flatnonzero((indeg == 0) & (level == -1))
        else:
            frontier = np.flatnonzero((indeg == 0) & (level == -1))
        if len(frontier) == 0 and (level == -1).any() and not len(dst):
            raise RuntimeError("GS schedule: dependency cycle (non-symmetric pattern?)")

    if (level == -1).any():
        raise RuntimeError("GS schedule failed to level all rows")

    order = np.lexsort((np.arange(m), level))
    rows_packed = rows_sel[order]
    lvl_sorted = level[order]
    nlev = int(lvl_sorted[-1]) + 1 if m else 0
    level_row_ptr = np.searchsorted(lvl_sorted, np.arange(nlev + 1))

    # Pack entries in the same order.
    pos_in_pack = np.empty(m, dtype=np.int64)
    pos_in_pack[order] = np.arange(m)
    e_entry_row = pos_in_pack[lr]  # packed row position per entry
    keep = off  # all off-diagonal entries participate in the sweep
    e_order = np.argsort(e_entry_row[keep], kind="stable")
    e_out = e_entry_row[keep][e_order]
    e_cols_p = cols[keep][e_order]
    e_vals_p = vals[keep][e_order]
    e_local_p = local[keep][e_order]
    e_lower_p = (dep if forward else dep)[keep][e_order]
    e_ptr = np.searchsorted(e_out, level_row_ptr)

    diag = np.zeros(m)
    dsel = ~off
    diag[pos_in_pack[lr[dsel]]] = vals[dsel]
    diag_entry = np.full(m, -1, dtype=np.int64)
    diag_entry[pos_in_pack[lr[dsel]]] = idx[dsel]

    return GSSchedule(
        rows=rows_packed,
        level_row_ptr=level_row_ptr.astype(np.int64),
        e_ptr=e_ptr.astype(np.int64),
        e_cols=e_cols_p,
        e_vals=e_vals_p,
        e_out=e_out,
        e_local=e_local_p,
        e_lower=e_lower_p,
        diag=diag,
        nnz=int(keep.sum()) + int(dsel.sum()),
        e_entry=idx[keep][e_order],
        diag_entry=diag_entry,
    )


def schedule_with_values(sched: GSSchedule, A: CSRMatrix) -> GSSchedule:
    """*sched* regathered over the (same-pattern) values of *A*.

    Numeric-resetup companion of :func:`build_gs_schedule`: every index
    array is shared with *sched*; only ``e_vals`` and ``diag`` are rebuilt,
    via the recorded ``e_entry``/``diag_entry`` gather maps.
    """
    if sched.e_entry is None or sched.diag_entry is None:
        raise ValueError("schedule has no entry maps; rebuild it instead")
    diag = np.zeros(sched.nrows)
    has = sched.diag_entry >= 0
    diag[has] = A.data[sched.diag_entry[has]]
    return GSSchedule(
        rows=sched.rows,
        level_row_ptr=sched.level_row_ptr,
        e_ptr=sched.e_ptr,
        e_cols=sched.e_cols,
        e_vals=A.data[sched.e_entry],
        e_out=sched.e_out,
        e_local=sched.e_local,
        e_lower=sched.e_lower,
        diag=diag,
        nnz=sched.nnz,
        e_entry=sched.e_entry,
        diag_entry=sched.diag_entry,
    )


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------

def gs_sweep(
    x: np.ndarray,
    b: np.ndarray,
    sched: GSSchedule,
    *,
    optimized: bool = True,
    zero_guess: bool = False,
    contiguous_rows: bool = True,
    kernel: str = "gs",
) -> np.ndarray:
    """One in-place hybrid-GS sweep following *sched* (returns ``x``).

    ``optimized`` selects the Fig. 2(b) accounting (pre-partitioned rows, no
    per-non-zero branch); the baseline Fig. 2(a) accounting adds one branch
    per non-zero.  ``zero_guess`` marks a sweep whose input iterate is zero:
    upper/external reads are skipped in the count (their contribution is
    zero either way; the numerics are identical).
    """
    if sched.nrows == 0:
        return x
    temp = x.copy()
    rp, ep = sched.level_row_ptr, sched.e_ptr
    for lv in range(sched.nlevels):
        r0, r1 = rp[lv], rp[lv + 1]
        s = slice(ep[lv], ep[lv + 1])
        rows = sched.rows[r0:r1]
        cols = sched.e_cols[s]
        src = np.where(sched.e_local[s], x[cols], temp[cols])
        acc = b[rows] - np.bincount(
            sched.e_out[s] - r0, weights=sched.e_vals[s] * src, minlength=r1 - r0
        )
        x[rows] = acc / sched.diag[r0:r1]

    nnz = sched.nnz
    m = sched.nrows
    touched_nnz = int(sched.e_lower.sum()) + m if zero_guess else nnz
    bytes_read = (
        touched_nnz * (VAL_BYTES + IDX_BYTES)
        + (m + 1) * PTR_BYTES
        + touched_nnz * VAL_BYTES  # gathered x / temp_x
        + m * VAL_BYTES  # b
    )
    bytes_written = m * VAL_BYTES
    if not zero_guess:
        # temp_x copy of the sweep's input vector (Fig. 2 line 1).
        bytes_read += m * VAL_BYTES
        bytes_written += m * VAL_BYTES
    branches = 0.0 if optimized else float(nnz)
    if not contiguous_rows:
        # Baseline C-F smoothing scans all rows and tests "is i a C/F
        # point?" per row instead of iterating contiguous ranges (§3.2).
        branches += float(m)
    count(kernel, flops=2 * touched_nnz + m, bytes_read=bytes_read,
          bytes_written=bytes_written, branches=branches)
    return x


def gs_sweep_multi(
    X: np.ndarray,
    B: np.ndarray,
    sched: GSSchedule,
    *,
    optimized: bool = True,
    zero_guess: bool = False,
    contiguous_rows: bool = True,
    kernel: str = "gs",
) -> np.ndarray:
    """Blocked hybrid-GS sweep over an ``(n, k)`` iterate block (in place).

    Column *j* is bit-identical to :func:`gs_sweep` on ``(X[:, j], B[:, j])``.
    The counted traffic streams the matrix (values/indices/row pointer) and
    executes the classification branches **once** for all *k* columns; the
    gathered iterate, ``b``, and the written rows are charged per column.
    """
    if sched.nrows == 0:
        return X
    k = X.shape[1]
    temp = X.copy()
    rp, ep = sched.level_row_ptr, sched.e_ptr
    for lv in range(sched.nlevels):
        r0, r1 = rp[lv], rp[lv + 1]
        s = slice(ep[lv], ep[lv + 1])
        rows = sched.rows[r0:r1]
        cols = sched.e_cols[s]
        for j in range(k):
            src = np.where(sched.e_local[s], X[cols, j], temp[cols, j])
            acc = B[rows, j] - np.bincount(
                sched.e_out[s] - r0, weights=sched.e_vals[s] * src, minlength=r1 - r0
            )
            X[rows, j] = acc / sched.diag[r0:r1]

    nnz = sched.nnz
    m = sched.nrows
    touched_nnz = int(sched.e_lower.sum()) + m if zero_guess else nnz
    bytes_read = (
        touched_nnz * (VAL_BYTES + IDX_BYTES)  # matrix stream, once
        + (m + 1) * PTR_BYTES
        + k * touched_nnz * VAL_BYTES  # gathered x / temp_x, per column
        + k * m * VAL_BYTES  # b
    )
    bytes_written = k * m * VAL_BYTES
    if not zero_guess:
        # temp_x copy of the sweep's input block (Fig. 2 line 1).
        bytes_read += k * m * VAL_BYTES
        bytes_written += k * m * VAL_BYTES
    branches = 0.0 if optimized else float(nnz)
    if not contiguous_rows:
        branches += float(m)
    count(kernel, flops=(2 * touched_nnz + m) * k, bytes_read=bytes_read,
          bytes_written=bytes_written, branches=branches)
    return X


def gs_sweep_reference(
    A: CSRMatrix,
    x: np.ndarray,
    b: np.ndarray,
    block_of: np.ndarray,
    *,
    forward: bool = True,
) -> np.ndarray:
    """Literal sequential hybrid-GS sweep (Fig. 2a); test oracle."""
    temp = x.copy()
    n = A.nrows
    rows = np.flatnonzero(block_of >= 0)
    order = rows if forward else rows[::-1]
    for i in order:
        acc = b[i]
        d = 0.0
        for t in range(A.indptr[i], A.indptr[i + 1]):
            j = A.indices[t]
            if j == i:
                d = A.data[t]
            elif block_of[j] == block_of[i] and block_of[j] >= 0:
                acc -= A.data[t] * x[j]
            else:
                acc -= A.data[t] * temp[j]
        x[i] = acc / d
    return x


def jacobi_sweep(
    A: CSRMatrix,
    x: np.ndarray,
    b: np.ndarray,
    diag: np.ndarray,
    *,
    weight: float = 1.0,
) -> np.ndarray:
    """One weighted-Jacobi sweep (returns the new iterate)."""
    from ..sparse.spmv import spmv

    r = b - spmv(A, x, kernel="gs.jacobi_spmv")
    x_new = x + weight * r / diag
    count("gs.jacobi_update", flops=3 * A.nrows,
          bytes_read=3 * A.nrows * VAL_BYTES, bytes_written=A.nrows * VAL_BYTES)
    return x_new


def jacobi_sweep_multi(
    A: CSRMatrix,
    X: np.ndarray,
    B: np.ndarray,
    diag: np.ndarray,
    *,
    weight: float = 1.0,
) -> np.ndarray:
    """Blocked weighted-Jacobi sweep over ``(n, k)`` (returns the new block)."""
    from ..sparse.spmv import spmv_multi

    k = X.shape[1]
    R = B - spmv_multi(A, X, kernel="gs.jacobi_spmv")
    X_new = X + weight * R / diag[:, None]
    count("gs.jacobi_update", flops=3 * A.nrows * k,
          bytes_read=3 * A.nrows * k * VAL_BYTES,
          bytes_written=A.nrows * k * VAL_BYTES)
    return X_new


def l1_diagonal(A: CSRMatrix) -> np.ndarray:
    """The l1 smoothing diagonal ``d_i = a_ii + sum_{j != i} |a_ij|``.

    l1-Jacobi (Baker/Falgout/Kolev/Yang [26], the paper's smoother survey)
    is unconditionally convergent for SPD operators with unit weight — the
    massively parallel fallback smoother."""
    rid = A.row_ids()
    off = A.indices != rid
    return A.diagonal() + segment_sum(np.where(off, np.abs(A.data), 0.0),
                                      rid, A.nrows)


def l1_jacobi_sweep(
    A: CSRMatrix, x: np.ndarray, b: np.ndarray, l1diag: np.ndarray
) -> np.ndarray:
    """One l1-Jacobi sweep (returns the new iterate)."""
    from ..sparse.spmv import spmv

    r = b - spmv(A, x, kernel="gs.l1jacobi_spmv")
    x_new = x + r / l1diag
    count("gs.l1jacobi_update", flops=2 * A.nrows,
          bytes_read=3 * A.nrows * VAL_BYTES, bytes_written=A.nrows * VAL_BYTES)
    return x_new


def l1_jacobi_sweep_multi(
    A: CSRMatrix, X: np.ndarray, B: np.ndarray, l1diag: np.ndarray
) -> np.ndarray:
    """Blocked l1-Jacobi sweep over ``(n, k)`` (returns the new block)."""
    from ..sparse.spmv import spmv_multi

    k = X.shape[1]
    R = B - spmv_multi(A, X, kernel="gs.l1jacobi_spmv")
    X_new = X + R / l1diag[:, None]
    count("gs.l1jacobi_update", flops=2 * A.nrows * k,
          bytes_read=3 * A.nrows * k * VAL_BYTES,
          bytes_written=A.nrows * k * VAL_BYTES)
    return X_new


def estimate_lambda_max(A: CSRMatrix, diag: np.ndarray, *, iters: int = 12,
                        seed: int = 0) -> float:
    """Power-iteration estimate of ``lambda_max(D^{-1} A)`` (Chebyshev setup).

    Counted as setup work; HYPRE uses a comparable CG-based estimate."""
    from ..sparse.spmv import spmv

    rng = np.random.default_rng(seed)
    v = rng.standard_normal(A.nrows)
    v /= np.linalg.norm(v)
    lam = 1.0
    for _ in range(iters):
        w = spmv(A, v, kernel="cheby.power_spmv") / diag
        nrm = np.linalg.norm(w)
        if nrm == 0.0:
            return 1.0
        lam = float(v @ w)
        v = w / nrm
    count("cheby.power_setup", flops=4.0 * A.nrows * iters, phase="Setup_etc")
    # Safety factor (the estimate approaches from below).
    return 1.1 * abs(lam)


def chebyshev_sweep(
    A: CSRMatrix,
    x: np.ndarray,
    b: np.ndarray,
    diag: np.ndarray,
    lam_max: float,
    *,
    degree: int = 3,
    lam_min_frac: float = 0.3,
) -> np.ndarray:
    """One degree-``degree`` Jacobi-preconditioned Chebyshev smoothing step.

    Targets the interval ``[lam_min_frac * lam_max, lam_max]`` of
    ``D^{-1} A`` — the standard polynomial smoother for highly parallel
    machines (no sequential dependence at all).  Updates ``x`` in place.
    """
    from ..sparse.spmv import spmv

    theta = 0.5 * (1.0 + lam_min_frac) * lam_max
    delta = 0.5 * (1.0 - lam_min_frac) * lam_max
    sigma = theta / delta
    rho = 1.0 / sigma

    r = b - spmv(A, x, kernel="gs.cheby_spmv")
    d = (r / diag) / theta
    x += d
    for _ in range(degree - 1):
        r = b - spmv(A, x, kernel="gs.cheby_spmv")
        rho_new = 1.0 / (2.0 * sigma - rho)
        d = rho_new * rho * d + (2.0 * rho_new / delta) * (r / diag)
        x += d
        rho = rho_new
    count("gs.cheby_update", flops=6.0 * A.nrows * degree,
          bytes_read=3 * A.nrows * VAL_BYTES * degree,
          bytes_written=A.nrows * VAL_BYTES * degree)
    return x


def chebyshev_sweep_multi(
    A: CSRMatrix,
    X: np.ndarray,
    B: np.ndarray,
    diag: np.ndarray,
    lam_max: float,
    *,
    degree: int = 3,
    lam_min_frac: float = 0.3,
) -> np.ndarray:
    """Blocked Chebyshev smoothing step over ``(n, k)`` (in place)."""
    from ..sparse.spmv import spmv_multi

    k = X.shape[1]
    theta = 0.5 * (1.0 + lam_min_frac) * lam_max
    delta = 0.5 * (1.0 - lam_min_frac) * lam_max
    sigma = theta / delta
    rho = 1.0 / sigma
    dcol = diag[:, None]

    R = B - spmv_multi(A, X, kernel="gs.cheby_spmv")
    D = (R / dcol) / theta
    X += D
    for _ in range(degree - 1):
        R = B - spmv_multi(A, X, kernel="gs.cheby_spmv")
        rho_new = 1.0 / (2.0 * sigma - rho)
        D = rho_new * rho * D + (2.0 * rho_new / delta) * (R / dcol)
        X += D
        rho = rho_new
    count("gs.cheby_update", flops=6.0 * A.nrows * degree * k,
          bytes_read=3 * A.nrows * VAL_BYTES * degree * k,
          bytes_written=A.nrows * VAL_BYTES * degree * k)
    return X


# ---------------------------------------------------------------------------
# Multicolor GS
# ---------------------------------------------------------------------------

def greedy_coloring(A: CSRMatrix, *, seed: int = 0, max_rounds: int = 200) -> np.ndarray:
    """Distance-1 coloring of A's symmetrized pattern (Luby-style MIS rounds).

    Used by the multicolor GS smoother [23].  Returns a color per row.
    """
    n = A.nrows
    rid = A.row_ids()
    off = A.indices != rid
    src = np.concatenate([rid[off], A.indices[off]])
    dst = np.concatenate([A.indices[off], rid[off]])
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    ptr = np.searchsorted(src, np.arange(n + 1))

    color = np.full(n, -1, dtype=np.int64)
    rng = np.random.default_rng(seed)
    prio = rng.random(n)
    c = 0
    while (color == -1).any():
        if c >= max_rounds:
            raise RuntimeError("coloring did not converge")
        # MIS among uncolored by priority.
        unc = color == -1
        active = unc.copy()
        while active.any():
            pvals = np.where(unc & (color == -1), prio, -np.inf)
            nbr_max = np.full(n, -np.inf)
            mask_e = unc[src] & unc[dst] & (color[src] == -1) & (color[dst] == -1)
            np.maximum.at(nbr_max, src[mask_e], pvals[dst[mask_e]])
            winners = unc & (color == -1) & (pvals > nbr_max)
            if not winners.any():
                rem = np.flatnonzero(unc & (color == -1))
                winners = np.zeros(n, dtype=bool)
                winners[rem[np.argmax(prio[rem])]] = True
            color[winners] = c
            # Neighbours of winners leave this round's candidate pool.
            blocked = np.zeros(n, dtype=bool)
            sel = winners[src]
            blocked[dst[sel]] = True
            unc = unc & ~winners & ~blocked
            active = unc
        c += 1
    return color


def multicolor_gs_sweep(
    A: CSRMatrix,
    x: np.ndarray,
    b: np.ndarray,
    color: np.ndarray,
    diag: np.ndarray,
    *,
    forward: bool = True,
) -> np.ndarray:
    """One multicolor-GS sweep (in place; returns ``x``)."""
    ncolors = int(color.max()) + 1
    order = range(ncolors) if forward else range(ncolors - 1, -1, -1)
    rid = A.row_ids()
    off = A.indices != rid
    for c in order:
        rows = np.flatnonzero(color == c)
        lr, cols, vals = A.row_slice_arrays(rows)
        sel = cols != rows[lr]
        acc = b[rows] - np.bincount(lr[sel], weights=vals[sel] * x[cols[sel]],
                                    minlength=len(rows))
        x[rows] = acc / diag[rows]
    count(
        "gs.multicolor",
        flops=2 * A.nnz,
        bytes_read=A.nnz * (2 * VAL_BYTES + IDX_BYTES) + ncolors * A.nrows * PTR_BYTES,
        bytes_written=A.nrows * VAL_BYTES,
    )
    return x


def multicolor_gs_sweep_multi(
    A: CSRMatrix,
    X: np.ndarray,
    B: np.ndarray,
    color: np.ndarray,
    diag: np.ndarray,
    *,
    forward: bool = True,
) -> np.ndarray:
    """Blocked multicolor-GS sweep over ``(n, k)`` (in place)."""
    k = X.shape[1]
    ncolors = int(color.max()) + 1
    order = range(ncolors) if forward else range(ncolors - 1, -1, -1)
    for c in order:
        rows = np.flatnonzero(color == c)
        lr, cols, vals = A.row_slice_arrays(rows)
        sel = cols != rows[lr]
        for j in range(k):
            acc = B[rows, j] - np.bincount(
                lr[sel], weights=vals[sel] * X[cols[sel], j], minlength=len(rows)
            )
            X[rows, j] = acc / diag[rows]
    count(
        "gs.multicolor",
        flops=2 * A.nnz * k,
        bytes_read=A.nnz * (VAL_BYTES + IDX_BYTES) + ncolors * A.nrows * PTR_BYTES
        + k * A.nnz * VAL_BYTES,
        bytes_written=A.nrows * VAL_BYTES * k,
    )
    return X


# ---------------------------------------------------------------------------
# Smoother object used by the AMG hierarchy
# ---------------------------------------------------------------------------

class HybridGSSmoother:
    """Per-level smoother with C-F ordering (§3.2).

    Parameters
    ----------
    A:
        Level operator (CF-permuted in the optimized path).
    nthreads:
        Hybrid-GS block count (1 = lexicographic GS, huge = Jacobi-like —
        the knob that models AmgX's massively parallel smoothing).
    cf_marker:
        Per-row C/F split in A's ordering; ``None`` disables C-F ordering.
    variant:
        ``"hybrid"`` (default), ``"lex"`` (one block), ``"jacobi"``, or
        ``"multicolor"``.
    optimized:
        Fig. 2(b) (partitioned, branch-free) vs Fig. 2(a) accounting.
    """

    def __init__(
        self,
        A: CSRMatrix,
        nthreads: int = 14,
        cf_marker: np.ndarray | None = None,
        *,
        variant: str = "hybrid",
        optimized: bool = True,
        cf_contiguous: bool = True,
        seed: int = 0,
    ) -> None:
        self.A = A
        self.variant = variant
        self.optimized = optimized
        #: Whether the C/F groups occupy contiguous row ranges (CF-permuted
        #: operator, §3.2); the baseline pays a per-row classification test.
        self.cf_contiguous = cf_contiguous or cf_marker is None
        self.nthreads = 1 if variant == "lex" else nthreads
        self.seed = seed
        self.diag = A.diagonal()
        n = A.nrows
        self._schedules: dict[tuple[str, bool], GSSchedule] = {}
        self.color: np.ndarray | None = None
        #: Compiled solve plan (:class:`repro.amg.solveplan.SmootherPlan`),
        #: attached by ``attach_solve_plan``; ``None`` = legacy execution.
        self._plan = None

        if variant == "jacobi":
            self.groups: list[np.ndarray] = []
            return
        if variant == "l1_jacobi":
            self.groups = []
            self.l1diag = l1_diagonal(A)
            return
        if variant == "chebyshev":
            self.groups = []
            self.lam_max = estimate_lambda_max(A, self.diag, seed=seed)
            return
        if variant == "multicolor":
            self.color = greedy_coloring(A, seed=seed)
            count("gs.coloring_setup", bytes_read=2 * A.nnz * IDX_BYTES,
                  branches=float(A.nnz), phase="Setup_etc")
            return

        if cf_marker is not None:
            c_rows = np.flatnonzero(np.asarray(cf_marker) > 0)
            f_rows = np.flatnonzero(np.asarray(cf_marker) <= 0)
            self.groups = [c_rows, f_rows]
        else:
            self.groups = [np.arange(n, dtype=np.int64)]

        for gi, rows in enumerate(self.groups):
            blk = block_of_rows(n, self.nthreads, A, rows)
            for fwd in (True, False):
                self._schedules[(f"g{gi}", fwd)] = build_gs_schedule(A, blk, forward=fwd)
        if variant == "lex":
            # Dependency-graph construction cost of level scheduling [38].
            count("gs.lex_schedule_setup", bytes_read=2 * A.nnz * IDX_BYTES,
                  branches=float(A.nnz), phase="Setup_etc")

    @classmethod
    def from_numeric(cls, old: "HybridGSSmoother", A: CSRMatrix) -> "HybridGSSmoother":
        """Same-pattern numeric rebuild of *old* over the values of *A*.

        Shares every pattern-derived structure (groups, thread blocks,
        wavefront schedules, coloring) and regathers only the numerics —
        the smoother counterpart of :meth:`repro.amg.Hierarchy.refresh`.
        Bit-identical to constructing a fresh smoother with the same
        arguments (the shared structures are pure functions of the frozen
        sparsity and seed).
        """
        new = cls.__new__(cls)
        new.A = A
        new.variant = old.variant
        new.optimized = old.optimized
        new.cf_contiguous = old.cf_contiguous
        new.nthreads = old.nthreads
        new.seed = old.seed
        new.diag = A.diagonal()
        new._schedules = {}
        new.color = old.color
        new._plan = None
        new.groups = old.groups
        if old.variant in ("jacobi", "multicolor"):
            return new
        if old.variant == "l1_jacobi":
            new.l1diag = l1_diagonal(A)
            return new
        if old.variant == "chebyshev":
            # Value-dependent: the power iteration must re-run (same seed
            # => same result as a from-scratch rebuild).
            new.lam_max = estimate_lambda_max(A, new.diag, seed=old.seed)
            return new
        for key, sched in old._schedules.items():
            if sched.e_entry is not None:
                new._schedules[key] = schedule_with_values(sched, A)
            else:
                gi = int(key[0][1:])
                blk = block_of_rows(A.nrows, new.nthreads, A, old.groups[gi])
                new._schedules[key] = build_gs_schedule(A, blk, forward=key[1])
        return new

    # -- sweeps ----------------------------------------------------------
    def _sweep_groups(self, x, b, group_order, forward, zero_guess):
        for gi in group_order:
            sched = self._schedules[(f"g{gi}", forward)]
            gs_sweep(x, b, sched, optimized=self.optimized,
                     zero_guess=zero_guess, kernel="gs.hybrid",
                     contiguous_rows=self.cf_contiguous)
            zero_guess = False  # only the very first sub-sweep sees zeros
        return x

    def _sweep_groups_multi(self, X, B, group_order, forward, zero_guess):
        for gi in group_order:
            sched = self._schedules[(f"g{gi}", forward)]
            gs_sweep_multi(X, B, sched, optimized=self.optimized,
                           zero_guess=zero_guess, kernel="gs.hybrid",
                           contiguous_rows=self.cf_contiguous)
            zero_guess = False
        return X

    #: Damping for the Jacobi variant (omega = 2/3, the standard choice that
    #: makes Jacobi an actual smoother on Poisson-like operators).
    JACOBI_WEIGHT = 2.0 / 3.0

    def presmooth(self, x: np.ndarray, b: np.ndarray, *, zero_guess: bool = False) -> np.ndarray:
        """Forward sweep, C points first (updates ``x`` in place)."""
        if self._plan is not None and plan_enabled():
            return self._plan.presmooth(x, b, zero_guess=zero_guess)
        if self.variant == "jacobi":
            x[:] = jacobi_sweep(self.A, x, b, self.diag, weight=self.JACOBI_WEIGHT)
            return x
        if self.variant == "l1_jacobi":
            x[:] = l1_jacobi_sweep(self.A, x, b, self.l1diag)
            return x
        if self.variant == "chebyshev":
            return chebyshev_sweep(self.A, x, b, self.diag, self.lam_max)
        if self.variant == "multicolor":
            return multicolor_gs_sweep(self.A, x, b, self.color, self.diag, forward=True)
        return self._sweep_groups(x, b, range(len(self.groups)), True, zero_guess)

    def postsmooth(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Backward sweep, F points first (updates ``x`` in place)."""
        if self._plan is not None and plan_enabled():
            return self._plan.postsmooth(x, b)
        if self.variant == "jacobi":
            x[:] = jacobi_sweep(self.A, x, b, self.diag, weight=self.JACOBI_WEIGHT)
            return x
        if self.variant == "l1_jacobi":
            x[:] = l1_jacobi_sweep(self.A, x, b, self.l1diag)
            return x
        if self.variant == "chebyshev":
            return chebyshev_sweep(self.A, x, b, self.diag, self.lam_max)
        if self.variant == "multicolor":
            return multicolor_gs_sweep(self.A, x, b, self.color, self.diag, forward=False)
        return self._sweep_groups(x, b, range(len(self.groups) - 1, -1, -1), False, False)

    # -- blocked sweeps (multiple RHS) ------------------------------------
    def presmooth_multi(self, X: np.ndarray, B: np.ndarray, *,
                        zero_guess: bool = False) -> np.ndarray:
        """Blocked forward sweep over an ``(n, k)`` iterate block.

        Column *j* reproduces :meth:`presmooth` on ``(X[:, j], B[:, j])``
        exactly; the counted matrix stream is shared across columns.
        """
        if self._plan is not None and plan_enabled():
            return self._plan.presmooth_multi(X, B, zero_guess=zero_guess)
        if self.variant == "jacobi":
            X[:] = jacobi_sweep_multi(self.A, X, B, self.diag,
                                      weight=self.JACOBI_WEIGHT)
            return X
        if self.variant == "l1_jacobi":
            X[:] = l1_jacobi_sweep_multi(self.A, X, B, self.l1diag)
            return X
        if self.variant == "chebyshev":
            return chebyshev_sweep_multi(self.A, X, B, self.diag, self.lam_max)
        if self.variant == "multicolor":
            return multicolor_gs_sweep_multi(self.A, X, B, self.color, self.diag,
                                             forward=True)
        return self._sweep_groups_multi(X, B, range(len(self.groups)), True,
                                        zero_guess)

    def postsmooth_multi(self, X: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Blocked backward sweep over an ``(n, k)`` iterate block."""
        if self._plan is not None and plan_enabled():
            return self._plan.postsmooth_multi(X, B)
        if self.variant == "jacobi":
            X[:] = jacobi_sweep_multi(self.A, X, B, self.diag,
                                      weight=self.JACOBI_WEIGHT)
            return X
        if self.variant == "l1_jacobi":
            X[:] = l1_jacobi_sweep_multi(self.A, X, B, self.l1diag)
            return X
        if self.variant == "chebyshev":
            return chebyshev_sweep_multi(self.A, X, B, self.diag, self.lam_max)
        if self.variant == "multicolor":
            return multicolor_gs_sweep_multi(self.A, X, B, self.color, self.diag,
                                             forward=False)
        return self._sweep_groups_multi(X, B, range(len(self.groups) - 1, -1, -1),
                                        False, False)
