"""Solve-phase execution plans (the solve-side sibling of ``SetupPlan``).

The solve phase runs the same kernels thousands of times over *frozen*
sparsity: every GS sweep follows the same wavefront schedule, every
restriction multiplies the same ``P_F``, every counter records traffic that
is a pure function of the pattern.  :func:`attach_solve_plan` therefore
precomputes, once per hierarchy,

* **compiled GS sweeps** (:class:`CompiledSweep`): per wavefront level, the
  fused gather index into a ``[live x | sweep-start snapshot]`` workspace
  (replacing the per-sweep ``np.where`` classification), local segment ids,
  and value/diagonal views — plus *zero-start* variants that skip the
  entries whose source value is identically zero during the first visit of
  a level (the executed arithmetic drops exactly the terms §3.2 already
  excludes from the *count*, so iterates stay bit-identical);
* **multicolor / Chebyshev plans** with the per-color gathers frozen;
* **prebound grid transfers** (:class:`LevelExec`): the flag dispatch of
  :meth:`repro.amg.level.Level.restrict` resolved once per level;
* **plan-table records**: each kernel invocation's traffic
  (:class:`repro.perf.counters.KernelRecord`) built once from the pattern
  and appended per invocation via ``count_record`` — the record *stream* is
  identical to the legacy per-call ``count()`` arithmetic.

Execution through the plan is gated by ``REPRO_SOLVEPLAN``
(:func:`repro.planexec.plan_enabled`); the legacy path is kept both as the
wall-clock baseline and as the bit-identity oracle for the tests.  Plans
hold only pattern-derived arrays and value *views*; :func:`refresh_plans`
rebuilds just the numeric parts (value gathers) for a same-pattern refresh,
reusing every index array of the old plan.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..perf.counters import (
    IDX_BYTES,
    PTR_BYTES,
    VAL_BYTES,
    KernelRecord,
    count,
    count_batch,
    count_record,
    make_record,
)
from ..sparse.ops import segment_sum
from ..sparse.spmv import (
    spmv,
    spmv_identity_block,
    spmv_identity_block_multi,
    spmv_identity_block_transposed,
    spmv_identity_block_transposed_multi,
    spmv_multi,
    spmv_multi_traffic,
    spmv_traffic,
    spmv_transposed,
    spmv_transposed_multi,
)

__all__ = [
    "CompiledSweep",
    "SmootherPlan",
    "LevelExec",
    "SolvePlan",
    "compile_smoother_plan",
    "attach_solve_plan",
    "refresh_plans",
]


# ---------------------------------------------------------------------------
# Compiled hybrid/lexicographic GS sweeps
# ---------------------------------------------------------------------------

class CompiledSweep:
    """One GS schedule compiled to per-wavefront-level execution steps.

    The sweep runs over a ``2n`` workspace ``[live x | sweep-start copy]``:
    entry sources are pre-resolved to ``col`` (in-block, live) or ``col + n``
    (external, snapshot), so each level is six vectorized calls with no
    per-sweep classification.  Bit-identical to :func:`repro.amg.smoothers.
    gs_sweep` (same ``np.bincount`` accumulation order, same divisions).
    """

    def __init__(self, sched, n: int, *, optimized: bool, contiguous_rows: bool,
                 kernel: str, zero_keep: np.ndarray | None = None) -> None:
        self.sched = sched
        self.n = n
        self.rows = sched.rows
        self.m = sched.nrows
        self.kernel = kernel
        self.optimized = optimized
        self.contiguous_rows = contiguous_rows

        rp, ep = sched.level_row_ptr, sched.e_ptr
        nlev = sched.nlevels
        # Pattern-only, whole-schedule precomputation; per-level views.
        e_src = np.where(sched.e_local, sched.e_cols, sched.e_cols + n)
        r0_per_entry = np.repeat(rp[:-1], np.diff(ep))
        e_out_local = sched.e_out - r0_per_entry
        self._e_src = e_src
        self._e_out_local = e_out_local
        self.steps = []
        for lv in range(nlev):
            r0, r1 = int(rp[lv]), int(rp[lv + 1])
            s = slice(int(ep[lv]), int(ep[lv + 1]))
            self.steps.append((r0, r1, sched.rows[r0:r1], e_src[s],
                               sched.e_vals[s], e_out_local[s],
                               sched.diag[r0:r1], r1 - r0))

        # Zero-start variant: keep only entries whose source can be nonzero
        # when the swept rows start at zero (lower-local reads, already-
        # updated upper-local reads, and external reads of rows swept
        # earlier in the same smoothing pass).  Dropped terms are exact
        # ``a * 0.0`` products; partial bincount sums start at +0.0 and can
        # never be -0.0, so skipping them is bitwise-neutral.
        self.zsteps = None
        self._zidx = None
        if zero_keep is not None and np.isfinite(sched.e_vals).all():
            self._zidx = []
            self.zsteps = []
            for lv in range(nlev):
                r0, r1 = int(rp[lv]), int(rp[lv + 1])
                e0 = int(ep[lv])
                s = slice(e0, int(ep[lv + 1]))
                zi = e0 + np.flatnonzero(zero_keep[s])
                self._zidx.append(zi)
                self.zsteps.append((r0, r1, sched.rows[r0:r1], e_src[zi],
                                    sched.e_vals[zi], e_out_local[zi],
                                    sched.diag[r0:r1], r1 - r0))

        # Plan-table records (pattern-only; shared across refreshes).
        self._e_lower_sum = int(sched.e_lower.sum())
        self._rec: dict[tuple[int, bool], KernelRecord] = {}
        self._flats: dict[tuple[int, bool], list[np.ndarray]] = {}

    # -- counting ---------------------------------------------------------
    def record(self, k: int, zero_guess: bool) -> KernelRecord:
        """The :func:`repro.amg.smoothers.gs_sweep`/``_multi`` record for a
        width-*k* sweep (``k=0`` = single RHS), built once per (k, flag)."""
        key = (k, zero_guess)
        rec = self._rec.get(key)
        if rec is None:
            nnz, m = self.sched.nnz, self.m
            touched = self._e_lower_sum + m if zero_guess else nnz
            kk = max(k, 1)
            bytes_read = (touched * (VAL_BYTES + IDX_BYTES) + (m + 1) * PTR_BYTES
                          + kk * touched * VAL_BYTES + kk * m * VAL_BYTES)
            bytes_written = kk * m * VAL_BYTES
            if not zero_guess:
                bytes_read += kk * m * VAL_BYTES
                bytes_written += kk * m * VAL_BYTES
            branches = 0.0 if self.optimized else float(nnz)
            if not self.contiguous_rows:
                branches += float(m)
            rec = make_record(self.kernel, flops=(2 * touched + m) * kk,
                              bytes_read=bytes_read, bytes_written=bytes_written,
                              branches=branches, phase="GS")
            self._rec[key] = rec
        return rec

    # -- execution --------------------------------------------------------
    def _flat(self, k: int, zero: bool) -> list[np.ndarray]:
        """Flattened ``(entry, column) -> segment`` bincount ids per level."""
        key = (k, zero)
        fc = self._flats.get(key)
        if fc is None:
            ar = np.arange(k, dtype=np.int64)
            steps = self.zsteps if zero else self.steps
            fc = [(st[5][:, None] * k + ar).ravel() for st in steps]
            self._flats[key] = fc
        return fc

    def run(self, x: np.ndarray, b: np.ndarray, *, zero: bool = False) -> np.ndarray:
        n = self.n
        steps = self.zsteps if (zero and self.zsteps is not None) else self.steps
        ws = np.empty(2 * n)
        ws[:n] = x
        ws[n:] = x
        bp = b[self.rows]
        for r0, r1, rows, e_src, ev, eo, dg, m in steps:
            src = ws[e_src]
            np.multiply(ev, src, out=src)
            acc = np.bincount(eo, weights=src, minlength=m)
            if acc.dtype != np.float64:  # bincount of an empty weights array
                acc = acc.astype(np.float64)
            np.subtract(bp[r0:r1], acc, out=acc)
            np.divide(acc, dg, out=acc)
            ws[rows] = acc
        x[self.rows] = ws[self.rows]
        return x

    def run_multi(self, X: np.ndarray, B: np.ndarray, *, zero: bool = False) -> np.ndarray:
        n = self.n
        k = X.shape[1]
        zero = zero and self.zsteps is not None
        steps = self.zsteps if zero else self.steps
        flats = self._flat(k, zero)
        ws = np.empty((2 * n, k))
        ws[:n] = X
        ws[n:] = X
        Bp = B[self.rows]
        for (r0, r1, rows, e_src, ev, eo, dg, m), fl in zip(steps, flats):
            src = ws[e_src]
            src *= ev[:, None]
            acc = np.bincount(fl, weights=src.ravel(), minlength=m * k)
            if acc.dtype != np.float64:
                acc = acc.astype(np.float64)
            acc = acc.reshape(m, k)
            np.subtract(Bp[r0:r1], acc, out=acc)
            acc /= dg[:, None]
            ws[rows] = acc
        X[self.rows] = ws[self.rows]
        return X

    # -- numeric refresh --------------------------------------------------
    def with_values(self, sched) -> "CompiledSweep":
        """A sweep over *sched* (same pattern, new values), reusing every
        index array, flat cache, and plan-table record of ``self``."""
        new = CompiledSweep.__new__(CompiledSweep)
        new.sched = sched
        new.n = self.n
        new.rows = sched.rows
        new.m = self.m
        new.kernel = self.kernel
        new.optimized = self.optimized
        new.contiguous_rows = self.contiguous_rows
        new._e_src = self._e_src
        new._e_out_local = self._e_out_local
        rp, ep = sched.level_row_ptr, sched.e_ptr
        new.steps = [
            (r0, r1, rows, e_src, sched.e_vals[int(ep[lv]):int(ep[lv + 1])],
             eo, sched.diag[r0:r1], m)
            for lv, (r0, r1, rows, e_src, _, eo, _, m) in enumerate(self.steps)
        ]
        new._zidx = self._zidx
        if self.zsteps is None:
            new.zsteps = None
        else:
            new.zsteps = [
                (r0, r1, rows, e_src, sched.e_vals[zi], eo, sched.diag[r0:r1], m)
                for zi, (r0, r1, rows, e_src, _, eo, _, m)
                in zip(self._zidx, self.zsteps)
            ]
        new._e_lower_sum = self._e_lower_sum
        new._rec = self._rec
        new._flats = self._flats
        return new


def _zero_keep_mask(sched, n: int, prefix_rows: np.ndarray | None) -> np.ndarray:
    """Entries of *sched* whose source is potentially nonzero in a sweep
    whose own rows start at zero, given that only ``prefix_rows`` (rows of
    groups swept earlier in the same pass) hold nonzero values."""
    keep = sched.e_lower.copy()
    external = ~sched.e_local
    if prefix_rows is not None and len(prefix_rows):
        nonzero = np.zeros(n, dtype=bool)
        nonzero[prefix_rows] = True
        keep |= external & nonzero[sched.e_cols]
    upper_local = sched.e_local & ~sched.e_lower
    if upper_local.any():
        # Asymmetric patterns can schedule an upper-local neighbour into an
        # *earlier* wavefront level, in which case its live value is already
        # updated (nonzero) when read.
        lvl_of = np.full(n, -1, dtype=np.int64)
        pack_lvl = np.repeat(
            np.arange(sched.nlevels, dtype=np.int64),
            np.diff(sched.level_row_ptr),
        )
        lvl_of[sched.rows] = pack_lvl
        row_lvl = pack_lvl[sched.e_out]
        keep |= upper_local & (lvl_of[sched.e_cols] < row_lvl)
    return keep


# ---------------------------------------------------------------------------
# Multicolor / Chebyshev plans
# ---------------------------------------------------------------------------

class MulticolorPlan:
    """Per-color gathers of a multicolor-GS smoother, frozen at setup."""

    def __init__(self, A, color: np.ndarray, diag: np.ndarray) -> None:
        self.nnz = A.nnz
        self.nrows = A.nrows
        self.ncolors = int(color.max()) + 1
        self.colors = []
        self._entry_src = []
        from ..sparse.ops import gather_range_indices

        for c in range(self.ncolors):
            rows = np.flatnonzero(color == c)
            counts = A.indptr[rows + 1] - A.indptr[rows]
            idx = gather_range_indices(A.indptr[rows], counts)
            lr = np.repeat(np.arange(len(rows), dtype=np.int64), counts)
            cols = A.indices[idx]
            sel = cols != rows[lr]
            src_idx = idx[sel]
            self._entry_src.append((rows, lr[sel], cols[sel], src_idx))
            self.colors.append((rows, lr[sel], cols[sel], A.data[src_idx],
                                diag[rows], len(rows)))
        self._rec: dict[int, KernelRecord] = {}
        self._flats: dict[tuple[int, int], np.ndarray] = {}

    def record(self, k: int) -> KernelRecord:
        """The legacy ``gs.multicolor`` record (``k=0`` = single RHS)."""
        rec = self._rec.get(k)
        if rec is None:
            if k == 0:
                rec = make_record(
                    "gs.multicolor", flops=2 * self.nnz,
                    bytes_read=self.nnz * (2 * VAL_BYTES + IDX_BYTES)
                    + self.ncolors * self.nrows * PTR_BYTES,
                    bytes_written=self.nrows * VAL_BYTES, phase="GS")
            else:
                rec = make_record(
                    "gs.multicolor", flops=2 * self.nnz * k,
                    bytes_read=self.nnz * (VAL_BYTES + IDX_BYTES)
                    + self.ncolors * self.nrows * PTR_BYTES
                    + k * self.nnz * VAL_BYTES,
                    bytes_written=self.nrows * VAL_BYTES * k, phase="GS")
            self._rec[k] = rec
        return rec

    def run(self, x, b, *, forward: bool) -> np.ndarray:
        order = range(self.ncolors) if forward else range(self.ncolors - 1, -1, -1)
        for c in order:
            rows, lr, cols, vals, dg, m = self.colors[c]
            src = x[cols]
            np.multiply(vals, src, out=src)
            acc = np.bincount(lr, weights=src, minlength=m)
            if acc.dtype != np.float64:
                acc = acc.astype(np.float64)
            np.subtract(b[rows], acc, out=acc)
            np.divide(acc, dg, out=acc)
            x[rows] = acc
        count_record(self.record(0))
        return x

    def run_multi(self, X, B, *, forward: bool) -> np.ndarray:
        k = X.shape[1]
        order = range(self.ncolors) if forward else range(self.ncolors - 1, -1, -1)
        ar = np.arange(k, dtype=np.int64)
        for c in order:
            rows, lr, cols, vals, dg, m = self.colors[c]
            fl = self._flats.get((c, k))
            if fl is None:
                fl = (lr[:, None] * k + ar).ravel()
                self._flats[(c, k)] = fl
            src = X[cols]
            src *= vals[:, None]
            acc = np.bincount(fl, weights=src.ravel(), minlength=m * k)
            if acc.dtype != np.float64:
                acc = acc.astype(np.float64)
            acc = acc.reshape(m, k)
            np.subtract(B[rows], acc, out=acc)
            acc /= dg[:, None]
            X[rows] = acc
        count_record(self.record(k))
        return X

    def with_values(self, A, diag: np.ndarray) -> "MulticolorPlan":
        """Same-pattern numeric refresh: regather values/diagonal only."""
        new = MulticolorPlan.__new__(MulticolorPlan)
        new.nnz = self.nnz
        new.nrows = self.nrows
        new.ncolors = self.ncolors
        new._entry_src = self._entry_src
        new.colors = [
            (rows, lr, cols, A.data[src_idx], diag[rows], len(rows))
            for rows, lr, cols, src_idx in self._entry_src
        ]
        new._rec = self._rec
        new._flats = self._flats
        return new


class ChebyPlan:
    """Chebyshev smoothing with the per-degree SpMV records bulk-recorded."""

    def __init__(self, A, diag: np.ndarray, lam_max: float, *,
                 degree: int = 3, lam_min_frac: float = 0.3) -> None:
        self.A = A
        self.diag = diag
        self.lam_max = lam_max
        self.degree = degree
        self.lam_min_frac = lam_min_frac

    def _params(self):
        theta = 0.5 * (1.0 + self.lam_min_frac) * self.lam_max
        delta = 0.5 * (1.0 - self.lam_min_frac) * self.lam_max
        return theta, delta, theta / delta

    def run(self, x, b) -> np.ndarray:
        A, diag = self.A, self.diag
        theta, delta, sigma = self._params()
        rho = 1.0 / sigma
        rid = A.row_ids()
        r = b - segment_sum(A.data * x[A.indices], rid, A.nrows)
        d = (r / diag) / theta
        x += d
        for _ in range(self.degree - 1):
            r = b - segment_sum(A.data * x[A.indices], rid, A.nrows)
            rho_new = 1.0 / (2.0 * sigma - rho)
            d = rho_new * rho * d + (2.0 * rho_new / delta) * (r / diag)
            x += d
            rho = rho_new
        br, bw = spmv_traffic(A.nrows, A.nnz)
        count_batch("gs.cheby_spmv", self.degree, flops=2 * A.nnz,
                    bytes_read=br, bytes_written=bw)
        count("gs.cheby_update", flops=6.0 * A.nrows * self.degree,
              bytes_read=3 * A.nrows * VAL_BYTES * self.degree,
              bytes_written=A.nrows * VAL_BYTES * self.degree)
        return x

    def run_multi(self, X, B) -> np.ndarray:
        A, diag = self.A, self.diag
        k = X.shape[1]
        theta, delta, sigma = self._params()
        rho = 1.0 / sigma
        rid = A.row_ids()
        dcol = diag[:, None]

        def apply(V):
            Y = np.empty((A.nrows, k))
            for j in range(k):
                Y[:, j] = segment_sum(A.data * V[A.indices, j], rid, A.nrows)
            return Y

        R = B - apply(X)
        D = (R / dcol) / theta
        X += D
        for _ in range(self.degree - 1):
            R = B - apply(X)
            rho_new = 1.0 / (2.0 * sigma - rho)
            D = rho_new * rho * D + (2.0 * rho_new / delta) * (R / dcol)
            X += D
            rho = rho_new
        br, bw = spmv_multi_traffic(A.nrows, A.nnz, k)
        count_batch("gs.cheby_spmv", self.degree, flops=2 * A.nnz * k,
                    bytes_read=br, bytes_written=bw)
        count("gs.cheby_update", flops=6.0 * A.nrows * self.degree * k,
              bytes_read=3 * A.nrows * VAL_BYTES * self.degree * k,
              bytes_written=A.nrows * VAL_BYTES * self.degree * k)
        return X


# ---------------------------------------------------------------------------
# Smoother plan (dispatch per variant)
# ---------------------------------------------------------------------------

class SmootherPlan:
    """Planned execution of one :class:`~repro.amg.smoothers.HybridGSSmoother`.

    Holds the compiled sweeps of each (group, direction) schedule plus the
    variant-specific plans; the smoother delegates here when the plan gate
    is on.  Jacobi-family variants have no plan (already single-call
    vectorized kernels) and never reach this object.
    """

    def __init__(self, smoother) -> None:
        self.variant = smoother.variant
        self.ngroups = len(getattr(smoother, "groups", []))
        self.sweeps: dict[tuple[int, bool], CompiledSweep | None] = {}
        self.mc: MulticolorPlan | None = None
        self.cheby: ChebyPlan | None = None
        A = smoother.A
        n = A.nrows
        if smoother.variant == "multicolor":
            self.mc = MulticolorPlan(A, smoother.color, smoother.diag)
            return
        if smoother.variant == "chebyshev":
            self.cheby = ChebyPlan(A, smoother.diag, smoother.lam_max)
            return
        for gi in range(len(smoother.groups)):
            prefix = (np.concatenate(smoother.groups[:gi])
                      if gi > 0 else None)
            for fwd in (True, False):
                sched = smoother._schedules[(f"g{gi}", fwd)]
                if sched.nrows == 0:
                    self.sweeps[(gi, fwd)] = None
                    continue
                # Zero-start execution only ever happens on the forward
                # (pre-smoothing) pass; compile its keep mask there.
                zk = _zero_keep_mask(sched, n, prefix) if fwd else None
                self.sweeps[(gi, fwd)] = CompiledSweep(
                    sched, n, optimized=smoother.optimized,
                    contiguous_rows=smoother.cf_contiguous,
                    kernel="gs.hybrid", zero_keep=zk)

    # -- group sweeps (hybrid / lex) --------------------------------------
    def sweep_groups(self, x, b, group_order, forward, zero_guess):
        # ``zero_guess`` is the caller's promise that the iterate is
        # identically zero at pass start: the first group's sweep is
        # *counted* with the §3.2 skip (legacy accounting), and every
        # group's *execution* may drop the reads that are still zero.
        zero_exec = zero_guess and forward
        for gi in group_order:
            cs = self.sweeps[(gi, forward)]
            if cs is None:
                continue
            cs.run(x, b, zero=zero_exec)
            count_record(cs.record(0, zero_guess))
            zero_guess = False
        return x

    def sweep_groups_multi(self, X, B, group_order, forward, zero_guess):
        zero_exec = zero_guess and forward
        k = X.shape[1]
        for gi in group_order:
            cs = self.sweeps[(gi, forward)]
            if cs is None:
                continue
            cs.run_multi(X, B, zero=zero_exec)
            count_record(cs.record(k, zero_guess))
            zero_guess = False
        return X

    # -- smoother-facing entry points -------------------------------------
    def presmooth(self, x, b, *, zero_guess=False):
        if self.cheby is not None:
            return self.cheby.run(x, b)
        if self.mc is not None:
            return self.mc.run(x, b, forward=True)
        return self.sweep_groups(x, b, range(self.ngroups), True, zero_guess)

    def postsmooth(self, x, b):
        if self.cheby is not None:
            return self.cheby.run(x, b)
        if self.mc is not None:
            return self.mc.run(x, b, forward=False)
        return self.sweep_groups(x, b, range(self.ngroups - 1, -1, -1),
                                 False, False)

    def presmooth_multi(self, X, B, *, zero_guess=False):
        if self.cheby is not None:
            return self.cheby.run_multi(X, B)
        if self.mc is not None:
            return self.mc.run_multi(X, B, forward=True)
        return self.sweep_groups_multi(X, B, range(self.ngroups), True,
                                       zero_guess)

    def postsmooth_multi(self, X, B):
        if self.cheby is not None:
            return self.cheby.run_multi(X, B)
        if self.mc is not None:
            return self.mc.run_multi(X, B, forward=False)
        return self.sweep_groups_multi(X, B, range(self.ngroups - 1, -1, -1),
                                       False, False)

    # -- numeric refresh --------------------------------------------------
    def with_values(self, smoother) -> "SmootherPlan":
        """Plan for a same-pattern refreshed smoother, reusing all indices."""
        new = SmootherPlan.__new__(SmootherPlan)
        new.variant = self.variant
        new.ngroups = self.ngroups
        new.sweeps = {}
        new.mc = None
        new.cheby = None
        if self.mc is not None:
            new.mc = self.mc.with_values(smoother.A, smoother.diag)
            return new
        if self.cheby is not None:
            new.cheby = ChebyPlan(smoother.A, smoother.diag, smoother.lam_max)
            return new
        for key, cs in self.sweeps.items():
            gi, fwd = key
            new.sweeps[key] = (
                None if cs is None
                else cs.with_values(smoother._schedules[(f"g{gi}", fwd)])
            )
        return new


def compile_smoother_plan(smoother) -> None:
    """Attach a :class:`SmootherPlan` to *smoother* (idempotent, silent).

    Jacobi-family variants are left unplanned: their sweeps are already
    single vectorized kernels with one record each.
    """
    if smoother is None or smoother.variant in ("jacobi", "l1_jacobi"):
        return
    if getattr(smoother, "_plan", None) is None:
        smoother._plan = SmootherPlan(smoother)


def refresh_smoother_plan(new_smoother, old_smoother) -> None:
    """Numeric-only plan rebuild for a same-pattern refreshed smoother."""
    if new_smoother is None or new_smoother.variant in ("jacobi", "l1_jacobi"):
        return
    old_plan = getattr(old_smoother, "_plan", None) if old_smoother is not None else None
    if old_plan is not None:
        new_smoother._plan = old_plan.with_values(new_smoother)
    else:
        compile_smoother_plan(new_smoother)


# ---------------------------------------------------------------------------
# Per-level prebound grid transfers
# ---------------------------------------------------------------------------

class LevelExec:
    """Level *l*'s solve-phase bindings: the restrict/interpolate strategy
    dispatch of :class:`~repro.amg.level.Level` resolved once at plan time.

    The bound kernels are the same instrumented functions the legacy
    dispatch reaches, so the record stream is unchanged.
    """

    __slots__ = ("restrict", "interpolate", "restrict_multi", "interpolate_multi")

    def __init__(self, lvl, flags) -> None:
        if flags.cf_reorder and lvl.P_F is not None:
            self.restrict = partial(
                spmv_identity_block_transposed, lvl.P_F, cperm=lvl.cperm)
            self.restrict_multi = partial(
                spmv_identity_block_transposed_multi, lvl.P_F, cperm=lvl.cperm)
            self.interpolate = partial(
                spmv_identity_block, lvl.P_F, cperm=lvl.cperm)
            self.interpolate_multi = partial(
                spmv_identity_block_multi, lvl.P_F, cperm=lvl.cperm)
        else:
            if flags.keep_transpose and lvl.R is not None:
                self.restrict = partial(spmv, lvl.R, kernel="spmv.restrict")
                self.restrict_multi = partial(
                    spmv_multi, lvl.R, kernel="spmv.restrict")
            else:
                self.restrict = partial(spmv_transposed, lvl.P, materialize=True)
                self.restrict_multi = partial(
                    spmv_transposed_multi, lvl.P, materialize=True)
            self.interpolate = partial(spmv, lvl.P, kernel="spmv.interp")
            self.interpolate_multi = partial(
                spmv_multi, lvl.P, kernel="spmv.interp")


class SolvePlan:
    """Frozen solve-phase schedules of one hierarchy.

    ``levels[l]`` is the :class:`LevelExec` of level *l* (transfer levels
    only — the coarsest level has no transfers); smoother plans live on the
    smoothers themselves so direct smoother calls benefit too.
    """

    def __init__(self, levels: list[LevelExec]) -> None:
        self.levels = levels


def attach_solve_plan(hierarchy) -> None:
    """Compile and attach the solve plan of *hierarchy* (silent: emits no
    perf records — all tables are pattern arithmetic done once)."""
    flags = hierarchy.config.flags
    execs = []
    for lvl in hierarchy.levels[:-1]:
        compile_smoother_plan(lvl.smoother)
        execs.append(LevelExec(lvl, flags))
    last = hierarchy.levels[-1]
    if last.smoother is not None:
        compile_smoother_plan(last.smoother)
    hierarchy.solve_plan = SolvePlan(execs)


def refresh_plans(new_hierarchy, old_hierarchy) -> None:
    """Attach plans to a refreshed hierarchy, rebuilding only the numeric
    parts (value/diagonal gathers); every index array, flat-gather cache,
    and plan-table record is shared with the old hierarchy's plan."""
    flags = new_hierarchy.config.flags
    execs = []
    for new_lvl, old_lvl in zip(new_hierarchy.levels[:-1], old_hierarchy.levels):
        refresh_smoother_plan(new_lvl.smoother, old_lvl.smoother)
        execs.append(LevelExec(new_lvl, flags))
    new_hierarchy.solve_plan = SolvePlan(execs)
