"""The standalone AMG solver (Table 3 configuration) and its result record.

``AMGSolver`` runs the stationary iteration ``x <- x + V(b - A x)`` where
``V`` is one V-cycle with zero initial guess, stopping on a relative
residual-norm reduction (Table 3: 1e-7).  The residual-norm evaluation uses
the fused SpMV+dot kernel when the flag is on (§3.3).

The object is also directly usable as a preconditioner (one V-cycle per
application) for the Krylov solvers in :mod:`repro.krylov`.
"""

from __future__ import annotations

import numpy as np

from ..config import AMGConfig
from ..faults.guards import DEFAULT_LIMITS, ResidualGuard
from ..faults.plan import FaultEvent
from ..perf.counters import phase
from ..results import SolveResult, resolve_maxiter
from ..sparse.blas1 import axpy, axpy_multi, norm2, norm2_multi
from ..sparse.csr import CSRMatrix
from ..sparse.spmv import residual, residual_multi
from .cycle import cycle, cycle_multi
from .setup import Hierarchy, build_hierarchy

__all__ = ["AMGSolver", "SolveResult", "resolve_maxiter"]


class AMGSolver:
    """Classical AMG solver/preconditioner over the instrumented substrate.

    Usage::

        solver = AMGSolver(single_node_config())
        solver.setup(A)                 # setup phase (counted)
        result = solver.solve(b)        # solve phase (counted)
    """

    def __init__(self, config: AMGConfig | None = None) -> None:
        self.config = config or AMGConfig()
        self.hierarchy: Hierarchy | None = None

    # -- setup -------------------------------------------------------------
    def setup(self, A: CSRMatrix, *, cache=None, reuse: str = "auto") -> Hierarchy:
        """Build (or fetch from a :class:`~repro.amg.cache.HierarchyCache`)
        the hierarchy for *A*.

        ``reuse`` selects the cache's lookup policy (``"auto"`` /
        ``"pattern"`` / ``"never"`` — see
        :meth:`~repro.amg.cache.HierarchyCache.get_or_build`).  Uncached
        setups capture a resetup plan unless ``reuse="never"``, so a later
        :meth:`update` can refresh the hierarchy numerically.
        """
        if cache is not None:
            self.hierarchy = cache.get_or_build(A, self.config, reuse=reuse)
        else:
            self.hierarchy = build_hierarchy(
                A, self.config, capture_plan=reuse != "never"
            )
        return self.hierarchy

    def update(self, A: CSRMatrix) -> Hierarchy:
        """Numeric resetup for a same-pattern operator (uncached path).

        Delegates to :meth:`Hierarchy.refresh
        <repro.amg.setup.Hierarchy.refresh>`; falls back to a full rebuild
        when the pattern (or a frozen symbolic decision) no longer matches.
        """
        if self.hierarchy is None:
            raise RuntimeError("call setup() first")
        self.hierarchy = self.hierarchy.refresh(A)
        return self.hierarchy

    @property
    def operator_complexity(self) -> float:
        return self.hierarchy.operator_complexity()

    # -- level-0 ordering helpers -------------------------------------------
    def _to_level0(self, v: np.ndarray) -> np.ndarray:
        """Permute a vector or (n, k) block into the level-0 ordering."""
        lvl0 = self.hierarchy.levels[0]
        return v[lvl0.new2old] if lvl0.new2old is not None else v

    def _from_level0(self, v: np.ndarray) -> np.ndarray:
        lvl0 = self.hierarchy.levels[0]
        if lvl0.new2old is None:
            return v
        out = np.empty_like(v)
        out[lvl0.new2old] = v
        return out

    # -- preconditioner interface -------------------------------------------
    def precondition(self, r: np.ndarray, *, user_ordering: bool = True) -> np.ndarray:
        """One V-cycle applied to *r* (zero initial guess)."""
        if self.hierarchy is None:
            raise RuntimeError("call setup() first")
        rp = self._to_level0(r) if user_ordering else r
        xp = cycle(self.hierarchy, rp, self.config.cycle_type)
        return self._from_level0(xp) if user_ordering else xp

    def precondition_multi(self, R: np.ndarray, *, user_ordering: bool = True) -> np.ndarray:
        """One batched V-cycle applied to an ``(n, k)`` residual block."""
        if self.hierarchy is None:
            raise RuntimeError("call setup() first")
        Rp = self._to_level0(R) if user_ordering else R
        Xp = cycle_multi(self.hierarchy, Rp, self.config.cycle_type)
        return self._from_level0(Xp) if user_ordering else Xp

    # -- standalone solve ----------------------------------------------------
    def solve(
        self,
        b: np.ndarray,
        *,
        tol: float = 1e-7,
        maxiter: int | None = None,
        max_iter: int | None = None,
        x0: np.ndarray | None = None,
        fmg_start: bool = False,
    ) -> SolveResult:
        """Iterate cycles until ``||r|| <= tol * ||b||``.

        ``maxiter`` bounds the cycle count (default 500; the legacy
        ``max_iter`` spelling is accepted too).  ``fmg_start`` seeds the
        iteration with one full-multigrid pass (nested iteration) instead of
        a zero guess.
        """
        max_iter = resolve_maxiter(maxiter, max_iter, 500)
        if self.hierarchy is None:
            raise RuntimeError("call setup() first")
        h = self.hierarchy
        A0 = h.levels[0].A
        flags = self.config.flags

        bp = self._to_level0(np.asarray(b, dtype=np.float64))
        if x0 is not None:
            x = self._to_level0(np.asarray(x0, dtype=np.float64)).copy()
        elif fmg_start:
            from .fmg import full_multigrid

            x = full_multigrid(h, bp)
        else:
            x = np.zeros(len(bp))

        def resnorm(xv):
            with phase("SpMV" if flags.fuse_spmv_dot else "SpMV"):
                if flags.fuse_spmv_dot:
                    r, nrm = residual(A0, xv, bp, fused_norm=True)
                else:
                    r = residual(A0, xv, bp)
                    with phase("BLAS1"):
                        nrm = norm2(r)
            return r, nrm

        # Convergence reference: ||b|| (HYPRE's relative residual), falling
        # back to the initial residual for a zero right-hand side.
        with phase("BLAS1"):
            bnorm = norm2(bp)
        r, r0 = resnorm(x)
        ref = bnorm if bnorm > 0.0 else r0
        if r0 == 0.0 or r0 <= tol * ref:
            return SolveResult(self._from_level0(x), 0, [r0], True)
        if not np.isfinite(r0):
            return SolveResult(
                self._from_level0(x), 0, [r0], False, degraded=True,
                degraded_reason="nonfinite initial residual",
                fault_events=[FaultEvent("nonfinite",
                                         detail="initial residual")])
        residuals = [r0]
        converged = False
        events: list[FaultEvent] = []
        reason = None
        guard = ResidualGuard(ref)
        for it in range(1, max_iter + 1):
            corr = cycle(h, r, self.config.cycle_type)
            with phase("BLAS1"):
                axpy(1.0, corr, x)
            r, rn = resnorm(x)
            residuals.append(rn)
            if rn <= tol * ref:
                converged = True
                break
            verdict = guard.check(rn)
            if verdict is not None:
                events.append(FaultEvent(verdict, detail=f"cycle {it}"))
                reason = f"{verdict} at cycle {it}"
                break
        return SolveResult(self._from_level0(x), len(residuals) - 1, residuals,
                           converged, degraded=bool(events),
                           degraded_reason=reason, fault_events=events)

    # -- batched standalone solve -------------------------------------------
    def solve_many(
        self,
        B: np.ndarray,
        *,
        tol: float = 1e-7,
        maxiter: int | None = None,
        max_iter: int | None = None,
        x0: np.ndarray | None = None,
    ) -> list[SolveResult]:
        """Solve ``A x_j = B[:, j]`` for all *k* columns with batched cycles.

        One hierarchy, one batched V-cycle per iteration over the block of
        not-yet-converged columns: the level matrices, smoother structures,
        and coarse factor stream once per cycle instead of once per column.
        Column *j*'s iterates are bit-identical to
        ``solve(B[:, j], tol=..., maxiter=...)`` — a converged column is
        frozen (dropped from the active block), exactly as the scalar solve
        stops iterating it.

        Returns one :class:`SolveResult` per column.
        """
        if self.hierarchy is None:
            raise RuntimeError("call setup() first")
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2:
            raise ValueError(f"expected a 2-D (n, k) block, got shape {B.shape}")
        max_iter = resolve_maxiter(maxiter, max_iter, 500)
        h = self.hierarchy
        A0 = h.levels[0].A
        flags = self.config.flags
        n, k = B.shape

        Bp = self._to_level0(B)
        if x0 is not None:
            X = self._to_level0(np.asarray(x0, dtype=np.float64)).copy()
            if X.shape != (n, k):
                raise ValueError("x0 must match the shape of B")
        else:
            X = np.zeros((n, k))

        def resnorm_multi(Xv, Bv):
            with phase("SpMV"):
                if flags.fuse_spmv_dot:
                    R, nrms = residual_multi(A0, Xv, Bv, fused_norm=True)
                else:
                    R = residual_multi(A0, Xv, Bv)
                    with phase("BLAS1"):
                        nrms = norm2_multi(R)
            return R, nrms

        with phase("BLAS1"):
            bnorms = norm2_multi(Bp)
        R, r0 = resnorm_multi(X, Bp)
        ref = np.where(bnorms > 0.0, bnorms, r0)

        residuals: list[list[float]] = [[float(r0[j])] for j in range(k)]
        iterations = np.zeros(k, dtype=np.int64)
        converged = (r0 == 0.0) | (r0 <= tol * ref)
        failed = np.zeros(k, dtype=bool)
        col_events: list[list[FaultEvent]] = [[] for _ in range(k)]
        for j in np.flatnonzero(~np.isfinite(r0)):
            # A NaN/Inf column is frozen before the first cycle so it can
            # never poison the blocked kernels its siblings run through.
            failed[j] = True
            col_events[j].append(FaultEvent("nonfinite",
                                            detail="initial residual"))
        active = np.flatnonzero(~converged & ~failed)
        div_factor = DEFAULT_LIMITS.divergence_factor

        for _ in range(max_iter):
            if len(active) == 0:
                break
            corr = cycle_multi(h, R[:, active], self.config.cycle_type)
            Xa = X[:, active]  # advanced indexing: a copy of the active block
            with phase("BLAS1"):
                axpy_multi(1.0, corr, Xa)
            X[:, active] = Xa
            Ra, rn = resnorm_multi(X[:, active], Bp[:, active])
            R[:, active] = Ra
            done_local = []
            for idx, j in enumerate(active):
                residuals[j].append(float(rn[idx]))
                iterations[j] += 1
                if rn[idx] <= tol * ref[j]:
                    converged[j] = True
                    done_local.append(idx)
                elif not np.isfinite(rn[idx]):
                    failed[j] = True
                    col_events[j].append(FaultEvent(
                        "nonfinite", detail=f"cycle {int(iterations[j])}"))
                    done_local.append(idx)
                elif rn[idx] > div_factor * ref[j]:
                    failed[j] = True
                    col_events[j].append(FaultEvent(
                        "diverged", detail=f"cycle {int(iterations[j])}"))
                    done_local.append(idx)
            if done_local:
                active = np.delete(active, done_local)

        Xout = self._from_level0(X)
        return [
            SolveResult(Xout[:, j].copy(), int(iterations[j]), residuals[j],
                        bool(converged[j]), degraded=bool(failed[j]),
                        degraded_reason=(col_events[j][-1].kind
                                         if failed[j] and col_events[j]
                                         else None),
                        fault_events=list(col_events[j]))
            for j in range(k)
        ]
