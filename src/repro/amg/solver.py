"""The standalone AMG solver (Table 3 configuration) and its result record.

``AMGSolver`` runs the stationary iteration ``x <- x + V(b - A x)`` where
``V`` is one V-cycle with zero initial guess, stopping on a relative
residual-norm reduction (Table 3: 1e-7).  The residual-norm evaluation uses
the fused SpMV+dot kernel when the flag is on (§3.3).

The object is also directly usable as a preconditioner (one V-cycle per
application) for the Krylov solvers in :mod:`repro.krylov`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AMGConfig
from ..perf.counters import phase
from ..sparse.blas1 import axpy, norm2
from ..sparse.csr import CSRMatrix
from ..sparse.spmv import residual
from .cycle import cycle
from .setup import Hierarchy, build_hierarchy

__all__ = ["AMGSolver", "SolveResult"]


@dataclass
class SolveResult:
    """Outcome of an AMG (or AMG-preconditioned) solve."""

    x: np.ndarray
    iterations: int
    residuals: list[float]
    converged: bool

    @property
    def final_relres(self) -> float:
        return self.residuals[-1] / self.residuals[0] if self.residuals else np.inf


class AMGSolver:
    """Classical AMG solver/preconditioner over the instrumented substrate.

    Usage::

        solver = AMGSolver(single_node_config())
        solver.setup(A)                 # setup phase (counted)
        result = solver.solve(b)        # solve phase (counted)
    """

    def __init__(self, config: AMGConfig | None = None) -> None:
        self.config = config or AMGConfig()
        self.hierarchy: Hierarchy | None = None

    # -- setup -------------------------------------------------------------
    def setup(self, A: CSRMatrix) -> Hierarchy:
        self.hierarchy = build_hierarchy(A, self.config)
        return self.hierarchy

    @property
    def operator_complexity(self) -> float:
        return self.hierarchy.operator_complexity()

    # -- level-0 ordering helpers -------------------------------------------
    def _to_level0(self, v: np.ndarray) -> np.ndarray:
        lvl0 = self.hierarchy.levels[0]
        return v[lvl0.new2old] if lvl0.new2old is not None else v

    def _from_level0(self, v: np.ndarray) -> np.ndarray:
        lvl0 = self.hierarchy.levels[0]
        if lvl0.new2old is None:
            return v
        out = np.empty_like(v)
        out[lvl0.new2old] = v
        return out

    # -- preconditioner interface -------------------------------------------
    def precondition(self, r: np.ndarray, *, user_ordering: bool = True) -> np.ndarray:
        """One V-cycle applied to *r* (zero initial guess)."""
        if self.hierarchy is None:
            raise RuntimeError("call setup() first")
        rp = self._to_level0(r) if user_ordering else r
        xp = cycle(self.hierarchy, rp, self.config.cycle_type)
        return self._from_level0(xp) if user_ordering else xp

    # -- standalone solve ----------------------------------------------------
    def solve(
        self,
        b: np.ndarray,
        *,
        tol: float = 1e-7,
        max_iter: int = 500,
        x0: np.ndarray | None = None,
        fmg_start: bool = False,
    ) -> SolveResult:
        """Iterate cycles until ``||r|| <= tol * ||b||``.

        ``fmg_start`` seeds the iteration with one full-multigrid pass
        (nested iteration) instead of a zero guess.
        """
        if self.hierarchy is None:
            raise RuntimeError("call setup() first")
        h = self.hierarchy
        A0 = h.levels[0].A
        flags = self.config.flags

        bp = self._to_level0(np.asarray(b, dtype=np.float64))
        if x0 is not None:
            x = self._to_level0(np.asarray(x0, dtype=np.float64)).copy()
        elif fmg_start:
            from .fmg import full_multigrid

            x = full_multigrid(h, bp)
        else:
            x = np.zeros(len(bp))

        def resnorm(xv):
            with phase("SpMV" if flags.fuse_spmv_dot else "SpMV"):
                if flags.fuse_spmv_dot:
                    r, nrm = residual(A0, xv, bp, fused_norm=True)
                else:
                    r = residual(A0, xv, bp)
                    with phase("BLAS1"):
                        nrm = norm2(r)
            return r, nrm

        # Convergence reference: ||b|| (HYPRE's relative residual), falling
        # back to the initial residual for a zero right-hand side.
        with phase("BLAS1"):
            bnorm = norm2(bp)
        r, r0 = resnorm(x)
        ref = bnorm if bnorm > 0.0 else r0
        if r0 == 0.0 or r0 <= tol * ref:
            return SolveResult(self._from_level0(x), 0, [r0], True)
        residuals = [r0]
        converged = False
        for it in range(1, max_iter + 1):
            corr = cycle(h, r, self.config.cycle_type)
            with phase("BLAS1"):
                axpy(1.0, corr, x)
            r, rn = resnorm(x)
            residuals.append(rn)
            if rn <= tol * ref:
                converged = True
                break
        return SolveResult(self._from_level0(x), len(residuals) - 1, residuals, converged)
