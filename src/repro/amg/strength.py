"""Classical strength-of-connection matrix (§2, §3.3).

Point *j* strongly influences *i* iff ``-a_ij >= alpha * max_{k != i}(-a_ik)``
(signs flipped when the diagonal is negative, as in BoomerAMG).  Row *i* of
the strength matrix ``S`` holds the points i strongly *depends on*.

``max_row_sum`` (Table 3: 0.8): rows whose row sum is large relative to the
diagonal (strongly diagonally dominant rows, which smooth well on their own)
get **no** strong connections, exactly as in BoomerAMG.

The optimized implementation parallelizes the final matrix assembly with a
prefix sum over per-row counts (§3.3, 6.1x speedup); the baseline assembles
serially.  Both code paths produce the same matrix — only the counted
work differs (``parallel`` flag).
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import IDX_BYTES, PTR_BYTES, VAL_BYTES, count
from ..sparse.csr import CSRMatrix
from ..sparse.ops import indptr_from_counts, segment_sum

__all__ = ["strength_matrix"]


def _strong_connections_mask(
    A: CSRMatrix, theta: float, max_row_sum: float
) -> np.ndarray:
    """Boolean strong-connection mask over the stored entries of *A*.

    The pattern half of :func:`strength_matrix`, split out so the resetup
    guard (:mod:`repro.amg.resetup`) can recompute it on refreshed values
    and compare against the frozen mask.  Every per-row reduction here
    (diagonal, row max, row sum) is invariant under a symmetric permutation
    and any in-row entry reorder, so masks computed on the stored
    (CF-permuted, 3-way-partitioned) operator compare meaningfully across
    builds.
    """
    n = A.nrows
    rid = A.row_ids()
    offdiag = A.indices != rid

    diag = A.diagonal()
    # Signed connection value: -a_ij for positive diagonal rows, +a_ij
    # otherwise (BoomerAMG convention).
    sign = np.where(diag >= 0, -1.0, 1.0)
    conn = sign[rid] * A.data

    # Per-row max of off-diagonal connection values.
    neg_inf = np.float64(-np.inf)
    cand = np.where(offdiag, conn, neg_inf)
    row_max = np.full(n, neg_inf)
    np.maximum.at(row_max, rid, cand)

    strong = offdiag & (conn >= theta * np.where(row_max > 0, row_max, np.inf)[rid])

    if max_row_sum < 1.0:
        row_sum = segment_sum(A.data, rid, n)
        dominant = np.abs(row_sum) > max_row_sum * np.abs(diag)
        strong &= ~dominant[rid]
    return strong


def strength_matrix(
    A: CSRMatrix,
    theta: float = 0.25,
    max_row_sum: float = 1.0,
    *,
    parallel: bool = True,
) -> CSRMatrix:
    """Build the strength matrix ``S`` of *A*.

    Parameters
    ----------
    A:
        Square operator matrix.
    theta:
        Strength threshold ``alpha`` (Table 3 uses 0.25 or 0.6).
    max_row_sum:
        Rows with ``|sum_j a_ij| > max_row_sum * |a_ii|`` get no strong
        connections (disabled when ``>= 1``).
    parallel:
        Tag the counted assembly work as thread-parallel (optimized) or
        serial (baseline HYPRE, which had not threaded this kernel).

    Returns
    -------
    CSRMatrix
        Pattern matrix with unit values; ``S[i, j] != 0`` iff *i* strongly
        depends on *j*.  The diagonal is never included.
    """
    if A.nrows != A.ncols:
        raise ValueError("strength matrix requires a square operator")
    n = A.nrows
    rid = A.row_ids()
    strong = _strong_connections_mask(A, theta, max_row_sum)

    counts = segment_sum(strong.astype(np.float64), rid, n).astype(np.int64)
    indptr = indptr_from_counts(counts)
    S = CSRMatrix((n, n), indptr, A.indices[strong], np.ones(int(counts.sum())))

    a_bytes = A.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES
    s_bytes = S.nnz * IDX_BYTES + (n + 1) * PTR_BYTES
    count(
        "strength",
        flops=2 * A.nnz,
        bytes_read=a_bytes,
        bytes_written=s_bytes,
        branches=float(A.nnz),  # strong/weak test per entry
        parallel=parallel,
    )
    return S
