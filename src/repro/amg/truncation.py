"""Interpolation truncation (§3.1.2).

For each row *i* of ``P`` the truncation threshold is (paper, verbatim)::

    min( trunc_fact * |p|_(1),  |p|_(max_elmts) )

where ``|p|_(1)`` is the largest absolute value in the row and
``|p|_(max_elmts)`` the ``max_elmts``-th largest (taken as +inf when the row
has fewer entries, so only the relative threshold applies).  Entries whose
absolute value falls below the threshold are dropped, and the surviving
entries are rescaled so the row sum is preserved (BoomerAMG behaviour —
interpolation of the constant is retained).

The optimized implementation *fuses* truncation into interpolation
construction: each row is truncated right after it is built, so the
untruncated matrix never reaches memory.  The baseline writes the full
matrix, reads it back, and writes the truncated result.  Both paths call
this routine; ``fused`` selects the counted traffic.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import IDX_BYTES, PTR_BYTES, VAL_BYTES, count
from ..sparse.csr import CSRMatrix
from ..sparse.ops import indptr_from_counts, segment_sum

__all__ = ["truncate_interpolation"]


def truncate_interpolation(
    P: CSRMatrix,
    trunc_fact: float = 0.1,
    max_elmts: int = 4,
    *,
    rescale: bool = True,
    fused: bool = True,
) -> CSRMatrix:
    """Truncate interpolation matrix *P*; see module docstring."""
    n = P.nrows
    if P.nnz == 0 or (trunc_fact <= 0.0 and max_elmts <= 0):
        return P
    rid = P.row_ids()
    absv = np.abs(P.data)

    row_max = np.zeros(n, dtype=np.float64)
    np.maximum.at(row_max, rid, absv)

    if max_elmts > 0:
        # k-th largest per row: sort entries by (row, -|v|), rank in row.
        order = np.lexsort((-absv, rid))
        rank = np.arange(P.nnz, dtype=np.int64) - P.indptr[rid[order]]
        kth = np.full(n, np.inf)
        sel = rank == (max_elmts - 1)
        kth[rid[order[sel]]] = absv[order[sel]]
    else:
        kth = np.full(n, np.inf)

    rel = trunc_fact * row_max if trunc_fact > 0 else np.zeros(n)
    thresh = np.minimum(rel, kth)
    keep = absv >= thresh[rid]

    counts = segment_sum(keep.astype(np.float64), rid, n).astype(np.int64)
    data = P.data[keep]
    new_rid = rid[keep]
    if rescale:
        old_sum = segment_sum(P.data, rid, n)
        new_sum = segment_sum(data, new_rid, n)
        safe = np.abs(new_sum) > 1e-300
        scale = np.where(safe, old_sum / np.where(safe, new_sum, 1.0), 1.0)
        data = data * scale[new_rid]

    Pt = CSRMatrix((n, P.ncols), indptr_from_counts(counts), P.indices[keep], data)

    full_bytes = P.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES
    trunc_bytes = Pt.nnz * (VAL_BYTES + IDX_BYTES) + (n + 1) * PTR_BYTES
    if fused:
        # Rows truncated in cache right after construction: only the final
        # matrix is written.
        count("interp.truncate_fused", flops=2 * P.nnz, bytes_written=trunc_bytes,
              branches=float(P.nnz))
    else:
        count(
            "interp.truncate",
            flops=2 * P.nnz,
            bytes_read=full_bytes,
            bytes_written=full_bytes + trunc_bytes,
            branches=float(P.nnz),
        )
    return Pt
