"""Static and runtime analysis: invariant sanitizers, comm-trace replay,
and the repo-convention AST lint.

The paper's optimizations lean on silent structural invariants — CF-sorted
rows after reordering, the ``P = [I; P_F]`` identity block, ``R = P^T``
kept from setup, diag/offd ``colmap`` consistency, frozen persistent-
exchange topologies.  This package makes them checkable:

* :func:`check_csr` / :func:`check_parcsr` / :func:`check_hierarchy` /
  :func:`check_dist_hierarchy` — data-structure sanitizers, raising a
  structured :class:`InvariantViolation` (phase/level/rank context).
* :func:`check_comm_trace` / :func:`scan_comm_trace` — post-hoc replay of
  a communicator's message log: unreceived sends, receives without sends,
  rank-divergent collective orders (deadlocks in a real MPI run), and
  persistent-exchange topology drift.  Checks a faulty trace makes
  unjudgeable are reported as :class:`SkippedCheck` records.
* :func:`extract_schedule` / :func:`check_schedule`
  (:mod:`repro.analysis.sched`) — *static* communication-schedule
  verification: rebuild every level's send/recv graphs from the frozen
  halos and colmaps without executing a solve, then check unmatched
  send/recv pairs, rendezvous deadlock cycles, and collective-order
  divergence; :func:`message_matrix` / :func:`format_schedule_report`
  emit the per-level, per-rank-pair count/volume matrices.
* :class:`EventLog` / :func:`check_event_log`
  (:mod:`repro.analysis.events`) — ticket-lifecycle event recording in
  the serve tier plus a vector-clock happens-before checker
  (double completions, queue-slot leaks, cancels lost across redirects,
  results before their solve, run-to-run ordering divergence).
* :mod:`repro.analysis.lint` — the convention-enforcing AST lint
  (including the ``lockset`` lock-discipline rule), also runnable as
  ``python tools/lint_repro.py src``.

Everything is gated by the ``REPRO_CHECK`` level (``off``/``cheap``/
``full``; environment variable, :func:`set_check_level`, CLI ``--check``,
or the facade's ``check=`` keyword) and charges **zero** kernel records at
any level — see :mod:`repro.analysis.errors`.
"""

from .comm_trace import (
    CommTrace,
    SkippedCheck,
    TraceMessage,
    check_comm_trace,
    persistent_patterns_of,
    scan_comm_trace,
)
from .errors import (
    CHECK_LEVELS,
    InvariantViolation,
    check_scope,
    checking,
    get_check_level,
    set_check_level,
)
from .events import (
    EventLog,
    ServiceEvent,
    check_event_log,
    diff_event_logs,
    scan_event_log,
)
from .sanitizers import (
    check_csr,
    check_dist_hierarchy,
    check_hierarchy,
    check_parcsr,
)
from .sched import (
    Schedule,
    check_schedule,
    extract_schedule,
    format_schedule_report,
    message_matrix,
    scan_schedule,
    schedule_to_json,
)

__all__ = [
    "CHECK_LEVELS",
    "InvariantViolation",
    "check_scope",
    "checking",
    "get_check_level",
    "set_check_level",
    "check_csr",
    "check_parcsr",
    "check_hierarchy",
    "check_dist_hierarchy",
    "CommTrace",
    "TraceMessage",
    "SkippedCheck",
    "persistent_patterns_of",
    "scan_comm_trace",
    "check_comm_trace",
    "Schedule",
    "extract_schedule",
    "scan_schedule",
    "check_schedule",
    "message_matrix",
    "format_schedule_report",
    "schedule_to_json",
    "EventLog",
    "ServiceEvent",
    "scan_event_log",
    "check_event_log",
    "diff_event_logs",
]
