"""Static and runtime analysis: invariant sanitizers, comm-trace replay,
and the repo-convention AST lint.

The paper's optimizations lean on silent structural invariants — CF-sorted
rows after reordering, the ``P = [I; P_F]`` identity block, ``R = P^T``
kept from setup, diag/offd ``colmap`` consistency, frozen persistent-
exchange topologies.  This package makes them checkable:

* :func:`check_csr` / :func:`check_parcsr` / :func:`check_hierarchy` /
  :func:`check_dist_hierarchy` — data-structure sanitizers, raising a
  structured :class:`InvariantViolation` (phase/level/rank context).
* :func:`check_comm_trace` / :func:`scan_comm_trace` — post-hoc replay of
  a communicator's message log: unreceived sends, receives without sends,
  rank-divergent collective orders (deadlocks in a real MPI run), and
  persistent-exchange topology drift.
* :mod:`repro.analysis.lint` — the convention-enforcing AST lint, also
  runnable as ``python tools/lint_repro.py src``.

Everything is gated by the ``REPRO_CHECK`` level (``off``/``cheap``/
``full``; environment variable, :func:`set_check_level`, CLI ``--check``,
or the facade's ``check=`` keyword) and charges **zero** kernel records at
any level — see :mod:`repro.analysis.errors`.
"""

from .comm_trace import (
    CommTrace,
    TraceMessage,
    check_comm_trace,
    persistent_patterns_of,
    scan_comm_trace,
)
from .errors import (
    CHECK_LEVELS,
    InvariantViolation,
    check_scope,
    checking,
    get_check_level,
    set_check_level,
)
from .sanitizers import (
    check_csr,
    check_dist_hierarchy,
    check_hierarchy,
    check_parcsr,
)

__all__ = [
    "CHECK_LEVELS",
    "InvariantViolation",
    "check_scope",
    "checking",
    "get_check_level",
    "set_check_level",
    "check_csr",
    "check_parcsr",
    "check_hierarchy",
    "check_dist_hierarchy",
    "CommTrace",
    "TraceMessage",
    "persistent_patterns_of",
    "scan_comm_trace",
    "check_comm_trace",
]
