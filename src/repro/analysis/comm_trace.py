"""Post-hoc communication-trace replay: deadlock & mismatch detection.

A :class:`CommTrace` is a neutral snapshot of everything a
:class:`~repro.dist.comm.SimComm` (or fault-injecting
:class:`~repro.faults.comm.FaultyComm`) logged: the point-to-point message
stream, the per-rank collective sequences, and whether the trace was
produced under the ack/retry reliable protocol.  :func:`scan_comm_trace`
replays it and reports:

``comm.rank_range`` / ``comm.self_message``
    Messages addressed outside ``[0, nranks)`` or from a rank to itself
    (the simulator never logs loopback traffic, so one in the trace means
    a pattern was built against the wrong partition).
``comm.unreceived_send``
    On a reliable trace: an initial send that was never acknowledged by
    its receiver — in a real MPI run, a send with no matching receive.
``comm.recv_without_send``
    An acknowledgement for a message that was never sent — a receive
    posted against a phantom send.
``comm.collective_order``
    Rank collective sequences that differ (kind or count).  In a real MPI
    run two ranks entering different collectives — or one rank skipping
    one — deadlocks the job; in the simulator it shows up only in the log,
    which is exactly why the replay exists.
``comm.persistent_drift``
    Persistent-exchange traffic whose per-round (src, dst) sequence does
    not match any frozen pattern registered for its tag (§4.4 persistent
    requests must never change topology after creation).

:func:`check_comm_trace` raises a structured
:class:`~repro.analysis.errors.InvariantViolation` for the first finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import InvariantViolation

__all__ = [
    "TraceMessage",
    "CommTrace",
    "persistent_patterns_of",
    "scan_comm_trace",
    "check_comm_trace",
]

#: Tag suffixes appended by the reliable protocol
#: (:meth:`repro.faults.comm.FaultyComm.reliable_send`).
ACK_SUFFIX = ".ack"
RETRY_SUFFIX = ".retry"


@dataclass(frozen=True)
class TraceMessage:
    """One logged point-to-point message."""

    src: int
    dst: int
    nbytes: float
    tag: str = ""
    persistent: bool = False
    phase: str = ""


@dataclass
class CommTrace:
    """Neutral snapshot of a communicator's logged traffic.

    ``collectives`` holds one ordered list of collective kinds per rank;
    a :class:`~repro.dist.comm.SimComm` executes collectives process-wide,
    so :meth:`from_comm` replicates its log onto every rank — synthesized
    traces (tests, external tooling) may diverge per rank.
    """

    nranks: int
    messages: list[TraceMessage] = field(default_factory=list)
    collectives: list[list[str]] = field(default_factory=list)
    #: Whether the trace was produced under the ack/retry protocol
    #: (enables send/ack matching).
    reliable: bool = False

    @classmethod
    def from_comm(cls, comm) -> "CommTrace":
        msgs = [
            TraceMessage(m.event.src, m.event.dst, m.event.nbytes,
                         m.event.tag, m.event.persistent, m.phase)
            for m in comm.messages
        ]
        kinds = [c.kind for c in comm.collectives]
        return cls(
            nranks=comm.nranks,
            messages=msgs,
            collectives=[list(kinds) for _ in range(comm.nranks)],
            reliable=bool(getattr(comm, "supports_fault_injection", False)),
        )


def _base_tag(tag: str) -> str | None:
    """Strip protocol suffixes; None means the message is an ack."""
    if tag.endswith(ACK_SUFFIX):
        return None
    if tag.endswith(RETRY_SUFFIX):
        return tag[: -len(RETRY_SUFFIX)]
    return tag


def _finding(invariant: str, detail: str, **kw) -> InvariantViolation:
    return InvariantViolation(invariant, detail, **kw)


def persistent_patterns_of(comm) -> dict[str, list[list[tuple[int, int]]]]:
    """The frozen pair sequences of every persistent exchange registered on
    *comm*, grouped by tag — ready to pass as ``persistent_patterns``."""
    patterns: dict[str, list[list[tuple[int, int]]]] = {}
    for req in getattr(comm, "persistent_requests", ()):
        patterns.setdefault(req.tag, []).append(
            [(int(s), int(d)) for (s, d) in req.pattern]
        )
    return patterns


def scan_comm_trace(
    trace,
    *,
    persistent_patterns: dict[str, list[list[tuple[int, int]]]] | None = None,
    max_findings: int = 64,
) -> list[InvariantViolation]:
    """Replay *trace* (a :class:`CommTrace` or a communicator) and return
    every violation found, unraised.

    ``persistent_patterns`` maps a tag to the list of frozen
    ``(src, dst)`` pair sequences registered for it (one per
    :class:`~repro.dist.comm.PersistentExchange`); when given, every
    contiguous round of persistent traffic under that tag must replay one
    of them exactly.
    """
    if not isinstance(trace, CommTrace):
        trace = CommTrace.from_comm(trace)
    findings: list[InvariantViolation] = []

    def add(v: InvariantViolation) -> bool:
        findings.append(v)
        return len(findings) >= max_findings

    # -- rank sanity --------------------------------------------------------
    n = trace.nranks
    for m in trace.messages:
        if not (0 <= m.src < n and 0 <= m.dst < n):
            if add(_finding(
                "comm.rank_range",
                f"message {m.src}->{m.dst} (tag={m.tag!r}) is outside the "
                f"rank range [0, {n})")):
                return findings
        elif m.src == m.dst:
            if add(_finding(
                "comm.self_message",
                f"rank {m.src} sent itself a message (tag={m.tag!r}); "
                f"local data must not go through the wire",
                rank=m.src)):
                return findings

    # -- reliable-protocol send/ack matching --------------------------------
    # Only tags that demonstrably ran the ack/retry protocol are matched:
    # a FaultyComm also carries plain logged traffic (setup-time exchanges,
    # coarse-grid gathers) that is never acknowledged by design.
    if trace.reliable:
        sends: dict[tuple[int, int, str], int] = {}
        acks: dict[tuple[int, int, str], int] = {}
        protocol_tags: set[str] = set()
        for m in trace.messages:
            base = _base_tag(m.tag)
            if base is None:
                base = m.tag[: -len(ACK_SUFFIX)]
                protocol_tags.add(base)
                key = (m.dst, m.src, base)
                acks[key] = acks.get(key, 0) + 1
            elif base != m.tag:  # a retry marks its base tag as protocol-run
                protocol_tags.add(base)
            else:  # initial attempt (retries re-send the same seq)
                key = (m.src, m.dst, base)
                sends[key] = sends.get(key, 0) + 1
        for key in sorted(k for k in set(sends) | set(acks)
                          if k[2] in protocol_tags):
            s, a = sends.get(key, 0), acks.get(key, 0)
            src, dst, tag = key
            if a < s:
                if add(_finding(
                    "comm.unreceived_send",
                    f"{s - a} of {s} message(s) {src}->{dst} (tag={tag!r}) "
                    f"were never acknowledged by the receiver",
                    rank=src)):
                    return findings
            elif a > s:
                if add(_finding(
                    "comm.recv_without_send",
                    f"rank {dst} acknowledged {a} message(s) {src}->{dst} "
                    f"(tag={tag!r}) but only {s} were sent",
                    rank=dst)):
                    return findings

    # -- collective-order divergence ----------------------------------------
    seqs = trace.collectives
    if seqs:
        ref = seqs[0]
        for p, seq in enumerate(seqs[1:], start=1):
            if seq == ref:
                continue
            k = next(
                (i for i, (x, y) in enumerate(zip(ref, seq)) if x != y),
                min(len(ref), len(seq)),
            )
            a = ref[k] if k < len(ref) else "<none>"
            b = seq[k] if k < len(seq) else "<none>"
            if add(_finding(
                "comm.collective_order",
                f"rank {p} diverges from rank 0 at collective #{k}: "
                f"rank 0 enters {a!r}, rank {p} enters {b!r} — this "
                f"deadlocks a real MPI run",
                rank=p)):
                return findings

    # -- persistent-pattern drift -------------------------------------------
    if persistent_patterns:
        for tag, patterns in persistent_patterns.items():
            stream = [
                (m.src, m.dst)
                for m in trace.messages
                if m.persistent and m.tag == tag
            ]
            ordered = [
                [(int(s), int(d)) for (s, d) in pat if s != d]
                for pat in patterns
            ]
            i = 0
            while i < len(stream):
                for pat in ordered:
                    if pat and stream[i: i + len(pat)] == pat:
                        i += len(pat)
                        break
                else:
                    if add(_finding(
                        "comm.persistent_drift",
                        f"persistent traffic (tag={tag!r}) at message #{i} "
                        f"({stream[i][0]}->{stream[i][1]}) does not replay "
                        f"any frozen exchange pattern; persistent requests "
                        f"must keep their creation-time topology")):
                        return findings
                    i += 1
    return findings


def check_comm_trace(
    trace,
    *,
    persistent_patterns: dict[str, list[list[tuple[int, int]]]] | None = None,
) -> None:
    """Replay *trace* and raise the first violation found (if any)."""
    findings = scan_comm_trace(
        trace, persistent_patterns=persistent_patterns, max_findings=1
    )
    if findings:
        raise findings[0]
