"""Post-hoc communication-trace replay: deadlock & mismatch detection.

A :class:`CommTrace` is a neutral snapshot of everything a
:class:`~repro.dist.comm.SimComm` (or fault-injecting
:class:`~repro.faults.comm.FaultyComm`) logged: the point-to-point message
stream, the per-rank collective sequences, and whether the trace was
produced under the ack/retry reliable protocol.  :func:`scan_comm_trace`
replays it and reports:

``comm.rank_range`` / ``comm.self_message``
    Messages addressed outside ``[0, nranks)`` or from a rank to itself
    (the simulator never logs loopback traffic, so one in the trace means
    a pattern was built against the wrong partition).
``comm.unreceived_send``
    On a reliable trace: an initial send that was never acknowledged by
    its receiver — in a real MPI run, a send with no matching receive.
``comm.recv_without_send``
    An acknowledgement for a message that was never sent — a receive
    posted against a phantom send.
``comm.collective_order``
    Rank collective sequences that differ (kind or count).  In a real MPI
    run two ranks entering different collectives — or one rank skipping
    one — deadlocks the job; in the simulator it shows up only in the log,
    which is exactly why the replay exists.
``comm.persistent_drift``
    Persistent-exchange traffic whose per-round (src, dst) sequence does
    not match any frozen pattern registered for its tag (§4.4 persistent
    requests must never change topology after creation).

:func:`check_comm_trace` raises a structured
:class:`~repro.analysis.errors.InvariantViolation` for the first finding.

A trace recorded under **injected faults** legitimately breaks two of the
replays: dropped messages unbalance send/ack matching, and an exchange
aborted mid-round (``CommFault``) leaves a partial persistent round.
Those checks are not silently skipped — each skip is returned as a
structured :class:`SkippedCheck` record (``scan_comm_trace(...,
with_skips=True)``) and surfaced by :func:`check_comm_trace` as a
``RuntimeWarning`` plus its return value, so a clean report can never be
mistaken for a complete one.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from .errors import InvariantViolation

__all__ = [
    "TraceMessage",
    "CommTrace",
    "SkippedCheck",
    "persistent_patterns_of",
    "scan_comm_trace",
    "check_comm_trace",
]

#: Tag suffixes appended by the reliable protocol
#: (:meth:`repro.faults.comm.FaultyComm.reliable_send`).
ACK_SUFFIX = ".ack"
RETRY_SUFFIX = ".retry"


@dataclass(frozen=True)
class TraceMessage:
    """One logged point-to-point message."""

    src: int
    dst: int
    nbytes: float
    tag: str = ""
    persistent: bool = False
    phase: str = ""


@dataclass(frozen=True)
class SkippedCheck:
    """A replay check that could not run on this trace, with the reason.

    ``check`` is the invariant-id family the skip disables (e.g.
    ``"comm.unreceived_send"``); ``reason`` says why the trace makes that
    family unjudgeable rather than merely clean.
    """

    check: str
    reason: str


@dataclass
class CommTrace:
    """Neutral snapshot of a communicator's logged traffic.

    ``collectives`` holds one ordered list of collective kinds per rank;
    a :class:`~repro.dist.comm.SimComm` executes collectives process-wide,
    so :meth:`from_comm` replicates its log onto every rank — synthesized
    traces (tests, external tooling) may diverge per rank.
    """

    nranks: int
    messages: list[TraceMessage] = field(default_factory=list)
    collectives: list[list[str]] = field(default_factory=list)
    #: Whether the trace was produced under the ack/retry protocol
    #: (enables send/ack matching).
    reliable: bool = False
    #: Whether faults actually fired while the trace was recorded (the
    #: communicator logged at least one FaultEvent): send/ack matching and
    #: persistent-round replay are unjudgeable on such a trace and are
    #: reported as :class:`SkippedCheck` records instead of findings.
    faulty: bool = False

    @classmethod
    def from_comm(cls, comm) -> "CommTrace":
        msgs = [
            TraceMessage(m.event.src, m.event.dst, m.event.nbytes,
                         m.event.tag, m.event.persistent, m.phase)
            for m in comm.messages
        ]
        kinds = [c.kind for c in comm.collectives]
        return cls(
            nranks=comm.nranks,
            messages=msgs,
            collectives=[list(kinds) for _ in range(comm.nranks)],
            reliable=bool(getattr(comm, "supports_fault_injection", False)),
            faulty=bool(getattr(comm, "events", ())),
        )


def _base_tag(tag: str) -> str | None:
    """Strip protocol suffixes; None means the message is an ack."""
    if tag.endswith(ACK_SUFFIX):
        return None
    if tag.endswith(RETRY_SUFFIX):
        return tag[: -len(RETRY_SUFFIX)]
    return tag


def _finding(invariant: str, detail: str, **kw) -> InvariantViolation:
    return InvariantViolation(invariant, detail, **kw)


def persistent_patterns_of(comm) -> dict[str, list[list[tuple[int, int]]]]:
    """The frozen pair sequences of every persistent exchange registered on
    *comm*, grouped by tag — ready to pass as ``persistent_patterns``."""
    patterns: dict[str, list[list[tuple[int, int]]]] = {}
    for req in getattr(comm, "persistent_requests", ()):
        patterns.setdefault(req.tag, []).append(
            [(int(s), int(d)) for (s, d) in req.pattern]
        )
    return patterns


def scan_comm_trace(
    trace,
    *,
    persistent_patterns: dict[str, list[list[tuple[int, int]]]] | None = None,
    max_findings: int = 64,
    with_skips: bool = False,
):
    """Replay *trace* (a :class:`CommTrace` or a communicator) and return
    every violation found, unraised.

    ``persistent_patterns`` maps a tag to the list of frozen
    ``(src, dst)`` pair sequences registered for it (one per
    :class:`~repro.dist.comm.PersistentExchange`); when given, every
    contiguous round of persistent traffic under that tag must replay one
    of them exactly.

    With ``with_skips=True`` the return value is a ``(findings, skips)``
    pair; checks the trace makes unjudgeable (faulty runs, see
    :class:`SkippedCheck`) contribute a skip record instead of silently
    reporting clean.
    """
    if not isinstance(trace, CommTrace):
        trace = CommTrace.from_comm(trace)
    findings: list[InvariantViolation] = []
    skips: list[SkippedCheck] = []

    def done(out):
        return (out, skips) if with_skips else out

    def add(v: InvariantViolation) -> bool:
        findings.append(v)
        return len(findings) >= max_findings

    # -- rank sanity --------------------------------------------------------
    n = trace.nranks
    for m in trace.messages:
        if not (0 <= m.src < n and 0 <= m.dst < n):
            if add(_finding(
                "comm.rank_range",
                f"message {m.src}->{m.dst} (tag={m.tag!r}) is outside the "
                f"rank range [0, {n})")):
                return done(findings)
        elif m.src == m.dst:
            if add(_finding(
                "comm.self_message",
                f"rank {m.src} sent itself a message (tag={m.tag!r}); "
                f"local data must not go through the wire",
                rank=m.src)):
                return done(findings)

    # -- reliable-protocol send/ack matching --------------------------------
    # Only tags that demonstrably ran the ack/retry protocol are matched:
    # a FaultyComm also carries plain logged traffic (setup-time exchanges,
    # coarse-grid gathers) that is never acknowledged by design.
    if trace.reliable and trace.faulty:
        skips.append(SkippedCheck(
            "comm.unreceived_send",
            "faults fired during this run: injected drops and kills "
            "legitimately unbalance send/ack matching, so missing acks "
            "are not evidence of a schedule bug"))
    elif trace.reliable:
        sends: dict[tuple[int, int, str], int] = {}
        acks: dict[tuple[int, int, str], int] = {}
        protocol_tags: set[str] = set()
        for m in trace.messages:
            base = _base_tag(m.tag)
            if base is None:
                base = m.tag[: -len(ACK_SUFFIX)]
                protocol_tags.add(base)
                key = (m.dst, m.src, base)
                acks[key] = acks.get(key, 0) + 1
            elif base != m.tag:  # a retry marks its base tag as protocol-run
                protocol_tags.add(base)
            else:  # initial attempt (retries re-send the same seq)
                key = (m.src, m.dst, base)
                sends[key] = sends.get(key, 0) + 1
        for key in sorted(k for k in set(sends) | set(acks)
                          if k[2] in protocol_tags):
            s, a = sends.get(key, 0), acks.get(key, 0)
            src, dst, tag = key
            if a < s:
                if add(_finding(
                    "comm.unreceived_send",
                    f"{s - a} of {s} message(s) {src}->{dst} (tag={tag!r}) "
                    f"were never acknowledged by the receiver",
                    rank=src)):
                    return done(findings)
            elif a > s:
                if add(_finding(
                    "comm.recv_without_send",
                    f"rank {dst} acknowledged {a} message(s) {src}->{dst} "
                    f"(tag={tag!r}) but only {s} were sent",
                    rank=dst)):
                    return done(findings)

    # -- collective-order divergence ----------------------------------------
    seqs = trace.collectives
    if seqs:
        ref = seqs[0]
        for p, seq in enumerate(seqs[1:], start=1):
            if seq == ref:
                continue
            k = next(
                (i for i, (x, y) in enumerate(zip(ref, seq)) if x != y),
                min(len(ref), len(seq)),
            )
            a = ref[k] if k < len(ref) else "<none>"
            b = seq[k] if k < len(seq) else "<none>"
            if add(_finding(
                "comm.collective_order",
                f"rank {p} diverges from rank 0 at collective #{k}: "
                f"rank 0 enters {a!r}, rank {p} enters {b!r} — this "
                f"deadlocks a real MPI run",
                rank=p)):
                return done(findings)

    # -- persistent-pattern drift -------------------------------------------
    if persistent_patterns and trace.faulty:
        skips.append(SkippedCheck(
            "comm.persistent_drift",
            "faults fired during this run: an exchange aborted mid-round "
            "(CommFault) leaves a partial persistent round, so the replay "
            "cannot distinguish drift from a legitimate abort"))
    elif persistent_patterns:
        for tag, patterns in persistent_patterns.items():
            stream = [
                (m.src, m.dst)
                for m in trace.messages
                if m.persistent and m.tag == tag
            ]
            ordered = [
                [(int(s), int(d)) for (s, d) in pat if s != d]
                for pat in patterns
            ]
            i = 0
            while i < len(stream):
                for pat in ordered:
                    if pat and stream[i: i + len(pat)] == pat:
                        i += len(pat)
                        break
                else:
                    if add(_finding(
                        "comm.persistent_drift",
                        f"persistent traffic (tag={tag!r}) at message #{i} "
                        f"({stream[i][0]}->{stream[i][1]}) does not replay "
                        f"any frozen exchange pattern; persistent requests "
                        f"must keep their creation-time topology")):
                        return done(findings)
                    i += 1
    return done(findings)


def check_comm_trace(
    trace,
    *,
    persistent_patterns: dict[str, list[list[tuple[int, int]]]] | None = None,
) -> list[SkippedCheck]:
    """Replay *trace*; raise the first violation, return the skips.

    Checks the trace made unjudgeable (faulty runs) are surfaced twice:
    as a ``RuntimeWarning`` naming each skipped invariant family, and as
    the returned :class:`SkippedCheck` list — callers that log or assert
    on coverage read the return value.
    """
    # Full scan (not max_findings=1): an early finding must not suppress
    # the skip records of checks that come later in the replay.
    findings, skips = scan_comm_trace(
        trace, persistent_patterns=persistent_patterns, with_skips=True,
    )
    for skip in skips:
        warnings.warn(
            f"comm-trace check {skip.check} skipped: {skip.reason}",
            RuntimeWarning, stacklevel=2)
    if findings:
        raise findings[0]
    return skips
