"""Structured invariant-violation error and the ``REPRO_CHECK`` level gate.

The checking layer has three levels, selected by the ``REPRO_CHECK``
environment variable (read once at import) or at runtime through
:func:`set_check_level` / the CLI ``--check`` flag / the ``check=`` keyword
of the :mod:`repro.api` facade:

``off``
    No checks run.  The phase-boundary hooks compiled into the solvers
    reduce to one integer comparison each, so the solve path is
    bit-identical (and modeled-time-identical) to an unchecked build.
``cheap``
    O(n) structural checks: indptr shapes/monotonicity, index ranges,
    colmap ordering, CF-splitting bookkeeping.
``full``
    Everything: sortedness/duplicate scans, finiteness sweeps, the
    ``P = [I; P_F]`` identity-block check, ``R == P^T`` probes, the
    Galerkin RAP probe-vector test, and comm-trace replay after
    distributed solves.

Checkers never call the instrumented kernels: a violation report costs no
:class:`~repro.perf.counters.KernelRecord`, so modeled times are unaffected
at every level.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from ..perf.counters import current_phase

__all__ = [
    "InvariantViolation",
    "CHECK_LEVELS",
    "get_check_level",
    "set_check_level",
    "checking",
    "check_scope",
]

#: Recognized ``REPRO_CHECK`` values, in increasing strictness.
CHECK_LEVELS = ("off", "cheap", "full")

_LEVEL_IDS = {name: i for i, name in enumerate(CHECK_LEVELS)}


def _parse_level(name: str) -> int:
    try:
        return _LEVEL_IDS[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown check level {name!r}; choose from {CHECK_LEVELS}"
        ) from None


#: Current level id (0=off, 1=cheap, 2=full); module-global so the hot-path
#: gate is a single integer comparison.
_LEVEL = _parse_level(os.environ.get("REPRO_CHECK", "off"))


def get_check_level() -> str:
    """The active check level name (``"off"``/``"cheap"``/``"full"``)."""
    return CHECK_LEVELS[_LEVEL]


def set_check_level(level: str) -> str:
    """Set the active check level; returns the previous level name."""
    global _LEVEL
    prev = CHECK_LEVELS[_LEVEL]
    _LEVEL = _parse_level(level)
    return prev


def checking(level: str = "cheap") -> bool:
    """True when checks of *level* (or stricter) are enabled."""
    return _LEVEL >= _LEVEL_IDS[level]


@contextmanager
def check_scope(level: str | None):
    """Temporarily run under *level* (``None`` leaves the level untouched)."""
    if level is None:
        yield
        return
    prev = set_check_level(level)
    try:
        yield
    finally:
        set_check_level(prev)


class InvariantViolation(AssertionError):
    """A structural invariant of the solver's data or traffic was broken.

    Attributes
    ----------
    invariant:
        Dotted rule id, e.g. ``"csr.indices_sorted"`` or
        ``"comm.collective_order"`` — tests key on it to assert that a
        seeded corruption is caught by exactly the intended checker.
    detail:
        Human-readable description of what was found.
    phase:
        The perf phase active when the violation was detected (Fig. 5/7
        bucket), captured automatically.
    level:
        Multigrid level, when applicable.
    rank:
        Simulated rank, when applicable.
    context:
        Free-form origin marker (object name, file path, ...).
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        level: int | None = None,
        rank: int | None = None,
        context: str = "",
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.phase = current_phase()
        self.level = level
        self.rank = rank
        self.context = context
        where = [f"phase={self.phase}"]
        if level is not None:
            where.append(f"level={level}")
        if rank is not None:
            where.append(f"rank={rank}")
        if context:
            where.append(f"context={context}")
        super().__init__(f"[{invariant}] {detail} ({', '.join(where)})")
