"""Ticket-lifecycle event log and happens-before checker for the serve tier.

Under ``REPRO_CHECK=cheap`` (or stricter) the services record a structured
event for every step of a request's life —
``submit → admit → (route/forward) → batch → solve → result`` on the happy
path, plus ``reject``/``cancel``/``timeout``/``evacuate``/``retract`` and
the fault-lifecycle kinds (``failover``/``hedge``/``rewarm``/``health``).
At ``off`` the :meth:`EventLog.record` gate is one comparison and the log
stays empty, so solves, metrics, and ``serve-bench --json`` output remain
byte-identical to an unchecked build (events never appear in metrics).

:func:`scan_event_log` derives vector clocks — per-actor program order
plus cross-actor edges through shared ticket ids (the router and the
serving rank log under the same id) — and checks the orderings that a
lock or queue bug would break:

* ``events.double_completion`` — two terminal events for one ticket on
  one actor (a ``retract`` legitimately resets the ticket; anything else
  means a result raced a cancel or a timeout).
* ``events.slot_leak`` — an admitted request whose queue slot is never
  released by a dispatch, timeout, cancel, or evacuation.
* ``events.lost_cancel`` — a cancel acknowledged by the router that is
  nevertheless followed (in happens-before order) by a *completed*
  delivery of the same ticket: the cancel was dropped across a redirect.
* ``events.result_before_solve`` — a ``result`` event not preceded (in
  vector-clock order) by its ``solve``.
* ``events.unknown_kind`` — an event kind outside the documented
  vocabulary (schema drift).

:func:`diff_event_logs` compares two runs of the same workload and raises
``events.order_divergence`` on the first differing event — the run-twice
determinism contract, applied to scheduling decisions rather than final
numbers.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass

from .errors import InvariantViolation, checking

__all__ = [
    "EVENT_KINDS",
    "EVENTS_SCHEMA",
    "ServiceEvent",
    "EventLog",
    "vector_clocks",
    "scan_event_log",
    "check_event_log",
    "diff_event_logs",
]

#: Version tag stamped into every exported log (golden-file stability).
EVENTS_SCHEMA = "repro.events/1"

#: The documented event vocabulary; anything else is schema drift.
EVENT_KINDS = frozenset({
    "submit", "admit", "reject", "route", "forward", "shed",
    "batch", "solve", "result", "cancel", "timeout", "evacuate",
    "retract", "failover", "hedge", "rewarm", "deliver", "health",
})

#: Kinds that release the admission-queue slot taken by ``admit``.
_SLOT_RELEASE = frozenset({"solve", "cancel", "timeout", "evacuate"})

#: Terminal (completion-like) kinds for one actor's copy of a ticket.
_TERMINAL = frozenset({"result", "cancel", "timeout", "reject"})


@dataclass(frozen=True)
class ServiceEvent:
    """One recorded lifecycle step.

    ``actor`` is the logging component (``service``, ``router``,
    ``rank3``, ...); ``ticket`` and ``rank`` are −1 when not applicable.
    ``time`` is the virtual clock — deterministic, so it is part of the
    golden run-twice contract.
    """

    seq: int
    time: float
    actor: str
    kind: str
    ticket: int = -1
    rank: int = -1
    detail: str = ""


class EventLog:
    """Append-only, lock-guarded event recorder, gated on ``REPRO_CHECK``.

    The gate is re-evaluated per call (not frozen at construction) so a
    CLI ``--check`` flag set after service construction still takes
    effect; pass ``enabled=True``/``False`` to pin it (tests plant
    violations with a pinned-on log regardless of the ambient level).
    """

    def __init__(self, *, enabled: bool | None = None) -> None:
        self.events: list[ServiceEvent] = []
        self._enabled = enabled
        self._lock = threading.RLock()

    @property
    def enabled(self) -> bool:
        return checking("cheap") if self._enabled is None else self._enabled

    def record(self, actor: str, kind: str, *, time: float = 0.0,
               ticket: int = -1, rank: int = -1, detail: str = "") -> None:
        if not self.enabled:
            return
        with self._lock:
            self.events.append(ServiceEvent(
                seq=len(self.events), time=float(time), actor=actor,
                kind=kind, ticket=int(ticket), rank=int(rank),
                detail=detail))

    def clear(self) -> None:
        with self._lock:
            self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def snapshot(self) -> dict:
        """JSON-ready document (schema-tagged, deterministic order)."""
        return {"schema": EVENTS_SCHEMA,
                "events": [asdict(e) for e in self.events]}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)


# -- vector clocks ----------------------------------------------------------

def _actor_rank(ev: ServiceEvent) -> int:
    """The rank an event belongs to: its ``rank`` field, else the rank
    encoded in a ``rank<i>`` actor name (local ticket ids are only unique
    per rank, so cross-actor identity needs the pair)."""
    if ev.rank >= 0:
        return ev.rank
    if ev.actor.startswith("rank") and ev.actor[4:].isdigit():
        return int(ev.actor[4:])
    return -1


def vector_clocks(events: list[ServiceEvent]) -> list[dict[str, int]]:
    """One vector clock per event.

    Happens-before is generated by (a) per-actor program order and (b)
    cross-actor edges through shared ``(rank, ticket)`` identities — the
    router logs a ticket under its owning rank (local ids are unique only
    per rank), so an event on a ticket inherits the clock of the latest
    earlier event on the same ticket, whichever actor recorded it.  The
    recorded sequence is a valid linearization — recording happens under
    the log's lock — so a single forward pass suffices.
    """
    actor_vc: dict[str, dict[str, int]] = {}
    ticket_vc: dict[tuple[int, int], dict[str, int]] = {}
    out: list[dict[str, int]] = []
    for ev in events:
        vc = dict(actor_vc.get(ev.actor, {}))
        if ev.ticket >= 0:
            key = (_actor_rank(ev), ev.ticket)
            for actor, tick in ticket_vc.get(key, {}).items():
                if tick > vc.get(actor, 0):
                    vc[actor] = tick
        vc[ev.actor] = vc.get(ev.actor, 0) + 1
        actor_vc[ev.actor] = vc
        if ev.ticket >= 0:
            ticket_vc[(_actor_rank(ev), ev.ticket)] = vc
        out.append(vc)
    return out


def _dominates(a: dict[str, int], b: dict[str, int]) -> bool:
    """Whether clock *a* happens-after (or equals) clock *b*."""
    return all(a.get(actor, 0) >= tick for actor, tick in b.items())


# -- scanning ---------------------------------------------------------------

def _scan_ticket(actor: str, ticket: int, evs: list[tuple[ServiceEvent, dict]],
                 findings: list[InvariantViolation]) -> None:
    """Per-(actor, ticket) lifecycle checks over its event chain."""
    terminals: list[ServiceEvent] = []
    solves: list[dict] = []
    cancelled = False
    open_slots = 0
    for ev, vc in evs:
        if ev.kind == "retract":
            # A crash invalidated the completion: the lifecycle restarts.
            terminals.clear()
            continue
        if ev.kind in _TERMINAL:
            terminals.append(ev)
        if ev.kind == "admit":
            open_slots += 1
        elif ev.kind in _SLOT_RELEASE and open_slots > 0:
            open_slots -= 1
        if ev.kind == "solve":
            solves.append(vc)
        if ev.kind == "cancel":
            cancelled = True
        if ev.kind == "result":
            if not any(_dominates(vc, s) for s in solves):
                findings.append(InvariantViolation(
                    "events.result_before_solve",
                    f"{actor} emitted result for ticket {ticket} with no "
                    f"happens-before solve event",
                    rank=ev.rank if ev.rank >= 0 else None,
                    context=f"actor={actor}"))
        if ev.kind == "deliver" and cancelled and ev.detail == "completed":
            findings.append(InvariantViolation(
                "events.lost_cancel",
                f"ticket {ticket} was cancelled on {actor} but a "
                f"'completed' result was still delivered — the cancel was "
                f"lost across a redirect",
                rank=ev.rank if ev.rank >= 0 else None,
                context=f"actor={actor}"))
    if len(terminals) > 1:
        kinds = [e.kind for e in terminals]
        findings.append(InvariantViolation(
            "events.double_completion",
            f"ticket {ticket} reached {len(terminals)} terminal events on "
            f"{actor} ({', '.join(kinds)}); exactly one completion is "
            f"allowed per lifecycle",
            context=f"actor={actor}"))
    if open_slots > 0:
        findings.append(InvariantViolation(
            "events.slot_leak",
            f"ticket {ticket} was admitted on {actor} but its queue slot "
            f"was never released (no solve/timeout/cancel/evacuate)",
            context=f"actor={actor}"))


def scan_event_log(log) -> list[InvariantViolation]:
    """All lifecycle violations in a log (accepts an event list too)."""
    events = list(log.events if isinstance(log, EventLog) else log)
    findings: list[InvariantViolation] = []
    clocks = vector_clocks(events)
    chains: dict[tuple[str, int, int], list[tuple[ServiceEvent, dict]]] = {}
    for ev, vc in zip(events, clocks):
        if ev.kind not in EVENT_KINDS:
            findings.append(InvariantViolation(
                "events.unknown_kind",
                f"event #{ev.seq} on {ev.actor} has unknown kind "
                f"{ev.kind!r}; the schema vocabulary is frozen "
                f"({EVENTS_SCHEMA})"))
            continue
        if ev.ticket >= 0:
            key = (ev.actor, _actor_rank(ev), ev.ticket)
            chains.setdefault(key, []).append((ev, vc))
    for (actor, _rank, ticket), evs in sorted(chains.items()):
        _scan_ticket(actor, ticket, evs, findings)
    return findings


def check_event_log(log) -> None:
    """Raise the first lifecycle violation found in *log*."""
    findings = scan_event_log(log)
    if findings:
        raise findings[0]


def diff_event_logs(a, b) -> None:
    """Raise ``events.order_divergence`` where two runs' logs differ.

    Two replays of one (seed, workload, config) triple must produce the
    same event sequence — same actors, kinds, tickets, ranks, and virtual
    times.  The first divergence is reported with both sides.
    """
    ea = list(a.events if isinstance(a, EventLog) else a)
    eb = list(b.events if isinstance(b, EventLog) else b)

    def _key(ev: ServiceEvent) -> tuple:
        return (ev.actor, ev.kind, ev.ticket, ev.rank, ev.time, ev.detail)

    for i, (x, y) in enumerate(zip(ea, eb)):
        if _key(x) != _key(y):
            raise InvariantViolation(
                "events.order_divergence",
                f"runs diverge at event #{i}: "
                f"first={x.actor}/{x.kind}(t={x.ticket}, r={x.rank}) vs "
                f"second={y.actor}/{y.kind}(t={y.ticket}, r={y.rank}) — "
                f"scheduling is not a pure function of the inputs")
    if len(ea) != len(eb):
        raise InvariantViolation(
            "events.order_divergence",
            f"runs diverge in length: {len(ea)} vs {len(eb)} events "
            f"(extra events start at #{min(len(ea), len(eb))})")
