"""Convention-enforcing AST lint for the repro source tree.

Run as ``python tools/lint_repro.py src`` (CI does) or programmatically via
:func:`run_lint`.  The rules encode repo conventions that plain style
linters cannot see:

``kernel-counts``
    Every public module-level function in a *kernel module* (the
    instrumented compute kernels of ``sparse``/``amg``/``dist``) must
    charge the performance model — call
    :func:`repro.perf.counters.count` directly or (transitively) call
    another kernel that does.  An uncharged kernel silently corrupts the
    modeled times the whole reproduction is built on.
``no-scipy``
    No ``scipy`` imports under ``src/``: the library is from-scratch by
    design; scipy is a test oracle only.
``seeded-random``
    No unseeded randomness: ``np.random.default_rng()`` without a seed and
    every legacy ``np.random.*`` global-state call are flagged.
    Reproducibility (PMIS tie-breaking, fault plans) depends on explicit
    seeds everywhere.
``no-bare-except``
    No bare ``except:`` handlers (they swallow ``KeyboardInterrupt`` and
    mask :class:`~repro.analysis.errors.InvariantViolation`).
``no-borrowed-mutation``
    No in-place mutation of the ``data``/``indices``/``indptr`` arrays of
    a CSR matrix received as a function parameter: CSR constructors share
    (borrow) array references, so mutating a borrowed array corrupts the
    lender.  Kernels must copy first (``indptr.copy()``) or build fresh
    arrays.
``use-config-objects``
    Library code must configure the serving tier through
    :class:`~repro.serve.service.ServiceConfig` — constructing a
    ``SolveService`` / ``ShardedSolveService`` with the deprecated
    per-field keywords (``max_batch=...``, ``ranks=...``) is flagged.
    The keywords only exist as a migration shim for external callers.
``no-count-in-hot-loop``
    No per-iteration performance counting in the compute tree: a
    ``count(...)`` call lexically inside a ``for``/``while`` body under
    ``sparse``/``amg``/``dist`` charges the model once per Python
    iteration — the pattern the SolvePlan layer exists to eliminate.
    Hot paths must precompute a record template (``make_record`` +
    ``count_record``) or bulk-append (``count_batch``); loops that are
    genuinely per-invocation (per-rank setup, leader staging) carry a
    justified waiver.
``lockset``
    In any class that documents a lock by assigning ``self._lock``
    (the serving tier, :class:`~repro.amg.cache.HierarchyCache`), every
    write to a private (underscore) attribute — rebinding, subscript or
    augmented assignment, deletion, or a mutating container-method call —
    must happen lexically inside ``with self._lock``, or inside a private
    method whose *every* call site holds the lock (a per-class fixpoint;
    ``__init__`` is exempt as thread-confined).  Public attributes such as
    the virtual clock are single-writer by design and out of scope.

Waivers live in a JSON file (default ``tools/lint_waivers.json``) mapping
rule id to a list of ``fnmatch`` patterns over ``path`` or
``path::symbol``; every waiver entry must justify itself with a comment
key (``"# why"``-style keys are ignored by the loader).
"""

from __future__ import annotations

import ast
import fnmatch
import json
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["LintFinding", "run_lint", "main", "RULES"]

RULES = (
    "kernel-counts",
    "no-scipy",
    "seeded-random",
    "no-bare-except",
    "no-borrowed-mutation",
    "use-config-objects",
    "no-count-in-hot-loop",
    "lockset",
)

#: Path fragments of the compute tree scanned by ``no-count-in-hot-loop``.
_HOT_TREES = ("repro/sparse/", "repro/amg/", "repro/dist/")

#: Service classes whose constructors carry the deprecated per-field
#: keyword shim (see ``repro.serve.service.resolve_service_config``).
_SERVICE_CLASSES = {"SolveService", "ShardedSolveService"}


def _service_config_fields() -> frozenset[str]:
    """``ServiceConfig`` field names — the deprecated constructor keywords.

    Introspected from the dataclass itself so the list can never drift
    from :class:`~repro.serve.service.ServiceConfig` (it used to be a
    hand-maintained literal); ``tests/test_shard.py`` keeps the pinning
    test as a guard.  The *scanned* trees are still pure AST — only the
    lint module's own import pulls in ``repro.serve``.
    """
    from dataclasses import fields

    from ..serve.service import ServiceConfig

    return frozenset(f.name for f in fields(ServiceConfig))


SERVICE_CONFIG_FIELDS = _service_config_fields()

#: Modules whose public module-level functions are instrumented kernels
#: (matched as path suffixes, POSIX separators).
KERNEL_MODULES = (
    "repro/sparse/spmv.py",
    "repro/sparse/spgemm.py",
    "repro/sparse/transpose.py",
    "repro/sparse/triple_product.py",
    "repro/sparse/blas1.py",
    "repro/sparse/reorder.py",
    "repro/sparse/accumulator.py",
    "repro/amg/strength.py",
    "repro/amg/pmis.py",
    "repro/amg/coarsen_rs.py",
    "repro/amg/truncation.py",
    "repro/amg/interp_classical.py",
    "repro/amg/interp_direct.py",
    "repro/amg/interp_extended.py",
    "repro/amg/interp_multipass.py",
    "repro/amg/interp_twostage.py",
    "repro/dist/spmv.py",
    "repro/dist/spgemm.py",
    "repro/dist/transpose.py",
    "repro/dist/strength.py",
    "repro/dist/renumber.py",
    "repro/dist/rowgather.py",
    "repro/dist/pmis.py",
    "repro/dist/interp.py",
)

#: Legacy ``np.random`` attributes that use unseeded module-global state.
_LEGACY_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "ranf", "sample",
    "choice", "shuffle", "permutation", "seed", "normal", "standard_normal",
    "uniform", "poisson", "exponential", "binomial", "bytes",
}

#: ndarray methods that mutate in place.
_MUTATING_METHODS = {"sort", "fill", "partition", "put", "resize", "setfield"}

_CSR_ARRAYS = {"data", "indices", "indptr"}


@dataclass(frozen=True)
class LintFinding:
    rule: str
    path: str
    line: int
    symbol: str
    message: str

    def format(self) -> str:
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}: {self.rule}{sym}: {self.message}"


# ---------------------------------------------------------------------------
# Per-file AST walks
# ---------------------------------------------------------------------------

def _call_target_names(node: ast.Call) -> str | None:
    """The called name: ``f(...)`` -> ``f``, ``m.f(...)`` -> ``f``."""
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


def _np_random_attr(node: ast.AST) -> str | None:
    """``np.random.X`` / ``numpy.random.X`` attribute name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "random"
        and isinstance(node.value.value, ast.Name)
        and node.value.value.id in ("np", "numpy")
    ):
        return node.attr
    return None


def _scan_simple_rules(tree: ast.Module, path: str) -> list[LintFinding]:
    """All single-file rules (everything except kernel-counts)."""
    findings: list[LintFinding] = []
    scopes: list[str] = []
    func_params: list[set[str]] = []

    def symbol() -> str:
        return ".".join(scopes)

    def visit(node: ast.AST) -> None:
        entered = False
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            scopes.append(node.name)
            entered = True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                a = node.args
                names = {
                    p.arg
                    for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)
                } - {"self", "cls"}
                func_params.append(names)

        if isinstance(node, (ast.Import, ast.ImportFrom)):
            mods = (
                [n.name for n in node.names]
                if isinstance(node, ast.Import)
                else [node.module or ""]
            )
            for mod in mods:
                if mod == "scipy" or mod.startswith("scipy."):
                    findings.append(LintFinding(
                        "no-scipy", path, node.lineno, symbol(),
                        f"import of {mod!r}: scipy is a test oracle, not a "
                        f"library dependency"))
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(LintFinding(
                "no-bare-except", path, node.lineno, symbol(),
                "bare 'except:' swallows KeyboardInterrupt and masks "
                "invariant violations; name the exception types"))
        elif isinstance(node, ast.Call):
            attr = _np_random_attr(node.func)
            if attr == "default_rng" and not node.args and not node.keywords:
                findings.append(LintFinding(
                    "seeded-random", path, node.lineno, symbol(),
                    "np.random.default_rng() without a seed breaks "
                    "reproducibility; pass an explicit seed"))
            elif attr == "RandomState" and not node.args and not node.keywords:
                findings.append(LintFinding(
                    "seeded-random", path, node.lineno, symbol(),
                    "np.random.RandomState() without a seed breaks "
                    "reproducibility; pass an explicit seed"))
            elif attr in _LEGACY_RANDOM:
                findings.append(LintFinding(
                    "seeded-random", path, node.lineno, symbol(),
                    f"np.random.{attr} uses unseeded module-global state; "
                    f"use a seeded np.random.default_rng(seed)"))
            name = _call_target_names(node)
            if name in _SERVICE_CLASSES:
                legacy = sorted(
                    kw.arg for kw in node.keywords
                    if kw.arg in SERVICE_CONFIG_FIELDS)
                if legacy:
                    findings.append(LintFinding(
                        "use-config-objects", path, node.lineno, symbol(),
                        f"{name}({', '.join(legacy)}=...) bypasses "
                        f"ServiceConfig; the per-field keywords are a "
                        f"deprecated shim — pass "
                        f"{name}(ServiceConfig({legacy[0]}=...))"))
        if func_params:
            _scan_borrowed_mutation(node, path, symbol(), func_params[-1],
                                    findings)

        for child in ast.iter_child_nodes(node):
            visit(child)
        if entered:
            scopes.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func_params.pop()

    visit(tree)
    return findings


def _param_csr_array(node: ast.AST, params: set[str]) -> str | None:
    """``<param>.data`` / ``.indices`` / ``.indptr`` access, else None."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr in _CSR_ARRAYS
        and isinstance(node.value, ast.Name)
        and node.value.id in params
    ):
        return f"{node.value.id}.{node.attr}"
    return None


def _scan_borrowed_mutation(
    node: ast.AST, path: str, symbol: str, params: set[str],
    findings: list[LintFinding],
) -> None:
    targets: list[ast.AST] = []
    why = ""
    if isinstance(node, ast.Assign):
        targets = node.targets
        why = "assignment"
    elif isinstance(node, (ast.AugAssign,)):
        targets = [node.target]
        why = "in-place update"
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATING_METHODS:
            targets = [node.func.value]
            why = f".{node.func.attr}() call"
    for t in targets:
        # x.data[...] = / x.data.sort(): unwrap one subscript layer.
        inner = t.value if isinstance(t, ast.Subscript) else t
        name = _param_csr_array(inner, params)
        if name is None and isinstance(t, ast.Attribute):
            name = _param_csr_array(t, params)
        if name is not None:
            findings.append(LintFinding(
                "no-borrowed-mutation", path, node.lineno, symbol,
                f"{why} mutates {name}, a CSR array borrowed through a "
                f"parameter; CSR constructors share array references, so "
                f"copy before mutating"))


# ---------------------------------------------------------------------------
# no-count-in-hot-loop (per-iteration model charges in the compute tree)
# ---------------------------------------------------------------------------

def _scan_count_in_loop(tree: ast.Module, path: str) -> list[LintFinding]:
    """Flag ``count(...)`` calls lexically inside ``for``/``while`` bodies."""
    if not any(frag in Path(path).as_posix() for frag in _HOT_TREES):
        return []
    findings: list[LintFinding] = []
    scopes: list[str] = []

    def visit(node: ast.AST, loop_depth: int) -> None:
        entered = False
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            scopes.append(node.name)
            entered = True
            # A nested def starts a fresh call boundary: its body only runs
            # per loop iteration if the closure is *called* there, which the
            # call-site scan sees.
            loop_depth = 0
        if isinstance(node, ast.Call) and _call_target_names(node) == "count":
            if loop_depth > 0:
                findings.append(LintFinding(
                    "no-count-in-hot-loop", path, node.lineno,
                    ".".join(scopes),
                    "count() inside a loop body charges the model once per "
                    "Python iteration; precompute a template "
                    "(make_record + count_record) or bulk-append "
                    "(count_batch)"))
        child_depth = loop_depth + (1 if isinstance(node, (ast.For, ast.While))
                                    else 0)
        for child in ast.iter_child_nodes(node):
            visit(child, child_depth)
        if entered:
            scopes.pop()

    visit(tree, 0)
    return findings


# ---------------------------------------------------------------------------
# lockset (per-class lock-discipline analysis)
# ---------------------------------------------------------------------------

#: Container methods that mutate their receiver in place.
_MUTATING_CONTAINER = {
    "append", "add", "clear", "discard", "extend", "insert", "move_to_end",
    "pop", "popitem", "remove", "setdefault", "update",
}


def _self_private_attr(node: ast.AST) -> str | None:
    """``self._x`` attribute name for a private (non-lock) attribute."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr.startswith("_")
        and node.attr != "_lock"
    ):
        return node.attr
    return None


def _is_self_lock(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr == "_lock"
    )


def _lockset_writes(node: ast.AST) -> list[tuple[str, str]]:
    """``(attr, why)`` pairs for shared-state writes performed by *node*."""
    out: list[tuple[str, str]] = []

    def tgt(t: ast.AST, why: str) -> None:
        # self._x[...] = / del self._x[...]: unwrap one subscript layer.
        inner = t.value if isinstance(t, ast.Subscript) else t
        attr = _self_private_attr(inner)
        if attr is not None:
            out.append((attr, why))

    if isinstance(node, ast.Assign):
        for t in node.targets:
            for el in (t.elts if isinstance(t, ast.Tuple) else [t]):
                tgt(el, "assignment")
    elif isinstance(node, ast.AugAssign):
        tgt(node.target, "in-place update")
    elif isinstance(node, ast.Delete):
        for t in node.targets:
            tgt(t, "deletion")
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATING_CONTAINER:
            attr = _self_private_attr(node.func.value)
            if attr is not None:
                out.append((attr, f".{node.func.attr}() call"))
    return out


def _scan_class_lockset(
    cls: ast.ClassDef, path: str, findings: list[LintFinding]
) -> None:
    methods = {
        n.name: n for n in cls.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    owns_lock = any(
        isinstance(sub, ast.Assign)
        and any(_is_self_lock(t) for t in sub.targets)
        for m in methods.values()
        for sub in ast.walk(m)
    )
    if not owns_lock:
        return

    #: method -> unguarded (attr, why, lineno) writes
    writes: dict[str, list[tuple[str, str, int]]] = {}
    #: callee -> [(caller, caller held the lock at the call site)]
    call_sites: dict[str, list[tuple[str, bool]]] = {}

    def walk(node: ast.AST, method: str, in_lock: bool) -> None:
        if isinstance(node, ast.With):
            guarded = in_lock or any(
                _is_self_lock(item.context_expr) for item in node.items
            )
            for item in node.items:
                walk(item.context_expr, method, in_lock)
            for child in node.body:
                walk(child, method, guarded)
            return
        if not in_lock:
            for attr, why in _lockset_writes(node):
                writes.setdefault(method, []).append((attr, why, node.lineno))
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and node.func.attr in methods
        ):
            call_sites.setdefault(node.func.attr, []).append((method, in_lock))
        for child in ast.iter_child_nodes(node):
            walk(child, method, in_lock)

    for name, m in methods.items():
        for stmt in m.body:
            walk(stmt, name, False)

    # Fixpoint: a private helper is lock-held-on-entry iff every one of its
    # self-call sites is lexically in-lock, in __init__ (thread-confined),
    # or in another lock-held helper.  Public and dunder methods are
    # externally callable, so they never qualify.
    lock_held: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in methods:
            if (
                name in lock_held
                or not name.startswith("_")
                or name.startswith("__")
            ):
                continue
            sites = call_sites.get(name)
            if sites and all(
                in_lock or caller == "__init__" or caller in lock_held
                for caller, in_lock in sites
            ):
                lock_held.add(name)
                changed = True

    for name in sorted(writes):
        if name == "__init__" or name in lock_held:
            continue
        for attr, why, lineno in writes[name]:
            findings.append(LintFinding(
                "lockset", path, lineno, f"{cls.name}.{name}",
                f"{why} writes self.{attr} outside 'with self._lock' in a "
                f"lock-guarded class; shared mutable state must be written "
                f"under the documented lock (or only from lock-held "
                f"private callers)"))


def _scan_lockset(tree: ast.Module, path: str) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            _scan_class_lockset(node, path, findings)
    return findings


# ---------------------------------------------------------------------------
# kernel-counts (cross-module charge analysis)
# ---------------------------------------------------------------------------

def _module_key(path: Path) -> str:
    """Stable module id: POSIX path suffix starting at ``repro/``."""
    parts = path.as_posix().split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return path.as_posix()


def _resolve_relative(key: str, level: int, module: str | None) -> str | None:
    """Resolve ``from .foo import f`` inside module *key* to a module id."""
    pkg = key.rsplit("/", 1)[0].split("/")  # package dirs of this module
    if level > len(pkg):
        return None
    base = pkg[: len(pkg) - (level - 1)]
    if module:
        base = base + module.split(".")
    return "/".join(base) + ".py"


class _ModuleInfo:
    def __init__(self, key: str, tree: ast.Module) -> None:
        self.key = key
        #: public module-level functions: name -> lineno
        self.public: dict[str, int] = {}
        #: every module-level function name -> called names (local view)
        self.calls: dict[str, set[str]] = {}
        #: functions that call ``count(...)`` (or ``...counters.count``).
        self.direct: set[str] = set()
        #: imported name -> (module id, original name)
        self.imports: dict[str, tuple[str, str]] = {}

        for node in tree.body:
            if isinstance(node, ast.ImportFrom) and node.level > 0:
                target = _resolve_relative(key, node.level, node.module)
                if target is None:
                    continue
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = (
                        target, alias.name
                    )
            elif isinstance(node, ast.FunctionDef):
                if not node.name.startswith("_"):
                    self.public[node.name] = node.lineno
                called = set()
                charges = False
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        name = _call_target_names(sub)
                        if name == "count":
                            charges = True
                        elif name is not None:
                            called.add(name)
                self.calls[node.name] = called
                if charges:
                    self.direct.add(node.name)


def _scan_kernel_counts(
    modules: dict[str, tuple[ast.Module, str]]
) -> list[LintFinding]:
    infos = {
        key: _ModuleInfo(key, tree) for key, (tree, _path) in modules.items()
    }
    kernel_keys = {
        key for key in infos
        if any(key.endswith(suffix) for suffix in KERNEL_MODULES)
    }
    # Fixpoint: (module, func) charges if it calls count() directly or calls
    # a charging function (same module, or imported from another module).
    charging: set[tuple[str, str]] = {
        (key, fn) for key, info in infos.items() for fn in info.direct
    }
    changed = True
    while changed:
        changed = False
        for key, info in infos.items():
            for fn, called in info.calls.items():
                if (key, fn) in charging:
                    continue
                for name in called:
                    if (key, name) in charging:
                        charging.add((key, fn))
                        changed = True
                        break
                    target = info.imports.get(name)
                    if target is not None and target in charging:
                        charging.add((key, fn))
                        changed = True
                        break
    findings = []
    for key in sorted(kernel_keys):
        info = infos[key]
        path = modules[key][1]
        for fn, lineno in sorted(info.public.items(), key=lambda kv: kv[1]):
            if (key, fn) not in charging:
                findings.append(LintFinding(
                    "kernel-counts", path, lineno, fn,
                    f"public kernel {fn}() never charges "
                    f"perf.counters.count(), directly or through another "
                    f"kernel; uncharged kernels corrupt the modeled times"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def _load_waivers(path: Path | None) -> dict[str, list[str]]:
    if path is None or not path.exists():
        return {}
    with open(path) as f:
        raw = json.load(f)
    return {
        rule: [p for p in pats]
        for rule, pats in raw.items()
        if not rule.startswith("#")
    }


def _waived(finding: LintFinding, waivers: dict[str, list[str]]) -> bool:
    pats = waivers.get(finding.rule, ())
    path = Path(finding.path).as_posix()
    qualified = f"{path}::{finding.symbol}" if finding.symbol else path
    # A relative waiver pattern also matches as a path suffix, so waivers
    # written repo-relative keep working when lint is invoked with
    # absolute paths (CI, tests).
    return any(
        fnmatch.fnmatch(path, pat)
        or fnmatch.fnmatch(qualified, pat)
        or (not pat.startswith(("/", "*"))
            and (fnmatch.fnmatch(path, "*/" + pat)
                 or fnmatch.fnmatch(qualified, "*/" + pat)))
        for pat in pats
    )


def run_lint(
    paths: list[str | Path],
    *,
    waivers: dict[str, list[str]] | None = None,
    rules: set[str] | None = None,
) -> list[LintFinding]:
    """Lint every ``.py`` file under *paths*; returns unwaived findings."""
    waivers = waivers or {}
    active = set(rules) if rules is not None else set(RULES)
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)

    findings: list[LintFinding] = []
    modules: dict[str, tuple[ast.Module, str]] = {}
    for path in files:
        if "__pycache__" in path.parts:
            continue
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:
            findings.append(LintFinding(
                "syntax", str(path), exc.lineno or 0, "",
                f"failed to parse: {exc.msg}"))
            continue
        modules[_module_key(path)] = (tree, str(path))
        simple = _scan_simple_rules(tree, str(path))
        findings.extend(f for f in simple if f.rule in active)
        if "no-count-in-hot-loop" in active:
            findings.extend(_scan_count_in_loop(tree, str(path)))
        if "lockset" in active:
            findings.extend(_scan_lockset(tree, str(path)))
    if "kernel-counts" in active:
        findings.extend(_scan_kernel_counts(modules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return [f for f in findings if not _waived(f, waivers)]


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="Repo-convention AST lint (see repro.analysis.lint).",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--waivers", default=None,
        help="JSON waiver file (default: tools/lint_waivers.json if present)")
    parser.add_argument(
        "--rule", action="append", default=None, choices=RULES,
        help="run only this rule (repeatable)")
    args = parser.parse_args(argv)

    waiver_path = (
        Path(args.waivers)
        if args.waivers is not None
        else Path("tools/lint_waivers.json")
    )
    waivers = _load_waivers(waiver_path)
    findings = run_lint(
        args.paths,
        waivers=waivers,
        rules=set(args.rule) if args.rule else None,
    )
    for f in findings:
        print(f.format())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
