"""Structural sanitizers for CSR matrices, ParCSR matrices, and hierarchies.

Every checker raises :class:`~repro.analysis.errors.InvariantViolation` on
the first broken invariant and returns the checked object otherwise, so
call sites can write ``A = check_csr(A)``.  The checks are written against
the *attributes* of the objects (``indptr``/``indices``/``data``, blocks,
levels) rather than their classes, which keeps this module import-light —
:mod:`repro.sparse.io` can call :func:`check_csr` without an import cycle.

None of the checkers report through :func:`repro.perf.counters.count`:
validation must never perturb modeled times, at any check level.  The
linear-algebra probes (``R == P^T``, the Galerkin RAP spot-check) therefore
use private raw-numpy matvecs instead of the instrumented kernels.
"""

from __future__ import annotations

import numpy as np

from .errors import InvariantViolation, checking

__all__ = [
    "check_csr",
    "check_parcsr",
    "check_hierarchy",
    "check_dist_hierarchy",
]


# ---------------------------------------------------------------------------
# Raw (uninstrumented) helpers
# ---------------------------------------------------------------------------

def _row_ids(indptr: np.ndarray) -> np.ndarray:
    counts = np.diff(indptr)
    return np.repeat(np.arange(len(counts), dtype=np.int64), counts)


def _raw_spmv(A, x: np.ndarray) -> np.ndarray:
    """``A @ x`` without touching the instrumented kernels."""
    out = np.zeros(A.shape[0], dtype=np.float64)
    np.add.at(out, _row_ids(A.indptr), A.data * x[A.indices])
    return out


def _raw_spmv_t(A, x: np.ndarray) -> np.ndarray:
    """``A.T @ x`` without touching the instrumented kernels."""
    out = np.zeros(A.shape[1], dtype=np.float64)
    np.add.at(out, A.indices, A.data * x[_row_ids(A.indptr)])
    return out


# ---------------------------------------------------------------------------
# CSR
# ---------------------------------------------------------------------------

def check_csr(
    A,
    *,
    name: str = "A",
    level: int | None = None,
    rank: int | None = None,
    context: str = "",
    full: bool | None = None,
    sorted_indices: bool = True,
) -> "A":
    """Validate the CSR invariants of *A* (anything with
    ``shape``/``indptr``/``indices``/``data``).

    Cheap checks: indptr shape, start-at-zero, monotonicity, nnz/array-length
    consistency, column indices in ``[0, ncols)``.  Full checks add: column
    indices strictly increasing within each row (which also rules out
    duplicates; skipped when ``sorted_indices=False``) and all values finite.

    ``full=None`` follows the active :func:`~repro.analysis.checking` level.
    """
    if full is None:
        full = checking("full")
    kw = dict(level=level, rank=rank, context=context or name)
    nrows, ncols = int(A.shape[0]), int(A.shape[1])
    indptr = A.indptr
    indices = A.indices
    data = A.data

    if indptr.ndim != 1 or len(indptr) != nrows + 1:
        raise InvariantViolation(
            "csr.indptr_shape",
            f"{name}.indptr has shape {indptr.shape}, expected ({nrows + 1},)",
            **kw)
    if len(indptr) and indptr[0] != 0:
        raise InvariantViolation(
            "csr.indptr_start", f"{name}.indptr[0] = {indptr[0]}, expected 0",
            **kw)
    d = np.diff(indptr)
    if len(d) and d.min() < 0:
        row = int(np.argmin(d >= 0))
        raise InvariantViolation(
            "csr.indptr_monotone",
            f"{name}.indptr decreases at row {row} "
            f"({indptr[row]} -> {indptr[row + 1]})",
            **kw)
    nnz = int(indptr[-1]) if len(indptr) else 0
    if len(indices) != nnz or len(data) != nnz:
        raise InvariantViolation(
            "csr.nnz_consistent",
            f"{name}: indptr[-1]={nnz} but len(indices)={len(indices)}, "
            f"len(data)={len(data)}",
            **kw)
    if nnz:
        cmin, cmax = int(indices.min()), int(indices.max())
        if cmin < 0 or cmax >= ncols:
            raise InvariantViolation(
                "csr.indices_range",
                f"{name} has column index range [{cmin}, {cmax}] outside "
                f"[0, {ncols})",
                **kw)
    if not full:
        return A
    if nnz > 1 and sorted_indices:
        di = np.diff(indices)
        row_start = indptr[1:-1]
        interior = np.ones(nnz - 1, dtype=bool)
        starts = row_start[(row_start > 0) & (row_start < nnz)]
        interior[starts - 1] = False
        bad = interior & (di <= 0)
        if bad.any():
            k = int(np.argmax(bad))
            which = "duplicate" if di[k] == 0 else "unsorted"
            row = int(np.searchsorted(indptr, k + 1, side="right")) - 1
            raise InvariantViolation(
                "csr.indices_sorted",
                f"{name} has {which} column index {int(indices[k + 1])} in "
                f"row {row}",
                **kw)
    if nnz and not np.isfinite(data).all():
        bad = int(np.count_nonzero(~np.isfinite(data)))
        raise InvariantViolation(
            "csr.values_finite",
            f"{name} stores {bad} non-finite (NaN/Inf) value"
            f"{'' if bad == 1 else 's'}",
            **kw)
    return A


# ---------------------------------------------------------------------------
# ParCSR
# ---------------------------------------------------------------------------

def check_parcsr(
    A,
    *,
    name: str = "A",
    level: int | None = None,
    halo=None,
    full: bool | None = None,
) -> "A":
    """Validate a :class:`~repro.dist.parcsr.ParCSRMatrix`.

    Per rank: the diag/offd split widths, ``colmap`` sorted strictly
    increasing (the ``searchsorted``-based renumbering kernels silently
    require this), colmap entries globally in range and *outside* the
    rank's own column range (owned columns belong in ``diag``).  With
    *halo*, the frozen receive pattern is cross-checked against the
    colmap ownership it was built from.  Full adds per-block CSR checks.
    """
    if full is None:
        full = checking("full")
    row_part, col_part = A.row_part, A.col_part
    nranks = row_part.nranks
    if len(A.blocks) != nranks:
        raise InvariantViolation(
            "parcsr.block_count",
            f"{name} has {len(A.blocks)} rank blocks, partition has "
            f"{nranks} ranks",
            level=level, context=name)
    if col_part.nranks != nranks:
        raise InvariantViolation(
            "parcsr.partition_ranks",
            f"{name}: row partition has {nranks} ranks, column partition "
            f"has {col_part.nranks}",
            level=level, context=name)
    for p, blk in enumerate(A.blocks):
        kw = dict(level=level, rank=p, context=name)
        lo, hi = col_part.lo(p), col_part.hi(p)
        if blk.diag.shape[0] != row_part.size(p):
            raise InvariantViolation(
                "parcsr.row_size",
                f"{name} rank {p}: {blk.diag.shape[0]} rows, row partition "
                f"says {row_part.size(p)}",
                **kw)
        if blk.offd.shape[0] != blk.diag.shape[0]:
            raise InvariantViolation(
                "parcsr.offd_rows",
                f"{name} rank {p}: offd has {blk.offd.shape[0]} rows, diag "
                f"has {blk.diag.shape[0]}",
                **kw)
        if blk.diag.shape[1] != hi - lo:
            raise InvariantViolation(
                "parcsr.diag_width",
                f"{name} rank {p}: diag is {blk.diag.shape[1]} columns wide, "
                f"column partition owns {hi - lo}",
                **kw)
        colmap = np.asarray(blk.colmap)
        if blk.offd.shape[1] != len(colmap):
            raise InvariantViolation(
                "parcsr.offd_width",
                f"{name} rank {p}: offd is {blk.offd.shape[1]} columns wide "
                f"but colmap has {len(colmap)} entries",
                **kw)
        if len(colmap):
            if len(colmap) > 1 and (np.diff(colmap) <= 0).any():
                k = int(np.argmax(np.diff(colmap) <= 0))
                raise InvariantViolation(
                    "parcsr.colmap_sorted",
                    f"{name} rank {p}: colmap not strictly increasing at "
                    f"position {k} ({int(colmap[k])} -> {int(colmap[k + 1])})",
                    **kw)
            gmin, gmax = int(colmap.min()), int(colmap.max())
            if gmin < 0 or gmax >= col_part.n:
                raise InvariantViolation(
                    "parcsr.colmap_range",
                    f"{name} rank {p}: colmap spans [{gmin}, {gmax}] outside "
                    f"the global column range [0, {col_part.n})",
                    **kw)
            owned = (colmap >= lo) & (colmap < hi)
            if owned.any():
                g = int(colmap[owned][0])
                raise InvariantViolation(
                    "parcsr.colmap_owned",
                    f"{name} rank {p}: colmap lists owned column {g} "
                    f"(rank owns [{lo}, {hi})); it belongs in diag",
                    **kw)
        if full:
            check_csr(blk.diag, name=f"{name}.diag", full=True, **kw)
            check_csr(blk.offd, name=f"{name}.offd", full=True, **kw)
    if halo is not None:
        _check_halo_pattern(A, halo, name=name, level=level)
    return A


def _check_halo_pattern(A, halo, *, name: str, level: int | None) -> None:
    """The frozen halo receive pattern must match colmap ownership."""
    col_part = A.col_part
    expected: dict[tuple[int, int], int] = {}
    for p, blk in enumerate(A.blocks):
        if len(blk.colmap) == 0:
            continue
        owners = col_part.owner_of(np.asarray(blk.colmap))
        for q in np.unique(owners):
            expected[(int(q), p)] = int((owners == q).sum())
    if dict(halo.pattern) != expected:
        missing = sorted(set(expected) - set(halo.pattern))
        extra = sorted(set(halo.pattern) - set(expected))
        sized = sorted(
            k for k in set(halo.pattern) & set(expected)
            if halo.pattern[k] != expected[k]
        )
        raise InvariantViolation(
            "parcsr.halo_pattern",
            f"{name}: frozen halo pattern drifted from colmap ownership "
            f"(missing pairs {missing}, extra pairs {extra}, "
            f"wrong sizes {sized})",
            level=level, context=name)


# ---------------------------------------------------------------------------
# Hierarchy
# ---------------------------------------------------------------------------

def check_hierarchy(
    h,
    *,
    full: bool | None = None,
    probe_seed: int = 1234,
    rap_rtol: float = 1e-8,
) -> "h":
    """Validate a node-level :class:`~repro.amg.setup.Hierarchy`.

    Per level: CSR checks on ``A``/``P``, CF-splitting bookkeeping
    (``n_coarse`` vs the marker, coarse size vs the next level), and — when
    the CF-reorder optimization is on — the C-first ordering of the marker.
    Full adds the ``P = [I; P_F]`` identity/permutation-block check, the
    kept ``R == P^T`` probe, and a Galerkin spot-check: for a seeded random
    coarse probe ``u``, ``A_next u`` must equal ``P^T A P u`` to rounding.
    """
    if full is None:
        full = checking("full")
    flags = h.config.flags
    rng = np.random.default_rng(probe_seed)
    for l, lvl in enumerate(h.levels):
        A = lvl.A
        check_csr(A, name=f"A[{l}]", level=l, full=full)
        if A.shape[0] != A.shape[1]:
            raise InvariantViolation(
                "hierarchy.square",
                f"level operator A[{l}] is {A.shape[0]}x{A.shape[1]}",
                level=l)
        if lvl.P is None:
            continue
        P = lvl.P
        check_csr(P, name=f"P[{l}]", level=l, full=full)
        cf = lvl.cf_marker
        if cf is None or len(cf) != A.shape[0]:
            raise InvariantViolation(
                "hierarchy.cf_marker",
                f"level {l}: cf_marker length "
                f"{'missing' if cf is None else len(cf)} != {A.shape[0]} rows",
                level=l)
        nc = int((cf > 0).sum())
        if nc != lvl.n_coarse:
            raise InvariantViolation(
                "hierarchy.cf_count",
                f"level {l}: n_coarse={lvl.n_coarse} but cf_marker has "
                f"{nc} C points",
                level=l)
        if P.shape != (A.shape[0], nc):
            raise InvariantViolation(
                "hierarchy.p_shape",
                f"level {l}: P is {P.shape}, expected ({A.shape[0]}, {nc})",
                level=l)
        if l + 1 < len(h.levels) and h.levels[l + 1].A.shape[0] != nc:
            raise InvariantViolation(
                "hierarchy.coarse_size",
                f"level {l}: {nc} C points but level {l + 1} has "
                f"{h.levels[l + 1].A.shape[0]} rows",
                level=l)
        if flags.cf_reorder:
            if nc and not (cf[:nc] > 0).all() or (cf[nc:] > 0).any():
                raise InvariantViolation(
                    "hierarchy.cf_partitioned",
                    f"level {l}: cf_marker is not C-first under cf_reorder",
                    level=l)
            if full and lvl.P_F is not None:
                _check_identity_block(lvl, l, nc)
        if full and lvl.R is not None:
            _check_kept_transpose(lvl, l, rng, rap_rtol)
        if full and l + 1 < len(h.levels):
            _check_galerkin(lvl, h.levels[l + 1].A, l, rng, rap_rtol)
    return h


def _check_identity_block(lvl, l: int, nc: int) -> None:
    """Coarse rows of P must be the identity (or the recorded permutation)."""
    P = lvl.P
    row_nnz = np.diff(P.indptr[: nc + 1])
    if (row_nnz != 1).any():
        row = int(np.argmax(row_nnz != 1))
        raise InvariantViolation(
            "hierarchy.p_identity_block",
            f"level {l}: coarse row {row} of P has {int(row_nnz[row])} "
            f"entries, expected exactly 1",
            level=l)
    cols = P.indices[:nc]
    vals = P.data[:nc]
    want = lvl.cperm if lvl.cperm is not None else np.arange(nc, dtype=np.int64)
    if (cols != want[:nc]).any() or (vals != 1.0).any():
        row = int(np.argmax((cols != want[:nc]) | (vals != 1.0)))
        raise InvariantViolation(
            "hierarchy.p_identity_block",
            f"level {l}: coarse row {row} of P is ({int(cols[row])}, "
            f"{vals[row]!r}), expected ({int(want[row])}, 1.0)",
            level=l)
    # The stored fine block must be exactly the fine rows of P.
    P_F = lvl.P_F
    fine = slice(int(P.indptr[nc]), None)
    if (
        P_F.shape != (P.shape[0] - nc, P.shape[1])
        or len(P_F.data) != len(P.data[fine])
        or (P_F.indices != P.indices[fine]).any()
        or (P_F.data != P.data[fine]).any()
    ):
        raise InvariantViolation(
            "hierarchy.p_fine_block",
            f"level {l}: P_F does not match the fine rows of P",
            level=l)


def _check_kept_transpose(lvl, l: int, rng, rtol: float) -> None:
    """The kept restriction must still be P's transpose."""
    P, R = lvl.P, lvl.R
    if R.shape != (P.shape[1], P.shape[0]) or R.nnz != P.nnz:
        raise InvariantViolation(
            "hierarchy.r_is_pt",
            f"level {l}: R has shape {R.shape}/nnz {R.nnz}, P^T would have "
            f"({P.shape[1]}, {P.shape[0]})/{P.nnz}",
            level=l)
    v = rng.standard_normal(P.shape[0])
    rv = _raw_spmv(R, v)
    ptv = _raw_spmv_t(P, v)
    scale = float(np.linalg.norm(ptv)) or 1.0
    if float(np.linalg.norm(rv - ptv)) > rtol * scale:
        raise InvariantViolation(
            "hierarchy.r_is_pt",
            f"level {l}: ||R v - P^T v|| = "
            f"{float(np.linalg.norm(rv - ptv)):.3e} on a random probe "
            f"(scale {scale:.3e}); R drifted from the setup-time transpose",
            level=l)


def _check_galerkin(lvl, A_next, l: int, rng, rtol: float) -> None:
    """Spot-check ``A_next == P^T A P`` on a seeded random probe vector."""
    P, A = lvl.P, lvl.A
    u = rng.standard_normal(P.shape[1])
    want = _raw_spmv_t(P, _raw_spmv(A, _raw_spmv(P, u)))
    got = _raw_spmv(A_next, u)
    scale = float(np.linalg.norm(want)) or 1.0
    err = float(np.linalg.norm(got - want))
    if err > rtol * scale:
        raise InvariantViolation(
            "hierarchy.galerkin",
            f"level {l}: ||A_next u - P^T A P u|| = {err:.3e} "
            f"(scale {scale:.3e}) on a random probe; the coarse operator "
            f"is not the Galerkin product of this level",
            level=l)


# ---------------------------------------------------------------------------
# Distributed hierarchy
# ---------------------------------------------------------------------------

def check_dist_hierarchy(h, *, full: bool | None = None) -> "h":
    """Validate a :class:`~repro.dist.setup.DistHierarchy`.

    Runs :func:`check_parcsr` (with halo-pattern cross-checks) on every
    level operator, interpolation, and kept restriction, and verifies the
    inter-level partition plumbing (P's column partition is the next
    level's row partition).
    """
    if full is None:
        full = checking("full")
    for l, lvl in enumerate(h.levels):
        check_parcsr(lvl.A, name=f"A[{l}]", level=l, halo=lvl.halo, full=full)
        if lvl.P is not None:
            check_parcsr(lvl.P, name=f"P[{l}]", level=l, halo=lvl.halo_P,
                         full=full)
            if l + 1 < len(h.levels):
                nxt = h.levels[l + 1].A
                if lvl.P.col_part.bounds.tolist() != nxt.row_part.bounds.tolist():
                    raise InvariantViolation(
                        "dist.level_partition",
                        f"level {l}: P's column partition does not match "
                        f"level {l + 1}'s row partition",
                        level=l)
        if lvl.R is not None:
            check_parcsr(lvl.R, name=f"R[{l}]", level=l, halo=lvl.halo_R,
                         full=full)
            if lvl.P is not None and lvl.R.shape != lvl.P.shape[::-1]:
                raise InvariantViolation(
                    "dist.r_shape",
                    f"level {l}: R has shape {lvl.R.shape}, P^T would have "
                    f"{lvl.P.shape[::-1]}",
                    level=l)
    return h
