"""Static communication-schedule verification (no solve required).

:func:`extract_schedule` walks a built
:class:`~repro.dist.setup.DistHierarchy` — each level's
:class:`~repro.dist.halo.HaloExchange` objects for ``A``/``P``/``R``, the
communicator's registered :class:`~repro.dist.comm.PersistentExchange`
requests, and the ParCSR ``colmap`` arrays — and reconstructs the per-level
send/recv bipartite graph every halo round would execute.  Nothing runs and
nothing is charged: :meth:`RowPartition.owner_of
<repro.dist.partition.RowPartition.owner_of>` is uncharged, so extraction
adds zero :class:`~repro.perf.counters.KernelRecord` entries.

Each exchange carries four independently-derived views of the same graph:

``implied``
    recomputed fresh from the current colmaps (what the matrix *needs*),
``declared``
    the halo's frozen ``pattern`` (what the exchange *says* it does),
``recvs``
    rebuilt from ``recv_plan`` index lists (what the unpack side *posts*),
``registered``
    the persistent request registered on the communicator (what the
    network *replays*), when one exists.

:func:`scan_schedule` cross-checks the views (``sched.pattern_mismatch``,
``sched.persistent_mismatch``, ``sched.unmatched_send`` /
``sched.unmatched_recv``), then compiles the declared graph into one
straight-line comm program per rank — non-blocking pre-posted receives
followed by rendezvous sends, the schedule a real MPI port would execute —
and runs it through a small abstract machine.  Ranks that can make no
progress form a wait-for graph whose strongly connected components
(Tarjan) are reported as ``sched.deadlock_cycle``.  Per-rank collective
programs, when present, are checked for order divergence
(``sched.collective_order``) exactly like the runtime comm-trace replay.

The same extraction yields the per-level, per-rank-pair message
count/volume matrix (:func:`message_matrix`, :func:`format_schedule_report`,
:func:`schedule_to_json`) — the baseline artifact for the ROADMAP's
node-aware aggregation item (Bienz et al., arXiv:1904.05838): deciding
which messages to coalesce through node leaders starts from exactly this
matrix.

Exposed on the CLI as ``python -m repro verify-comm`` and hooked into
``dist_build_hierarchy`` under ``REPRO_CHECK=full``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..perf.counters import VAL_BYTES
from .errors import InvariantViolation

__all__ = [
    "CommOp",
    "ExchangeSchedule",
    "Schedule",
    "extract_schedule",
    "scan_schedule",
    "check_schedule",
    "message_matrix",
    "format_schedule_report",
    "schedule_to_json",
]

Pattern = dict[tuple[int, int], int]


@dataclass(frozen=True)
class CommOp:
    """One point-to-point operation in a rank's straight-line comm program.

    ``blocking`` receives park the rank until a matching message arrived;
    ``blocking`` sends use rendezvous semantics (they complete only against
    a posted or simultaneously-reached receive — the MPI_Send-over-eager-
    limit case that turns schedule bugs into real deadlocks).
    """

    kind: str  # "send" | "recv"
    peer: int
    tag: str
    elems: int
    blocking: bool


@dataclass
class ExchangeSchedule:
    """One halo-exchange round: the bipartite send/recv graph, four ways.

    All four pattern dicts map ``(src_rank, dst_rank) -> element count``;
    ``registered`` is ``None`` for non-persistent exchanges.
    """

    level: int
    operator: str  # "A" | "P" | "R"
    tag: str
    persistent: bool
    bytes_per_elem: int
    implied: Pattern
    declared: Pattern
    recvs: Pattern
    registered: Pattern | None = None
    #: Node-aware wire schedule: the ordered ``(tag, pattern)`` rounds the
    #: exchange actually sends (gather / inter-node / scatter), when the
    #: 3-step aggregation is active.  ``None`` = the declared pattern *is*
    #: the wire schedule.
    wire_rounds: list[tuple[str, Pattern]] | None = None

    @property
    def pairs(self) -> int:
        return sum(1 for (s, d) in self.declared if s != d)

    @property
    def round_bytes(self) -> int:
        return sum(n * self.bytes_per_elem
                   for (s, d), n in self.declared.items() if s != d)

    @property
    def wire_pairs(self) -> int:
        """Messages actually put on the wire per sweep."""
        if self.wire_rounds is None:
            return self.pairs
        return sum(1 for _, pat in self.wire_rounds
                   for (s, d) in pat if s != d)

    @property
    def wire_bytes(self) -> int:
        if self.wire_rounds is None:
            return self.round_bytes
        return sum(n * self.bytes_per_elem
                   for _, pat in self.wire_rounds
                   for (s, d), n in pat.items() if s != d)


@dataclass
class Schedule:
    """A hierarchy's full static comm schedule.

    ``collectives`` holds one ordered list of collective kinds per rank
    (empty when extracted from a :class:`~repro.dist.comm.SimComm`, whose
    collectives are process-wide by construction); ``programs`` holds one
    straight-line :class:`CommOp` list per rank, compiled on demand by
    :func:`scan_schedule` when left empty.
    """

    nranks: int
    exchanges: list[ExchangeSchedule] = field(default_factory=list)
    collectives: list[list[str]] = field(default_factory=list)
    programs: list[list[CommOp]] = field(default_factory=list)
    #: Node topology the hierarchy was built against (None = flat); drives
    #: the node-flow conservation scan and the on/off-node matrix split.
    #: ``Any`` by design: ``repro.topo`` sits outside the mypy-checked
    #: tiers, and the scans only duck-type its rank-grouping methods.
    topology: Any | None = None

    @property
    def nlevels(self) -> int:
        return 1 + max((ex.level for ex in self.exchanges), default=-1)


# -- extraction -------------------------------------------------------------

def _implied_pattern(A) -> Pattern:
    """The send/recv graph the matrix's colmaps require, recomputed fresh."""
    out: Pattern = {}
    col_part = A.col_part
    for p, blk in enumerate(A.blocks):
        if len(blk.colmap) == 0:
            continue
        owners = col_part.owner_of(blk.colmap)
        for q in np.unique(owners):
            out[(int(q), p)] = int(np.count_nonzero(owners == q))
    return out


def _recv_pattern(halo) -> Pattern:
    """The graph the unpack side posts, rebuilt from recv_plan lists."""
    out: Pattern = {}
    for p, plan in enumerate(halo.recv_plan):
        for q, ids in plan:
            out[(int(q), p)] = len(ids)
    return out


def _exchange_of(halo, matrix, *, level: int, operator: str,
                 registry: list) -> ExchangeSchedule:
    req = getattr(halo, "_persistent_req", None)
    registered: Pattern | None = None
    if req is not None:
        registered = dict(req.pattern)
        if not any(req is r for r in registry):
            raise InvariantViolation(
                "sched.unregistered_persistent",
                f"persistent {operator}-halo request is not registered on "
                f"the communicator (comm.persistent_requests)",
                level=level, context=f"{operator} halo")
    wire_rounds: list[tuple[str, Pattern]] | None = None
    node_ex = getattr(halo, "_node_exchange", None)
    if node_ex is not None:
        wire_rounds = [(tag, dict(pat)) for tag, pat in node_ex.rounds]
        for round_req in (node_ex._reqs or ()):
            if not any(round_req is r for r in registry):
                raise InvariantViolation(
                    "sched.unregistered_persistent",
                    f"persistent node-aware round "
                    f"(tag={round_req.tag}) of the {operator}-halo is not "
                    f"registered on the communicator",
                    level=level, context=f"{operator} halo")
    bytes_per_elem = int(req.bytes_per_elem) if req is not None else VAL_BYTES
    return ExchangeSchedule(
        level=level, operator=operator,
        tag=getattr(req, "tag", "halo"),
        persistent=bool(halo.persistent),
        bytes_per_elem=bytes_per_elem,
        implied=_implied_pattern(matrix),
        declared=dict(halo.pattern),
        recvs=_recv_pattern(halo),
        registered=registered,
        wire_rounds=wire_rounds,
    )


def extract_schedule(hierarchy) -> Schedule:
    """Static comm schedule of a built distributed hierarchy.

    Walks every level's ``A``/``P``/``R`` halo exchanges without executing
    any of them.  Raises ``sched.unregistered_persistent`` immediately if a
    persistent halo lost its communicator registration; all other checks
    are deferred to :func:`scan_schedule`.
    """
    comm = hierarchy.comm
    registry = list(getattr(comm, "persistent_requests", ()))
    sched = Schedule(nranks=comm.nranks,
                     topology=getattr(hierarchy, "topology", None))
    for lvl_idx, lvl in enumerate(hierarchy.levels):
        triples = (("A", lvl.halo, lvl.A),
                   ("P", lvl.halo_P, lvl.P),
                   ("R", lvl.halo_R, lvl.R))
        for operator, halo, matrix in triples:
            if halo is None or matrix is None:
                continue
            sched.exchanges.append(_exchange_of(
                halo, matrix, level=lvl_idx, operator=operator,
                registry=registry))
    return sched


# -- the deadlock machine ---------------------------------------------------

def compile_programs(sched: Schedule) -> list[list[CommOp]]:
    """One straight-line comm program per rank from the declared graphs.

    For each exchange round, every rank first pre-posts its receives
    (non-blocking) and then issues its sends in rendezvous mode, in
    deterministic (peer, tag) order — the schedule shape a real MPI port
    of the persistent halo exchange executes.  A node-aware exchange
    compiles its *wire* rounds instead of the logical pattern, each round
    under its own tag and in issue order (gather, inter-node, scatter) —
    the 3-step schedule itself goes through the deadlock machine.
    """
    programs: list[list[CommOp]] = [[] for _ in range(sched.nranks)]
    for ex in sched.exchanges:
        rounds = (ex.wire_rounds if ex.wire_rounds is not None
                  else [(ex.tag, ex.declared)])
        for tag, pattern in rounds:
            uniq = f"{tag}.L{ex.level}.{ex.operator}"
            for (s, d), n in sorted(pattern.items()):
                if s == d or not (0 <= d < sched.nranks):
                    continue
                programs[d].append(CommOp("recv", s, uniq, n, blocking=False))
            for (s, d), n in sorted(pattern.items()):
                if s == d or not (0 <= s < sched.nranks):
                    continue
                programs[s].append(CommOp("send", d, uniq, n, blocking=True))
    return programs


def _take(table: dict, key) -> bool:
    n = table.get(key, 0)
    if n <= 0:
        return False
    if n == 1:
        del table[key]
    else:
        table[key] = n - 1
    return True


def _run_programs(programs: list[list[CommOp]]):
    """Abstract execution of the per-rank comm programs.

    Returns ``(pc, posted, arrived)``: the final program counter per rank
    (short of the program length for blocked ranks), leftover posted
    receives, and leftover in-flight messages — both keyed by
    ``(src, dst, tag)``.
    """
    n = len(programs)
    pc = [0] * n
    posted: dict[tuple[int, int, str], int] = {}
    arrived: dict[tuple[int, int, str], int] = {}
    progress = True
    while progress:
        progress = False
        for r in range(n):
            while pc[r] < len(programs[r]):
                op = programs[r][pc[r]]
                if op.kind == "recv":
                    key = (op.peer, r, op.tag)
                    if _take(arrived, key):
                        pass
                    elif op.blocking:
                        break
                    else:
                        posted[key] = posted.get(key, 0) + 1
                else:
                    key = (r, op.peer, op.tag)
                    if not _take(posted, key):
                        if op.blocking:
                            # Rendezvous: completes only if the peer is
                            # parked at the matching blocking receive.
                            q = op.peer
                            peer_op = (programs[q][pc[q]]
                                       if 0 <= q < n and pc[q] < len(programs[q])
                                       else None)
                            if not (peer_op is not None
                                    and peer_op.kind == "recv"
                                    and peer_op.blocking
                                    and peer_op.peer == r
                                    and peer_op.tag == op.tag):
                                break
                        arrived[key] = arrived.get(key, 0) + 1
                pc[r] += 1
                progress = True
    return pc, posted, arrived


def _tarjan_sccs(nodes: list[int], edges: dict[int, list[int]]) -> list[list[int]]:
    """Tarjan's strongly-connected components (iterative)."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(edges.get(root, ())))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(edges.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(comp)
    return sccs


def _scan_deadlock(sched: Schedule, programs: list[list[CommOp]],
                   findings: list[InvariantViolation]) -> None:
    pc, posted, arrived = _run_programs(programs)
    stuck = [r for r in range(sched.nranks) if pc[r] < len(programs[r])]
    if stuck:
        edges = {r: [programs[r][pc[r]].peer] for r in stuck}
        in_cycle: set[int] = set()
        for comp in _tarjan_sccs(stuck, edges):
            single_self = (len(comp) == 1
                           and comp[0] not in edges.get(comp[0], ()))
            if single_self:
                continue
            cyc = sorted(comp)
            ops = {r: programs[r][pc[r]] for r in cyc}
            desc = ", ".join(
                f"rank {r} blocked in {ops[r].kind}"
                f"({'->' if ops[r].kind == 'send' else '<-'}"
                f"{ops[r].peer}, tag={ops[r].tag})" for r in cyc)
            findings.append(InvariantViolation(
                "sched.deadlock_cycle",
                f"rendezvous deadlock cycle over ranks {cyc}: {desc}",
                context="wait-for SCC"))
            in_cycle.update(comp)
        for r in stuck:
            if r in in_cycle:
                continue
            op = programs[r][pc[r]]
            inv = ("sched.unmatched_send" if op.kind == "send"
                   else "sched.unmatched_recv")
            findings.append(InvariantViolation(
                inv,
                f"rank {r} blocks forever in {op.kind} "
                f"(peer {op.peer}, tag={op.tag}, {op.elems} elems): "
                f"the peer never issues the matching "
                f"{'recv' if op.kind == 'send' else 'send'}",
                rank=r))
    for (s, d, tag), n in sorted(arrived.items()):
        findings.append(InvariantViolation(
            "sched.unmatched_send",
            f"{n} message(s) {s}->{d} (tag={tag}) are sent but never "
            f"received", rank=s))
    for (s, d, tag), n in sorted(posted.items()):
        findings.append(InvariantViolation(
            "sched.unmatched_recv",
            f"{n} receive(s) posted on rank {d} from {s} (tag={tag}) "
            f"are never matched by a send", rank=d))


# -- scanning ---------------------------------------------------------------

def _diff_patterns(a: Pattern, b: Pattern) -> str:
    """Short human description of how two pattern dicts differ."""
    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))
    counts = sorted(k for k in set(a) & set(b) if a[k] != b[k])
    parts = []
    if only_a:
        parts.append(f"pairs only in first: {only_a[:4]}")
    if only_b:
        parts.append(f"pairs only in second: {only_b[:4]}")
    if counts:
        parts.append("counts differ at: " + ", ".join(
            f"{k}: {a[k]} != {b[k]}" for k in counts[:4]))
    return "; ".join(parts) or "identical"


def _scan_exchange(ex: ExchangeSchedule, nranks: int,
                   findings: list[InvariantViolation]) -> None:
    ctx = f"level {ex.level} {ex.operator}-halo"
    for (s, d) in sorted(ex.declared):
        if not (0 <= s < nranks and 0 <= d < nranks):
            findings.append(InvariantViolation(
                "sched.rank_range",
                f"declared pattern pair ({s}, {d}) is outside "
                f"[0, {nranks})", level=ex.level, context=ctx))
        elif s == d:
            findings.append(InvariantViolation(
                "sched.self_message",
                f"declared pattern holds self pair ({s}, {d}); local "
                f"entries must not ride the wire", level=ex.level,
                rank=s, context=ctx))
    if ex.declared != ex.implied:
        findings.append(InvariantViolation(
            "sched.pattern_mismatch",
            f"declared halo pattern disagrees with the graph the colmaps "
            f"imply ({_diff_patterns(ex.declared, ex.implied)})",
            level=ex.level, context=ctx))
    # declared-side entries the unpack side never posts are orphan sends;
    # recv_plan entries absent from the declared side are orphan receives.
    for key in sorted(set(ex.declared) - set(ex.recvs)):
        findings.append(InvariantViolation(
            "sched.unmatched_send",
            f"declared send {key[0]}->{key[1]} has no recv_plan entry on "
            f"the receiving rank", level=ex.level, rank=key[0], context=ctx))
    for key in sorted(set(ex.recvs) - set(ex.declared)):
        findings.append(InvariantViolation(
            "sched.unmatched_recv",
            f"recv_plan expects {key[0]}->{key[1]} but the declared "
            f"pattern never sends it", level=ex.level, rank=key[1],
            context=ctx))
    for key in sorted(set(ex.declared) & set(ex.recvs)):
        if ex.declared[key] != ex.recvs[key]:
            findings.append(InvariantViolation(
                "sched.pattern_mismatch",
                f"send/recv element counts disagree for {key}: declared "
                f"{ex.declared[key]}, recv_plan {ex.recvs[key]}",
                level=ex.level, context=ctx))
    if ex.registered is not None and ex.registered != ex.declared:
        findings.append(InvariantViolation(
            "sched.persistent_mismatch",
            f"registered persistent pattern drifted from the halo's "
            f"declared pattern "
            f"({_diff_patterns(ex.registered, ex.declared)})",
            level=ex.level, context=ctx))


def _scan_wire(ex: ExchangeSchedule, topology,
               findings: list[InvariantViolation]) -> None:
    """Node-flow conservation of a 3-step wire schedule.

    Every off-node logical pair must be carried end to end — gathered to
    the source node's leader (unless the source *is* the leader), shipped
    on exactly one inter-node leader pair, and scattered to the consuming
    rank — and the aggregated element counts must conserve flow:
    scatter-in equals the logical off-node demand per rank, and each
    inter-node payload sits between the largest single contribution
    (a union can't shrink below its largest member) and the plain sum
    (deduplication can't inflate).
    """
    from ..topo.plan import GATHER_TAG, NODE_TAG, SCATTER_TAG

    ctx = f"level {ex.level} {ex.operator}-halo wire"
    rounds = dict(ex.wire_rounds or ())
    direct = rounds.get(ex.tag, {})
    gather = rounds.get(GATHER_TAG, {})
    internode = rounds.get(NODE_TAG, {})
    scatter = rounds.get(SCATTER_TAG, {})

    on_node = {k: n for k, n in ex.declared.items()
               if topology.on_node(*k) and k[0] != k[1]}
    off_node = {k: n for k, n in ex.declared.items()
                if not topology.on_node(*k)}
    if direct != on_node:
        findings.append(InvariantViolation(
            "sched.node_flow",
            f"direct wire round disagrees with the on-node part of the "
            f"logical pattern ({_diff_patterns(direct, on_node)})",
            level=ex.level, context=ctx))

    # Per-pair end-to-end coverage.
    demand: dict[int, int] = {}
    inter_sum: dict[tuple[int, int], int] = {}
    inter_max: dict[tuple[int, int], int] = {}
    gather_sum: dict[int, int] = {}
    gather_max: dict[int, int] = {}
    for (q, p), n in sorted(off_node.items()):
        leaders = (topology.leader_of(q), topology.leader_of(p))
        hops = []
        if q != leaders[0] and (q, leaders[0]) not in gather:
            hops.append(f"gather {q}->{leaders[0]}")
        if leaders not in internode:
            hops.append(f"inter-node {leaders[0]}->{leaders[1]}")
        if p != leaders[1] and (leaders[1], p) not in scatter:
            hops.append(f"scatter {leaders[1]}->{p}")
        if hops:
            findings.append(InvariantViolation(
                "sched.node_flow",
                f"off-node pair ({q}, {p}) has no wire path: missing "
                + ", ".join(hops), level=ex.level, context=ctx))
        demand[p] = demand.get(p, 0) + n
        inter_sum[leaders] = inter_sum.get(leaders, 0) + n
        inter_max[leaders] = max(inter_max.get(leaders, 0), n)
        if q != leaders[0]:
            gather_sum[q] = gather_sum.get(q, 0) + n
            gather_max[q] = max(gather_max.get(q, 0), n)

    for p, n in sorted(demand.items()):
        leader = topology.leader_of(p)
        if p == leader:
            continue  # the leader consumes straight out of its staging
        got = scatter.get((leader, p), 0)
        if got != n:
            findings.append(InvariantViolation(
                "sched.node_flow",
                f"scatter {leader}->{p} carries {got} elems but rank {p}'s "
                f"off-node demand is {n}", level=ex.level, context=ctx))
    for leaders, hi in sorted(inter_sum.items()):
        got = internode.get(leaders, 0)
        lo = inter_max[leaders]
        if not (lo <= got <= hi):
            findings.append(InvariantViolation(
                "sched.node_flow",
                f"inter-node payload {leaders[0]}->{leaders[1]} is {got} "
                f"elems, outside the dedup bounds [{lo}, {hi}]",
                level=ex.level, context=ctx))
    for q, hi in sorted(gather_sum.items()):
        got = gather.get((q, topology.leader_of(q)), 0)
        lo = gather_max[q]
        if not (lo <= got <= hi):
            findings.append(InvariantViolation(
                "sched.node_flow",
                f"gather {q}->{topology.leader_of(q)} stages {got} elems, "
                f"outside the dedup bounds [{lo}, {hi}]",
                level=ex.level, context=ctx))
    # No wire round may invent pairs the logical pattern cannot explain.
    for (s, d) in sorted(scatter):
        if not topology.on_node(s, d):
            findings.append(InvariantViolation(
                "sched.node_flow",
                f"scatter pair ({s}, {d}) crosses nodes", level=ex.level,
                context=ctx))
    for (s, d) in sorted(gather):
        if not topology.on_node(s, d):
            findings.append(InvariantViolation(
                "sched.node_flow",
                f"gather pair ({s}, {d}) crosses nodes", level=ex.level,
                context=ctx))
    for (s, d) in sorted(internode):
        if topology.on_node(s, d) or not (topology.is_leader(s)
                                          and topology.is_leader(d)):
            findings.append(InvariantViolation(
                "sched.node_flow",
                f"inter-node pair ({s}, {d}) is not a leader-to-leader "
                f"cross-node link", level=ex.level, context=ctx))


def _scan_collectives(sched: Schedule,
                      findings: list[InvariantViolation]) -> None:
    progs = [p for p in sched.collectives if p]
    if not progs or len(sched.collectives) < 2:
        return
    ref = sched.collectives[0]
    for rank, prog in enumerate(sched.collectives[1:], start=1):
        if prog == ref:
            continue
        upto = min(len(ref), len(prog))
        at = next((i for i in range(upto) if ref[i] != prog[i]), upto)
        a = ref[at] if at < len(ref) else "<none>"
        b = prog[at] if at < len(prog) else "<none>"
        findings.append(InvariantViolation(
            "sched.collective_order",
            f"rank {rank} diverges from rank 0 at collective #{at}: "
            f"rank 0 issues {a!r}, rank {rank} issues {b!r} "
            f"(deadlock in a real MPI run)", rank=rank))


def scan_schedule(sched: Schedule, *,
                  max_findings: int = 64) -> list[InvariantViolation]:
    """All schedule violations, as a list (empty = verified clean)."""
    findings: list[InvariantViolation] = []
    for ex in sched.exchanges:
        _scan_exchange(ex, sched.nranks, findings)
        if sched.topology is not None and ex.wire_rounds is not None:
            _scan_wire(ex, sched.topology, findings)
        if len(findings) >= max_findings:
            return findings[:max_findings]
    programs = sched.programs or compile_programs(sched)
    _scan_deadlock(sched, programs, findings)
    _scan_collectives(sched, findings)
    return findings[:max_findings]


def check_schedule(sched) -> None:
    """Raise the first schedule violation (accepts a hierarchy too)."""
    if not isinstance(sched, Schedule):
        sched = extract_schedule(sched)
    findings = scan_schedule(sched, max_findings=1)
    if findings:
        raise findings[0]


# -- the message count/volume matrix ----------------------------------------

def message_matrix(sched: Schedule) -> dict:
    """Per-level and aggregate per-rank-pair message count/byte matrices.

    ``counts[s][d]`` is messages per full halo sweep (every exchange
    executed once); ``bytes[s][d]`` the payload volume.  This is the
    baseline artifact node-aware aggregation starts from: coalescing
    decisions read exactly this matrix.

    When the schedule carries a topology, each level entry (and the total)
    additionally splits the *wire* traffic — the 3-step rounds where
    aggregation is active, the logical pattern elsewhere — into an
    ``on_node`` / ``off_node`` pair of count/byte scalars; without a
    topology the output is byte-identical to before the split existed.
    """
    n = sched.nranks
    topo = sched.topology

    def _zeros() -> dict:
        box: dict[str, Any] = {"counts": [[0] * n for _ in range(n)],
                               "bytes": [[0] * n for _ in range(n)]}
        if topo is not None:
            box["on_node"] = {"counts": 0, "bytes": 0}
            box["off_node"] = {"counts": 0, "bytes": 0}
        return box

    total = _zeros()
    levels: dict[int, dict] = {}
    for ex in sched.exchanges:
        ent = levels.setdefault(ex.level, _zeros())
        for (s, d), elems in ex.declared.items():
            if s == d or not (0 <= s < n and 0 <= d < n):
                continue
            nbytes = elems * ex.bytes_per_elem
            for box in (ent, total):
                box["counts"][s][d] += 1
                box["bytes"][s][d] += nbytes
        if topo is None:
            continue
        rounds = (ex.wire_rounds if ex.wire_rounds is not None
                  else [(ex.tag, ex.declared)])
        for _, pattern in rounds:
            for (s, d), elems in pattern.items():
                if s == d or not (0 <= s < n and 0 <= d < n):
                    continue
                tier = "on_node" if topo.on_node(s, d) else "off_node"
                for box in (ent, total):
                    box[tier]["counts"] += 1
                    box[tier]["bytes"] += elems * ex.bytes_per_elem
    return {
        "nranks": n,
        "levels": [{"level": lvl, **levels[lvl]} for lvl in sorted(levels)],
        "total": total,
    }


def format_schedule_report(sched: Schedule, *,
                           findings: list[InvariantViolation] | None = None
                           ) -> str:
    """Human-readable schedule summary with the message-volume matrix."""
    lines = [
        f"static comm schedule : {sched.nranks} ranks, "
        f"{sched.nlevels} levels, {len(sched.exchanges)} exchanges",
        f"  {'level':>5} {'op':>2} {'tag':<6} {'persistent':>10} "
        f"{'pairs':>6} {'bytes/round':>12}",
    ]
    for ex in sched.exchanges:
        lines.append(
            f"  {ex.level:>5} {ex.operator:>2} {ex.tag:<6} "
            f"{'yes' if ex.persistent else 'no':>10} "
            f"{ex.pairs:>6} {ex.round_bytes:>12}")
    mat = message_matrix(sched)
    lines.append("message volume matrix (bytes/round, all levels):")
    header = "  from\\to " + "".join(f"{d:>10}" for d in range(sched.nranks))
    lines.append(header)
    for s in range(sched.nranks):
        row = mat["total"]["bytes"][s]
        lines.append(f"  {s:>7} " + "".join(
            f"{v:>10}" if v else f"{'-':>10}" for v in row))
    if sched.topology is not None:
        topo = sched.topology
        lines.append(
            f"node topology: {topo.nranks} ranks x {topo.ppn} per node "
            f"= {topo.nnodes} nodes")
        lines.append(
            f"  {'level':>5} {'wire msgs':>10} {'on-node':>10} "
            f"{'off-node':>10} {'off-node B':>12} {'aggregated':>10}")
        for ent in mat["levels"]:
            agg = any(ex.wire_rounds is not None for ex in sched.exchanges
                      if ex.level == ent["level"])
            on, off = ent["on_node"], ent["off_node"]
            lines.append(
                f"  {ent['level']:>5} {on['counts'] + off['counts']:>10} "
                f"{on['counts']:>10} {off['counts']:>10} "
                f"{off['bytes']:>12} {'yes' if agg else 'no':>10}")
    if findings is None:
        return "\n".join(lines)
    if findings:
        lines.append(f"violations ({len(findings)}):")
        for f in findings:
            lines.append(f"  [{f.invariant}] {f.detail}")
    else:
        lines.append("schedule verified clean (no violations)")
    return "\n".join(lines)


def schedule_to_json(sched: Schedule, *,
                     findings: list[InvariantViolation] | None = None
                     ) -> str:
    """Deterministic JSON artifact: exchanges + matrices (+ findings)."""
    def _exchange_doc(ex: ExchangeSchedule) -> dict:
        doc = {
            "level": ex.level,
            "operator": ex.operator,
            "tag": ex.tag,
            "persistent": ex.persistent,
            "bytes_per_elem": ex.bytes_per_elem,
            "pairs": ex.pairs,
            "round_bytes": ex.round_bytes,
        }
        if sched.topology is not None:
            doc["node_aware"] = ex.wire_rounds is not None
            doc["wire_pairs"] = ex.wire_pairs
            doc["wire_bytes"] = ex.wire_bytes
        return doc

    doc = {
        "schema": "repro.sched/1",
        "nranks": sched.nranks,
        "nlevels": sched.nlevels,
        "exchanges": [_exchange_doc(ex) for ex in sched.exchanges],
        "matrix": message_matrix(sched),
    }
    if sched.topology is not None:
        doc["topology"] = {
            "ppn": sched.topology.ppn,
            "nnodes": sched.topology.nnodes,
            "nranks": sched.topology.nranks,
        }
    if findings is not None:
        doc["violations"] = [
            {"invariant": f.invariant, "detail": f.detail}
            for f in findings
        ]
    return json.dumps(doc, indent=2, sort_keys=True)
