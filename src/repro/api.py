"""Top-level solver facade — the one-import entry point.

``repro.api`` hides the setup/solve split, the config factories, and the
matrix type behind three calls::

    import repro

    result = repro.solve(A, b)                      # AMG, Table 3 defaults
    result = repro.solve(A, b, method="fgmres")     # AMG-preconditioned FGMRES

    opts = repro.SolveOptions(method="fgmres", tol=1e-9)
    result = repro.solve(A, b, options=opts)        # same knobs, one object

    handle = repro.setup(A)                         # pay for setup once
    r1 = handle.solve(b1)
    rs = handle.solve_many(B)                       # (n, k) block, batched

:class:`SolveOptions` is the consolidated spelling of the per-call solver
knobs (``method``, ``tol``, ``maxiter``, ``reuse``, ``check``, ``config``)
and the one place their defaults are defined; the individual keywords keep
working and fold into it, but mixing an ``options`` object with explicit
keywords raises ``ValueError`` (two sources of truth).

Inputs are flexible: ``A`` may be a :class:`repro.sparse.CSRMatrix`, a
``scipy.sparse`` matrix, or a dense 2-D array.  Repeated ``solve`` calls on
the same matrix and config reuse the AMG hierarchy through
:data:`repro.amg.cache.DEFAULT_CACHE`, so only the first call pays the
setup phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import util as _importlib_util

import numpy as np

from .amg.cache import DEFAULT_CACHE, HierarchyCache
from .amg.cache import fingerprint as _fingerprint_csr
from .amg.cache import pattern_fingerprint as _pattern_fingerprint_csr
from .amg.solver import AMGSolver
from .analysis import check_csr, check_scope, checking
from .config import AMGConfig, single_node_config
from .faults.plan import FaultEvent
from .krylov.cg import pcg, pcg_multi
from .krylov.gmres import fgmres, fgmres_multi
from .results import SolveResult
from .sparse.csr import CSRMatrix

__all__ = ["SolveOptions", "SolverHandle", "as_csr", "fingerprint",
           "pattern_fingerprint", "setup", "solve", "solve_many"]

_METHODS = ("amg", "fgmres", "cg")
_REUSE_MODES = ("auto", "pattern", "never")

#: Sentinel distinguishing "keyword not passed" from an explicit value
#: (``None`` is meaningful for ``maxiter``, ``check`` and ``config``).
_UNSET = object()


@dataclass(frozen=True)
class SolveOptions:
    """Every per-call solver knob in one frozen object.

    This is the single place the facade's defaults are defined;
    :func:`solve`, :func:`solve_many`, :func:`setup` and
    :meth:`SolverHandle.update` all accept ``options=SolveOptions(...)``,
    and their individual keywords fold into one.  Passing both an
    ``options`` object and an explicit keyword raises ``ValueError``.

    Fields
    ------
    method:
        ``"amg"`` (standalone V-cycles, the Table 3 solver), ``"fgmres"``
        or ``"cg"`` (AMG-preconditioned Krylov).
    tol:
        Relative residual stopping tolerance.
    maxiter:
        Iteration cap; ``None`` uses each solver's own default.
    reuse:
        Setup-reuse policy: ``"auto"`` (exact cache hit, else same-pattern
        numeric refresh, else cold build), ``"pattern"`` (force the refresh
        tier), ``"never"`` (always build from scratch).
    check:
        :mod:`repro.analysis` sanitizer level (``"off"``/``"cheap"``/
        ``"full"``); ``None`` inherits ``REPRO_CHECK``.
    config:
        The :class:`~repro.config.AMGConfig` shaping the hierarchy;
        ``None`` uses :func:`~repro.config.single_node_config`.
    """

    method: str = "amg"
    tol: float = 1e-7
    maxiter: int | None = None
    reuse: str = "auto"
    check: str | None = None
    config: AMGConfig | None = None

    def __post_init__(self) -> None:
        if self.method not in _METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; choose from {_METHODS}")
        if self.reuse not in _REUSE_MODES:
            raise ValueError(
                f"reuse must be one of {_REUSE_MODES}, got {self.reuse!r}")


def _resolve_options(options: SolveOptions | None,
                     **explicit) -> SolveOptions:
    """Fold explicit per-call keywords and an options object into one.

    ``explicit`` values default to the ``_UNSET`` sentinel; passing any of
    them alongside an ``options`` object is an error — one call, one
    source of truth.
    """
    given = {k: v for k, v in explicit.items() if v is not _UNSET}
    if options is None:
        return SolveOptions(**given)
    if given:
        raise ValueError(
            f"pass a SolveOptions object or the keyword(s) "
            f"{sorted(given)}, not both")
    return options


def _have_scipy() -> bool:
    return _importlib_util.find_spec("scipy") is not None


def as_csr(A) -> CSRMatrix:
    """Coerce *A* to the library's :class:`CSRMatrix`.

    Accepts a ``CSRMatrix`` (returned as-is), any ``scipy.sparse`` matrix
    (via ``.tocsr()``), or a dense 2-D array-like.
    """
    if isinstance(A, CSRMatrix):
        return A
    if hasattr(A, "tocsr"):
        # scipy.sparse duck-typing: conversion happens through the object's
        # own .tocsr(), so it works with whatever scipy built it.
        try:
            return CSRMatrix.from_scipy(A)
        except Exception as exc:
            raise TypeError(
                f"failed to convert {type(A).__name__} through .tocsr(): {exc}"
            ) from exc
    try:
        arr = np.asarray(A, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise TypeError(_as_csr_error(A)) from exc
    if arr.ndim != 2:
        raise TypeError(_as_csr_error(A))
    return CSRMatrix.from_dense(arr)


def _as_csr_error(A) -> str:
    msg = (
        "A must be a repro.sparse.CSRMatrix, a scipy.sparse matrix, or a "
        f"dense 2-D array-like; got {type(A).__name__}"
    )
    if not _have_scipy():
        msg += " (note: scipy is not installed, so scipy.sparse inputs are unavailable)"
    return msg


def fingerprint(A, config: AMGConfig | None = None) -> str:
    """Stable identity of a (matrix, config) pair.

    This is the library's one keying function: the hierarchy cache keys
    entries with it and the solve service (:mod:`repro.serve`) coalesces
    requests sharing it into micro-batches.  *A* may be anything
    :func:`as_csr` accepts; with ``config=None`` the fingerprint covers the
    matrix alone.
    """
    return _fingerprint_csr(as_csr(A), config)


def pattern_fingerprint(A) -> str:
    """Stable identity of a matrix's sparsity pattern (values ignored).

    Two matrices share a pattern fingerprint iff they have the same shape,
    ``indptr`` and ``indices`` — the precondition for numeric resetup
    (:meth:`SolverHandle.update`).  This is the hierarchy cache's
    second-tier key: an exact-tier miss whose pattern fingerprint matches a
    cached entry triggers a numeric-only :meth:`Hierarchy.refresh
    <repro.amg.setup.Hierarchy.refresh>` (which derives a new hierarchy
    from the cached one) instead of a cold build.  *A* may be anything
    :func:`as_csr` accepts.
    """
    return _pattern_fingerprint_csr(as_csr(A))


def _as_rhs(b, n: int) -> np.ndarray:
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 1:
        raise ValueError(
            f"b must be a 1-D vector of length {n}, got shape {b.shape}; "
            "use solve_many() for an (n, k) block"
        )
    if len(b) != n:
        raise ValueError(f"b has length {len(b)}, expected {n}")
    if not np.isfinite(b).all():
        bad = int(np.count_nonzero(~np.isfinite(b)))
        raise ValueError(
            f"b contains {bad} non-finite (NaN/Inf) entr"
            f"{'y' if bad == 1 else 'ies'}; clean the right-hand side "
            "before solving"
        )
    return b


def _as_rhs_block(B, n: int) -> np.ndarray:
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError(
            f"B must be a 2-D (n, k) block with n={n}, got shape {B.shape}; "
            "use solve() for a single vector"
        )
    if B.shape[0] != n:
        raise ValueError(f"B has {B.shape[0]} rows, expected {n}")
    if not np.isfinite(B).all():
        bad_cols = np.flatnonzero(~np.isfinite(B).all(axis=0))
        raise ValueError(
            "B contains non-finite (NaN/Inf) entries in column"
            f"{'s' if len(bad_cols) != 1 else ''} {bad_cols.tolist()}; "
            "clean the right-hand sides before solving"
        )
    return B


def _validate_operator(A: CSRMatrix) -> CSRMatrix:
    """Reject operators the solvers cannot meaningfully run on."""
    if A.nrows == 0 or A.ncols == 0:
        raise ValueError(f"A is empty (shape {A.nrows}x{A.ncols}); "
                         "the system must have at least one unknown")
    if A.nrows != A.ncols:
        raise ValueError(f"A must be square, got shape {A.nrows}x{A.ncols}")
    if A.nnz and not np.isfinite(A.data).all():
        bad = int(np.count_nonzero(~np.isfinite(A.data)))
        raise ValueError(
            f"A contains {bad} non-finite (NaN/Inf) stored entr"
            f"{'y' if bad == 1 else 'ies'}; clean the operator before setup"
        )
    return A


class SolverHandle:
    """A matrix bound to a ready-to-use AMG hierarchy.

    Created by :func:`setup`; ``solve`` / ``solve_many`` reuse the hierarchy
    so only the first setup (per matrix and config) is charged.
    """

    def __init__(
        self,
        A,
        config: AMGConfig | None = None,
        *,
        cache: HierarchyCache | None = DEFAULT_CACHE,
        check: str | None = None,
        reuse: str = "auto",
    ) -> None:
        #: Check level (``"off"``/``"cheap"``/``"full"``) this handle runs
        #: its setup and solves under; ``None`` inherits the process level
        #: (``REPRO_CHECK`` / :func:`repro.analysis.set_check_level`).
        self.check = check
        if reuse not in _REUSE_MODES:
            raise ValueError(f"reuse must be one of {_REUSE_MODES}, got {reuse!r}")
        self._cache = cache
        self._reuse = reuse
        with check_scope(check):
            self.A = _validate_operator(as_csr(A))
            if checking():
                check_csr(self.A, name="A", context="api.setup")
            self.config = config if config is not None else single_node_config()
            self._solver = AMGSolver(self.config)
            self._solver.setup(self.A, cache=cache, reuse=reuse)

    def update(self, A_new, *, reuse: str | None = None,
               options: SolveOptions | None = None) -> "SolverHandle":
        """Rebind the handle to *A_new*, reusing setup work where possible.

        For an operator with the **same sparsity pattern** as a previous
        setup, the hierarchy is refreshed numerically (pattern-reuse
        resetup) instead of rebuilt — same per-level matrices, a fraction of
        the setup cost.  A different pattern, ``reuse="never"``, or a
        guard-detected symbolic drift falls back to a full setup.  The
        reuse policy may also be carried by a :class:`SolveOptions` object
        (but not both).  Returns ``self`` (updated in place) for chaining.
        """
        if options is not None:
            if reuse is not None:
                raise ValueError(
                    "pass a SolveOptions object or the keyword(s) "
                    "['reuse'], not both")
            reuse = options.reuse
        r = self._reuse if reuse is None else reuse
        if r not in _REUSE_MODES:
            raise ValueError(f"reuse must be one of {_REUSE_MODES}, got {r!r}")
        with check_scope(self.check):
            A_new = _validate_operator(as_csr(A_new))
            if checking():
                check_csr(A_new, name="A_new", context="api.update")
            self.A = A_new
            if self._cache is not None:
                self._solver.setup(A_new, cache=self._cache, reuse=r)
            elif r == "never" or self._solver.hierarchy is None:
                self._solver.setup(A_new, cache=None, reuse=r)
            else:
                self._solver.update(A_new)
        return self

    @property
    def hierarchy(self):
        return self._solver.hierarchy

    @property
    def amg(self) -> AMGSolver:
        """The underlying :class:`AMGSolver` (e.g. for ``precondition``)."""
        return self._solver

    # -- graceful-degradation ladder ------------------------------------------
    def _diag_precondition(self):
        d = self.A.diagonal().copy()
        d[d == 0.0] = 1.0
        return lambda r: r / d

    def _fallback(self, b, primary: SolveResult, *, tol: float,
                  maxiter: int | None) -> SolveResult:
        """Last rung of the degradation ladder: diagonal-preconditioned CG.

        Called when the AMG(-preconditioned) solve broke (divergence,
        non-positive curvature, stagnation).  The fallback drops the AMG
        preconditioner entirely — a broken hierarchy can't hurt it — and the
        returned result stays flagged ``degraded`` with the full event trail
        (primary verdicts, the downgrade marker, fallback events).
        """
        events = list(primary.fault_events)
        events.append(FaultEvent(
            "degraded_fallback",
            detail="retrying with diagonal-preconditioned CG"))
        fb = pcg(self.A, b, precondition=self._diag_precondition(),
                 tol=tol, maxiter=maxiter)
        events.extend(fb.fault_events)
        if not fb.converged:
            # Fallback did no better; report the primary result, but keep
            # the ladder's event trail so the attempt is visible.
            return SolveResult(primary.x, primary.iterations,
                               primary.residuals, False, degraded=True,
                               degraded_reason=primary.degraded_reason,
                               fault_events=events)
        reason = ((primary.degraded_reason or "solver fault")
                  + "; recovered by diagonal-CG fallback")
        return SolveResult(fb.x, primary.iterations + fb.iterations,
                           fb.residuals, True, degraded=True,
                           degraded_reason=reason, fault_events=events)

    def solve(
        self,
        b,
        *,
        method: str = "amg",
        tol: float = 1e-7,
        maxiter: int | None = None,
        fallback: bool = True,
    ) -> SolveResult:
        """Solve ``A x = b`` with the chosen method (AMG-preconditioned).

        If the solve *breaks* (NaN/Inf, divergence, CG breakdown,
        stagnation) and ``fallback`` is on, the facade walks down the
        degradation ladder — one retry with plain diagonal-preconditioned
        CG — and flags the result ``degraded`` either way.
        """
        b = _as_rhs(b, self.A.nrows)
        with check_scope(self.check):
            if method == "amg":
                res = self._solver.solve(b, tol=tol, maxiter=maxiter)
            elif method == "fgmres":
                res = fgmres(self.A, b, precondition=self._solver.precondition,
                             tol=tol, maxiter=maxiter)
            elif method == "cg":
                res = pcg(self.A, b, precondition=self._solver.precondition,
                          tol=tol, maxiter=maxiter)
            else:
                raise ValueError(
                    f"unknown method {method!r}; choose from {_METHODS}")
            if fallback and res.degraded and not res.converged:
                res = self._fallback(b, res, tol=tol, maxiter=maxiter)
        return res

    def solve_many(
        self,
        B,
        *,
        method: str = "amg",
        tol: float = 1e-7,
        maxiter: int | None = None,
        fallback: bool = True,
    ) -> list[SolveResult]:
        """Solve ``A X = B`` column-wise with the batched (multi-RHS) path.

        Broken columns are frozen by the blocked solvers without touching
        their siblings; with ``fallback`` on, each broken column is then
        retried individually through the degradation ladder.
        """
        B = _as_rhs_block(B, self.A.nrows)
        with check_scope(self.check):
            if method == "amg":
                results = self._solver.solve_many(B, tol=tol, maxiter=maxiter)
            elif method == "fgmres":
                results = fgmres_multi(
                    self.A, B,
                    precondition_multi=self._solver.precondition_multi,
                    tol=tol, maxiter=maxiter)
            elif method == "cg":
                results = pcg_multi(
                    self.A, B,
                    precondition_multi=self._solver.precondition_multi,
                    tol=tol, maxiter=maxiter)
            else:
                raise ValueError(
                    f"unknown method {method!r}; choose from {_METHODS}")
            if fallback:
                results = [
                    self._fallback(B[:, j], r, tol=tol, maxiter=maxiter)
                    if r.degraded and not r.converged else r
                    for j, r in enumerate(results)
                ]
        return results


def setup(
    A,
    config: AMGConfig | None = None,
    *,
    options: SolveOptions | None = None,
    cache: HierarchyCache | None = DEFAULT_CACHE,
    check: str | None = _UNSET,
    reuse: str = _UNSET,
) -> SolverHandle:
    """Build (or fetch from *cache*) the AMG hierarchy for *A*.

    Pass ``cache=None`` to force a fresh, uncached setup.  The hierarchy-
    shaping knobs — ``config``, ``check`` (the :mod:`repro.analysis`
    sanitizer level) and ``reuse`` (the setup-reuse policy) — may be given
    individually or carried by a :class:`SolveOptions` object, whose
    docstring defines them; mixing both spellings raises ``ValueError``.
    """
    opts = _resolve_options(
        options, config=_UNSET if config is None else config,
        check=check, reuse=reuse)
    return SolverHandle(A, opts.config, cache=cache, check=opts.check,
                        reuse=opts.reuse)


def solve(
    A,
    b,
    *,
    options: SolveOptions | None = None,
    method: str = _UNSET,
    config: AMGConfig | None = _UNSET,
    tol: float = _UNSET,
    maxiter: int | None = _UNSET,
    cache: HierarchyCache | None = DEFAULT_CACHE,
    check: str | None = _UNSET,
    reuse: str = _UNSET,
) -> SolveResult:
    """One-call solve of ``A x = b``.

    All per-call knobs (``method``, ``tol``, ``maxiter``, ``reuse``,
    ``check``, ``config`` — see :class:`SolveOptions` for their meaning
    and defaults) may be given individually or as one
    ``options=SolveOptions(...)`` object; mixing both raises
    ``ValueError``.  Repeated calls with the same matrix and config hit
    the hierarchy cache and skip the setup phase entirely; calls with a
    *same-pattern* matrix refresh the cached hierarchy numerically instead
    of rebuilding (``reuse="auto"``, see :func:`setup`).
    """
    opts = _resolve_options(options, method=method, config=config, tol=tol,
                            maxiter=maxiter, check=check, reuse=reuse)
    return setup(A, options=opts, cache=cache).solve(
        b, method=opts.method, tol=opts.tol, maxiter=opts.maxiter)


def solve_many(
    A,
    B,
    *,
    options: SolveOptions | None = None,
    method: str = _UNSET,
    config: AMGConfig | None = _UNSET,
    tol: float = _UNSET,
    maxiter: int | None = _UNSET,
    cache: HierarchyCache | None = DEFAULT_CACHE,
    check: str | None = _UNSET,
    reuse: str = _UNSET,
) -> list[SolveResult]:
    """One-call batched solve of ``A X = B`` for an ``(n, k)`` block.

    Every cycle streams the hierarchy once for all *k* right-hand sides
    (the multi-RHS path); returns one result per column, each bit-identical
    to the corresponding single-RHS :func:`solve`.  Per-call knobs follow
    the same rules as :func:`solve`: individual keywords or one
    ``options=SolveOptions(...)`` object, never both.
    """
    opts = _resolve_options(options, method=method, config=config, tol=tol,
                            maxiter=maxiter, check=check, reuse=reuse)
    return setup(A, options=opts, cache=cache).solve_many(
        B, method=opts.method, tol=opts.tol, maxiter=opts.maxiter)
