"""Benchmark drivers for regenerating every table and figure of §5."""

from .runner import (
    RANKS_PER_NODE,
    SETUP_PHASES,
    SOLVE_PHASES,
    DistRunResult,
    SingleNodeResult,
    bench_scale,
    machine_for,
    net_scale,
    run_distributed,
    run_single_node,
)
from .runner import run_amgx

__all__ = [
    "RANKS_PER_NODE",
    "SETUP_PHASES",
    "SOLVE_PHASES",
    "DistRunResult",
    "SingleNodeResult",
    "bench_scale",
    "machine_for",
    "net_scale",
    "run_distributed",
    "run_single_node",
    "run_amgx",
]
