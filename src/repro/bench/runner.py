"""Benchmark drivers shared by the ``benchmarks/`` harness.

Every experiment runs the real solver under instrumentation and converts
the counted work into modeled seconds on the Table 1 machines / the
Endeavor network (DESIGN.md §2).  The functions here return plain dicts so
the pytest-benchmark files can both print the paper's rows and assert the
headline shapes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..amg import AMGSolver
from ..config import AMGConfig, amgx_config
from ..dist import DistAMGSolver, ParCSRMatrix, ParVector, RowPartition, SimComm, dist_fgmres
from ..perf import HaswellModel, K40cModel, MachineModel, FDRInfinibandModel, PerfLog, collect
from ..sparse.csr import CSRMatrix

__all__ = [
    "bench_scale",
    "SingleNodeResult",
    "run_single_node",
    "machine_for",
    "SOLVE_PHASES",
    "SETUP_PHASES",
    "DistRunResult",
    "run_distributed",
    "RANKS_PER_NODE",
]

#: Fig. 5 breakdown buckets.  ``Resetup`` is the pattern-reuse numeric
#: resetup phase (:meth:`repro.amg.Hierarchy.refresh`): zero on a cold
#: build, and the *only* non-zero setup bucket on a same-pattern refresh.
SETUP_PHASES = ("Strength+Coarsen", "Interp", "RAP", "Resetup", "Setup_etc")
SOLVE_PHASES = ("GS", "SpMV", "BLAS1", "Solve_etc")

#: §5.1.2: 1 MPI rank per socket, 2 sockets per Endeavor node.
RANKS_PER_NODE = 2

#: Calibrated irregular-access bandwidth efficiencies: the §3.1.1 software
#: prefetch + 8x unrolling raise the sustained bandwidth of gather-bound
#: kernels; without them Haswell stalls on the serial dependent loads.
IRREGULAR_EFF_PREFETCH = 0.55
IRREGULAR_EFF_BASE = 0.38


def bench_scale(default: int = 64) -> int:
    """Problem down-scaling factor; override with ``REPRO_BENCH_SCALE``."""
    return int(os.environ.get("REPRO_BENCH_SCALE", default))


def machine_for(config: AMGConfig, *, gpu: bool = False) -> MachineModel:
    if gpu:
        return K40cModel()
    m = HaswellModel(threads=min(config.nthreads, 14))
    m.irregular_efficiency = (
        IRREGULAR_EFF_PREFETCH
        if config.flags.software_prefetch
        else IRREGULAR_EFF_BASE
    )
    return m


@dataclass
class SingleNodeResult:
    name: str
    config_label: str
    iterations: int
    converged: bool
    operator_complexity: float
    setup_phase_times: dict[str, float]
    solve_phase_times: dict[str, float]

    @property
    def setup_time(self) -> float:
        return sum(self.setup_phase_times.values())

    @property
    def solve_time(self) -> float:
        return sum(self.solve_phase_times.values())

    @property
    def total_time(self) -> float:
        return self.setup_time + self.solve_time

    @property
    def time_per_iteration(self) -> float:
        return self.solve_time / max(self.iterations, 1)

    def phase_times(self) -> dict[str, float]:
        out = dict(self.setup_phase_times)
        out.update(self.solve_phase_times)
        return out


def _split_phases(times: dict[str, float]) -> tuple[dict[str, float], dict[str, float]]:
    setup = {p: times.get(p, 0.0) for p in SETUP_PHASES}
    solve = {p: times.get(p, 0.0) for p in SOLVE_PHASES}
    # Anything unattributed is setup bookkeeping.
    leftover = sum(v for k, v in times.items()
                   if k not in SETUP_PHASES and k not in SOLVE_PHASES)
    setup["Setup_etc"] += leftover
    return setup, solve


def run_single_node(
    A: CSRMatrix,
    config: AMGConfig,
    *,
    label: str,
    gpu: bool = False,
    tol: float = 1e-7,
    max_iter: int = 400,
    seed: int = 7,
    name: str = "",
) -> SingleNodeResult:
    """Run setup+solve under instrumentation; return modeled phase times."""
    machine = machine_for(config, gpu=gpu)
    b = np.random.default_rng(seed).standard_normal(A.nrows)
    solver = AMGSolver(config)
    with collect() as setup_log:
        solver.setup(A)
    with collect() as solve_log:
        res = solver.solve(b, tol=tol, max_iter=max_iter)
    setup_t, _ = _split_phases(machine.phase_times(setup_log))
    _, solve_t = _split_phases(machine.phase_times(solve_log))
    return SingleNodeResult(
        name=name or label,
        config_label=label,
        iterations=res.iterations,
        converged=res.converged,
        operator_complexity=solver.operator_complexity,
        setup_phase_times=setup_t,
        solve_phase_times=solve_t,
    )


def run_amgx(A: CSRMatrix, *, tol: float = 1e-7, seed: int = 7,
             rows_per_block: int = 16, name: str = "") -> SingleNodeResult:
    """The AmgX comparison point (classical AMG, GPU model, §5.2).

    AmgX reports only setup/solve totals, so all its time lands in the
    ``Setup_etc`` / ``Solve_etc`` buckets, as in Fig. 5.
    """
    res = run_single_node(
        A, amgx_config(rows_per_block=rows_per_block), label="AmgX", gpu=True,
        tol=tol, seed=seed, name=name,
    )
    setup = {p: 0.0 for p in SETUP_PHASES}
    setup["Setup_etc"] = res.setup_time
    solve = {p: 0.0 for p in SOLVE_PHASES}
    solve["Solve_etc"] = res.solve_time
    res.setup_phase_times = setup
    res.solve_phase_times = solve
    return res


# ---------------------------------------------------------------------------
# Distributed (multi-node) runs
# ---------------------------------------------------------------------------

@dataclass
class DistRunResult:
    label: str
    nodes: int
    nranks: int
    iterations: int
    converged: bool
    operator_complexity: float
    #: Modeled compute seconds per phase (makespan over ranks).
    setup_compute: dict[str, float]
    solve_compute: dict[str, float]
    #: Modeled communication seconds attributed to setup / solve phases.
    setup_comm: float
    solve_comm: float
    comm_volume: float
    interp_comm_volume: float
    halo_messages: int
    #: Node topology accounting (``ppn`` runs only; 0 = flat run).
    ppn: int = 0
    #: Wire messages / bytes that crossed a node boundary (all phases).
    internode_messages: int = 0
    internode_volume: float = 0.0
    #: Levels whose A-halo adopted the 3-step aggregated schedule.
    node_aware_levels: int = 0

    @property
    def setup_time(self) -> float:
        return sum(self.setup_compute.values()) + self.setup_comm

    @property
    def solve_time(self) -> float:
        return sum(self.solve_compute.values()) + self.solve_comm

    @property
    def total_time(self) -> float:
        return self.setup_time + self.solve_time

    def phase_times(self) -> dict[str, float]:
        out = dict(self.setup_compute)
        out.update(self.solve_compute)
        out["Setup_MPI"] = self.setup_comm
        out["Solve_MPI"] = self.solve_comm
        return out


#: Down-scale factor applied to the network's fixed per-message costs in
#: the multi-node benches, matching the problem down-scaling (see
#: :meth:`repro.perf.network.NetworkModel.scaled`).  Override with
#: ``REPRO_NET_SCALE``.
def net_scale(default: float = 64.0) -> float:
    return float(os.environ.get("REPRO_NET_SCALE", default))


def run_distributed(
    A: CSRMatrix,
    config: AMGConfig,
    nodes: int,
    *,
    label: str,
    rank_sizes: np.ndarray | None = None,
    tol: float = 1e-7,
    outer: str = "fgmres",
    seed: int = 7,
    max_iter: int = 300,
    network_scale: float | None = None,
    ppn: int | None = None,
) -> DistRunResult:
    """Distributed setup + (FGMRES-preconditioned) solve on ``nodes`` nodes.

    ``ppn`` models that many ranks per node (instead of the flat default of
    ``RANKS_PER_NODE`` ranks with no node structure): the run then prices
    communication on the two-tier network and the halos may adopt the
    node-aware 3-step schedule.  ``ppn=None`` is byte-identical to before
    the topology subsystem existed.
    """
    topo = None
    if ppn is not None:
        from ..topo import NodeTopology

        nranks = nodes * ppn
        topo = NodeTopology(nranks, ppn)
    else:
        nranks = nodes * RANKS_PER_NODE
    part = (
        RowPartition.from_sizes(rank_sizes)
        if rank_sizes is not None
        else RowPartition.uniform(A.nrows, nranks)
    )
    comm = SimComm(nranks)
    Ap = ParCSRMatrix.from_global(A, part)
    machine = machine_for(config)
    scale = network_scale if network_scale is not None else net_scale()
    base_net = FDRInfinibandModel()
    net = (topo.network(base_net) if topo is not None else base_net).scaled(scale)

    b = np.random.default_rng(seed).standard_normal(A.nrows)
    bp = ParVector.from_global(b, part)

    solver = DistAMGSolver(comm, config, topology=topo, net=net)
    solver.setup(Ap)
    n_setup_msgs = len(comm.messages)
    setup_compute = comm.compute_phase_makespan(machine)
    setup_comm = comm.comm_time(net)
    interp_vol = comm.comm_volume(tag="interp") + comm.comm_volume(tag="interp.req")

    # Fresh accounting for the solve phase.
    setup_records = [len(log.records) for log in comm.rank_logs]
    pre_msgs = len(comm.messages)
    pre_coll = len(comm.collectives)

    if outer == "fgmres":
        res = dist_fgmres(comm, Ap, bp, precondition=solver.precondition,
                          tol=tol, max_iter=max_iter)
    else:
        res = solver.solve(bp, tol=tol, max_iter=max_iter)

    solve_logs = []
    for p, log in enumerate(comm.rank_logs):
        sub = PerfLog()
        sub.records = log.records[setup_records[p]:]
        solve_logs.append(sub)
    solve_compute: dict[str, float] = {}
    for log in solve_logs:
        for ph, t in machine.phase_times(log).items():
            solve_compute[ph] = max(solve_compute.get(ph, 0.0), t)

    solve_msgs = [m.event for m in comm.messages[pre_msgs:]]
    solve_comm = net.exchange_time(solve_msgs, nranks)
    for c in comm.collectives[pre_coll:]:
        solve_comm += net.allreduce_time(c.nranks, c.nbytes)

    halo_msgs = sum(1 for m in comm.messages if m.event.tag == "halo")

    internode_msgs = 0
    internode_vol = 0.0
    node_aware_levels = 0
    if topo is not None:
        for m in comm.messages:
            if not topo.on_node(m.event.src, m.event.dst):
                internode_msgs += 1
                internode_vol += m.event.nbytes
        node_aware_levels = sum(
            1 for lvl in solver.hierarchy.levels
            if lvl.halo is not None and lvl.halo.node_aware)

    return DistRunResult(
        label=label,
        nodes=nodes,
        nranks=nranks,
        iterations=res.iterations,
        converged=res.converged,
        operator_complexity=solver.hierarchy.operator_complexity(),
        setup_compute={k: v for k, v in setup_compute.items()},
        solve_compute=solve_compute,
        setup_comm=setup_comm,
        solve_comm=solve_comm,
        comm_volume=comm.comm_volume(),
        interp_comm_volume=interp_vol,
        halo_messages=halo_msgs,
        ppn=ppn or 0,
        internode_messages=internode_msgs,
        internode_volume=internode_vol,
        node_aware_levels=node_aware_levels,
    )
