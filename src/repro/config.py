"""Solver configuration: AMG parameters (Tables 3/4) and optimization flags.

:class:`OptimizationFlags` switches every individual optimization the paper
describes, so ``HYPRE_base`` / ``HYPRE_opt`` are just two presets of the
same library — mirroring how the paper's optimized code is a modified
HYPRE.  The AmgX comparison point is a third preset: the same classical-AMG
algorithms, smoothing with a massive hybrid-block count (GPU-style
parallel smoothing, which is what degrades its convergence §5.2), evaluated
under the K40c machine model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "OptimizationFlags",
    "AMGConfig",
    "HYPRE_BASE_FLAGS",
    "HYPRE_OPT_FLAGS",
    "single_node_config",
    "multi_node_config",
    "amgx_config",
]


@dataclass(frozen=True)
class OptimizationFlags:
    """Per-optimization switches.  Defaults are the optimized settings."""

    #: §3.3 — strength creation / transpose / PMIS threaded (prefix-sum
    #: assembly, parallel counting sort).  Off = those kernels run serially.
    parallel_setup_kernels: bool = True
    #: §3.3 — MKL-style parallel random streams in PMIS.
    parallel_rng: bool = True
    #: §3.1.1 — one-pass SpGEMM with pre-allocated per-thread chunks
    #: (off = traditional symbolic+numeric two-pass).
    spgemm_one_pass: bool = True
    #: §3.1.1 — Galerkin product scheme: "cf_block" (reordered, Fig.1a fused
    #: kernels on the A_FF block), "fused" (Fig. 1a), "hypre" (Fig. 1b
    #: baseline), "unfused".
    rap_scheme: str = "cf_block"
    #: §3.1.2/§3.2 — CF permutation of level operators; implies the
    #: identity-block interpolation/restriction SpMVs.
    cf_reorder: bool = True
    #: §3.1.2/§3.2 — in-row 3-way partial sorts (removes classification
    #: branches in interpolation construction and hybrid GS).
    three_way_partition: bool = True
    #: §3.2 — keep R = P^T from setup instead of transposing per restriction.
    keep_transpose: bool = True
    #: §3.3 — fuse SpMV with the inner product of the residual norm.
    fuse_spmv_dot: bool = True
    #: §3.1.2 — truncate interpolation rows as they are built.
    fused_truncation: bool = True
    #: §3.1.1 — software prefetch + 8x unrolling; modeled as the irregular-
    #: access bandwidth efficiency the machine model grants gather kernels.
    software_prefetch: bool = True
    # ---- multi-node (§4) ----
    #: §4.4 — persistent communication requests for halo exchanges.
    persistent_comm: bool = True
    #: §4.2 — parallel column-index renumbering (thread-private hash tables
    #: + merge) vs the serial ordered-set baseline.
    parallel_renumber: bool = True
    #: §4.3 — filter interpolation-construction row transfers.
    filter_interp_comm: bool = True


HYPRE_OPT_FLAGS = OptimizationFlags()
HYPRE_BASE_FLAGS = OptimizationFlags(
    parallel_setup_kernels=False,
    parallel_rng=False,
    spgemm_one_pass=False,
    rap_scheme="hypre",
    cf_reorder=False,
    three_way_partition=False,
    keep_transpose=False,
    fuse_spmv_dot=False,
    fused_truncation=False,
    software_prefetch=False,
    persistent_comm=False,
    parallel_renumber=False,
    filter_interp_comm=False,
)


@dataclass(frozen=True)
class AMGConfig:
    """Classical-AMG parameters (defaults = Table 3 single-node settings)."""

    strength_threshold: float = 0.25
    max_row_sum: float = 0.8
    #: "pmis" (the paper's choice) or "rs" (serial Ruge-Stueben, the
    #: classical comparator of §2).
    coarsening: str = "pmis"
    #: "extended+i", "multipass", "2s-ei", or "direct".  With aggressive
    #: coarsening ("2s-ei"/"multipass" presets) this is the *top-level*
    #: scheme; deeper levels always use extended+i (Table 4).
    interp: str = "extended+i"
    #: Number of top levels coarsened aggressively (Table 4 uses 1).
    aggressive_levels: int = 0
    trunc_fact: float = 0.1
    max_elmts: int = 4
    max_levels: int = 7
    #: Stop coarsening below this size.
    coarse_size: int = 64
    #: Use a dense direct solve on the coarsest level up to this size;
    #: fall back to smoothing sweeps above it.
    dense_coarse_threshold: int = 500
    #: "V" (Tables 3/4), "W", or "F".
    cycle_type: str = "V"
    #: "hybrid_gs", "lex", "multicolor", "jacobi", "l1_jacobi", or
    #: "chebyshev".
    smoother: str = "hybrid_gs"
    #: Hybrid-GS block count = modeled thread count.
    nthreads: int = 14
    #: GPU-style smoothing: the hybrid-GS block count scales with the level
    #: size (one block per ~``gpu_rows_per_block`` rows) instead of being
    #: fixed — how a massively threaded GPU smoother behaves.  0 disables.
    gpu_rows_per_block: int = 0
    #: Galerkin-product sparsification (arXiv:1512.04629): on coarse levels
    #: drop offd entries with ``|a_ij| < sparsify_tol * max_k |a_ik|``,
    #: lumping the dropped mass into the diagonal.  0.0 disables.  Setup
    #: keeps the full operator, and the solve's guardrail reverts to it
    #: (``DistHierarchy.desparsify``) when convergence suffers.
    sparsify_tol: float = 0.0
    #: Iteration budget of a sparsified hierarchy: a solve still
    #: unconverged after this many iterations (or one that trips the
    #: residual guard) reverts to the unsparsified operators and continues.
    sparsify_fallback_iters: int = 25
    seed: int = 42
    flags: OptimizationFlags = field(default_factory=OptimizationFlags)

    def with_flags(self, flags: OptimizationFlags) -> "AMGConfig":
        return replace(self, flags=flags)


def single_node_config(
    optimized: bool = True, *, strength_threshold: float = 0.25, nthreads: int = 14
) -> AMGConfig:
    """Table 3: standalone AMG, V-cycle, max_levels=7, PMIS + ext+i(0.1, 4)."""
    return AMGConfig(
        strength_threshold=strength_threshold,
        max_row_sum=0.8,
        interp="extended+i",
        max_levels=7,
        nthreads=nthreads,
        flags=HYPRE_OPT_FLAGS if optimized else HYPRE_BASE_FLAGS,
    )


def multi_node_config(scheme: str = "ei", *, optimized: bool = True,
                      nthreads: int = 14) -> AMGConfig:
    """Table 4 presets: ``"ei"`` = ei(4), ``"2s-ei"`` = 2s-ei(444),
    ``"mp"`` = aggressive + multipass."""
    base = AMGConfig(
        strength_threshold=0.25,
        max_row_sum=0.8,
        max_levels=16,
        nthreads=nthreads,
        flags=HYPRE_OPT_FLAGS if optimized else HYPRE_BASE_FLAGS,
    )
    if scheme == "ei":
        return replace(base, interp="extended+i", aggressive_levels=0)
    if scheme == "2s-ei":
        return replace(base, interp="2s-ei", aggressive_levels=1)
    if scheme == "mp":
        return replace(base, interp="multipass", aggressive_levels=1)
    raise ValueError(f"unknown multi-node scheme {scheme!r}")


def amgx_config(rows_per_block: int = 16) -> AMGConfig:
    """AmgX comparison point: classical AMG, GS smoothing with GPU-scale
    hybrid-block parallelism — one block per ~``rows_per_block`` rows, the
    CTA-granularity smoothing that costs AmgX its convergence (§5.2) —
    evaluated under the K40c machine model."""
    return AMGConfig(
        interp="extended+i",
        max_levels=7,
        nthreads=2880,
        gpu_rows_per_block=rows_per_block,
        flags=HYPRE_OPT_FLAGS,
    )
