"""Simulated distributed-memory substrate (§4): SimMPI, ParCSR, halo
exchange, matrix-row gathering with §4.3 filtering, §4.2 column-index
renumbering, and the fully distributed AMG setup/solve."""

from .comm import CollectiveEvent, PersistentExchange, SimComm
from .halo import HaloExchange, build_halo
from .krylov import dist_pcg
from .interp import (
    coarse_numbering,
    dist_extended_i,
    dist_multipass,
    dist_two_stage_ei,
    par_truncate,
)
from .parcsr import ParCSRMatrix, ParVector, RankBlock
from .partition import RowPartition
from .pmis import dist_aggressive_pmis, dist_pmis, dist_random_measures
from .renumber import RenumberResult, renumber_baseline, renumber_parallel
from .rowgather import GatheredRows, gather_matrix_rows
from .setup import DistHierarchy, DistLevel, dist_build_hierarchy
from .smoothers import DistSmoother
from .solver import (
    DistAMGSolver,
    DistSolveResult,
    dist_fgmres,
    dist_vcycle,
    par_axpy,
    par_dot,
    par_norm2,
)
from .spgemm import dist_rap, dist_spgemm
from .spmv import dist_residual_norm, dist_spmv
from .strength import dist_strength
from .transpose import dist_transpose

__all__ = [
    "CollectiveEvent", "PersistentExchange", "SimComm",
    "HaloExchange", "build_halo",
    "coarse_numbering", "dist_extended_i", "dist_multipass",
    "dist_two_stage_ei", "par_truncate",
    "ParCSRMatrix", "ParVector", "RankBlock", "RowPartition",
    "dist_aggressive_pmis", "dist_pmis", "dist_random_measures",
    "RenumberResult", "renumber_baseline", "renumber_parallel",
    "GatheredRows", "gather_matrix_rows",
    "DistHierarchy", "DistLevel", "dist_build_hierarchy",
    "DistSmoother",
    "DistAMGSolver", "DistSolveResult", "dist_fgmres", "dist_vcycle",
    "par_axpy", "par_dot", "par_norm2",
    "dist_rap", "dist_spgemm", "dist_pcg",
    "dist_residual_norm", "dist_spmv",
    "dist_strength", "dist_transpose",
]
