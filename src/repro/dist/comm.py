"""Simulated MPI layer (§4, §5.1.2).

The distributed algorithms of :mod:`repro.dist` are written against this
communicator: *P* ranks live in one Python process, every point-to-point
message and collective is **executed** (the payload really moves between the
ranks' data structures) **and logged**, and a
:class:`repro.perf.network.NetworkModel` turns the log into modeled seconds
afterwards.  Message counts and volumes — the quantities the paper's §4
optimizations change — are therefore exact; only the clock is modeled.

Per-rank *compute* is attributed the same way: each rank owns a
:class:`repro.perf.counters.PerfLog`, and kernels invoked inside a
``with comm.on_rank(r):`` block count into it.  A phase's modeled compute
time is the makespan over ranks.

Persistent communication (§4.4): a :class:`PersistentExchange` freezes a
neighbor-exchange pattern once; every subsequent ``start()`` logs its
messages with the ``persistent`` flag so the network model can drop the
per-exchange setup cost, reproducing the 1.7–1.8x halo speedup the paper
measures.

Fault injection: :class:`repro.faults.comm.FaultyComm` subclasses this
communicator and adds a ``reliable_send`` protocol (sequence-numbered acks,
bounded retries).  Consumers that want resilient delivery — the halo
exchange, and through it ``dist_spmv`` and the smoothers — check
``supports_fault_injection`` / ``reliable_send`` and fall back to the plain
logging path on a vanilla ``SimComm``, which therefore stays bit-identical
(and modeled-time-identical) to the pre-fault-harness behavior.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..perf.counters import PerfLog, collect, current_phase
from ..perf.network import MessageEvent, NetworkModel

__all__ = ["SimComm", "PersistentExchange", "NodeAwareExchange",
           "CollectiveEvent"]


@dataclass(frozen=True)
class CollectiveEvent:
    """One logged collective (allreduce/allgather)."""

    kind: str
    nranks: int
    nbytes: float
    phase: str


@dataclass
class _LoggedMessage:
    event: MessageEvent
    phase: str


class SimComm:
    """A simulated communicator over ``nranks`` ranks."""

    #: True on communicators whose deliveries can fail and be retried
    #: (:class:`repro.faults.comm.FaultyComm`); solvers use it to decide
    #: whether checkpoint/restart bookkeeping is worth doing.
    supports_fault_injection = False

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self.rank_logs: list[PerfLog] = [PerfLog() for _ in range(nranks)]
        self.messages: list[_LoggedMessage] = []
        self.collectives: list[CollectiveEvent] = []
        self.persistent_created = 0
        #: Every :class:`PersistentExchange` frozen against this communicator
        #: (in creation order) — the registry the comm-trace replay checks
        #: persistent traffic against (``comm.persistent_drift``).
        self.persistent_requests: list[PersistentExchange] = []

    # -- per-rank compute attribution -----------------------------------
    @contextmanager
    def on_rank(self, rank: int):
        """Attribute kernel counts in the block to *rank*'s compute log."""
        with collect(self.rank_logs[rank]) as log:
            yield log

    # -- point to point ---------------------------------------------------
    def log_message(self, src: int, dst: int, nbytes: float, *,
                    persistent: bool = False, tag: str = "") -> None:
        self.messages.append(
            _LoggedMessage(
                MessageEvent(src, dst, int(nbytes), persistent, tag),
                current_phase(),
            )
        )

    def exchange(
        self,
        payloads: dict[tuple[int, int], np.ndarray],
        *,
        persistent: bool = False,
        tag: str = "",
        bytes_per_elem: float = 8.0,
    ) -> dict[tuple[int, int], np.ndarray]:
        """Deliver ``payloads[(src, dst)]`` to every destination.

        Returns the same mapping (delivery is by reference — ranks share the
        process); the side effect is the message log.
        """
        for (src, dst), data in payloads.items():
            if src == dst:
                continue
            self.log_message(src, dst, len(data) * bytes_per_elem,
                             persistent=persistent, tag=tag)
        return payloads

    # -- collectives -------------------------------------------------------
    def allreduce(self, values, *, kind: str = "allreduce") -> float:
        """Sum a scalar contributed by each rank; logs one collective."""
        total = float(np.sum(values))
        self.collectives.append(
            CollectiveEvent(kind, self.nranks, 8.0, current_phase())
        )
        return total

    def scan_offsets(self, counts: np.ndarray) -> np.ndarray:
        """Exclusive prefix sum across ranks (MPI_Scan); logs a collective."""
        counts = np.asarray(counts, dtype=np.int64)
        self.collectives.append(
            CollectiveEvent("scan", self.nranks, 8.0, current_phase())
        )
        out = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=out[1:])
        return out

    # -- modeled times -----------------------------------------------------
    def comm_time(self, net: NetworkModel, *, phase: str | None = None) -> float:
        """Modeled seconds of all logged point-to-point traffic (+collectives).

        Point-to-point messages are grouped by tag occurrence order into
        exchanges is an over-refinement; the per-rank serialization rule of
        :meth:`NetworkModel.exchange_time` applied to the whole log gives the
        same asymptotics, so we use it per phase.
        """
        msgs = [m.event for m in self.messages if phase is None or m.phase == phase]
        t = net.exchange_time(msgs, self.nranks)
        for c in self.collectives:
            if phase is None or c.phase == phase:
                t += net.allreduce_time(c.nranks, c.nbytes)
        return t

    def comm_volume(self, *, phase: str | None = None, tag: str | None = None) -> float:
        """Total logged point-to-point bytes (optionally filtered)."""
        return float(
            sum(
                m.event.nbytes
                for m in self.messages
                if (phase is None or m.phase == phase)
                and (tag is None or m.event.tag == tag)
            )
        )

    def message_count(self, *, tag: str | None = None) -> int:
        return sum(1 for m in self.messages if tag is None or m.event.tag == tag)

    def compute_phase_makespan(self, machine, irregular_fraction: float = 0.5) -> dict[str, float]:
        """Per-phase compute makespan over ranks (modeled seconds)."""
        out: dict[str, float] = {}
        for log in self.rank_logs:
            for ph, t in machine.phase_times(log, irregular_fraction).items():
                out[ph] = max(out.get(ph, 0.0), t)
        return out

    def clear_logs(self) -> None:
        for log in self.rank_logs:
            log.clear()
        self.messages.clear()
        self.collectives.clear()


class PersistentExchange:
    """A frozen neighbor-exchange pattern (§4.4 persistent communication).

    ``pattern`` maps ``(src, dst) -> element count``.  Creation logs the
    one-time request-setup cost; each :meth:`start` logs the messages with
    the persistent flag.
    """

    def __init__(self, comm: SimComm, pattern: dict[tuple[int, int], int],
                 *, bytes_per_elem: float = 8.0, tag: str = "halo") -> None:
        self.comm = comm
        self.pattern = dict(pattern)
        self.bytes_per_elem = bytes_per_elem
        self.tag = tag
        comm.persistent_created += len(self.pattern)
        comm.persistent_requests.append(self)

    def start(self, *, width: int = 1) -> None:
        """Log one persistent message per neighbor pair.

        ``width > 1`` sends a *k*-column block through the same frozen
        pattern: still one message per pair, *k* times the bytes.
        """
        for (src, dst), count in self.pattern.items():
            if src != dst:
                self.comm.log_message(
                    src, dst, count * width * self.bytes_per_elem,
                    persistent=True, tag=self.tag,
                )


class NodeAwareExchange:
    """A multi-round wire schedule (the node-aware 3-step halo, §4.4-style).

    ``rounds`` is an ordered list of ``(tag, pattern)`` wire rounds — the
    on-node direct round plus the gather / inter-node / scatter rounds of a
    :class:`~repro.topo.NodeAwarePlan`.  With ``persistent=True`` every
    round is frozen into its own :class:`PersistentExchange` (so the §4.4
    setup amortization and the comm-trace persistent-drift replay both see
    each round as one frozen pattern); otherwise each :meth:`start` logs
    the rounds' messages with the per-exchange setup cost.
    """

    def __init__(self, comm: SimComm,
                 rounds: list[tuple[str, dict[tuple[int, int], int]]],
                 *, bytes_per_elem: float = 8.0,
                 persistent: bool = True) -> None:
        self.comm = comm
        self.persistent = persistent
        self.bytes_per_elem = bytes_per_elem
        self.rounds = [(tag, dict(pat)) for tag, pat in rounds if pat]
        self._reqs = (
            [PersistentExchange(comm, pat, bytes_per_elem=bytes_per_elem,
                                tag=tag)
             for tag, pat in self.rounds]
            if persistent
            else None
        )

    def start(self, *, width: int = 1) -> None:
        """Log every round's messages, in round order."""
        if self._reqs is not None:
            for req in self._reqs:
                req.start(width=width)
            return
        for tag, pat in self.rounds:
            for (src, dst), count in pat.items():
                if src != dst:
                    self.comm.log_message(
                        src, dst, count * width * self.bytes_per_elem,
                        tag=tag,
                    )
