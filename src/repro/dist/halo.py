"""Vector halo exchange (§4.1, Fig. 3b) with optional persistent requests.

A :class:`HaloExchange` is built once per matrix from the ranks' ``colmap``
arrays: rank *p* must receive the vector entries at global indices
``colmap_p`` from their owners, and symmetrically send its owned entries
that appear in other ranks' colmaps.  ``persistent=True`` freezes the
pattern into a :class:`repro.dist.comm.PersistentExchange` (§4.4); otherwise
every exchange logs the non-persistent per-message setup cost.

Node-aware aggregation: given a :class:`repro.topo.NodeTopology` the
exchange additionally builds the 3-step wire schedule of Bienz et al.
(arXiv:1904.05838) — intra-node gather to the node leader, one inter-node
message per communicating node pair (entry-deduplicated across the
destination node's ranks), intra-node scatter — and adopts it when its
modeled time under the two-tier network model beats the flat schedule
(coarse levels with many sub-rampup messages win; fine levels fall back).
The *logical* pattern and the unpack path are untouched, so the gathered
``x_ext`` buffers — and every downstream solve iterate — are bit-identical
with or without a topology; only the logged wire messages (and the
leaders' staging traffic) change.  A trivial topology (``ppn=1``) or a
losing plan keeps the flat schedule byte-identically.

On a fault-injecting communicator (one exposing ``reliable_send``, i.e.
:class:`repro.faults.comm.FaultyComm`) every halo message instead goes
through the reliable protocol: sequence-numbered, acked, retransmitted with
exponential backoff when the fault plan drops or corrupts it, and raising
:class:`repro.faults.comm.CommFault` when the retry budget is exhausted.
The reliable protocol always runs the flat logical pattern — aggregation
through a leader would turn one lost link into a whole node's retry storm,
so node-aware plans are bypassed under fault injection.  On a plain
``SimComm`` this module's behavior is unchanged.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import VAL_BYTES, KernelRecord, count, count_record, make_record
from ..planexec import plan_enabled
from .comm import NodeAwareExchange, PersistentExchange, SimComm
from .parcsr import ParCSRMatrix, ParVector

__all__ = ["HaloExchange", "build_halo"]


class HaloExchange:
    """Frozen halo-exchange pattern for one ParCSR matrix."""

    def __init__(self, comm: SimComm, A: ParCSRMatrix, *, persistent: bool,
                 topology=None, net=None) -> None:
        self.comm = comm
        self.persistent = persistent
        col_part = A.col_part
        self.col_part = col_part
        # For each receiving rank: the owners and per-owner index lists.
        self.recv_plan: list[list[tuple[int, np.ndarray]]] = []
        needs: list[list[tuple[int, np.ndarray]]] = []
        pattern: dict[tuple[int, int], int] = {}
        for p, blk in enumerate(A.blocks):
            owners = col_part.owner_of(blk.colmap)
            plan = []
            need = []
            for q in np.unique(owners):
                ids = blk.colmap[owners == q]
                plan.append((int(q), col_part.to_local(ids, int(q))))
                need.append((int(q), ids))
                pattern[(int(q), p)] = len(ids)
            self.recv_plan.append(plan)
            needs.append(need)
        self.pattern = pattern
        self.total_elems = sum(pattern.values())
        # Per-rank external-entry counts are frozen with the pattern; the
        # pack/unpack traffic records are pure functions of (rank, width)
        # and are cached per width (plan-table counting).
        self._ext_n = [sum(len(ids) for _, ids in plan)
                       for plan in self.recv_plan]
        self._pack_recs: dict[int, list[KernelRecord]] = {}

        # Node-aware 3-step aggregation (repro.topo): adopted only when the
        # modeled two-tier time beats the flat schedule; ppn=1 and losing
        # plans keep the flat path byte-identically.
        self.topology = None
        self.node_plan = None
        self._node_exchange: NodeAwareExchange | None = None
        if topology is not None and not topology.trivial and comm.nranks > 1:
            from ..topo import build_node_plan

            if topology.nranks != comm.nranks:
                raise ValueError(
                    f"topology covers {topology.nranks} ranks, "
                    f"communicator has {comm.nranks}")
            self.topology = topology
            self.node_plan = build_node_plan(
                needs, topology, net=net, bytes_per_elem=VAL_BYTES,
                persistent=persistent)
            if self.node_plan.aggregated:
                self._node_exchange = NodeAwareExchange(
                    comm, self.node_plan.wire_rounds(),
                    bytes_per_elem=VAL_BYTES, persistent=persistent)

        self._persistent_req = (
            PersistentExchange(comm, pattern, bytes_per_elem=VAL_BYTES, tag="halo")
            if persistent and self._node_exchange is None
            else None
        )

    @property
    def node_aware(self) -> bool:
        """Whether this exchange sends the 3-step aggregated schedule."""
        return self._node_exchange is not None

    def __call__(self, x: ParVector) -> list[np.ndarray]:
        """Gather each rank's external entries; returns ``x_ext`` per rank.

        The returned array of rank *p* is indexed by the compressed offd
        column index (aligned with ``colmap``), as in Fig. 3(b).

        Multi-column payloads (parts of shape ``(n_p, k)``) exchange all *k*
        columns in **one** message per neighbor pair — the message count is
        unchanged and the logged bytes scale by *k*, which is exactly how a
        blocked halo exchange amortizes latency.
        """
        multi = x.parts[0].ndim == 2
        width = x.parts[0].shape[1] if multi else 1
        dtype = x.parts[0].dtype
        reliable = getattr(self.comm, "reliable_send", None)
        if reliable is not None:
            for (src, dst), n in self.pattern.items():
                if src != dst:
                    reliable(src, dst, n * width * VAL_BYTES, tag="halo",
                             persistent=self.persistent)
        elif self._node_exchange is not None:
            self._node_exchange.start(width=width)
            # Leaders relay the aggregated off-node traffic: the gathered
            # entries are staged into per-destination buffers before the
            # inter-node send / after the inter-node receive.
            for leader, elems in self.node_plan.relay.items():
                with self.comm.on_rank(leader):
                    count("halo.stage",
                          bytes_read=elems * width * VAL_BYTES,
                          bytes_written=elems * width * VAL_BYTES)
        elif self._persistent_req is not None:
            self._persistent_req.start(width=width)
        else:
            for (src, dst), n in self.pattern.items():
                self.comm.log_message(src, dst, n * width * VAL_BYTES, tag="halo")
        pack_recs = None
        if plan_enabled():
            pack_recs = self._pack_recs.get(width)
            if pack_recs is None:
                pack_recs = [
                    make_record("halo.pack_unpack",
                                bytes_read=n * width * VAL_BYTES,
                                bytes_written=n * width * VAL_BYTES)
                    for n in self._ext_n
                ]
                self._pack_recs[width] = pack_recs
        ext = []
        for p in range(self.comm.nranks):
            pieces = [x.parts[q][ids] for q, ids in self.recv_plan[p]]
            if pieces:
                ext.append(np.concatenate(pieces))
            else:
                # Allocate with the payload dtype: a bare np.empty defaults
                # to float64 and would silently upcast mixed-precision
                # parts in downstream concatenations.
                ext.append(np.empty((0, width), dtype=dtype) if multi
                           else np.empty(0, dtype=dtype))
            # Sender-side pack + receiver-side unpack traffic.
            with self.comm.on_rank(p):
                if pack_recs is not None:
                    count_record(pack_recs[p])
                else:
                    n = len(ext[-1])
                    count("halo.pack_unpack", bytes_read=n * width * VAL_BYTES,
                          bytes_written=n * width * VAL_BYTES)
        return ext


def build_halo(comm: SimComm, A: ParCSRMatrix, *, persistent: bool = True,
               topology=None, net=None) -> HaloExchange:
    return HaloExchange(comm, A, persistent=persistent, topology=topology,
                        net=net)
