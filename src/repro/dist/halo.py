"""Vector halo exchange (§4.1, Fig. 3b) with optional persistent requests.

A :class:`HaloExchange` is built once per matrix from the ranks' ``colmap``
arrays: rank *p* must receive the vector entries at global indices
``colmap_p`` from their owners, and symmetrically send its owned entries
that appear in other ranks' colmaps.  ``persistent=True`` freezes the
pattern into a :class:`repro.dist.comm.PersistentExchange` (§4.4); otherwise
every exchange logs the non-persistent per-message setup cost.

On a fault-injecting communicator (one exposing ``reliable_send``, i.e.
:class:`repro.faults.comm.FaultyComm`) every halo message instead goes
through the reliable protocol: sequence-numbered, acked, retransmitted with
exponential backoff when the fault plan drops or corrupts it, and raising
:class:`repro.faults.comm.CommFault` when the retry budget is exhausted.
On a plain ``SimComm`` this module's behavior is unchanged.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import VAL_BYTES, count
from .comm import PersistentExchange, SimComm
from .parcsr import ParCSRMatrix, ParVector

__all__ = ["HaloExchange", "build_halo"]


class HaloExchange:
    """Frozen halo-exchange pattern for one ParCSR matrix."""

    def __init__(self, comm: SimComm, A: ParCSRMatrix, *, persistent: bool) -> None:
        self.comm = comm
        self.persistent = persistent
        col_part = A.col_part
        self.col_part = col_part
        # For each receiving rank: the owners and per-owner index lists.
        self.recv_plan: list[list[tuple[int, np.ndarray]]] = []
        pattern: dict[tuple[int, int], int] = {}
        for p, blk in enumerate(A.blocks):
            owners = col_part.owner_of(blk.colmap)
            plan = []
            for q in np.unique(owners):
                ids = blk.colmap[owners == q]
                plan.append((int(q), col_part.to_local(ids, int(q))))
                pattern[(int(q), p)] = len(ids)
            self.recv_plan.append(plan)
        self.pattern = pattern
        self.total_elems = sum(pattern.values())
        self._persistent_req = (
            PersistentExchange(comm, pattern, bytes_per_elem=VAL_BYTES, tag="halo")
            if persistent
            else None
        )

    def __call__(self, x: ParVector) -> list[np.ndarray]:
        """Gather each rank's external entries; returns ``x_ext`` per rank.

        The returned array of rank *p* is indexed by the compressed offd
        column index (aligned with ``colmap``), as in Fig. 3(b).

        Multi-column payloads (parts of shape ``(n_p, k)``) exchange all *k*
        columns in **one** message per neighbor pair — the message count is
        unchanged and the logged bytes scale by *k*, which is exactly how a
        blocked halo exchange amortizes latency.
        """
        multi = x.parts[0].ndim == 2
        width = x.parts[0].shape[1] if multi else 1
        reliable = getattr(self.comm, "reliable_send", None)
        if reliable is not None:
            for (src, dst), n in self.pattern.items():
                if src != dst:
                    reliable(src, dst, n * width * VAL_BYTES, tag="halo",
                             persistent=self.persistent)
        elif self._persistent_req is not None:
            self._persistent_req.start(width=width)
        else:
            for (src, dst), n in self.pattern.items():
                self.comm.log_message(src, dst, n * width * VAL_BYTES, tag="halo")
        ext = []
        for p in range(self.comm.nranks):
            pieces = [x.parts[q][ids] for q, ids in self.recv_plan[p]]
            if pieces:
                ext.append(np.concatenate(pieces))
            else:
                ext.append(np.empty((0, width)) if multi else np.empty(0))
            # Sender-side pack + receiver-side unpack traffic.
            n = len(ext[-1])
            with self.comm.on_rank(p):
                count("halo.pack_unpack", bytes_read=n * width * VAL_BYTES,
                      bytes_written=n * width * VAL_BYTES)
        return ext


def build_halo(comm: SimComm, A: ParCSRMatrix, *, persistent: bool = True) -> HaloExchange:
    return HaloExchange(comm, A, persistent=persistent)
