"""Distributed interpolation construction (§4.1–§4.3).

Extended+i traverses *neighbours of neighbours*, so each rank must gather
the rows of ``A`` owned by other ranks that its strong fine neighbours live
in — a matrix-row halo exchange with the column-index renumbering of §4.2 —
before running the node-level kernel on the assembled local block
(:func:`repro.amg.interp_extended.extended_i_interpolation` with
``active_rows`` limiting construction to owned rows).

§4.3 — *filtered* transfers: of a shipped row ``k``, Eq. (1) can only ever
use entries whose column is a C point with sign opposite to ``a_kk``, the
diagonal itself, or entries pointing back into the requester's row range
(the ``abar_ki`` term) with opposite sign.  The filtered gather drops
everything else at the sender; the result is bit-identical (asserted in
tests) while the communication volume drops by >3x on the paper's inputs.

Multipass interpolation gathers *interpolation* rows instead (one
distributed SpGEMM per pass); the 2-stage extended+i composes two
distributed extended+i applications around a distributed RAP.
"""

from __future__ import annotations

import numpy as np

from ..amg.interp_direct import direct_interpolation
from ..amg.interp_extended import extended_i_interpolation
from ..amg.truncation import truncate_interpolation
from ..perf.counters import phase
from ..sparse.csr import CSRMatrix
from ..sparse.ops import segment_sum
from .comm import SimComm
from .halo import build_halo
from .parcsr import ParCSRMatrix, ParVector
from .partition import RowPartition
from .renumber import renumber_baseline, renumber_parallel
from .rowgather import gather_matrix_rows
from .spgemm import dist_rap, dist_spgemm

__all__ = [
    "coarse_numbering",
    "dist_extended_i",
    "dist_multipass",
    "dist_two_stage_ei",
    "par_truncate",
]

C_PT = 1


def coarse_numbering(
    comm: SimComm, cf_parts: list[np.ndarray]
) -> tuple[RowPartition, list[np.ndarray]]:
    """Global coarse ids: rank-major, ``offset_p + local C index``.

    Returns the coarse partition and per-rank arrays of length ``nloc``
    holding each point's coarse gid (-1 for F points).
    """
    ncs = np.array([(cf > 0).sum() for cf in cf_parts], dtype=np.int64)
    offsets = comm.scan_offsets(ncs)
    cgid_parts = []
    for p, cf in enumerate(cf_parts):
        g = np.full(len(cf), -1, dtype=np.int64)
        sel = cf > 0
        g[sel] = offsets[p] + np.arange(int(sel.sum()), dtype=np.int64)
        cgid_parts.append(g)
    return RowPartition.from_sizes(ncs), cgid_parts


def _exchange_point_info(comm, A, cf_parts, cgid_parts):
    """Halo-exchange cf markers and coarse gids over A's pattern."""
    halo = build_halo(comm, A, persistent=False)
    cf_ext = halo(ParVector([c.astype(np.float64) for c in cf_parts], A.row_part))
    cg_ext = halo(ParVector([g.astype(np.float64) for g in cgid_parts], A.row_part))
    return (
        [e.astype(np.int64) for e in cf_ext],
        [e.astype(np.int64) for e in cg_ext],
    )


def _strong_flags(A: ParCSRMatrix, S: ParCSRMatrix) -> list[np.ndarray]:
    """Per-rank per-entry strong flags in ``row_arrays_global`` order."""
    out = []
    for p in range(A.row_part.nranks):
        ra, ca, _ = A.blocks[p].row_arrays_global(A.col_part.lo(p))
        rs, cs, _ = S.blocks[p].row_arrays_global(S.col_part.lo(p))
        n_glob = A.col_part.n
        skeys = np.sort(rs.astype(np.int64) * n_glob + cs)
        akeys = ra.astype(np.int64) * n_glob + ca
        pos = np.searchsorted(skeys, akeys)
        pos = np.minimum(pos, max(len(skeys) - 1, 0))
        flags = (skeys[pos] == akeys) if len(skeys) else np.zeros(len(akeys), bool)
        out.append(flags.astype(np.float64))
    return out


def dist_extended_i(
    comm: SimComm,
    A: ParCSRMatrix,
    S: ParCSRMatrix,
    cf_parts: list[np.ndarray],
    *,
    trunc_fact: float = 0.1,
    max_elmts: int = 4,
    reordered: bool = True,
    fused_truncation: bool = True,
    filter_comm: bool = True,
    parallel_renumber: bool = True,
    nthreads: int = 14,
    truncate: bool = True,
) -> tuple[ParCSRMatrix, RowPartition]:
    """Distributed extended+i; returns ``(P, coarse_partition)``."""
    part = A.row_part
    nranks = comm.nranks
    coarse_part, cgid_parts = coarse_numbering(comm, cf_parts)
    cf_ext_A, cg_ext_A = _exchange_point_info(comm, A, cf_parts, cgid_parts)

    # ---- rows to gather: external strong F neighbours of local F rows ----
    needed: list[np.ndarray] = []
    for p in range(nranks):
        sblk = S.blocks[p]
        if sblk.offd.nnz:
            # cf of S's offd columns, via A's colmap-aligned exchange.
            pos = np.searchsorted(A.blocks[p].colmap, sblk.colmap)
            cf_scols = cf_ext_A[p][pos]
            f_rows = cf_parts[p][sblk.offd.row_ids()] <= 0
            sel = f_rows & (cf_scols[sblk.offd.indices] <= 0)
            needed.append(np.unique(sblk.colmap[sblk.offd.indices[sel]]))
        else:
            needed.append(np.empty(0, dtype=np.int64))

    # ---- owner-side payloads: strong flag, column cf, column coarse gid ----
    strong = _strong_flags(A, S)
    col_cf: list[np.ndarray] = []
    col_cg: list[np.ndarray] = []
    diag_vals: list[np.ndarray] = []
    for q in range(nranks):
        blk = A.blocks[q]
        dcols = blk.diag.indices
        ocols = blk.offd.indices
        col_cf.append(
            np.concatenate([cf_parts[q][dcols], cf_ext_A[q][ocols]]).astype(np.float64)
        )
        col_cg.append(
            np.concatenate([cgid_parts[q][dcols], cg_ext_A[q][ocols]]).astype(np.float64)
        )
        diag_vals.append(blk.diag.diagonal())

    if filter_comm:
        # §4.3: the sender keeps only entries Eq. (1) can use.
        def entry_filter(req_rank, row_gids, gcols, vals):
            q = int(A.row_part.owner_of(row_gids[:1])[0]) if len(row_gids) else 0
            d = diag_vals[q][row_gids - A.row_part.lo(q)]
            opposite = np.sign(vals) != np.sign(d)
            is_diag = gcols == row_gids
            # cf of the entry's column, via the owner's payload alignment:
            # recomputed from ownership (C-ness is what matters).
            lo_r, hi_r = part.lo(req_rank), part.hi(req_rank)
            back_ref = (gcols >= lo_r) & (gcols < hi_r)
            # C columns: owner's col_cf payload is aligned with its stored
            # entries, but here we only have the selected subset; reuse the
            # global rule: a column is C iff its owner's cf says so.  The
            # owner knows cf for all its stored columns, shipped in col_cf —
            # reconstructed per call from the same arrays.
            return is_diag | back_ref & opposite | (_col_is_c(q, row_gids, gcols) & opposite)

        # Helper: per-owner sorted (row, col) -> is-C lookup built once.
        _c_lookup = []
        for q in range(nranks):
            r, c, _ = A.blocks[q].row_arrays_global(A.col_part.lo(q))
            keys = r.astype(np.int64) * A.col_part.n + c
            order = np.argsort(keys)
            _c_lookup.append((keys[order], (col_cf[q][order] > 0)))

        def _col_is_c(q, row_gids, gcols):
            keys, isc = _c_lookup[q]
            if len(keys) == 0:
                return np.zeros(len(gcols), dtype=bool)
            qk = (row_gids - A.row_part.lo(q)).astype(np.int64) * A.col_part.n + gcols
            pos = np.minimum(np.searchsorted(keys, qk), len(keys) - 1)
            return (keys[pos] == qk) & isc[pos]
    else:
        entry_filter = None

    gathered = gather_matrix_rows(
        comm,
        A,
        needed,
        tag="interp",
        entry_filter=entry_filter,
        extra_payloads={"strong": strong, "cf": col_cf, "cg": col_cg},
        extra_bytes_per_entry=10.0,
    )

    triplets = []
    for p in range(nranks):
        blk = A.blocks[p]
        sblk = S.blocks[p]
        g = gathered[p]
        lo, hi = part.lo(p), part.hi(p)
        nloc = blk.nrows
        with comm.on_rank(p), phase("Interp"):
            # ---- §4.2 renumbering into the extended compact space ----
            owned = (g.gcols >= lo) & (g.gcols < hi)
            queries = g.gcols[~owned]
            ren = (
                renumber_parallel(blk.colmap, queries, nthreads=nthreads)
                if parallel_renumber
                else renumber_baseline(blk.colmap, queries)
            )
            colmap_ext = ren.colmap_new
            m = nloc + len(colmap_ext)

            def to_compact_local():
                # Local rows of A and S in the compact space.
                ra = np.concatenate([blk.diag.row_ids(), blk.offd.row_ids()])
                ca = np.concatenate([blk.diag.indices, nloc + blk.offd.indices])
                va = np.concatenate([blk.diag.data, blk.offd.data])
                s_off_pos = np.searchsorted(blk.colmap, sblk.colmap)
                rs = np.concatenate([sblk.diag.row_ids(), sblk.offd.row_ids()])
                cs = np.concatenate(
                    [sblk.diag.indices, nloc + s_off_pos[sblk.offd.indices]]
                )
                return ra, ca, va, rs, cs

            ra, ca, va, rs, cs = to_compact_local()

            # Gathered ext rows: row position = colmap slot of the row gid.
            g_row_pos = nloc + np.searchsorted(blk.colmap, g.row_gids)
            g_rows = np.repeat(g_row_pos, np.diff(g.indptr))
            g_cols = np.empty(g.nnz, dtype=np.int64)
            g_cols[owned] = g.gcols[owned] - lo
            g_cols[~owned] = nloc + ren.compressed

            A_c = CSRMatrix.from_coo(
                (m, m),
                np.concatenate([ra, g_rows]),
                np.concatenate([ca, g_cols]),
                np.concatenate([va, g.vals]),
            )
            gs = g.extra["strong"] > 0
            S_c = CSRMatrix.from_coo(
                (m, m),
                np.concatenate([rs, g_rows[gs]]),
                np.concatenate([cs, g_cols[gs]]),
                np.ones(len(rs) + int(gs.sum())),
            )

            # cf / coarse gids over the compact space.
            cf_c = np.full(m, -1, dtype=np.int64)
            cg_c = np.full(m, -1, dtype=np.int64)
            cf_c[:nloc] = cf_parts[p]
            cg_c[:nloc] = cgid_parts[p]
            ncol_old = len(blk.colmap)
            cf_c[nloc: nloc + ncol_old] = cf_ext_A[p]
            cg_c[nloc: nloc + ncol_old] = cg_ext_A[p]
            # Appended columns: scatter from the gathered payload.
            app = g_cols >= nloc + ncol_old
            if app.any():
                cf_c[g_cols[app]] = g.extra["cf"][app].astype(np.int64)
                cg_c[g_cols[app]] = g.extra["cg"][app].astype(np.int64)

            active = np.zeros(m, dtype=bool)
            active[:nloc] = True
            P_c = extended_i_interpolation(
                A_c, S_c, cf_c,
                trunc_fact=trunc_fact,
                max_elmts=max_elmts,
                reordered=reordered,
                fused_truncation=fused_truncation,
                truncate=truncate,
                active_rows=active,
            )
            # Compact coarse index -> global coarse id.
            c_compact = np.flatnonzero(cf_c > 0)
            gcols_P = cg_c[c_compact[P_c.indices]]
        triplets.append((P_c.row_ids(), gcols_P, P_c.data))

    P = ParCSRMatrix.from_rank_triplets(triplets, part, coarse_part)
    return P, coarse_part


# ---------------------------------------------------------------------------
# Multipass
# ---------------------------------------------------------------------------

def dist_multipass(
    comm: SimComm,
    A: ParCSRMatrix,
    S: ParCSRMatrix,
    cf_parts: list[np.ndarray],
    *,
    trunc_fact: float = 0.1,
    max_elmts: int = 4,
    parallel_renumber: bool = True,
    nthreads: int = 14,
    max_passes: int = 10,
) -> tuple[ParCSRMatrix, RowPartition]:
    """Distributed multipass interpolation; returns ``(P, coarse_part)``."""
    part = A.row_part
    nranks = comm.nranks
    coarse_part, cgid_parts = coarse_numbering(comm, cf_parts)
    cf_ext_A, cg_ext_A = _exchange_point_info(comm, A, cf_parts, cgid_parts)
    strong = _strong_flags(A, S)

    # ---- pass 1 per rank: direct interpolation (no row gathering) ----
    triplets = []
    done_parts = []
    for p in range(nranks):
        blk = A.blocks[p]
        sblk = S.blocks[p]
        nloc = blk.nrows
        ncol = len(blk.colmap)
        m = nloc + ncol
        with comm.on_rank(p), phase("Interp"):
            ra = np.concatenate([blk.diag.row_ids(), blk.offd.row_ids()])
            ca = np.concatenate([blk.diag.indices, nloc + blk.offd.indices])
            va = np.concatenate([blk.diag.data, blk.offd.data])
            A_c = CSRMatrix.from_coo((m, m), ra, ca, va)
            s_pos = np.searchsorted(blk.colmap, sblk.colmap)
            rs = np.concatenate([sblk.diag.row_ids(), sblk.offd.row_ids()])
            cs = np.concatenate([sblk.diag.indices, nloc + s_pos[sblk.offd.indices]])
            S_c = CSRMatrix.from_coo((m, m), rs, cs, np.ones(len(rs)))
            cf_c = np.concatenate([cf_parts[p], cf_ext_A[p]])
            cg_c = np.concatenate([cgid_parts[p], cg_ext_A[p]])

            # Local F rows with a strong C neighbour.
            has_c = segment_sum(
                (cf_c[cs] > 0).astype(np.float64), rs, nloc
            ) > 0
            p1_rows = np.flatnonzero((cf_parts[p] <= 0) & has_c)
            Pd = direct_interpolation(A_c, S_c, cf_c, rows=p1_rows)
            c_compact = np.flatnonzero(cf_c > 0)
            rows_P = Pd.row_ids()
            keep = rows_P < nloc
            gcols_P = cg_c[c_compact[Pd.indices[keep]]]
        triplets.append((rows_P[keep], gcols_P, Pd.data[keep]))
        done = (cf_parts[p] > 0).copy()
        done[p1_rows] = True
        done_parts.append(done)

    P = ParCSRMatrix.from_rank_triplets(triplets, part, coarse_part)

    # Per-row normalization data (local).
    sum_all_parts = []
    for p in range(nranks):
        blk = A.blocks[p]
        nloc = blk.nrows
        d_rid = blk.diag.row_ids()
        od = blk.diag.indices != d_rid
        s = segment_sum(np.where(od, blk.diag.data, 0.0), d_rid, nloc)
        if blk.offd.nnz:
            s += segment_sum(blk.offd.data, blk.offd.row_ids(), nloc)
        sum_all_parts.append(s)

    halo_A = build_halo(comm, A, persistent=False)
    npass = 1
    while npass < max_passes:
        remaining = comm.allreduce(
            [float((~d).sum()) for d in done_parts], kind="mp.remaining"
        )
        if remaining == 0:
            break
        npass += 1
        done_ext = halo_A(ParVector([d.astype(np.float64) for d in done_parts], part))

        # Build W: rows = still-todo local rows, entries a_ij over strong
        # *done* neighbours j (local or external).
        w_triplets = []
        work_rows = []
        for p in range(nranks):
            blk = A.blocks[p]
            sblk = S.blocks[p]
            nloc = blk.nrows
            with comm.on_rank(p), phase("Interp"):
                lo = part.lo(p)
                # strong mask aligned with row_arrays_global order
                st = strong[p] > 0
                r, c, v = blk.row_arrays_global(A.col_part.lo(p))
                col_owned = (c >= lo) & (c < part.hi(p))
                col_done = np.zeros(len(c), dtype=bool)
                col_done[col_owned] = done_parts[p][c[col_owned] - lo]
                if (~col_owned).any():
                    pos = np.searchsorted(blk.colmap, c[~col_owned])
                    col_done[~col_owned] = done_ext[p][pos] > 0
                todo = ~done_parts[p]
                sel = st & col_done & todo[r] & (c != r + lo)
                rows_ready = segment_sum(sel.astype(np.float64), r, nloc) > 0
                work = todo & rows_ready
                sel &= work[r]
                w_triplets.append((r[sel], c[sel], v[sel]))
                work_rows.append(np.flatnonzero(work))
        if not any(len(w[0]) for w in w_triplets):
            break
        W = ParCSRMatrix.from_rank_triplets(w_triplets, part, part)
        contrib = dist_spgemm(
            comm, W, P,
            parallel_renumber=parallel_renumber,
            nthreads=nthreads,
            tag="interp.mp",
        )
        # Scale and merge the new rows.
        new_triplets = []
        for p in range(nranks):
            blk = A.blocks[p]
            nloc = blk.nrows
            with comm.on_rank(p), phase("Interp"):
                wr, wc, wv = w_triplets[p]
                sum_used = segment_sum(wv, wr, nloc)
                diag = blk.diag.diagonal()
                safe = np.abs(sum_used) > 1e-300
                alpha = np.where(
                    safe, sum_all_parts[p] / np.where(safe, sum_used, 1.0), 0.0
                )
                scale = -(alpha / np.where(np.abs(diag) > 1e-300, diag, 1.0))
                cb = contrib.blocks[p]
                rr, cc2, vv = cb.row_arrays_global(contrib.col_part.lo(p))
                vv = vv * scale[rr]
                pb = P.blocks[p]
                pr, pc, pv = pb.row_arrays_global(P.col_part.lo(p))
                new_triplets.append(
                    (
                        np.concatenate([pr, rr]),
                        np.concatenate([pc, cc2]),
                        np.concatenate([pv, vv]),
                    )
                )
            done_parts[p][work_rows[p]] = True
        P = ParCSRMatrix.from_rank_triplets(new_triplets, part, coarse_part)

    return par_truncate(comm, P, trunc_fact, max_elmts), coarse_part


def dist_two_stage_ei(
    comm: SimComm,
    A: ParCSRMatrix,
    S: ParCSRMatrix,
    cf_final: list[np.ndarray],
    cf_stage1: list[np.ndarray],
    *,
    theta: float = 0.25,
    max_row_sum: float = 1.0,
    trunc_fact: float = 0.1,
    max_elmts: int = 4,
    filter_comm: bool = True,
    parallel_renumber: bool = True,
    nthreads: int = 14,
    reordered: bool = True,
) -> tuple[ParCSRMatrix, RowPartition]:
    """Distributed 2-stage extended+i; returns ``(P, coarse_part)``."""
    from .strength import dist_strength

    P1, cp1 = dist_extended_i(
        comm, A, S, cf_stage1,
        trunc_fact=trunc_fact, max_elmts=max_elmts,
        filter_comm=filter_comm, parallel_renumber=parallel_renumber,
        nthreads=nthreads, reordered=reordered,
    )
    A1, _ = dist_rap(
        comm, A, P1,
        parallel_renumber=parallel_renumber, nthreads=nthreads,
    )
    S1 = dist_strength(comm, A1, theta, max_row_sum)
    cf2 = [
        np.where(cf_final[p][cf_stage1[p] > 0] > 0, 1, -1).astype(np.int64)
        for p in range(comm.nranks)
    ]
    P2, cp2 = dist_extended_i(
        comm, A1, S1, cf2,
        trunc_fact=trunc_fact, max_elmts=max_elmts,
        filter_comm=filter_comm, parallel_renumber=parallel_renumber,
        nthreads=nthreads, reordered=reordered,
    )
    P = dist_spgemm(
        comm, P1, P2,
        parallel_renumber=parallel_renumber, nthreads=nthreads,
        tag="interp.2s",
    )
    return par_truncate(comm, P, trunc_fact, max_elmts), cp2


def par_truncate(
    comm: SimComm, P: ParCSRMatrix, trunc_fact: float, max_elmts: int
) -> ParCSRMatrix:
    """Row-wise interpolation truncation applied per rank (rows are local)."""
    triplets = []
    for p in range(comm.nranks):
        blk = P.blocks[p]
        r, c, v = blk.row_arrays_global(P.col_part.lo(p))
        local = CSRMatrix.from_coo((blk.nrows, P.col_part.n), r, c, v)
        with comm.on_rank(p), phase("Interp"):
            t = truncate_interpolation(local, trunc_fact, max_elmts)
        triplets.append((t.row_ids(), t.indices, t.data))
    return ParCSRMatrix.from_rank_triplets(triplets, P.row_part, P.col_part)
