"""Distributed preconditioned conjugate gradients.

Companion of :func:`repro.dist.solver.dist_fgmres` for SPD systems: fewer
collectives per iteration (two dots + a norm vs. the Arnoldi sweep), which
matters when allreduce latency dominates at scale (§5.4).

Guarded like the other solvers: non-positive curvature (CG breakdown) and
NaN/Inf residuals terminate with a recorded verdict, and an unrecoverable
:class:`~repro.faults.comm.CommFault` on a fault-injecting communicator
returns the best iterate so far (``degraded=True``) instead of propagating.
"""

from __future__ import annotations

import numpy as np

from ..faults.guards import ResidualGuard
from ..faults.plan import FaultEvent
from ..perf.counters import VAL_BYTES, count, phase
from ..results import resolve_maxiter
from .comm import SimComm
from .halo import build_halo
from .parcsr import ParCSRMatrix, ParVector
from .solver import DistSolveResult, par_axpy, par_dot, par_norm2
from .spmv import dist_spmv

__all__ = ["dist_pcg"]


def dist_pcg(
    comm: SimComm,
    A: ParCSRMatrix,
    b: ParVector,
    *,
    precondition=None,
    halo=None,
    tol: float = 1e-7,
    maxiter: int | None = None,
    max_iter: int | None = None,
) -> DistSolveResult:
    """Distributed PCG for SPD ParCSR systems."""
    from ..faults.comm import CommFault

    max_iter = resolve_maxiter(maxiter, max_iter, 1000)
    if halo is None:
        halo = build_halo(comm, A, persistent=True)
    M = precondition if precondition is not None else (lambda v: v.copy())

    faulty = comm.supports_fault_injection
    events_start = len(comm.events) if faulty else 0
    solver_events: list[FaultEvent] = []

    def result(x, it, residuals, converged, *, degraded=False, reason=None):
        comm_events = list(comm.events[events_start:]) if faulty else []
        return DistSolveResult(x, it, residuals, converged, degraded=degraded,
                               degraded_reason=reason,
                               fault_events=comm_events + solver_events)

    x = ParVector.zeros(b.part)
    try:
        r = b.copy()
        z = M(r)
        p = z.copy()
        rz = par_dot(comm, r, z)
        r0 = par_norm2(comm, r)
    except CommFault as exc:
        solver_events.append(FaultEvent("comm_abort", detail=str(exc)))
        return result(x, 0, [], False, degraded=True, reason=str(exc))
    residuals = [r0]
    if r0 == 0.0:
        return result(x, 0, residuals, True)
    if not np.isfinite(r0):
        solver_events.append(FaultEvent("nonfinite", detail="initial residual"))
        return result(x, 0, residuals, False, degraded=True,
                      reason="nonfinite initial residual")
    guard = ResidualGuard(r0, stagnation=False)

    it = 0
    try:
        for it in range(1, max_iter + 1):
            with phase("SpMV"):
                Ap = dist_spmv(comm, A, p, halo, kernel="spmv.krylov")
            with phase("BLAS1"):
                pAp = par_dot(comm, p, Ap)
            if pAp <= 0.0 or not np.isfinite(pAp):
                solver_events.append(FaultEvent(
                    "breakdown", detail=f"non-positive curvature p'Ap={pAp:g} "
                                        f"at iteration {it}"))
                return result(x, it - 1, residuals, False, degraded=True,
                              reason="CG breakdown (non-positive curvature)")
            alpha = rz / pAp
            with phase("BLAS1"):
                par_axpy(comm, alpha, p, x)
                par_axpy(comm, -alpha, Ap, r)
                rn = par_norm2(comm, r)
            residuals.append(rn)
            if rn <= tol * r0:
                return result(x, it, residuals, True)
            verdict = guard.check(rn)
            if verdict is not None:
                solver_events.append(FaultEvent(verdict, detail=f"iter {it}"))
                return result(x, it, residuals, False, degraded=True,
                              reason=f"{verdict} at iteration {it}")
            z = M(r)
            with phase("BLAS1"):
                rz_new = par_dot(comm, r, z)
            beta = rz_new / rz
            rz = rz_new
            for q in range(comm.nranks):
                with comm.on_rank(q):
                    n = len(p.parts[q])
                    p.parts[q] = z.parts[q] + beta * p.parts[q]
                    count("blas1.waxpby", flops=2 * n,
                          bytes_read=2 * n * VAL_BYTES,
                          bytes_written=n * VAL_BYTES)
    except CommFault as exc:
        solver_events.append(FaultEvent("comm_abort", detail=str(exc)))
        return result(x, it, residuals, False, degraded=True, reason=str(exc))
    return result(x, len(residuals) - 1, residuals, False)
