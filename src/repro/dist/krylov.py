"""Distributed preconditioned conjugate gradients.

Companion of :func:`repro.dist.solver.dist_fgmres` for SPD systems: fewer
collectives per iteration (two dots + a norm vs. the Arnoldi sweep), which
matters when allreduce latency dominates at scale (§5.4).
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import VAL_BYTES, count, phase
from .comm import SimComm
from .halo import build_halo
from .parcsr import ParCSRMatrix, ParVector
from .solver import DistSolveResult, par_axpy, par_dot, par_norm2
from .spmv import dist_spmv

__all__ = ["dist_pcg"]


def dist_pcg(
    comm: SimComm,
    A: ParCSRMatrix,
    b: ParVector,
    *,
    precondition=None,
    halo=None,
    tol: float = 1e-7,
    max_iter: int = 1000,
) -> DistSolveResult:
    """Distributed PCG for SPD ParCSR systems."""
    if halo is None:
        halo = build_halo(comm, A, persistent=True)
    M = precondition if precondition is not None else (lambda v: v.copy())

    x = ParVector.zeros(b.part)
    r = b.copy()
    z = M(r)
    p = z.copy()
    rz = par_dot(comm, r, z)
    r0 = par_norm2(comm, r)
    residuals = [r0]
    if r0 == 0.0:
        return DistSolveResult(x, 0, residuals, True)

    for it in range(1, max_iter + 1):
        with phase("SpMV"):
            Ap = dist_spmv(comm, A, p, halo, kernel="spmv.krylov")
        with phase("BLAS1"):
            pAp = par_dot(comm, p, Ap)
        if pAp == 0.0:
            break
        alpha = rz / pAp
        with phase("BLAS1"):
            par_axpy(comm, alpha, p, x)
            par_axpy(comm, -alpha, Ap, r)
            rn = par_norm2(comm, r)
        residuals.append(rn)
        if rn <= tol * r0:
            return DistSolveResult(x, it, residuals, True)
        z = M(r)
        with phase("BLAS1"):
            rz_new = par_dot(comm, r, z)
        beta = rz_new / rz
        rz = rz_new
        for q in range(comm.nranks):
            with comm.on_rank(q):
                n = len(p.parts[q])
                p.parts[q] = z.parts[q] + beta * p.parts[q]
                count("blas1.waxpby", flops=2 * n,
                      bytes_read=2 * n * VAL_BYTES, bytes_written=n * VAL_BYTES)
    return DistSolveResult(x, len(residuals) - 1, residuals, False)
