"""The ParCSR distributed matrix format (§4.1, Fig. 3a) and ParVector.

Rank *p* stores its row range as two local CSR matrices: the block-diagonal
part ``diag`` (columns inside the rank's *column* range, locally indexed)
and the off-diagonal part ``offd`` whose column indices are *compressed*:
``colmap[c]`` maps compressed column *c* back to its global index, so
gathered external vector entries land in a contiguous buffer that ``offd``
indexes directly (Fig. 3b).

Rectangular operators (interpolation!) carry separate row and column
partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CSRMatrix
from .partition import RowPartition

__all__ = ["RankBlock", "ParCSRMatrix", "ParVector"]


@dataclass
class RankBlock:
    """One rank's portion of a ParCSR matrix."""

    diag: CSRMatrix
    offd: CSRMatrix
    colmap: np.ndarray  # global column ids of compressed offd columns (sorted)

    @property
    def nrows(self) -> int:
        return self.diag.nrows

    @property
    def nnz(self) -> int:
        return self.diag.nnz + self.offd.nnz

    def row_arrays_global(self, col_lo: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All entries as ``(local_row, global_col, value)`` triplets."""
        rows = np.concatenate([self.diag.row_ids(), self.offd.row_ids()])
        cols = np.concatenate(
            [self.diag.indices + col_lo, self.colmap[self.offd.indices]]
        )
        vals = np.concatenate([self.diag.data, self.offd.data])
        return rows, cols, vals


def _split_rows(
    local_rows: np.ndarray,
    global_cols: np.ndarray,
    vals: np.ndarray,
    nrows: int,
    col_part: RowPartition,
    rank: int,
) -> RankBlock:
    """Build a RankBlock from (local row, global col, value) triplets."""
    lo, hi = col_part.lo(rank), col_part.hi(rank)
    nloc = hi - lo
    in_diag = (global_cols >= lo) & (global_cols < hi)

    diag = CSRMatrix.from_coo(
        (nrows, nloc), local_rows[in_diag], global_cols[in_diag] - lo, vals[in_diag]
    )
    ext_cols = global_cols[~in_diag]
    colmap = np.unique(ext_cols)
    comp = np.searchsorted(colmap, ext_cols)
    offd = CSRMatrix.from_coo(
        (nrows, len(colmap)), local_rows[~in_diag], comp, vals[~in_diag]
    )
    return RankBlock(diag=diag, offd=offd, colmap=colmap)


class ParCSRMatrix:
    """A distributed CSR matrix over a :class:`SimComm`'s rank count."""

    def __init__(
        self,
        blocks: list[RankBlock],
        row_part: RowPartition,
        col_part: RowPartition | None = None,
    ) -> None:
        self.blocks = blocks
        self.row_part = row_part
        self.col_part = col_part if col_part is not None else row_part
        for p, blk in enumerate(blocks):
            if blk.nrows != row_part.size(p):
                raise ValueError(f"rank {p}: block has {blk.nrows} rows, "
                                 f"partition says {row_part.size(p)}")

    # -- properties -------------------------------------------------------
    @property
    def nranks(self) -> int:
        return self.row_part.nranks

    @property
    def shape(self) -> tuple[int, int]:
        return (self.row_part.n, self.col_part.n)

    @property
    def nnz(self) -> int:
        return sum(b.nnz for b in self.blocks)

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_global(
        cls,
        A: CSRMatrix,
        row_part: RowPartition,
        col_part: RowPartition | None = None,
    ) -> "ParCSRMatrix":
        col_part = col_part if col_part is not None else row_part
        if A.nrows != row_part.n or A.ncols != col_part.n:
            raise ValueError("partition does not match matrix shape")
        blocks = []
        for p in range(row_part.nranks):
            rows = row_part.range(p)
            local, cols, vals = A.row_slice_arrays(rows)
            blocks.append(
                _split_rows(local, cols, vals, len(rows), col_part, p)
            )
        return cls(blocks, row_part, col_part)

    @classmethod
    def from_rank_triplets(
        cls,
        triplets: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
        row_part: RowPartition,
        col_part: RowPartition,
    ) -> "ParCSRMatrix":
        """Assemble from per-rank ``(local_row, global_col, value)`` arrays."""
        blocks = [
            _split_rows(r, c, v, row_part.size(p), col_part, p)
            for p, (r, c, v) in enumerate(triplets)
        ]
        return cls(blocks, row_part, col_part)

    # -- conversion ---------------------------------------------------------
    def to_global(self) -> CSRMatrix:
        """Reassemble the full matrix (tests / small problems only)."""
        rows, cols, vals = [], [], []
        for p, blk in enumerate(self.blocks):
            r, c, v = blk.row_arrays_global(self.col_part.lo(p))
            rows.append(r + self.row_part.lo(p))
            cols.append(c)
            vals.append(v)
        return CSRMatrix.from_coo(
            self.shape,
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
        )

    def __repr__(self) -> str:
        return (
            f"ParCSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"nranks={self.nranks})"
        )


class ParVector:
    """A distributed vector partitioned like the rows of a ParCSR matrix."""

    def __init__(self, parts: list[np.ndarray], part: RowPartition) -> None:
        self.parts = [np.asarray(p, dtype=np.float64) for p in parts]
        self.part = part
        for p, arr in enumerate(self.parts):
            if len(arr) != part.size(p):
                raise ValueError("vector part size mismatch")

    @classmethod
    def from_global(cls, x: np.ndarray, part: RowPartition) -> "ParVector":
        x = np.asarray(x, dtype=np.float64)
        return cls([x[part.lo(p): part.hi(p)].copy() for p in range(part.nranks)], part)

    @classmethod
    def zeros(cls, part: RowPartition, ncols: int | None = None) -> "ParVector":
        """All-zero vector; ``ncols`` makes each part an ``(n_p, ncols)``
        multi-column block (the distributed multi-RHS payload)."""
        if ncols is None:
            return cls([np.zeros(part.size(p)) for p in range(part.nranks)], part)
        return cls([np.zeros((part.size(p), ncols)) for p in range(part.nranks)], part)

    def to_global(self) -> np.ndarray:
        return np.concatenate(self.parts) if self.parts else np.empty(0)

    def copy(self) -> "ParVector":
        return ParVector([p.copy() for p in self.parts], self.part)

    def __len__(self) -> int:
        return self.part.n
