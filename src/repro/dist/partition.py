"""Row-range partitioning of distributed matrices/vectors (§4.1).

HYPRE partitions a distributed matrix by contiguous row ranges; rank *p*
owns global rows ``[bounds[p], bounds[p+1])``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RowPartition"]


@dataclass(frozen=True)
class RowPartition:
    """Contiguous row-range partition over ``nranks`` ranks."""

    bounds: np.ndarray  # int64, length nranks + 1, bounds[0]=0

    def __post_init__(self):
        b = np.asarray(self.bounds, dtype=np.int64)
        object.__setattr__(self, "bounds", b)
        if b[0] != 0 or np.any(np.diff(b) < 0):
            raise ValueError("invalid partition bounds")

    @classmethod
    def uniform(cls, n: int, nranks: int) -> "RowPartition":
        return cls(np.linspace(0, n, nranks + 1).astype(np.int64))

    @classmethod
    def from_sizes(cls, sizes) -> "RowPartition":
        sizes = np.asarray(sizes, dtype=np.int64)
        bounds = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=bounds[1:])
        return cls(bounds)

    @property
    def nranks(self) -> int:
        return len(self.bounds) - 1

    @property
    def n(self) -> int:
        return int(self.bounds[-1])

    def size(self, rank: int) -> int:
        return int(self.bounds[rank + 1] - self.bounds[rank])

    def lo(self, rank: int) -> int:
        return int(self.bounds[rank])

    def hi(self, rank: int) -> int:
        return int(self.bounds[rank + 1])

    def range(self, rank: int) -> np.ndarray:
        return np.arange(self.lo(rank), self.hi(rank), dtype=np.int64)

    def owner_of(self, global_ids: np.ndarray) -> np.ndarray:
        """Owning rank of each global index (vectorized)."""
        return (
            np.searchsorted(self.bounds, np.asarray(global_ids, dtype=np.int64),
                            side="right")
            - 1
        ).astype(np.int64)

    def to_local(self, global_ids: np.ndarray, rank: int) -> np.ndarray:
        return np.asarray(global_ids, dtype=np.int64) - self.lo(rank)

    def owns(self, global_ids: np.ndarray, rank: int) -> np.ndarray:
        g = np.asarray(global_ids, dtype=np.int64)
        return (g >= self.lo(rank)) & (g < self.hi(rank))
