"""Distributed PMIS coarsening (§2, §4).

The same round structure as the node-level kernel
(:func:`repro.amg.pmis.pmis`), executed per rank with halo exchanges of the
boundary measures and states each round — the communication pattern the real
BoomerAMG PMIS performs.  Given the same measure vector, the distributed
result equals the sequential result point for point (asserted in the tests).

Aggressive coarsening runs a second PMIS over the distance-<=2 strong graph
restricted to first-pass C points, with the candidate mask freezing
everything else.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import IDX_BYTES, PTR_BYTES, count
from .comm import SimComm
from .halo import build_halo
from .parcsr import ParCSRMatrix, ParVector
from .spgemm import dist_spgemm
from .transpose import dist_transpose

__all__ = ["dist_pmis", "dist_aggressive_pmis", "dist_random_measures"]

C_PT = 1
F_PT = -1


def dist_random_measures(comm: SimComm, part, seed: int) -> list[np.ndarray]:
    """Per-rank random measure fractions (independent spawned streams —
    the parallel-RNG behaviour of the optimized code, §3.3)."""
    children = np.random.SeedSequence(seed).spawn(comm.nranks)
    return [
        np.random.default_rng(children[p]).random(part.size(p))
        for p in range(comm.nranks)
    ]


def _union_adjacency(comm: SimComm, S: ParCSRMatrix) -> ParCSRMatrix:
    """Pattern of ``S + S^T`` as a ParCSR matrix (unit values)."""
    St = dist_transpose(comm, S, tag="pmis.transpose")
    triplets = []
    for p in range(comm.nranks):
        r1, c1, _ = S.blocks[p].row_arrays_global(S.col_part.lo(p))
        r2, c2, _ = St.blocks[p].row_arrays_global(St.col_part.lo(p))
        rows = np.concatenate([r1, r2])
        cols = np.concatenate([c1, c2])
        triplets.append((rows, cols, np.ones(len(rows))))
    return ParCSRMatrix.from_rank_triplets(triplets, S.row_part, S.col_part)


def dist_pmis(
    comm: SimComm,
    S: ParCSRMatrix,
    *,
    seed: int = 0,
    measures: list[np.ndarray] | None = None,
    candidates: list[np.ndarray] | None = None,
) -> list[np.ndarray]:
    """PMIS CF splitting; returns per-rank cf-marker arrays.

    ``measures`` overrides the random fractions (used by tests for
    dist-vs-sequential equality); ``candidates`` (bool per rank) freezes
    non-candidate points as F immediately (aggressive second pass).
    """
    part = S.row_part
    St = dist_transpose(comm, S, tag="pmis.transpose")
    adj = _union_adjacency(comm, S)
    halo = build_halo(comm, adj, persistent=True)

    frac = measures if measures is not None else dist_random_measures(comm, part, seed)
    measure_parts = []
    state_parts = []
    for p in range(comm.nranks):
        infl = St.blocks[p].diag.row_nnz() + St.blocks[p].offd.row_nnz()
        m = infl.astype(np.float64) + frac[p]
        measure_parts.append(m)
        st = np.zeros(part.size(p), dtype=np.float64)
        st[infl < 1] = F_PT
        if candidates is not None:
            st[~candidates[p]] = F_PT
        state_parts.append(st)

    measure = ParVector(measure_parts, part)

    while True:
        undecided_count = comm.allreduce(
            [float((s == 0).sum()) for s in state_parts], kind="pmis.count"
        )
        if undecided_count == 0:
            break
        # Exchange the "undecided measure" boundary values.
        u_parts = [
            np.where(state_parts[p] == 0, measure_parts[p], -np.inf)
            for p in range(comm.nranks)
        ]
        u_ext = halo(ParVector(u_parts, part))

        new_c_parts = []
        for p in range(comm.nranks):
            blk = adj.blocks[p]
            nloc = blk.nrows
            with comm.on_rank(p):
                nbr_max = np.full(nloc, -np.inf)
                d_rid = blk.diag.row_ids()
                np.maximum.at(nbr_max, d_rid, u_parts[p][blk.diag.indices])
                if blk.offd.nnz:
                    o_rid = blk.offd.row_ids()
                    np.maximum.at(nbr_max, o_rid, u_ext[p][blk.offd.indices])
                und = state_parts[p] == 0
                winners = und & (measure_parts[p] > nbr_max)
                count(
                    "pmis.round",
                    bytes_read=blk.nnz * IDX_BYTES + nloc * (IDX_BYTES + PTR_BYTES),
                    branches=float(und.sum()),
                )
            state_parts[p][winners] = C_PT
            new_c_parts.append(winners)

        # Exchange updated states; undecided neighbours of C points in the
        # symmetrized strong graph become F (independence even under
        # asymmetric strength).
        st_ext = halo(ParVector(state_parts, part))
        for p in range(comm.nranks):
            blk = adj.blocks[p]
            nloc = blk.nrows
            adj_c = np.zeros(nloc, dtype=bool)
            d_rid = blk.diag.row_ids()
            adj_c |= (
                np.bincount(
                    d_rid,
                    weights=(state_parts[p][blk.diag.indices] == C_PT).astype(float),
                    minlength=nloc,
                )
                > 0
            )
            if blk.offd.nnz:
                o_rid = blk.offd.row_ids()
                adj_c |= (
                    np.bincount(
                        o_rid,
                        weights=(st_ext[p][blk.offd.indices] == C_PT).astype(float),
                        minlength=nloc,
                    )
                    > 0
                )
            sel = (state_parts[p] == 0) & adj_c
            state_parts[p][sel] = F_PT

    return [s.astype(np.int64) for s in state_parts]


def dist_aggressive_pmis(
    comm: SimComm,
    S: ParCSRMatrix,
    *,
    seed: int = 0,
    measures: list[np.ndarray] | None = None,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Two-pass aggressive coarsening; returns ``(cf_final, cf_stage1)``."""
    cf1 = dist_pmis(comm, S, seed=seed, measures=measures)

    # Distance-<=2 strong graph restricted to stage-1 C points.
    S2 = dist_spgemm(comm, S, S, tag="pmis.dist2")
    cf_vec = ParVector([c.astype(np.float64) for c in cf1], S.row_part)
    triplets = []
    for p in range(comm.nranks):
        pieces_r, pieces_c = [], []
        for M in (S.blocks[p], S2.blocks[p]):
            r, c, _ = M.row_arrays_global(S.col_part.lo(p))
            pieces_r.append(r)
            pieces_c.append(c)
        rows = np.concatenate(pieces_r)
        cols = np.concatenate(pieces_c)
        grows = rows + S.row_part.lo(p)
        keep = (cf1[p][rows] == C_PT) & (grows != cols)
        triplets.append((rows[keep], cols[keep], np.ones(int(keep.sum()))))
    Sc_all = ParCSRMatrix.from_rank_triplets(triplets, S.row_part, S.col_part)
    # Drop columns that are not C points: exchange cf and filter.
    halo = build_halo(comm, Sc_all, persistent=False)
    cf_ext = halo(cf_vec)
    triplets2 = []
    for p in range(comm.nranks):
        blk = Sc_all.blocks[p]
        lo = S.col_part.lo(p)
        d_keep = cf1[p][blk.diag.indices] == C_PT
        o_keep = (
            cf_ext[p][blk.offd.indices] == C_PT
            if blk.offd.nnz
            else np.zeros(0, dtype=bool)
        )
        rows = np.concatenate([blk.diag.row_ids()[d_keep], blk.offd.row_ids()[o_keep]])
        cols = np.concatenate(
            [blk.diag.indices[d_keep] + lo, blk.colmap[blk.offd.indices[o_keep]]]
        )
        triplets2.append((rows, cols, np.ones(len(rows))))
    Sc = ParCSRMatrix.from_rank_triplets(triplets2, S.row_part, S.col_part)

    cand = [c == C_PT for c in cf1]
    cf2 = dist_pmis(comm, Sc, seed=seed + 1, candidates=cand, measures=measures)
    cf_final = [
        np.where((cf1[p] == C_PT) & (cf2[p] == C_PT), C_PT, F_PT).astype(np.int64)
        for p in range(comm.nranks)
    ]
    return cf_final, cf1
