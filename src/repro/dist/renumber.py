"""Column-index renumbering for gathered matrix rows (§4.2, Fig. 4).

When rank *p* gathers external matrix rows (for SpGEMM-like operations),
the received rows contain global column indices that may not yet exist in
``B_p``'s ``colmap`` and must be assigned new compressed local indices — a
sort-with-duplicate-elimination problem that the paper identifies as a
major multi-node setup bottleneck.

Two implementations, identical results:

* :func:`renumber_baseline` — the serial ordered-set insertion of the
  baseline HYPRE: every new column probes and possibly rebalances an
  ordered set.  Counted as serial work with one data-dependent branch per
  probed index and ``O(log)`` compare chains.
* :func:`renumber_parallel` — Fig. 4: each thread filters its chunk of the
  index stream through a thread-private hash table (duplicates collapse
  without synchronization thanks to the locality of adjacent rows), the
  per-thread survivor sets are merged by a duplicate-eliminating parallel
  merge sort, and lookups go through a range-partitioned reverse hash map
  (``O(log t)`` per lookup instead of ``O(log n)``).

Both return the extended colmap and the compressed indices of the queried
columns in the extended local space: owned columns map to
``[0, nloc)``-style diag indices separately (callers handle the diag/offd
split); here *every* queried global column gets an index into
``old_colmap ++ appended``.
"""

from __future__ import annotations

import math

import numpy as np

from ..perf.counters import IDX_BYTES, count

__all__ = ["renumber_baseline", "renumber_parallel", "RenumberResult"]

from dataclasses import dataclass


@dataclass
class RenumberResult:
    """Extended colmap and per-query compressed indices.

    ``compressed[t]`` indexes ``colmap_new`` for query *t* (queries that hit
    owned columns are the caller's business and must be excluded upfront).
    """

    colmap_new: np.ndarray
    compressed: np.ndarray
    n_appended: int


def _finish(old_colmap: np.ndarray, queries: np.ndarray) -> RenumberResult:
    """Shared result construction (the algorithms differ in counted work).

    New columns are appended after the existing colmap, sorted among
    themselves (Fig. 3c appends and assigns the next local indices).
    """
    in_old = np.isin(queries, old_colmap)
    new_sorted = np.unique(queries[~in_old])
    colmap_new = np.concatenate([old_colmap, new_sorted])
    compressed = np.empty(len(queries), dtype=np.int64)
    if len(old_colmap):
        pos_old = np.searchsorted(old_colmap, queries[in_old])
        compressed[in_old] = pos_old
    compressed[~in_old] = len(old_colmap) + np.searchsorted(
        new_sorted, queries[~in_old]
    )
    return RenumberResult(colmap_new, compressed, len(new_sorted))


def renumber_baseline(
    old_colmap: np.ndarray, queries: np.ndarray, *, owned_mask: np.ndarray | None = None
) -> RenumberResult:
    """Serial ordered-set renumbering (baseline HYPRE accounting)."""
    queries = np.asarray(queries, dtype=np.int64)
    res = _finish(np.asarray(old_colmap, dtype=np.int64), queries)
    n = len(queries)
    logn = math.log2(max(len(res.colmap_new), 2))
    count(
        "renumber.baseline",
        bytes_read=n * IDX_BYTES * logn,  # ordered-set probe chain
        bytes_written=res.n_appended * IDX_BYTES * logn,
        branches=float(n * logn),
        parallel=False,
    )
    return res


def renumber_parallel(
    old_colmap: np.ndarray,
    queries: np.ndarray,
    *,
    nthreads: int = 14,
) -> RenumberResult:
    """Fig. 4 parallel renumbering.

    The execution path really performs the three stages (per-chunk
    dedup -> merge -> partitioned reverse-map lookup); the counted work is
    thread-parallel with ``O(1)`` hash probes plus the ``O(log t)`` range
    search per lookup.
    """
    queries = np.asarray(queries, dtype=np.int64)
    old_colmap = np.asarray(old_colmap, dtype=np.int64)
    n = len(queries)

    # Stage 1: thread-private hash filters (per-chunk dedup), vectorized as
    # one lexsort over (chunk id, query) with a first-occurrence mask —
    # identical survivor multiset to per-chunk np.unique without a Python
    # loop over threads.
    t = max(nthreads, 1)
    if n:
        # np.array_split boundaries: the first n % t chunks get one extra.
        size, extra = divmod(n, t)
        sizes = np.full(t, size, dtype=np.int64)
        sizes[:extra] += 1
        chunk_of = np.repeat(np.arange(t, dtype=np.int64), sizes)
        order = np.lexsort((queries, chunk_of))
        qs, cs = queries[order], chunk_of[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = (qs[1:] != qs[:-1]) | (cs[1:] != cs[:-1])
        survivors_flat = qs[first]
    else:
        survivors_flat = queries
    # Stage 2: duplicate-eliminating parallel merge.
    merged = np.unique(survivors_flat)
    # Stage 3: partitioned reverse map (executed via the shared helper —
    # results are identical; the stages above establish the counted cost).
    res = _finish(old_colmap, queries)

    logt = math.log2(max(nthreads, 2))
    count(
        "renumber.parallel",
        bytes_read=n * IDX_BYTES  # one streaming pass through the indices
        + len(merged) * IDX_BYTES * 2,  # merge traffic
        bytes_written=res.n_appended * IDX_BYTES,
        branches=float(n + n * logt / 8),
        parallel=True,
    )
    return res
