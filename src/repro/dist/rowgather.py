"""Gathering external matrix rows (§4.1 Fig. 3c, §4.3).

SpGEMM-like operations (coarse-operator construction, interpolation,
transpose) exchange matrix *rows* rather than vector elements.  Rank *p*
requests the rows listed in its ``colmap`` from their owners; the owner
extracts each row, converts its column indices to *global* ids, and ships
``(row sizes, global columns, values)``.

§4.3: for interpolation construction most of a shipped row is never used —
only entries whose column is a C point (candidate ``Chat_i`` member), the
diagonal, and entries pointing back into the requester's row range whose
sign differs from the diagonal's can contribute to Eq. (1).  The *filtered*
gather drops everything else at the sender, cutting the communication
volume by >3x on the paper's inputs; results are bit-identical because the
dropped entries are exactly the ones the receiving kernel would zero or
never read.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf.counters import IDX_BYTES, VAL_BYTES, count
from .comm import SimComm
from .parcsr import ParCSRMatrix

__all__ = ["GatheredRows", "gather_matrix_rows", "GLOBAL_IDX_BYTES"]

#: Global column ids travel as 64-bit ints (HYPRE_BigInt).
GLOBAL_IDX_BYTES = 8


@dataclass
class GatheredRows:
    """External rows received by one rank, in CSR-with-global-columns form.

    ``row_gids`` are the gathered rows' global ids (ascending); ``indptr``
    delimits rows within ``gcols``/``vals``.  ``extra`` carries any
    per-entry side payloads shipped along (e.g. strong-connection flags).
    """

    row_gids: np.ndarray
    indptr: np.ndarray
    gcols: np.ndarray
    vals: np.ndarray
    extra: dict[str, np.ndarray]

    @property
    def nnz(self) -> int:
        return len(self.gcols)


def gather_matrix_rows(
    comm: SimComm,
    B: ParCSRMatrix,
    needed: list[np.ndarray],
    *,
    tag: str = "rowgather",
    entry_filter=None,
    extra_payloads: dict[str, list[np.ndarray]] | None = None,
    extra_bytes_per_entry: float = 0.0,
) -> list[GatheredRows]:
    """Gather the global rows in ``needed[p]`` for every rank *p*.

    ``entry_filter(owner_rank, row_gids_expanded, gcols, vals) -> keep mask``
    implements §4.3 sender-side filtering.  ``extra_payloads[name][q]`` is a
    per-owner-rank array aligned with rank *q*'s stored entries (diag then
    offd, in ``row_arrays_global`` order) to ship alongside the values;
    ``extra_bytes_per_entry`` is their counted wire size.
    """
    nranks = comm.nranks
    results: list[GatheredRows] = []

    # Pre-extract each owner's triplets once.
    owner_rows: list[np.ndarray] = []
    owner_cols: list[np.ndarray] = []
    owner_vals: list[np.ndarray] = []
    owner_extra: list[dict[str, np.ndarray]] = []
    for q, blk in enumerate(B.blocks):
        r, c, v = blk.row_arrays_global(B.col_part.lo(q))
        order = np.lexsort((c, r))
        owner_rows.append(r[order])
        owner_cols.append(c[order])
        owner_vals.append(v[order])
        ex = {}
        if extra_payloads:
            for name, per_rank in extra_payloads.items():
                ex[name] = per_rank[q][order]
        owner_extra.append(ex)

    for p in range(nranks):
        want = np.asarray(needed[p], dtype=np.int64)
        want = np.unique(want)
        owners = B.row_part.owner_of(want)
        pieces_rows, pieces_cols, pieces_vals = [], [], []
        pieces_extra: dict[str, list[np.ndarray]] = {
            name: [] for name in (extra_payloads or {})
        }
        for q in np.unique(owners):
            q = int(q)
            rows_q = want[owners == q]
            if q != p:
                # The request message: row ids p -> q.
                comm.log_message(p, q, len(rows_q) * GLOBAL_IDX_BYTES,
                                 tag=tag + ".req")
            local = rows_q - B.row_part.lo(q)
            # Select the owner's entries belonging to the requested rows.
            sel = np.isin(owner_rows[q], local)
            r_sel = owner_rows[q][sel] + B.row_part.lo(q)
            c_sel = owner_cols[q][sel]
            v_sel = owner_vals[q][sel]
            ex_sel = {name: arr[sel] for name, arr in owner_extra[q].items()}
            if entry_filter is not None:
                keep = entry_filter(p, r_sel, c_sel, v_sel)
                r_sel, c_sel, v_sel = r_sel[keep], c_sel[keep], v_sel[keep]
                ex_sel = {name: arr[keep] for name, arr in ex_sel.items()}
            if q != p:
                nbytes = len(v_sel) * (
                    VAL_BYTES + GLOBAL_IDX_BYTES + extra_bytes_per_entry
                ) + len(rows_q) * IDX_BYTES
                comm.log_message(q, p, nbytes, tag=tag)
                with comm.on_rank(q):
                    count("rowgather.pack",
                          bytes_read=len(v_sel) * (VAL_BYTES + IDX_BYTES),
                          bytes_written=len(v_sel) * (VAL_BYTES + GLOBAL_IDX_BYTES))
            pieces_rows.append(r_sel)
            pieces_cols.append(c_sel)
            pieces_vals.append(v_sel)
            for name in pieces_extra:
                pieces_extra[name].append(ex_sel[name])

        if pieces_rows:
            ar = np.concatenate(pieces_rows)
            ac = np.concatenate(pieces_cols)
            av = np.concatenate(pieces_vals)
            aextra = {n: np.concatenate(v) for n, v in pieces_extra.items()}
        else:
            ar = np.empty(0, dtype=np.int64)
            ac = np.empty(0, dtype=np.int64)
            av = np.empty(0, dtype=np.float64)
            aextra = {n: np.empty(0) for n in pieces_extra}
        # Assemble received rows in ascending global-row order.
        order = np.lexsort((ac, ar))
        ar, ac, av = ar[order], ac[order], av[order]
        aextra = {n: v[order] for n, v in aextra.items()}
        counts = np.bincount(
            np.searchsorted(want, ar), minlength=len(want)
        ) if len(want) else np.empty(0, dtype=np.int64)
        indptr = np.zeros(len(want) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        with comm.on_rank(p):
            count("rowgather.assemble",
                  bytes_read=len(av) * (VAL_BYTES + GLOBAL_IDX_BYTES),
                  bytes_written=len(av) * (VAL_BYTES + GLOBAL_IDX_BYTES),
                  branches=float(len(av)))
        results.append(GatheredRows(want, indptr, ac, av, aextra))
    return results
