"""Distributed AMG setup (§4): hierarchy construction over ParCSR.

Mirrors :mod:`repro.amg.setup` with the distributed kernels: distributed
strength, distributed (aggressive) PMIS, distributed extended+i / multipass
/ 2-stage interpolation with §4.2 renumbering and §4.3 comm filtering, and
the distributed Galerkin product.  Phase attribution matches Fig. 5/7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import check_dist_hierarchy, check_parcsr, checking
from ..analysis.sched import check_schedule
from ..config import AMGConfig
from ..perf.counters import VAL_BYTES, count, phase
from .comm import SimComm
from .halo import HaloExchange, build_halo
from .interp import dist_extended_i, dist_multipass, dist_two_stage_ei
from .parcsr import ParCSRMatrix, ParVector
from .pmis import dist_aggressive_pmis, dist_pmis, dist_random_measures
from .smoothers import DistSmoother
from .solveplan import attach_dist_solve_plan
from .sparsify import sparsify_parcsr
from .spgemm import dist_rap
from .strength import dist_strength

__all__ = ["DistLevel", "DistHierarchy", "dist_build_hierarchy"]

_SMOOTHER_VARIANTS = {"hybrid_gs": "hybrid", "lex": "lex",
                      "multicolor": "multicolor", "jacobi": "jacobi"}


@dataclass
class DistLevel:
    A: ParCSRMatrix
    halo: HaloExchange | None = None
    cf_parts: list[np.ndarray] | None = None
    P: ParCSRMatrix | None = None
    halo_P: HaloExchange | None = None
    #: Kept restriction (``keep_transpose``); baseline recomputes it per
    #: restriction in the solve phase (§3.2).
    R: ParCSRMatrix | None = None
    halo_R: HaloExchange | None = None
    smoother: DistSmoother | None = None
    #: Full Galerkin operator kept while ``A`` is its sparsified form
    #: (``sparsify_tol``); the guardrail's fallback swaps it back.
    A_full: ParCSRMatrix | None = None

    @property
    def n(self) -> int:
        return self.A.shape[0]


class DistCoarseSolver:
    """Gather-to-root dense coarsest solve (messages logged)."""

    def __init__(self, comm: SimComm, A: ParCSRMatrix, *, dense_threshold: int,
                 nthreads: int) -> None:
        self.comm = comm
        self.A = A
        self.n = A.shape[0]
        self.direct = self.n <= dense_threshold
        if self.direct:
            # Gather the coarsest operator to rank 0 once, at setup.
            for p in range(1, comm.nranks):
                comm.log_message(p, 0, A.blocks[p].nnz * 16, tag="coarse.gather")
            dense = A.to_global().to_dense()
            with comm.on_rank(0):
                count("coarse.factorize", flops=2.0 * self.n**3,
                      bytes_written=self.n * self.n * VAL_BYTES, phase="Setup_etc")
            self.inv = np.linalg.pinv(dense)
            self.smoother = None
        else:
            self.inv = None
            self.smoother = DistSmoother(
                comm, A, None, nthreads=nthreads, persistent=True
            )

    def solve(self, b: ParVector) -> ParVector:
        with phase("Solve_etc"):
            if self.direct:
                for p in range(1, self.comm.nranks):
                    self.comm.log_message(
                        p, 0, b.part.size(p) * VAL_BYTES, tag="coarse.b"
                    )
                x = self.inv @ b.to_global()
                with self.comm.on_rank(0):
                    count("coarse.direct_solve", flops=2.0 * self.n * self.n,
                          bytes_read=self.n * self.n * VAL_BYTES)
                for p in range(1, self.comm.nranks):
                    self.comm.log_message(
                        0, p, b.part.size(p) * VAL_BYTES, tag="coarse.x"
                    )
                return ParVector.from_global(x, b.part)
            x = ParVector.zeros(b.part)
            self.smoother.presmooth(x, b, zero_guess=True)
            for _ in range(3):
                self.smoother.presmooth(x, b)
                self.smoother.postsmooth(x, b)
            return x


@dataclass
class DistHierarchy:
    comm: SimComm
    levels: list[DistLevel]
    coarse_solver: DistCoarseSolver
    config: AMGConfig
    #: Node topology the halos were built against (None = flat).
    topology: object | None = None
    #: Network model used to price node-aware aggregation decisions.
    net: object | None = None

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def operator_complexity(self) -> float:
        return sum(l.A.nnz for l in self.levels) / self.levels[0].A.nnz

    @property
    def sparsified(self) -> bool:
        """Whether any level currently runs on a sparsified operator."""
        return any(lvl.A_full is not None for lvl in self.levels)

    def desparsify(self) -> bool:
        """Revert every sparsified level to its full Galerkin operator.

        The guardrail's fallback path: swaps ``A_full`` back in and
        rebuilds the affected halos and smoothers.  The rebuilt exchanges
        are non-persistent — a fallback is a one-off mid-solve event, and
        re-freezing patterns would only recreate the setup cost the
        original persistent requests already paid.  Returns whether
        anything was reverted.
        """
        reverted = False
        config = self.config
        with phase("Resetup"):
            for lvl in self.levels:
                if lvl.A_full is None:
                    continue
                reverted = True
                lvl.A = lvl.A_full
                lvl.A_full = None
                lvl.halo = build_halo(
                    self.comm, lvl.A, persistent=False,
                    topology=self.topology, net=self.net)
                if lvl.smoother is not None:
                    lvl.smoother = DistSmoother(
                        self.comm, lvl.A, lvl.cf_parts,
                        nthreads=config.nthreads,
                        variant=_SMOOTHER_VARIANTS[config.smoother],
                        optimized=config.flags.three_way_partition,
                        persistent=False,
                        seed=config.seed,
                        topology=self.topology,
                        net=self.net,
                    )
        return reverted


def dist_build_hierarchy(
    comm: SimComm, A0: ParCSRMatrix, config: AMGConfig | None = None,
    *, topology=None, net=None,
) -> DistHierarchy:
    """Build the distributed hierarchy.

    ``topology`` (a :class:`repro.topo.NodeTopology`) enables node-aware
    halo exchanges priced against ``net`` (default: the topology's two-tier
    model); with no topology the build is byte-identical to before the
    topology subsystem existed.
    """
    config = config or AMGConfig()
    if topology is not None and net is None:
        net = topology.network()
    flags = config.flags
    levels: list[DistLevel] = [DistLevel(A=A0)]

    for l in range(config.max_levels - 1):
        lvl = levels[l]
        A = lvl.A
        if A.shape[0] <= config.coarse_size:
            break

        with phase("Strength+Coarsen"):
            S = dist_strength(
                comm, A, config.strength_threshold, config.max_row_sum,
                parallel=flags.parallel_setup_kernels,
            )
            aggressive = (
                l < config.aggressive_levels
                and config.interp in ("2s-ei", "multipass")
            )
            measures = dist_random_measures(comm, A.row_part, config.seed + l)
            if aggressive:
                cf, cf1 = dist_aggressive_pmis(comm, S, seed=config.seed + l,
                                               measures=measures)
            else:
                cf = dist_pmis(comm, S, seed=config.seed + l, measures=measures)
                cf1 = None
            if checking():
                check_parcsr(S, name=f"S[{l}]", level=l)
        nc = int(comm.allreduce([float((c > 0).sum()) for c in cf],
                                kind="setup.nc"))
        if nc == 0 or nc == A.shape[0]:
            break
        lvl.cf_parts = cf

        with phase("Interp"):
            if aggressive and config.interp == "2s-ei":
                P, cpart = dist_two_stage_ei(
                    comm, A, S, cf, cf1,
                    theta=config.strength_threshold,
                    max_row_sum=config.max_row_sum,
                    trunc_fact=config.trunc_fact,
                    max_elmts=config.max_elmts,
                    filter_comm=flags.filter_interp_comm,
                    parallel_renumber=flags.parallel_renumber,
                    nthreads=config.nthreads,
                    reordered=flags.three_way_partition,
                )
            elif aggressive and config.interp == "multipass":
                P, cpart = dist_multipass(
                    comm, A, S, cf,
                    trunc_fact=config.trunc_fact,
                    max_elmts=config.max_elmts,
                    parallel_renumber=flags.parallel_renumber,
                    nthreads=config.nthreads,
                )
            else:
                P, cpart = dist_extended_i(
                    comm, A, S, cf,
                    trunc_fact=config.trunc_fact,
                    max_elmts=config.max_elmts,
                    reordered=flags.three_way_partition,
                    fused_truncation=flags.fused_truncation,
                    filter_comm=flags.filter_interp_comm,
                    parallel_renumber=flags.parallel_renumber,
                    nthreads=config.nthreads,
                )
            if checking():
                check_parcsr(P, name=f"P[{l}]", level=l)
        lvl.P = P

        with phase("RAP"):
            Ac, R = dist_rap(
                comm, A, P,
                parallel_renumber=flags.parallel_renumber,
                spgemm_method="one_pass" if flags.spgemm_one_pass else "two_pass",
                nthreads=config.nthreads,
            )
            if checking():
                check_parcsr(Ac, name=f"A[{l + 1}]", level=l + 1)
        if flags.keep_transpose:
            lvl.R = R
        levels.append(DistLevel(A=Ac))
        if Ac.shape[0] <= config.coarse_size:
            break

    with phase("Setup_etc"):
        if config.sparsify_tol > 0.0:
            # Sparsify the intermediate coarse operators (not the finest —
            # it is the user's matrix — and not the coarsest, whose gathered
            # factorization / smoother the coarse solver owns a reference
            # to).  The full operator stays on the level for the fallback.
            for lvl in levels[1:-1]:
                As, dropped = sparsify_parcsr(comm, lvl.A, config.sparsify_tol)
                if dropped:
                    lvl.A_full = lvl.A
                    lvl.A = As
        for l, lvl in enumerate(levels):
            lvl.halo = build_halo(comm, lvl.A, persistent=flags.persistent_comm,
                                  topology=topology, net=net)
            if lvl.P is not None:
                lvl.halo_P = build_halo(comm, lvl.P, persistent=flags.persistent_comm,
                                        topology=topology, net=net)
                if lvl.R is not None:
                    lvl.halo_R = build_halo(
                        comm, lvl.R, persistent=flags.persistent_comm,
                        topology=topology, net=net,
                    )
            if l < len(levels) - 1 or levels[-1].A.shape[0] > config.dense_coarse_threshold:
                lvl.smoother = DistSmoother(
                    comm, lvl.A, lvl.cf_parts,
                    nthreads=config.nthreads,
                    variant=_SMOOTHER_VARIANTS[config.smoother],
                    optimized=flags.three_way_partition,
                    persistent=flags.persistent_comm,
                    seed=config.seed,
                    topology=topology,
                    net=net,
                )
        coarse = DistCoarseSolver(
            comm, levels[-1].A,
            dense_threshold=config.dense_coarse_threshold,
            nthreads=config.nthreads,
        )
    hierarchy = DistHierarchy(comm, levels, coarse, config,
                              topology=topology, net=net)
    # Freeze the per-rank solve schedules (wavefront orders, gather maps,
    # record tables).  DistSmoother already self-plans on construction; this
    # is the documented entry point and covers any smoother swapped in
    # since (e.g. by desparsify fallbacks).
    attach_dist_solve_plan(hierarchy)
    if checking():
        # Per-level ParCSR + frozen-halo consistency, inter-level partition
        # plumbing; full adds per-block sortedness/finiteness sweeps.
        check_dist_hierarchy(hierarchy)
    if checking("full"):
        # Static comm-schedule verification: cross-check every frozen
        # halo's declared/registered pattern against the colmaps and run
        # the compiled per-rank comm programs through the deadlock machine
        # (charges zero kernel records — owner_of is uncharged).
        check_schedule(hierarchy)
    return hierarchy
