"""Distributed hybrid Gauss–Seidel smoothing (§2, §3.2, §4.4).

Hybrid GS across ranks is Jacobi at rank boundaries: the halo values are
exchanged once per sweep (the solve-phase communication that dominates at
128 nodes, Fig. 7) and each rank then smooths its local ``diag`` block with
the node-level hybrid-GS machinery (``nthreads`` blocks, C-F ordering),
reading the off-rank contribution from the exchanged buffer.
"""

from __future__ import annotations

import numpy as np

from ..amg.smoothers import HybridGSSmoother
from ..perf.counters import VAL_BYTES, count, count_record
from ..planexec import plan_enabled
from ..sparse.spmv import spmv
from .comm import SimComm
from .halo import build_halo
from .parcsr import ParCSRMatrix, ParVector
from .solveplan import plan_dist_smoother

__all__ = ["DistSmoother"]


class DistSmoother:
    """Per-level distributed smoother: hybrid GS within ranks, Jacobi across."""

    def __init__(
        self,
        comm: SimComm,
        A: ParCSRMatrix,
        cf_parts: list[np.ndarray] | None,
        *,
        nthreads: int = 14,
        variant: str = "hybrid",
        optimized: bool = True,
        persistent: bool = True,
        seed: int = 0,
        topology=None,
        net=None,
    ) -> None:
        self.comm = comm
        self.A = A
        self.halo = build_halo(comm, A, persistent=persistent,
                               topology=topology, net=net)
        self.local: list[HybridGSSmoother] = []
        for p in range(comm.nranks):
            with comm.on_rank(p):
                self.local.append(
                    HybridGSSmoother(
                        A.blocks[p].diag,
                        nthreads=nthreads,
                        cf_marker=cf_parts[p] if cf_parts is not None else None,
                        variant=variant,
                        optimized=optimized,
                        seed=seed + p,
                    )
                )
        # Compile the per-rank solve plans (and the frozen gs.offd_sub
        # record table) up front; execution of the planned paths is gated
        # by REPRO_SOLVEPLAN at sweep time.
        plan_dist_smoother(self)

    def _offd_rhs(self, b: ParVector, x: ParVector, *, zero_guess: bool) -> list[np.ndarray]:
        """``b - A_offd x_ext`` per rank (the Jacobi boundary term)."""
        if zero_guess:
            # x is identically zero: skip the exchange and the offd product.
            return [b.parts[p].copy() for p in range(self.comm.nranks)]
        x_ext = self.halo(x)
        out = []
        for p, blk in enumerate(self.A.blocks):
            with self.comm.on_rank(p):
                if blk.offd.nnz:
                    rhs = b.parts[p] - spmv(blk.offd, x_ext[p], kernel="gs.offd")
                    if plan_enabled():
                        count_record(self._offd_recs[p])
                    else:
                        count("gs.offd_sub", flops=blk.nrows,
                              bytes_read=blk.nrows * VAL_BYTES,
                              bytes_written=blk.nrows * VAL_BYTES)
                else:
                    rhs = b.parts[p].copy()
            out.append(rhs)
        return out

    def presmooth(self, x: ParVector, b: ParVector, *, zero_guess: bool = False) -> ParVector:
        rhs = self._offd_rhs(b, x, zero_guess=zero_guess)
        for p in range(self.comm.nranks):
            with self.comm.on_rank(p):
                self.local[p].presmooth(x.parts[p], rhs[p], zero_guess=zero_guess)
        return x

    def postsmooth(self, x: ParVector, b: ParVector) -> ParVector:
        rhs = self._offd_rhs(b, x, zero_guess=False)
        for p in range(self.comm.nranks):
            with self.comm.on_rank(p):
                self.local[p].postsmooth(x.parts[p], rhs[p])
        return x
