"""Distributed counterpart of :mod:`repro.amg.solveplan`.

The distributed solve phase reuses the node-level machinery per rank, so
most of the planning is delegation: every rank's local
:class:`~repro.amg.smoothers.HybridGSSmoother` gets its compiled
:class:`~repro.amg.solveplan.SmootherPlan`, and the per-rank traffic
records whose fields are pure functions of the frozen partition (the
``gs.offd_sub`` boundary-term update, the halo pack/unpack maps cached on
:class:`~repro.dist.halo.HaloExchange`) are prebuilt once instead of being
re-derived every sweep on every rank.

Everything here is gated by ``REPRO_SOLVEPLAN`` at execution time (the
plans are attached unconditionally — attachment is pure pattern
arithmetic and emits no perf records).
"""

from __future__ import annotations

from ..amg.solveplan import compile_smoother_plan
from ..perf.counters import VAL_BYTES, make_record

__all__ = ["plan_dist_smoother", "attach_dist_solve_plan"]


def plan_dist_smoother(sm) -> None:
    """Compile the solve plans of a :class:`~repro.dist.smoothers.DistSmoother`.

    Attaches a :class:`~repro.amg.solveplan.SmootherPlan` to each rank's
    local smoother and prebuilds the per-rank ``gs.offd_sub`` records (the
    boundary Jacobi term's traffic depends only on the frozen row
    partition).  Idempotent and silent.
    """
    for local in sm.local:
        compile_smoother_plan(local)
    if getattr(sm, "_offd_recs", None) is None:
        sm._offd_recs = [
            make_record("gs.offd_sub", flops=blk.nrows,
                        bytes_read=blk.nrows * VAL_BYTES,
                        bytes_written=blk.nrows * VAL_BYTES)
            for blk in sm.A.blocks
        ]


def attach_dist_solve_plan(hierarchy) -> None:
    """Attach solve plans throughout a :class:`~repro.dist.setup.DistHierarchy`.

    Covers every level's :class:`~repro.dist.smoothers.DistSmoother` and the
    coarse solver's smoother (when the coarsest level is solved by sweeps
    rather than a gathered dense factorization).
    """
    for lvl in hierarchy.levels:
        if lvl.smoother is not None:
            plan_dist_smoother(lvl.smoother)
    coarse_sm = getattr(hierarchy.coarse_solver, "smoother", None)
    if coarse_sm is not None:
        plan_dist_smoother(coarse_sm)
