"""Distributed V-cycle and AMG-preconditioned Flexible GMRES (Table 4).

Vector primitives (``par_dot`` etc.) count local BLAS1 work per rank and
log one allreduce per global reduction — the solve-phase collectives of
Fig. 7's ``Solve_MPI`` bucket, alongside the halo exchanges.

Resilience: on a fault-injecting communicator
(:class:`repro.faults.comm.FaultyComm`) ``DistAMGSolver.solve`` keeps
periodic in-memory checkpoints of the iterate; a delivery that exhausts its
retries (a transient rank failure, a badly lossy link) rolls the solve back
to the last checkpoint instead of aborting, and the redone iterations plus
retry traffic surface in the modeled times and ``fault_events``.  Every
solver here also runs a :class:`~repro.faults.guards.ResidualGuard`, so
NaN/Inf or exploding residuals terminate the loop with a recorded verdict.
"""

from __future__ import annotations

import numpy as np

from ..analysis import check_comm_trace, checking, persistent_patterns_of
from ..config import AMGConfig
from ..faults.guards import ResidualGuard
from ..faults.plan import FaultEvent
from ..perf.counters import VAL_BYTES, count, phase
from ..results import DistSolveResult, resolve_maxiter
from .comm import SimComm
from .parcsr import ParCSRMatrix, ParVector
from .setup import DistHierarchy, dist_build_hierarchy
from .spmv import dist_residual_norm, dist_spmv
from .transpose import dist_transpose

__all__ = [
    "par_dot",
    "par_norm2",
    "par_axpy",
    "dist_vcycle",
    "DistAMGSolver",
    "dist_fgmres",
    "DistSolveResult",
]


# ---------------------------------------------------------------------------
# Distributed BLAS1
# ---------------------------------------------------------------------------

def par_dot(comm: SimComm, x: ParVector, y: ParVector) -> float:
    locals_ = []
    for p in range(comm.nranks):
        with comm.on_rank(p):
            n = len(x.parts[p])
            count("blas1.dot", flops=2 * n, bytes_read=2 * n * VAL_BYTES)
        locals_.append(float(x.parts[p] @ y.parts[p]))
    return comm.allreduce(locals_)


def par_norm2(comm: SimComm, x: ParVector) -> float:
    return float(np.sqrt(max(par_dot(comm, x, x), 0.0)))


def par_axpy(comm: SimComm, alpha: float, x: ParVector, y: ParVector) -> ParVector:
    for p in range(comm.nranks):
        with comm.on_rank(p):
            n = len(x.parts[p])
            y.parts[p] += alpha * x.parts[p]
            count("blas1.axpy", flops=2 * n, bytes_read=2 * n * VAL_BYTES,
                  bytes_written=n * VAL_BYTES)
    return y


def par_scale(comm: SimComm, alpha: float, x: ParVector) -> ParVector:
    for p in range(comm.nranks):
        with comm.on_rank(p):
            n = len(x.parts[p])
            x.parts[p] *= alpha
            count("blas1.scal", flops=n, bytes_read=n * VAL_BYTES,
                  bytes_written=n * VAL_BYTES)
    return x


# ---------------------------------------------------------------------------
# Distributed V-cycle
# ---------------------------------------------------------------------------

def dist_vcycle(h: DistHierarchy, b: ParVector, level: int = 0) -> ParVector:
    comm = h.comm
    flags = h.config.flags
    if level == h.num_levels - 1:
        return h.coarse_solver.solve(b)
    lvl = h.levels[level]
    x = ParVector.zeros(b.part)

    with phase("GS"):
        lvl.smoother.presmooth(x, b, zero_guess=True)

    with phase("SpMV"):
        Ax = dist_spmv(comm, lvl.A, x, lvl.halo, kernel="spmv.residual")
        r = ParVector(
            [b.parts[p] - Ax.parts[p] for p in range(comm.nranks)], b.part
        )
        for p in range(comm.nranks):
            with comm.on_rank(p):
                n = len(r.parts[p])
                count("residual_sub", flops=n, bytes_read=2 * n * VAL_BYTES,
                      bytes_written=n * VAL_BYTES)

    with phase("SpMV"):
        if lvl.R is not None:
            R, halo_R = lvl.R, lvl.halo_R
        else:
            # Baseline: transpose P for every restriction (§3.2).
            R = dist_transpose(comm, lvl.P, tag="solve.transpose")
            from .halo import build_halo

            halo_R = build_halo(comm, R, persistent=False)
        rc = dist_spmv(comm, R, r, halo_R, kernel="spmv.restrict")

    xc = dist_vcycle(h, rc, level + 1)

    with phase("SpMV"):
        corr = dist_spmv(comm, lvl.P, xc, lvl.halo_P, kernel="spmv.interp")
    with phase("BLAS1"):
        par_axpy(comm, 1.0, corr, x)

    with phase("GS"):
        lvl.smoother.postsmooth(x, b)
    return x


# ---------------------------------------------------------------------------
# Solvers
# ---------------------------------------------------------------------------

class DistAMGSolver:
    """Distributed AMG: standalone solver or FGMRES preconditioner."""

    def __init__(self, comm: SimComm, config: AMGConfig | None = None, *,
                 topology=None, net=None) -> None:
        self.comm = comm
        self.config = config or AMGConfig()
        self.topology = topology
        self.net = net
        self.hierarchy: DistHierarchy | None = None

    def setup(self, A: ParCSRMatrix) -> DistHierarchy:
        self.hierarchy = dist_build_hierarchy(
            self.comm, A, self.config, topology=self.topology, net=self.net)
        return self.hierarchy

    def precondition(self, r: ParVector) -> ParVector:
        return dist_vcycle(self.hierarchy, r)

    def solve(
        self,
        b: ParVector,
        *,
        tol: float = 1e-7,
        maxiter: int | None = None,
        max_iter: int | None = None,
        checkpoint_every: int = 5,
        max_restarts: int = 32,
    ) -> DistSolveResult:
        """Iterate V-cycles until ``||r|| <= tol * ||b||``.

        On a fault-injecting communicator the iterate is checkpointed every
        ``checkpoint_every`` iterations; a :class:`CommFault` (exhausted
        retries, transient rank failure) rolls back to the last checkpoint
        and continues, up to ``max_restarts`` times.  Every injected fault,
        retry, restart, and guard verdict lands in the result's
        ``fault_events``.
        """
        from ..faults.comm import CommFault

        max_iter = resolve_maxiter(maxiter, max_iter, 300)
        h = self.hierarchy
        comm = self.comm
        lvl0 = h.levels[0]
        fused = self.config.flags.fuse_spmv_dot
        faulty = comm.supports_fault_injection
        events_start = len(comm.events) if faulty else 0
        solver_events: list[FaultEvent] = []

        def result(x, it, residuals, converged, *, degraded=False, reason=None):
            comm_events = list(comm.events[events_start:]) if faulty else []
            if checking("full"):
                # Replay the message log and pin persistent traffic to the
                # frozen patterns.  On a faulty trace the scan itself skips
                # what injected drops make unjudgeable (send/ack matching,
                # persistent rounds) and reports each skip with its reason.
                check_comm_trace(
                    comm, persistent_patterns=persistent_patterns_of(comm))
            return DistSolveResult(
                x, it, residuals, converged, degraded=degraded,
                degraded_reason=reason,
                fault_events=comm_events + solver_events,
            )

        x = ParVector.zeros(b.part)
        restarts = 0

        # Initial residual — itself communication, so under the same guard.
        while True:
            try:
                bnorm = par_norm2(comm, b)
                r, r0 = dist_residual_norm(comm, lvl0.A, x, b, lvl0.halo,
                                           fused=fused)
                break
            except CommFault as exc:
                restarts += 1
                solver_events.append(FaultEvent(
                    "checkpoint_restart", detail=str(exc), attempt=restarts))
                if restarts > max_restarts:
                    return result(x, 0, [], False, degraded=True,
                                  reason=f"comm fault persisted: {exc}")

        ref = bnorm if bnorm > 0.0 else r0
        residuals = [r0]
        if r0 == 0.0:
            return result(x, 0, residuals, True)
        guard = ResidualGuard(ref)

        ckpt_it, ckpt_x, ckpt_res = 0, x.copy(), list(residuals)
        it = 0
        while it < max_iter:
            try:
                if r is None:  # re-derive the residual after a rollback
                    r, _ = dist_residual_norm(comm, lvl0.A, x, b, lvl0.halo,
                                              fused=fused)
                corr = dist_vcycle(h, r)
                with phase("BLAS1"):
                    par_axpy(comm, 1.0, corr, x)
                r, rn = dist_residual_norm(comm, lvl0.A, x, b, lvl0.halo,
                                           fused=fused)
            except CommFault as exc:
                restarts += 1
                solver_events.append(FaultEvent(
                    "checkpoint_restart", detail=str(exc), attempt=restarts))
                if restarts > max_restarts:
                    return result(x, it, residuals, False, degraded=True,
                                  reason=f"comm fault persisted: {exc}")
                it = ckpt_it
                x = ckpt_x.copy()
                residuals = list(ckpt_res)
                r = None
                continue
            it += 1
            residuals.append(rn)
            if rn <= tol * ref:
                return result(x, it, residuals, True)
            verdict = guard.check(rn)
            if h.sparsified and (
                verdict is not None
                or it >= self.config.sparsify_fallback_iters
            ):
                # Sparsification guardrail: a sparsified hierarchy that
                # trips the residual guard or exhausts its iteration
                # budget reverts to the full Galerkin operators and keeps
                # iterating — the fine-level residual (computed against
                # the never-sparsified A0) carries over unchanged.
                h.desparsify()
                trigger = verdict or "iteration budget"
                solver_events.append(FaultEvent(
                    "sparsify_fallback",
                    detail=f"{trigger} at iteration {it}"))
                guard = ResidualGuard(ref)
            elif verdict is not None:
                solver_events.append(FaultEvent(verdict, detail=f"iter {it}"))
                return result(x, it, residuals, False, degraded=True,
                              reason=f"{verdict} at iteration {it}")
            if faulty and checkpoint_every > 0 and it % checkpoint_every == 0:
                ckpt_it, ckpt_x, ckpt_res = it, x.copy(), list(residuals)
        return result(x, max_iter, residuals, False)


def dist_fgmres(
    comm: SimComm,
    A: ParCSRMatrix,
    b: ParVector,
    *,
    precondition=None,
    halo=None,
    tol: float = 1e-7,
    maxiter: int | None = None,
    max_iter: int | None = None,
    restart: int = 50,
) -> DistSolveResult:
    """Distributed Flexible GMRES (right-preconditioned, MGS + Givens).

    Guarded: a NaN/Inf residual terminates the iteration with a recorded
    verdict, and on a fault-injecting communicator an unrecoverable
    :class:`~repro.faults.comm.CommFault` returns the best iterate so far
    (``degraded=True``) instead of propagating.
    """
    from ..faults.comm import CommFault
    from .halo import build_halo

    max_iter = resolve_maxiter(maxiter, max_iter, 200)

    if halo is None:
        halo = build_halo(comm, A, persistent=True)
    M = precondition if precondition is not None else (lambda v: v.copy())

    faulty = comm.supports_fault_injection
    events_start = len(comm.events) if faulty else 0
    solver_events: list[FaultEvent] = []

    def result(x, it, residuals, converged, *, degraded=False, reason=None):
        comm_events = list(comm.events[events_start:]) if faulty else []
        return DistSolveResult(x, it, residuals, converged, degraded=degraded,
                               degraded_reason=reason,
                               fault_events=comm_events + solver_events)

    x = ParVector.zeros(b.part)
    try:
        r = b.copy()
        beta = par_norm2(comm, r)
    except CommFault as exc:
        solver_events.append(FaultEvent("comm_abort", detail=str(exc)))
        return result(x, 0, [], False, degraded=True, reason=str(exc))
    r0 = beta
    residuals = [beta]
    if beta == 0.0:
        return result(x, 0, residuals, True)
    if not np.isfinite(beta):
        solver_events.append(FaultEvent("nonfinite", detail="initial residual"))
        return result(x, 0, residuals, False, degraded=True,
                      reason="nonfinite initial residual")
    guard = ResidualGuard(r0, stagnation=False)

    total_it = 0
    while total_it < max_iter:
        m = min(restart, max_iter - total_it)
        try:
            V = [ParVector([p / beta for p in r.parts], b.part)]
            Z: list[ParVector] = []
            H = np.zeros((m + 1, m))
            cs = np.zeros(m)
            sn = np.zeros(m)
            g = np.zeros(m + 1)
            g[0] = beta
            j_done = 0
            converged = False
            broken = None
            for j in range(m):
                z = M(V[j])
                Z.append(z)
                with phase("SpMV"):
                    w = dist_spmv(comm, A, z, halo, kernel="spmv.krylov")
                with phase("BLAS1"):
                    for i in range(j + 1):
                        H[i, j] = par_dot(comm, w, V[i])
                        par_axpy(comm, -H[i, j], V[i], w)
                    H[j + 1, j] = par_norm2(comm, w)
                if H[j + 1, j] != 0.0:
                    V.append(ParVector([p / H[j + 1, j] for p in w.parts], b.part))
                else:
                    V.append(w)
                for i in range(j):
                    t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                    H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                    H[i, j] = t
                denom = np.hypot(H[j, j], H[j + 1, j])
                cs[j] = H[j, j] / denom if denom else 1.0
                sn[j] = H[j + 1, j] / denom if denom else 0.0
                H[j, j] = cs[j] * H[j, j] + sn[j] * H[j + 1, j]
                H[j + 1, j] = 0.0
                g[j + 1] = -sn[j] * g[j]
                g[j] = cs[j] * g[j]
                res = abs(g[j + 1])
                residuals.append(res)
                total_it += 1
                verdict = guard.check(res)
                if verdict is not None:
                    # NaN/Inf infected the Hessenberg: the triangular solve
                    # would poison x, so keep the previous restart's iterate.
                    broken = verdict
                    break
                j_done = j + 1
                if res <= tol * r0:
                    converged = True
                    break
            if broken is not None:
                solver_events.append(FaultEvent(
                    broken, detail=f"iteration {total_it}"))
                return result(x, total_it, residuals, False, degraded=True,
                              reason=f"{broken} at iteration {total_it}")
            y = np.zeros(j_done)
            for i in range(j_done - 1, -1, -1):
                y[i] = (g[i] - H[i, i + 1: j_done] @ y[i + 1: j_done]) / H[i, i]
            with phase("BLAS1"):
                for i in range(j_done):
                    par_axpy(comm, y[i], Z[i], x)
            with phase("SpMV"):
                Ax = dist_spmv(comm, A, x, halo, kernel="spmv.krylov")
            r = ParVector([b.parts[p] - Ax.parts[p] for p in range(comm.nranks)],
                          b.part)
            beta = par_norm2(comm, r)
        except CommFault as exc:
            solver_events.append(FaultEvent("comm_abort", detail=str(exc)))
            return result(x, total_it, residuals, False, degraded=True,
                          reason=str(exc))
        if converged or total_it >= max_iter:
            return result(x, total_it, residuals, converged)
    return result(x, total_it, residuals, False)
