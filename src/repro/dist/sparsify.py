"""Galerkin-product sparsification (Bienz et al., arXiv:1512.04629).

Coarse-level Galerkin operators ``RAP`` densify: each coarsening roughly
squares the stencil, and the fill lands disproportionately in the *offd*
blocks — long-range couplings to other ranks that inflate the halo pattern
(and, node-aware or not, the inter-node traffic) while contributing little
to convergence.  This module drops the weak offd entries of a coarse
operator and lumps the removed mass into the diagonal, preserving row sums
(so the near-nullspace the interpolation was built for is still treated
exactly).

The trade is explicitly guarded: setup keeps the full operator alongside
the sparsified one (``DistLevel.A_full``), and
:meth:`~repro.dist.setup.DistHierarchy.desparsify` reverts every level when
the solve's convergence guardrail decides sparsification cost too many
iterations.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import VAL_BYTES, count
from .comm import SimComm
from .parcsr import ParCSRMatrix, RankBlock
from ..sparse.csr import CSRMatrix

__all__ = ["sparsify_parcsr"]


def _row_abs_max(blk: CSRMatrix, nrows: int) -> np.ndarray:
    out = np.zeros(nrows)
    if blk.nnz:
        np.maximum.at(out, blk.row_ids(), np.abs(blk.data))
    return out


def sparsify_parcsr(comm: SimComm, A: ParCSRMatrix,
                    tol: float) -> tuple[ParCSRMatrix, int]:
    """Drop weak offd entries of *A*, lumping them into the diagonal.

    An offd entry ``a_ij`` is dropped when ``|a_ij| < tol * max_k |a_ik|``
    (row-relative threshold over the whole row, diag and offd).  Dropped
    values are added to ``a_ii``, so every row sum — and hence the action
    on constant vectors — is preserved.  Returns the sparsified operator
    (with a correspondingly shrunk ``colmap``) and the number of entries
    dropped across all ranks.
    """
    blocks: list[RankBlock] = []
    dropped_total = 0
    for p, blk in enumerate(A.blocks):
        offd = blk.offd
        if offd.nnz == 0:
            blocks.append(blk)
            continue
        with comm.on_rank(p):
            thr = tol * np.maximum(_row_abs_max(blk.diag, blk.nrows),
                                   _row_abs_max(offd, blk.nrows))
            rid = offd.row_ids()
            keep = np.abs(offd.data) >= thr[rid]
            count("sparsify.filter",
                  flops=2.0 * blk.nnz,
                  bytes_read=blk.nnz * VAL_BYTES,
                  bytes_written=int(keep.sum()) * VAL_BYTES)
        dropped = int((~keep).sum())
        if dropped == 0:
            blocks.append(blk)
            continue
        dropped_total += dropped
        # Lump the dropped mass into the diagonal entry of each row.
        lump = np.zeros(blk.nrows)
        np.add.at(lump, rid[~keep], offd.data[~keep])
        diag = blk.diag.copy()
        dmask = diag.indices == diag.row_ids()
        diag.data[dmask] += lump[diag.row_ids()[dmask]]
        # Recompress the offd block against the surviving columns.
        used = np.unique(offd.indices[keep])
        new_offd = CSRMatrix.from_coo(
            (blk.nrows, len(used)),
            rid[keep],
            np.searchsorted(used, offd.indices[keep]),
            offd.data[keep],
            sum_duplicates=False,
        )
        blocks.append(RankBlock(diag=diag, offd=new_offd,
                                colmap=blk.colmap[used]))
    if dropped_total == 0:
        return A, 0
    return ParCSRMatrix(blocks, A.row_part, A.col_part), dropped_total
