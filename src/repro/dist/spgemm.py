"""Distributed SpGEMM (§4.1 Fig. 3c, §4.2).

``C = A B`` with matching inner partitions: rank *p* gathers the external
rows of ``B`` listed in its ``colmap`` (Fig. 3c), **renumbers** the received
global column indices into its extended compressed column space (§4.2 — the
multi-node setup bottleneck this paper parallelizes), stacks the received
rows under its local ``B`` rows, and runs the node-level SpGEMM kernel on
the stacked operand.

The renumbering really feeds the computation: the stacked multiply runs in
the compact column space produced by :mod:`repro.dist.renumber`, and the
result's columns are mapped back through the extended colmap.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix
from ..sparse.spgemm import spgemm
from .comm import SimComm
from .parcsr import ParCSRMatrix
from .renumber import renumber_baseline, renumber_parallel
from .rowgather import gather_matrix_rows

__all__ = ["dist_spgemm", "dist_rap"]


def dist_spgemm(
    comm: SimComm,
    A: ParCSRMatrix,
    B: ParCSRMatrix,
    *,
    parallel_renumber: bool = True,
    spgemm_method: str = "one_pass",
    nthreads: int = 14,
    tag: str = "spgemm",
) -> ParCSRMatrix:
    if A.col_part.bounds.tolist() != B.row_part.bounds.tolist():
        raise ValueError("inner partitions must match")
    nranks = comm.nranks

    needed = [A.blocks[p].colmap for p in range(nranks)]
    gathered = gather_matrix_rows(comm, B, needed, tag=tag)

    triplets = []
    for p in range(nranks):
        blkA = A.blocks[p]
        blkB = B.blocks[p]
        g = gathered[p]
        lo_b = B.col_part.lo(p)
        hi_b = B.col_part.hi(p)
        nloc = hi_b - lo_b

        with comm.on_rank(p):
            # ---- §4.2 renumbering of received column indices ----
            ext_mask = (g.gcols < lo_b) | (g.gcols >= hi_b)
            queries = g.gcols[ext_mask]
            if parallel_renumber:
                ren = renumber_parallel(blkB.colmap, queries, nthreads=nthreads)
            else:
                ren = renumber_baseline(blkB.colmap, queries)
            colmap_ext = ren.colmap_new

            # ---- stack local B rows over the gathered rows ----
            # Compact column space: [0, nloc) owned, then colmap_ext order.
            nB_local = blkB.nrows
            loc_rows = np.concatenate([blkB.diag.row_ids(), blkB.offd.row_ids()])
            loc_cols = np.concatenate(
                [blkB.diag.indices, nloc + blkB.offd.indices]
            )
            loc_vals = np.concatenate([blkB.diag.data, blkB.offd.data])

            g_rows = nB_local + np.repeat(
                np.arange(len(g.row_gids), dtype=np.int64), np.diff(g.indptr)
            )
            g_cols = np.empty(g.nnz, dtype=np.int64)
            g_cols[~ext_mask] = g.gcols[~ext_mask] - lo_b
            g_cols[ext_mask] = nloc + ren.compressed
            Bstack = CSRMatrix.from_coo(
                (nB_local + len(g.row_gids), nloc + len(colmap_ext)),
                np.concatenate([loc_rows, g_rows]),
                np.concatenate([loc_cols, g_cols]),
                np.concatenate([loc_vals, g.vals]),
            )

            # ---- A's columns as stacked-B row indices ----
            # diag col j -> local B row j; offd col c -> stacked row
            # nB_local + c (gathered rows were requested in colmap order).
            a_rows = np.concatenate([blkA.diag.row_ids(), blkA.offd.row_ids()])
            a_cols = np.concatenate(
                [blkA.diag.indices, nB_local + blkA.offd.indices]
            )
            a_vals = np.concatenate([blkA.diag.data, blkA.offd.data])
            Astack = CSRMatrix.from_coo(
                (blkA.nrows, Bstack.nrows), a_rows, a_cols, a_vals
            )

            Cp = spgemm(Astack, Bstack, method=spgemm_method, kernel=f"{tag}.local")

            # Map compact columns back to global ids.
            # Map compact columns back to global ids (clip the ext lookup so
            # diag-column positions never index out of range; np.where
            # evaluates both branches).
            if len(colmap_ext):
                ext_lookup = colmap_ext[
                    np.clip(Cp.indices - nloc, 0, len(colmap_ext) - 1)
                ]
            else:
                ext_lookup = Cp.indices
            c_gcols = np.where(Cp.indices < nloc, Cp.indices + lo_b, ext_lookup)
        triplets.append((Cp.row_ids(), c_gcols, Cp.data))

    return ParCSRMatrix.from_rank_triplets(triplets, A.row_part, B.col_part)


def dist_rap(
    comm: SimComm,
    A: ParCSRMatrix,
    P: ParCSRMatrix,
    *,
    parallel_renumber: bool = True,
    spgemm_method: str = "one_pass",
    nthreads: int = 14,
    R: ParCSRMatrix | None = None,
) -> tuple[ParCSRMatrix, ParCSRMatrix]:
    """Distributed Galerkin product; returns ``(A_coarse, R)``.

    ``R = P^T`` is computed with the distributed transpose (and returned so
    the solve phase can keep it, §3.2).
    """
    from .transpose import dist_transpose

    if R is None:
        R = dist_transpose(comm, P, tag="rap.transpose")
    RA = dist_spgemm(
        comm, R, A,
        parallel_renumber=parallel_renumber,
        spgemm_method=spgemm_method,
        nthreads=nthreads,
        tag="rap.RA",
    )
    Ac = dist_spgemm(
        comm, RA, P,
        parallel_renumber=parallel_renumber,
        spgemm_method=spgemm_method,
        nthreads=nthreads,
        tag="rap.BP",
    )
    return Ac, R
