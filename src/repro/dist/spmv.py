"""Distributed SpMV (§4.1, Fig. 3b).

``y = A x``: each rank gathers its external vector entries via the halo
exchange, multiplies its ``diag`` block by the local part (this computation
overlaps the exchange in the modeled implementation) and its ``offd`` block
by the gathered buffer.

Resilience: the halo exchange is the only communication here, so on a
fault-injecting communicator (:class:`repro.faults.comm.FaultyComm`) every
``dist_spmv`` inherits the sequence-numbered ack / retry / backoff protocol
of :mod:`repro.dist.halo` and may raise
:class:`repro.faults.comm.CommFault`; callers that want checkpointed
recovery catch it (see ``DistAMGSolver.solve``).  ``dist_residual_norm``
additionally performs one allreduce, which a ``FaultyComm`` gates on
rank-failure windows.
"""

from __future__ import annotations

import numpy as np

from ..sparse.spmv import spmv, spmv_multi
from .comm import SimComm
from .halo import HaloExchange
from .parcsr import ParCSRMatrix, ParVector

__all__ = ["dist_spmv", "dist_residual_norm"]


def dist_spmv(
    comm: SimComm,
    A: ParCSRMatrix,
    x: ParVector,
    halo: HaloExchange,
    *,
    kernel: str = "spmv",
) -> ParVector:
    """``y = A x``; *x* may hold 1-D parts or ``(n_p, k)`` multi-column parts.

    The multi-column path performs one k-wide halo exchange and blocked
    diag/offd SpMVs (matrix blocks streamed once per k columns).
    """
    if x.part.n != A.col_part.n:
        raise ValueError("dimension mismatch")
    x_ext = halo(x)
    multi = x.parts[0].ndim == 2
    out = []
    for p, blk in enumerate(A.blocks):
        with comm.on_rank(p):
            if multi:
                y = spmv_multi(blk.diag, x.parts[p], kernel=kernel)
                if blk.offd.nnz:
                    y += spmv_multi(blk.offd, x_ext[p], kernel=kernel + ".offd")
            else:
                y = spmv(blk.diag, x.parts[p], kernel=kernel)
                if blk.offd.nnz:
                    y += spmv(blk.offd, x_ext[p], kernel=kernel + ".offd")
        out.append(y)
    return ParVector(out, A.row_part)


def dist_residual_norm(
    comm: SimComm,
    A: ParCSRMatrix,
    x: ParVector,
    b: ParVector,
    halo: HaloExchange,
    *,
    fused: bool = True,
) -> tuple[ParVector, float]:
    """``r = b - A x`` and its 2-norm (one allreduce)."""
    from ..perf.counters import VAL_BYTES, count, count_record, make_record
    from ..planexec import plan_enabled

    Ax = dist_spmv(comm, A, x, halo, kernel="spmv.residual")
    # The per-rank record fields depend only on the frozen row partition:
    # prebuild them once per (halo, fused) and replay thereafter.
    recs = None
    if plan_enabled():
        cache = getattr(halo, "_resnorm_recs", None)
        if cache is None:
            cache = halo._resnorm_recs = {}
        recs = cache.get(fused)
        if recs is None:
            recs = cache[fused] = [
                [make_record("residual_norm_fused", flops=3 * n,
                             bytes_read=2 * n * VAL_BYTES,
                             bytes_written=n * VAL_BYTES)]
                if fused else
                [make_record("residual_sub", flops=n,
                             bytes_read=2 * n * VAL_BYTES,
                             bytes_written=n * VAL_BYTES),
                 make_record("blas1.norm2", flops=2 * n,
                             bytes_read=n * VAL_BYTES)]
                for n in (len(b.parts[p]) for p in range(comm.nranks))
            ]
    parts = []
    sq = []
    for p in range(comm.nranks):
        with comm.on_rank(p):
            r = b.parts[p] - Ax.parts[p]
            n = len(r)
            if recs is not None:
                for rec in recs[p]:
                    count_record(rec)
            elif fused:
                count("residual_norm_fused", flops=3 * n,
                      bytes_read=2 * n * VAL_BYTES, bytes_written=n * VAL_BYTES)
            else:
                count("residual_sub", flops=n, bytes_read=2 * n * VAL_BYTES,
                      bytes_written=n * VAL_BYTES)
                count("blas1.norm2", flops=2 * n, bytes_read=n * VAL_BYTES)
        parts.append(r)
        sq.append(float(r @ r))
    total = comm.allreduce(sq)
    return ParVector(parts, A.row_part), float(np.sqrt(total))
