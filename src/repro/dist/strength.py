"""Distributed strength matrix.

Strength of connection is a purely row-local computation (the threshold is
the row's own off-diagonal maximum), so it needs no communication: each
rank evaluates the classical strength test over its combined
(diag + offd) rows.  The counted work matches the node-level kernel
(§3.3's prefix-sum-assembled strength matrix when ``parallel``).
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import IDX_BYTES, PTR_BYTES, VAL_BYTES, count
from ..sparse.csr import CSRMatrix
from ..sparse.ops import segment_sum
from .comm import SimComm
from .parcsr import ParCSRMatrix, RankBlock

__all__ = ["dist_strength"]


def dist_strength(
    comm: SimComm,
    A: ParCSRMatrix,
    theta: float = 0.25,
    max_row_sum: float = 1.0,
    *,
    parallel: bool = True,
) -> ParCSRMatrix:
    """Strength matrix with the same partitioning (and offd colmaps
    re-compressed to the surviving strong columns)."""
    blocks = []
    for p in range(comm.nranks):
        blk = A.blocks[p]
        nloc = blk.nrows
        d_rid = blk.diag.row_ids()
        o_rid = blk.offd.row_ids()
        diag_vals = blk.diag.diagonal()
        sign = np.where(diag_vals >= 0, -1.0, 1.0)

        d_off = blk.diag.indices != d_rid
        conn_d = sign[d_rid] * blk.diag.data
        conn_o = sign[o_rid] * blk.offd.data

        row_max = np.full(nloc, -np.inf)
        np.maximum.at(row_max, d_rid[d_off], conn_d[d_off])
        if blk.offd.nnz:
            np.maximum.at(row_max, o_rid, conn_o)
        thresh = theta * np.where(row_max > 0, row_max, np.inf)

        strong_d = d_off & (conn_d >= thresh[d_rid])
        strong_o = conn_o >= thresh[o_rid]

        if max_row_sum < 1.0:
            row_sum = segment_sum(blk.diag.data, d_rid, nloc)
            if blk.offd.nnz:
                row_sum += segment_sum(blk.offd.data, o_rid, nloc)
            dominant = np.abs(row_sum) > max_row_sum * np.abs(diag_vals)
            strong_d &= ~dominant[d_rid]
            strong_o &= ~dominant[o_rid]

        Sd = CSRMatrix.from_coo(
            (nloc, blk.diag.ncols),
            d_rid[strong_d], blk.diag.indices[strong_d],
            np.ones(int(strong_d.sum())),
        )
        # Re-compress the offd colmap to the surviving strong columns.
        kept_cols = blk.offd.indices[strong_o]
        new_map_idx = np.unique(kept_cols) if len(kept_cols) else np.empty(0, np.int64)
        remap = np.searchsorted(new_map_idx, kept_cols)
        So = CSRMatrix.from_coo(
            (nloc, len(new_map_idx)), o_rid[strong_o], remap,
            np.ones(int(strong_o.sum())),
        )
        colmap = blk.colmap[new_map_idx] if len(new_map_idx) else np.empty(0, np.int64)
        blocks.append(RankBlock(diag=Sd, offd=So, colmap=colmap))

        nnz = blk.nnz
        with comm.on_rank(p):
            count(
                "strength",
                flops=2 * nnz,
                bytes_read=nnz * (VAL_BYTES + IDX_BYTES) + (nloc + 1) * PTR_BYTES,
                bytes_written=(Sd.nnz + So.nnz) * IDX_BYTES + (nloc + 1) * PTR_BYTES,
                branches=float(nnz),
                parallel=parallel,
            )
    return ParCSRMatrix(blocks, A.row_part, A.col_part)
