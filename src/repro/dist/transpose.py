"""Distributed matrix transpose.

``C = A^T`` with ``C``'s row partition equal to ``A``'s column partition:
each rank scatters its entries ``(global col, global row, value)`` to the
rank owning the entry's column, then assembles its received triplets with
the parallel counting-sort transpose locally.  Used for ``R = P^T`` in the
coarse-operator construction and kept for the solve phase (§3.2).
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import VAL_BYTES, count
from .comm import SimComm
from .parcsr import ParCSRMatrix
from .rowgather import GLOBAL_IDX_BYTES

__all__ = ["dist_transpose"]


def dist_transpose(comm: SimComm, A: ParCSRMatrix, *, tag: str = "transpose") -> ParCSRMatrix:
    nranks = comm.nranks
    out_rows: list[list[np.ndarray]] = [[] for _ in range(nranks)]
    out_cols: list[list[np.ndarray]] = [[] for _ in range(nranks)]
    out_vals: list[list[np.ndarray]] = [[] for _ in range(nranks)]

    for p, blk in enumerate(A.blocks):
        r, c, v = blk.row_arrays_global(A.col_part.lo(p))
        gr = r + A.row_part.lo(p)
        dest = A.col_part.owner_of(c)
        with comm.on_rank(p):
            count("transpose.scatter",
                  bytes_read=len(v) * (VAL_BYTES + GLOBAL_IDX_BYTES),
                  bytes_written=len(v) * (VAL_BYTES + 2 * GLOBAL_IDX_BYTES),
                  branches=float(len(v)))
        for q in np.unique(dest):
            q = int(q)
            sel = dest == q
            if q != p:
                comm.log_message(
                    p, q,
                    int(sel.sum()) * (VAL_BYTES + 2 * GLOBAL_IDX_BYTES),
                    tag=tag,
                )
            # Transposed triplet: row = old column (local at q), col = old row.
            out_rows[q].append(A.col_part.to_local(c[sel], q))
            out_cols[q].append(gr[sel])
            out_vals[q].append(v[sel])

    triplets = []
    for q in range(nranks):
        if out_rows[q]:
            r = np.concatenate(out_rows[q])
            c = np.concatenate(out_cols[q])
            v = np.concatenate(out_vals[q])
        else:
            r = np.empty(0, dtype=np.int64)
            c = np.empty(0, dtype=np.int64)
            v = np.empty(0, dtype=np.float64)
        with comm.on_rank(q):
            # Local counting-sort assembly of received triplets.
            count("transpose.local_sort",
                  bytes_read=2 * len(v) * (VAL_BYTES + GLOBAL_IDX_BYTES),
                  bytes_written=len(v) * (VAL_BYTES + GLOBAL_IDX_BYTES))
        triplets.append((r, c, v))

    return ParCSRMatrix.from_rank_triplets(triplets, A.col_part, A.row_part)
