"""Fault-injection harness and resilience primitives.

``repro.faults`` makes the simulated interconnect *misbehave on purpose*
and gives the solvers the machinery to survive it:

* :class:`FaultPlan` / :class:`RetryPolicy` — a seeded, JSON-serializable
  description of message drops, corruption, slow ranks, and transient
  rank-failure windows (:mod:`repro.faults.plan`);
* :class:`FaultyComm` — a drop-in :class:`~repro.dist.comm.SimComm` that
  injects the plan into every point-to-point delivery and collective, with
  sequence-numbered acks, exponential backoff, and bounded retries whose
  cost is charged to the network model (:mod:`repro.faults.comm`);
* :class:`ResidualGuard` — per-iteration NaN/Inf, divergence, and
  stagnation detection used by every solver (:mod:`repro.faults.guards`);
* :class:`ShardFaultPlan` — seeded crash/flap/slow windows for whole
  modeled *service ranks* on the sharded tier's virtual clock, driving the
  rank-failure lifecycle of
  :class:`~repro.serve.shard.ShardedSolveService`
  (:mod:`repro.faults.shard_plan`).

``FaultyComm`` (and the exception types) import the distributed stack, so
they are loaded lazily — ``from repro.faults import FaultPlan`` stays
cheap.
"""

from __future__ import annotations

from .guards import GuardLimits, ResidualGuard, nonfinite_columns
from .plan import FaultEvent, FaultPlan, RetryPolicy
from .shard_plan import ShardFaultPlan

__all__ = [
    "FaultPlan", "RetryPolicy", "FaultEvent", "ShardFaultPlan",
    "GuardLimits", "ResidualGuard", "nonfinite_columns",
    "FaultyComm", "CommFault", "RetriesExhausted", "RankFailure", "ACK_BYTES",
]

_COMM_NAMES = ("FaultyComm", "CommFault", "RetriesExhausted", "RankFailure",
               "ACK_BYTES")


def __getattr__(name: str):
    if name in _COMM_NAMES:
        from . import comm as _comm

        return getattr(_comm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
