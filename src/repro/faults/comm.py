"""Fault-injecting communicator: :class:`FaultyComm`.

``FaultyComm`` is a drop-in :class:`~repro.dist.comm.SimComm` whose
point-to-point deliveries run a **reliable protocol**: every message is
sequence-numbered, acknowledged by the receiver, and retransmitted with
exponential backoff when the :class:`~repro.faults.plan.FaultPlan` drops or
corrupts it.  All protocol traffic — the original send, every
retransmission, and every ack — is logged through the normal ``SimComm``
message log, so the :class:`~repro.perf.network.NetworkModel` charges the
recovery cost alongside the useful traffic; the sender-side timeout/backoff
stalls are added on top via :meth:`NetworkModel.retry_penalty`.

Because the rank "memories" share one Python process, payloads always
arrive intact once an attempt succeeds: corruption is modeled as a checksum
failure at the receiver (nack → retransmission), never as silently wrong
numbers reaching the solver.  A solve that survives its fault plan is
therefore **bit-identical** to the fault-free solve — the faults cost
modeled time and show up in ``SolveResult.fault_events``, nothing else.

Deliveries that exhaust their retries raise :class:`RetriesExhausted`, or
:class:`RankFailure` when a transient rank-failure window is the cause;
``DistAMGSolver.solve`` catches these and resumes from its last iterate
checkpoint (see :mod:`repro.dist.solver`).
"""

from __future__ import annotations

import numpy as np

from ..dist.comm import SimComm
from ..perf.counters import current_phase
from ..perf.network import NetworkModel
from .plan import FaultEvent, FaultPlan

__all__ = ["FaultyComm", "CommFault", "RetriesExhausted", "RankFailure",
           "ACK_BYTES"]

#: Modeled size of an ack/nack message (sequence number + checksum).
ACK_BYTES = 16.0


class CommFault(RuntimeError):
    """A reliable delivery (or collective) could not complete."""

    def __init__(self, msg: str, *, src: int = -1, dst: int = -1,
                 tag: str = "", seq: int = -1) -> None:
        super().__init__(msg)
        self.src = src
        self.dst = dst
        self.tag = tag
        self.seq = seq


class RetriesExhausted(CommFault):
    """Every retransmission of a message was dropped/corrupted."""


class RankFailure(CommFault):
    """A delivery failed because a rank was inside a failure window."""

    def __init__(self, rank: int, **kw) -> None:
        super().__init__(f"rank {rank} is down", **kw)
        self.rank = rank


class FaultyComm(SimComm):
    """A :class:`SimComm` that injects the faults of a :class:`FaultPlan`.

    The ``clock`` advances by one per point-to-point delivery attempt (and
    per collective attempt), which is the time base of the plan's
    ``rank_failures`` windows.  ``events`` records every injected fault and
    every delivery that needed retries; solvers snapshot it into
    ``SolveResult.fault_events``.
    """

    supports_fault_injection = True

    def __init__(self, nranks: int, plan: FaultPlan | None = None) -> None:
        super().__init__(nranks)
        self.plan = plan if plan is not None else FaultPlan()
        self.events: list[FaultEvent] = []
        self.clock = 0
        self._rng = np.random.default_rng(self.plan.seed)
        self._next_seq = 0

    # -- reliable point-to-point -------------------------------------------
    def reliable_send(self, src: int, dst: int, nbytes: float, *,
                      tag: str = "", persistent: bool = False) -> int:
        """Deliver one sequence-numbered message, retrying on faults.

        Returns the number of retransmissions that were needed (0 on a
        clean first attempt).  Raises :class:`RankFailure` /
        :class:`RetriesExhausted` when the retry budget runs out.
        """
        plan, policy = self.plan, self.plan.retry
        seq = self._next_seq
        self._next_seq += 1
        phase = current_phase()
        for attempt in range(policy.max_retries + 1):
            self.clock += 1
            retry = attempt > 0
            self.log_message(
                src, dst, nbytes,
                persistent=persistent and not retry,
                tag=tag if not retry else f"{tag}.retry",
            )
            fault = plan.draw(self._rng, src, dst, self.clock)
            if fault is None:
                # Receiver checksums the payload and acks the sequence number.
                self.log_message(dst, src, ACK_BYTES, tag=f"{tag}.ack")
                if retry:
                    self.events.append(FaultEvent(
                        "delivered_after_retry", src=src, dst=dst, tag=tag,
                        seq=seq, attempt=attempt, clock=self.clock,
                        phase=phase,
                    ))
                return attempt
            self.events.append(FaultEvent(
                fault, src=src, dst=dst, tag=tag, seq=seq, attempt=attempt,
                clock=self.clock, phase=phase,
            ))
        rank = plan.failed_rank((src, dst), self.clock)
        if rank is not None:
            raise RankFailure(rank, src=src, dst=dst, tag=tag, seq=seq)
        raise RetriesExhausted(
            f"message {src}->{dst} tag={tag!r} seq={seq} lost after "
            f"{policy.max_retries + 1} attempts",
            src=src, dst=dst, tag=tag, seq=seq,
        )

    # -- collectives --------------------------------------------------------
    def _collective_gate(self, kind: str) -> None:
        """Fail a collective while any participating rank is down."""
        policy = self.plan.retry
        phase = current_phase()
        ranks = range(self.nranks)
        for attempt in range(policy.max_retries + 1):
            self.clock += 1
            rank = self.plan.failed_rank(ranks, self.clock)
            if rank is None:
                return
            self.events.append(FaultEvent(
                "collective_down", src=rank, tag=kind, attempt=attempt,
                clock=self.clock, phase=phase,
            ))
        raise RankFailure(rank, tag=kind)

    def allreduce(self, values, *, kind: str = "allreduce") -> float:
        self._collective_gate(kind)
        return super().allreduce(values, kind=kind)

    def scan_offsets(self, counts: np.ndarray) -> np.ndarray:
        self._collective_gate("scan")
        return super().scan_offsets(counts)

    # -- modeled time -------------------------------------------------------
    def comm_time(self, net: NetworkModel, *, phase: str | None = None) -> float:
        """Logged traffic time plus retry stalls and slow-rank surcharges."""
        t = super().comm_time(net, phase=phase)
        policy = self.plan.retry
        for e in self.events:
            if phase is not None and e.phase != phase:
                continue
            if e.kind in ("drop", "corrupt", "rank_down", "collective_down"):
                t += net.retry_penalty(policy.timeout, e.attempt, policy.backoff)
        if self.plan.slow_ranks:
            for m in self.messages:
                if phase is not None and m.phase != phase:
                    continue
                factor = max(self.plan.slow_ranks.get(m.event.src, 1.0),
                             self.plan.slow_ranks.get(m.event.dst, 1.0))
                if factor > 1.0:
                    t += (factor - 1.0) * net.message_time(m.event)
        return t

    # -- bookkeeping --------------------------------------------------------
    def event_counts(self) -> dict[str, int]:
        """Histogram of recorded fault-event kinds."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def clear_logs(self) -> None:
        super().clear_logs()
        self.events.clear()
