"""Per-iteration convergence guardrails shared by every solver.

A production solver must fail *loudly then gracefully*: a NaN in the
residual, a residual exploding past any reasonable bound, or a stalled
iteration should terminate the loop with a recorded verdict — not burn the
remaining ``maxiter`` iterations or silently return garbage.

:class:`ResidualGuard` watches one residual-norm stream and returns a
verdict string the solvers record into ``SolveResult.fault_events`` (and
the facade's degradation ladder acts on — see :mod:`repro.api`):

``"nonfinite"``
    the residual norm is NaN/Inf;
``"diverged"``
    the norm exceeded ``divergence_factor`` times the convergence
    reference (initial residual / ``||b||``);
``"stagnated"``
    less than ``stagnation_improvement`` relative progress over the last
    ``stagnation_window`` iterations (only checked when enabled — Krylov
    methods with non-monotone or plateauing-but-correct residuals keep it
    off).

The limits are deliberately loose: a guard that fires on a legitimately
slow solve is worse than no guard, so only pathological behavior trips.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["GuardLimits", "ResidualGuard", "nonfinite_columns"]


@dataclass(frozen=True)
class GuardLimits:
    """Thresholds for :class:`ResidualGuard`."""

    divergence_factor: float = 1e8
    stagnation_window: int = 40
    stagnation_improvement: float = 1e-3


DEFAULT_LIMITS = GuardLimits()


class ResidualGuard:
    """Watches one residual-norm history for NaN/Inf, blow-up, and stalls."""

    def __init__(self, ref: float, *, limits: GuardLimits | None = None,
                 stagnation: bool = True) -> None:
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        # A broken reference (0 / NaN) can't anchor relative tests; fall
        # back to 1 so the nonfinite check still works.
        self.ref = float(ref) if np.isfinite(ref) and ref > 0.0 else 1.0
        self.stagnation = stagnation
        self._window: deque[float] = deque(maxlen=self.limits.stagnation_window)

    def check(self, rn: float) -> str | None:
        """Verdict for the newest residual norm, or None if healthy."""
        if not np.isfinite(rn):
            return "nonfinite"
        if rn > self.limits.divergence_factor * self.ref:
            return "diverged"
        self._window.append(float(rn))
        if (
            self.stagnation
            and len(self._window) == self._window.maxlen
            and self._window[0] > 0.0
            and rn > (1.0 - self.limits.stagnation_improvement) * self._window[0]
        ):
            return "stagnated"
        return None


def nonfinite_columns(norms: np.ndarray) -> np.ndarray:
    """Boolean mask of columns whose norm is NaN/Inf (multi-RHS guard)."""
    return ~np.isfinite(np.asarray(norms, dtype=np.float64))
