"""Deterministic fault plans for the simulated interconnect.

A :class:`FaultPlan` describes *what goes wrong* on the wire — message
drops, payload corruption (detected by the receiver's checksum), per-rank
slowdowns, and transient whole-rank failure windows — plus the
:class:`RetryPolicy` the reliable-delivery protocol uses to survive it.
Everything is driven by one seeded RNG consumed in delivery-attempt order,
so a given ``(plan, workload)`` pair injects exactly the same faults on
every run: the injection harness is a reproducible test fixture, not a
chaos monkey.

Plans serialize to/from JSON (``python -m repro solve --faults PLAN.json``)::

    {
      "seed": 7,
      "drop_prob": 0.05,
      "corrupt_prob": 0.01,
      "slow_ranks": {"2": 1.5},
      "rank_failures": [[1, 120, 160]],
      "retry": {"max_retries": 6, "timeout": 5e-5, "backoff": 2.0}
    }

``rank_failures`` windows are ``[rank, start, end)`` in units of the
:class:`~repro.faults.comm.FaultyComm` delivery-attempt clock: every
point-to-point delivery attempt (including retries) advances the clock by
one, so a window models a rank that is unreachable for a stretch of
protocol activity and then comes back.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = ["RetryPolicy", "FaultPlan", "FaultEvent"]

#: Fault kinds a plan can inject on a point-to-point delivery attempt.
FAULT_KINDS = ("drop", "corrupt", "rank_down")


@dataclass(frozen=True)
class RetryPolicy:
    """Reliable-delivery knobs: ack timeout, exponential backoff, retry cap.

    A failed attempt costs the sender ``timeout * backoff**attempt`` modeled
    seconds (see :meth:`repro.perf.network.NetworkModel.retry_penalty`)
    before the retransmission goes out; after ``max_retries`` retransmissions
    the delivery raises (:class:`~repro.faults.comm.CommFault`).
    """

    max_retries: int = 6
    timeout: float = 5e-5
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout < 0.0:
            raise ValueError("timeout must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of interconnect misbehavior.

    Attributes
    ----------
    seed:
        Seed of the RNG consumed once per delivery attempt.
    drop_prob:
        Probability a point-to-point message silently vanishes (no ack).
    corrupt_prob:
        Probability a delivered payload fails the receiver's checksum
        (nack → retransmission; the consumer never sees corrupted data).
    slow_ranks:
        ``rank -> slowdown factor``: every message touching the rank is
        charged ``factor`` times its modeled wire time.
    rank_failures:
        ``(rank, start, end)`` windows (attempt-clock units) during which
        the rank neither sends, receives, nor participates in collectives.
    retry:
        The :class:`RetryPolicy` the reliable protocol runs under.
    """

    seed: int = 0
    drop_prob: float = 0.0
    corrupt_prob: float = 0.0
    slow_ranks: dict[int, float] = field(default_factory=dict)
    rank_failures: tuple[tuple[int, int, int], ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        if not 0.0 <= self.corrupt_prob < 1.0:
            raise ValueError("corrupt_prob must be in [0, 1)")
        if self.drop_prob + self.corrupt_prob >= 1.0:
            raise ValueError("drop_prob + corrupt_prob must be < 1")
        object.__setattr__(
            self, "rank_failures",
            tuple(tuple(int(v) for v in w) for w in self.rank_failures),
        )
        object.__setattr__(
            self, "slow_ranks",
            {int(k): float(v) for k, v in self.slow_ranks.items()},
        )
        for rank, start, end in self.rank_failures:
            if start >= end:
                raise ValueError(f"empty failure window {(rank, start, end)}")
        for factor in self.slow_ranks.values():
            if factor < 1.0:
                raise ValueError("slow_ranks factors must be >= 1")

    # -- fault drawing ------------------------------------------------------
    def failed_rank(self, ranks, clock: int) -> int | None:
        """The first rank of *ranks* down at *clock*, or None."""
        for rank, start, end in self.rank_failures:
            if rank in ranks and start <= clock < end:
                return rank
        return None

    def draw(self, rng: np.random.Generator, src: int, dst: int,
             clock: int) -> str | None:
        """Fault injected into one delivery attempt, or None for success.

        Rank-failure windows dominate (no RNG draw — a dead rank fails
        deterministically); otherwise one uniform draw picks drop /
        corrupt / success so RNG consumption is identical across kinds.
        """
        if self.failed_rank((src, dst), clock) is not None:
            return "rank_down"
        u = float(rng.random())
        if u < self.drop_prob:
            return "drop"
        if u < self.drop_prob + self.corrupt_prob:
            return "corrupt"
        return None

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d["rank_failures"] = [list(w) for w in self.rank_failures]
        return d

    def to_json(self, path=None, *, indent: int = 2) -> str:
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            with open(path, "w") as f:
                f.write(text + "\n")
        return text

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        d = dict(d)
        retry = d.pop("retry", None)
        if isinstance(retry, dict):
            retry = RetryPolicy(**retry)
        return cls(retry=retry or RetryPolicy(), **d)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_json_file(cls, path) -> "FaultPlan":
        with open(path) as f:
            return cls.from_dict(json.load(f))


@dataclass
class FaultEvent:
    """One observed fault / recovery action, as recorded in
    ``SolveResult.fault_events``.

    ``kind`` is one of the injected kinds (``drop``, ``corrupt``,
    ``rank_down``, ``collective_down``), a protocol outcome
    (``delivered_after_retry``), or a solver-level action
    (``checkpoint_restart``, ``nonfinite``, ``diverged``, ``stagnated``,
    ``breakdown``, ``degraded``).
    """

    kind: str
    src: int = -1
    dst: int = -1
    tag: str = ""
    seq: int = -1
    attempt: int = 0
    clock: int = -1
    phase: str = ""
    detail: str = ""

    def to_dict(self) -> dict:
        return asdict(self)
