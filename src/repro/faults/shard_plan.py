"""Deterministic rank-failure plans for the sharded service tier.

A :class:`ShardFaultPlan` describes *what goes wrong with the fleet* — not
the wire, which is :class:`~repro.faults.plan.FaultPlan`'s job, but whole
modeled service ranks of a
:class:`~repro.serve.shard.ShardedSolveService` crashing, flapping, and
responding slowly.  Windows are expressed on the **modeled clock** (virtual
seconds, the same clock the service scheduler runs on), so a plan composes
with any seeded workload: the pair ``(plan, workload)`` replays the exact
same kill-and-rejoin schedule on every run, which is what makes the chaos
benchmark (``benchmarks/bench_chaos.py``) and the CI smoke step
deterministic.

Three kinds of windows:

* ``crashes`` — ``[rank, start, end)``: the rank is dead for the whole
  window (loses its queue, its in-flight batches, and its hierarchy
  cache), then comes back at ``end`` and re-enters through the recovery
  lifecycle (``rejoining`` → cache re-warm → ``up``).
* ``flaps`` — ``[rank, start, end, period]``: the rank alternates dead /
  alive with the given period (down for the first half of each period)
  inside the window — the pathological neighbor that keeps tripping its
  circuit breaker.
* ``slow`` — ``[rank, start, end, miss_prob]``: the rank is *alive* but
  degraded; each heartbeat probe during the window is missed with
  probability ``miss_prob``, drawn from the plan's seeded RNG in
  tick-then-rank order.  A slow rank oscillates between ``up`` and
  ``suspect`` (and can be declared ``down`` if it misses enough probes in
  a row) without ever losing state.

``retry`` is the :class:`~repro.faults.plan.RetryPolicy` the *router*
runs failover under — the same policy type the reliable-delivery protocol
uses, so there is exactly one backoff knob in the library.  Failed-over
requests are charged ``NetworkModel.retry_penalty``-style backoff delays
on the modeled clock before their re-forward goes out.

Plans serialize to/from JSON
(``python -m repro serve-bench --ranks 4 --chaos PLAN.json``)::

    {
      "seed": 7,
      "crashes": [[1, 0.010, 0.025]],
      "flaps": [[2, 0.005, 0.015, 0.004]],
      "slow": [[3, 0.0, 0.020, 0.5]],
      "retry": {"max_retries": 6, "timeout": 5e-5, "backoff": 2.0}
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from .plan import RetryPolicy

__all__ = ["ShardFaultPlan"]


def _merge_windows(windows: list[tuple[float, float]]) -> tuple[tuple[float, float], ...]:
    """Sort and coalesce overlapping/abutting ``(start, end)`` windows."""
    out: list[list[float]] = []
    for start, end in sorted(windows):
        if out and start <= out[-1][1]:
            out[-1][1] = max(out[-1][1], end)
        else:
            out.append([start, end])
    return tuple((s, e) for s, e in out)


@dataclass(frozen=True)
class ShardFaultPlan:
    """Seeded description of service-rank misbehavior on the modeled clock.

    Attributes
    ----------
    seed:
        Seed of the RNG that decides slow-window heartbeat misses
        (consumed in tick-then-rank order by the health tracker).
    crashes:
        ``(rank, start, end)`` windows (modeled seconds) during which the
        rank is dead: it serves nothing, and everything it held — queued
        requests, in-flight batches, cached hierarchies — is lost.
    flaps:
        ``(rank, start, end, period)`` windows: the rank alternates dead
        (first half of each period) and alive inside the window.
    slow:
        ``(rank, start, end, miss_prob)`` windows: the rank stays alive
        but misses each heartbeat probe with probability ``miss_prob``.
    retry:
        Router-level failover :class:`~repro.faults.plan.RetryPolicy`:
        backoff delays charged per re-forward attempt, and the attempt cap
        after which a request resolves to a structured ``failed`` result.
    """

    seed: int = 0
    crashes: tuple[tuple[int, float, float], ...] = ()
    flaps: tuple[tuple[int, float, float, float], ...] = ()
    slow: tuple[tuple[int, float, float, float], ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "crashes",
            tuple((int(r), float(s), float(e)) for r, s, e in self.crashes))
        object.__setattr__(
            self, "flaps",
            tuple((int(r), float(s), float(e), float(p))
                  for r, s, e, p in self.flaps))
        object.__setattr__(
            self, "slow",
            tuple((int(r), float(s), float(e), float(m))
                  for r, s, e, m in self.slow))
        for rank, start, end in self.crashes:
            if rank < 0 or start < 0 or start >= end:
                raise ValueError(f"bad crash window {(rank, start, end)}")
        for rank, start, end, period in self.flaps:
            if rank < 0 or start < 0 or start >= end or period <= 0:
                raise ValueError(
                    f"bad flap window {(rank, start, end, period)}")
        for rank, start, end, miss in self.slow:
            if rank < 0 or start < 0 or start >= end or not 0 <= miss < 1:
                raise ValueError(
                    f"bad slow window {(rank, start, end, miss)}")

    # -- queries -------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (the service must then be
        bit-identical to running without a plan at all)."""
        return not (self.crashes or self.flaps or self.slow)

    def ranks(self) -> tuple[int, ...]:
        """Every rank the plan touches, sorted."""
        return tuple(sorted(
            {w[0] for w in self.crashes}
            | {w[0] for w in self.flaps}
            | {w[0] for w in self.slow}))

    def down_windows(self, rank: int) -> tuple[tuple[float, float], ...]:
        """Merged ``(start, end)`` windows during which *rank* is dead.

        Crash windows verbatim plus the down phase of every flap period
        (the first ``period / 2`` of each), coalesced and sorted.
        """
        windows = [(s, e) for r, s, e in self.crashes if r == rank]
        for r, start, end, period in self.flaps:
            if r != rank:
                continue
            t = start
            while t < end:
                windows.append((t, min(t + period / 2.0, end)))
                t += period
        return _merge_windows(windows)

    def is_down(self, rank: int, t: float) -> bool:
        """Whether *rank* is dead at modeled time *t*."""
        return any(s <= t < e for s, e in self.down_windows(rank))

    def miss_prob(self, rank: int, t: float) -> float:
        """Heartbeat miss probability of an *alive* rank at time *t*."""
        for r, start, end, miss in self.slow:
            if r == rank and start <= t < end:
                return miss
        return 0.0

    def end_time(self) -> float:
        """The last modeled instant any window is active (0.0 when empty)."""
        ends = ([e for _, _, e in self.crashes]
                + [e for _, _, e, _ in self.flaps]
                + [e for _, _, e, _ in self.slow])
        return max(ends, default=0.0)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d["crashes"] = [list(w) for w in self.crashes]
        d["flaps"] = [list(w) for w in self.flaps]
        d["slow"] = [list(w) for w in self.slow]
        return d

    def to_json(self, path=None, *, indent: int = 2) -> str:
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            with open(path, "w") as f:
                f.write(text + "\n")
        return text

    @classmethod
    def from_dict(cls, d: dict) -> "ShardFaultPlan":
        d = dict(d)
        retry = d.pop("retry", None)
        if isinstance(retry, dict):
            retry = RetryPolicy(**retry)
        return cls(retry=retry or RetryPolicy(), **d)

    @classmethod
    def from_json(cls, text: str) -> "ShardFaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_json_file(cls, path) -> "ShardFaultPlan":
        with open(path) as f:
            return cls.from_dict(json.load(f))
