"""Krylov solvers: FGMRES (the paper's multi-node outer solver), GMRES, CG.

The ``*_multi`` variants solve a block of right-hand sides in lockstep with
blocked kernels (see :mod:`repro.sparse.spmv`).
"""

from .bicgstab import bicgstab
from .cg import pcg, pcg_multi
from .gmres import KrylovResult, fgmres, fgmres_multi, gmres

__all__ = [
    "bicgstab",
    "pcg",
    "pcg_multi",
    "KrylovResult",
    "fgmres",
    "fgmres_multi",
    "gmres",
]
