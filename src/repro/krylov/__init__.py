"""Krylov solvers: FGMRES (the paper's multi-node outer solver), GMRES, CG."""

from .bicgstab import bicgstab
from .cg import pcg
from .gmres import KrylovResult, fgmres, gmres

__all__ = ["bicgstab", "pcg", "KrylovResult", "fgmres", "gmres"]
