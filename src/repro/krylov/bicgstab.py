"""BiCGStab — the nonsymmetric Krylov workhorse.

Completes the solver family for the nonsymmetric suite members
(``atmosmod*``): unlike CG it tolerates nonsymmetry, unlike GMRES it has
constant memory.  Supports right preconditioning with an AMG V-cycle.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..perf.counters import phase
from ..sparse.blas1 import axpy, dot, norm2
from ..sparse.csr import CSRMatrix
from ..sparse.spmv import spmv
from .gmres import KrylovResult

__all__ = ["bicgstab"]


def bicgstab(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    precondition: Callable[[np.ndarray], np.ndarray] | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-7,
    max_iter: int = 1000,
) -> KrylovResult:
    """Right-preconditioned BiCGStab."""
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    M = precondition if precondition is not None else (lambda v: v.copy())

    with phase("SpMV"):
        r = b - spmv(A, x, kernel="spmv.krylov")
    with phase("BLAS1"):
        r0hat = r.copy()
        rho = alpha = omega = 1.0
        v = np.zeros(n)
        p = np.zeros(n)
        nrm0 = norm2(r)
    residuals = [nrm0]
    if nrm0 == 0.0:
        return KrylovResult(x, 0, residuals, True)

    for it in range(1, max_iter + 1):
        with phase("BLAS1"):
            rho_new = dot(r0hat, r)
        if rho_new == 0.0:
            break  # breakdown
        if it == 1:
            p = r.copy()
        else:
            beta = (rho_new / rho) * (alpha / omega)
            with phase("BLAS1"):
                p = r + beta * (p - omega * v)
        phat = M(p)
        with phase("SpMV"):
            v = spmv(A, phat, kernel="spmv.krylov")
        with phase("BLAS1"):
            denom = dot(r0hat, v)
        if denom == 0.0:
            break
        alpha = rho_new / denom
        s = r - alpha * v
        with phase("BLAS1"):
            s_nrm = norm2(s)
        if s_nrm <= tol * nrm0:
            with phase("BLAS1"):
                axpy(alpha, phat, x)
            residuals.append(s_nrm)
            return KrylovResult(x, it, residuals, True)
        shat = M(s)
        with phase("SpMV"):
            t = spmv(A, shat, kernel="spmv.krylov")
        with phase("BLAS1"):
            tt = dot(t, t)
        if tt == 0.0:
            break
        with phase("BLAS1"):
            omega = dot(t, s) / tt
            axpy(alpha, phat, x)
            axpy(omega, shat, x)
        r = s - omega * t
        with phase("BLAS1"):
            nrm = norm2(r)
        residuals.append(nrm)
        rho = rho_new
        if nrm <= tol * nrm0:
            return KrylovResult(x, it, residuals, True)
        if omega == 0.0:
            break
    return KrylovResult(x, len(residuals) - 1, residuals, False)
