"""Preconditioned conjugate gradients.

Another Krylov baseline (§1 cites CG's all-reduce-bound scaling); also used
in the examples to show AMG as a generic preconditioner for SPD systems.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..perf.counters import phase
from ..sparse.blas1 import axpy, dot, norm2, waxpby
from ..sparse.csr import CSRMatrix
from ..sparse.spmv import spmv
from .gmres import KrylovResult

__all__ = ["pcg"]


def pcg(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    precondition: Callable[[np.ndarray], np.ndarray] | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-7,
    max_iter: int = 1000,
) -> KrylovResult:
    """Preconditioned CG for SPD systems."""
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    M = precondition if precondition is not None else (lambda v: v.copy())

    with phase("SpMV"):
        r = b - spmv(A, x, kernel="spmv.krylov")
    z = M(r)
    p = z.copy()
    with phase("BLAS1"):
        rz = dot(r, z)
        r0 = norm2(r)
    residuals = [r0]
    if r0 == 0.0:
        return KrylovResult(x, 0, residuals, True)

    for it in range(1, max_iter + 1):
        with phase("SpMV"):
            Ap = spmv(A, p, kernel="spmv.krylov")
        with phase("BLAS1"):
            alpha = rz / dot(p, Ap)
            axpy(alpha, p, x)
            axpy(-alpha, Ap, r)
            rn = norm2(r)
        residuals.append(rn)
        if rn <= tol * r0:
            return KrylovResult(x, it, residuals, True)
        z = M(r)
        with phase("BLAS1"):
            rz_new = dot(r, z)
            beta = rz_new / rz
            p = waxpby(1.0, z, beta, p)
        rz = rz_new
    return KrylovResult(x, max_iter, residuals, False)
