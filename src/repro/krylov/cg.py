"""Preconditioned conjugate gradients.

Another Krylov baseline (§1 cites CG's all-reduce-bound scaling); also used
in the examples to show AMG as a generic preconditioner for SPD systems.

Guardrails: both drivers detect NaN/Inf residuals, divergence, and the CG
breakdown ``p'Ap <= 0`` (non-positive curvature — the matrix or the
preconditioner is not SPD) and terminate with the verdict recorded in
``KrylovResult.fault_events`` instead of iterating on garbage.  In the
blocked driver each right-hand-side column is guarded independently: a
broken column is frozen out of the active block without poisoning its
siblings.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..faults.guards import ResidualGuard
from ..faults.plan import FaultEvent
from ..perf.counters import phase
from ..results import KrylovResult, resolve_maxiter
from ..sparse.blas1 import (
    axpy,
    axpy_multi,
    dot,
    dot_multi,
    norm2,
    norm2_multi,
    waxpby,
    waxpby_multi,
)
from ..sparse.csr import CSRMatrix
from ..sparse.spmv import spmv, spmv_multi

__all__ = ["pcg", "pcg_multi"]


def pcg(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    precondition: Callable[[np.ndarray], np.ndarray] | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-7,
    maxiter: int | None = None,
    max_iter: int | None = None,
) -> KrylovResult:
    """Preconditioned CG for SPD systems."""
    max_iter = resolve_maxiter(maxiter, max_iter, 1000)
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    M = precondition if precondition is not None else (lambda v: v.copy())

    with phase("SpMV"):
        r = b - spmv(A, x, kernel="spmv.krylov")
    z = M(r)
    p = z.copy()
    with phase("BLAS1"):
        rz = dot(r, z)
        r0 = norm2(r)
    residuals = [r0]
    if r0 == 0.0:
        return KrylovResult(x, 0, residuals, True)
    if not np.isfinite(r0):
        return KrylovResult(x, 0, residuals, False, degraded=True,
                            degraded_reason="nonfinite initial residual",
                            fault_events=[FaultEvent(
                                "nonfinite", detail="initial residual")])
    guard = ResidualGuard(r0, stagnation=False)

    for it in range(1, max_iter + 1):
        with phase("SpMV"):
            Ap = spmv(A, p, kernel="spmv.krylov")
        with phase("BLAS1"):
            pAp = dot(p, Ap)
            if pAp <= 0.0 or not np.isfinite(pAp):
                return KrylovResult(
                    x, it - 1, residuals, False, degraded=True,
                    degraded_reason="CG breakdown (non-positive curvature)",
                    fault_events=[FaultEvent(
                        "breakdown",
                        detail=f"p'Ap={pAp:g} at iteration {it}")])
            alpha = rz / pAp
            axpy(alpha, p, x)
            axpy(-alpha, Ap, r)
            rn = norm2(r)
        residuals.append(rn)
        if rn <= tol * r0:
            return KrylovResult(x, it, residuals, True)
        verdict = guard.check(rn)
        if verdict is not None:
            return KrylovResult(
                x, it, residuals, False, degraded=True,
                degraded_reason=f"{verdict} at iteration {it}",
                fault_events=[FaultEvent(verdict, detail=f"iter {it}")])
        z = M(r)
        with phase("BLAS1"):
            rz_new = dot(r, z)
            beta = rz_new / rz
            p = waxpby(1.0, z, beta, p)
        rz = rz_new
    return KrylovResult(x, max_iter, residuals, False)


def pcg_multi(
    A: CSRMatrix,
    B: np.ndarray,
    *,
    precondition_multi: Callable[[np.ndarray], np.ndarray] | None = None,
    precondition: Callable[[np.ndarray], np.ndarray] | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-7,
    maxiter: int | None = None,
    max_iter: int | None = None,
) -> list[KrylovResult]:
    """Blocked PCG over an ``(n, k)`` block of right-hand sides.

    The *k* CG recurrences run in lockstep with per-column scalars
    (``alpha``, ``beta``), so every SpMV and preconditioner application is
    one blocked kernel.  A column that converges is frozen (dropped from the
    active block), making column *j* bit-identical to
    ``pcg(A, B[:, j], ...)``.  A column that *breaks* — NaN/Inf residual,
    divergence, non-positive curvature — is likewise frozen and flagged
    (``converged=False``, the verdict in its ``fault_events``) without
    touching its siblings.  ``precondition_multi`` takes an
    ``(n, k_active)`` block (e.g. ``AMGSolver.precondition_multi``); a
    single-vector ``precondition`` is applied column-wise instead.
    """
    from ..faults.guards import DEFAULT_LIMITS
    from .gmres import _resolve_multi_precondition

    max_iter = resolve_maxiter(maxiter, max_iter, 1000)
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError(f"expected a 2-D (n, k) block, got shape {B.shape}")
    n, k = B.shape
    if precondition_multi is None and precondition is None:
        M = lambda Vb: Vb.copy()  # noqa: E731 — matches pcg's identity default
    else:
        M = _resolve_multi_precondition(precondition_multi, precondition)

    X = np.zeros((n, k)) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    with phase("SpMV"):
        R = B - spmv_multi(A, X, kernel="spmv.krylov")
    Z = M(R)
    P = Z.copy()
    with phase("BLAS1"):
        rz = dot_multi(R, Z)
        r0 = norm2_multi(R)
    residuals: list[list[float]] = [[float(r0[c])] for c in range(k)]
    iterations = np.zeros(k, dtype=np.int64)
    converged = r0 == 0.0
    failed = np.zeros(k, dtype=bool)
    col_events: list[list[FaultEvent]] = [[] for _ in range(k)]
    for c in np.flatnonzero(~np.isfinite(r0)):
        failed[c] = True
        col_events[c].append(FaultEvent("nonfinite",
                                        detail="initial residual"))
    active = np.flatnonzero(~converged & ~failed)
    div_factor = DEFAULT_LIMITS.divergence_factor

    for it in range(1, max_iter + 1):
        if len(active) == 0:
            break
        Pa = P[:, active]
        with phase("SpMV"):
            APa = spmv_multi(A, Pa, kernel="spmv.krylov")
        with phase("BLAS1"):
            curv = dot_multi(Pa, APa)
        bad = np.flatnonzero((curv <= 0.0) | ~np.isfinite(curv))
        if len(bad):
            for idx in bad:
                c = active[idx]
                failed[c] = True
                col_events[c].append(FaultEvent(
                    "breakdown",
                    detail=f"p'Ap={curv[idx]:g} at iteration {it}"))
            keep = np.setdiff1d(np.arange(len(active)), bad)
            active = active[keep]
            if len(active) == 0:
                break
            Pa = Pa[:, keep]
            APa = APa[:, keep]
            curv = curv[keep]
        with phase("BLAS1"):
            alpha = rz[active] / curv
            Xa = X[:, active]
            axpy_multi(alpha, Pa, Xa)
            X[:, active] = Xa
            Ra = R[:, active]
            axpy_multi(-alpha, APa, Ra)
            R[:, active] = Ra
            rn = norm2_multi(Ra)
        drop = []
        for idx, c in enumerate(active):
            residuals[c].append(float(rn[idx]))
            iterations[c] = it
            if rn[idx] <= tol * r0[c]:
                converged[c] = True
                drop.append(idx)
            elif not np.isfinite(rn[idx]):
                failed[c] = True
                col_events[c].append(FaultEvent(
                    "nonfinite", detail=f"iteration {it}"))
                drop.append(idx)
            elif rn[idx] > div_factor * r0[c]:
                failed[c] = True
                col_events[c].append(FaultEvent(
                    "diverged", detail=f"iteration {it}"))
                drop.append(idx)
        if drop:
            active = np.delete(active, drop)
        if len(active) == 0:
            break
        Za = M(R[:, active])
        Z[:, active] = Za
        with phase("BLAS1"):
            rz_new = dot_multi(R[:, active], Za)
            beta = rz_new / rz[active]
            P[:, active] = waxpby_multi(1.0, Za, beta, P[:, active])
        rz[active] = rz_new

    return [
        KrylovResult(X[:, c].copy(), int(iterations[c]), residuals[c],
                     bool(converged[c]), degraded=bool(failed[c]),
                     degraded_reason=(col_events[c][-1].kind
                                      if failed[c] and col_events[c] else None),
                     fault_events=list(col_events[c]))
        for c in range(k)
    ]
