"""Preconditioned conjugate gradients.

Another Krylov baseline (§1 cites CG's all-reduce-bound scaling); also used
in the examples to show AMG as a generic preconditioner for SPD systems.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..perf.counters import phase
from ..results import KrylovResult, resolve_maxiter
from ..sparse.blas1 import (
    axpy,
    axpy_multi,
    dot,
    dot_multi,
    norm2,
    norm2_multi,
    waxpby,
    waxpby_multi,
)
from ..sparse.csr import CSRMatrix
from ..sparse.spmv import spmv, spmv_multi

__all__ = ["pcg", "pcg_multi"]


def pcg(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    precondition: Callable[[np.ndarray], np.ndarray] | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-7,
    maxiter: int | None = None,
    max_iter: int | None = None,
) -> KrylovResult:
    """Preconditioned CG for SPD systems."""
    max_iter = resolve_maxiter(maxiter, max_iter, 1000)
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    M = precondition if precondition is not None else (lambda v: v.copy())

    with phase("SpMV"):
        r = b - spmv(A, x, kernel="spmv.krylov")
    z = M(r)
    p = z.copy()
    with phase("BLAS1"):
        rz = dot(r, z)
        r0 = norm2(r)
    residuals = [r0]
    if r0 == 0.0:
        return KrylovResult(x, 0, residuals, True)

    for it in range(1, max_iter + 1):
        with phase("SpMV"):
            Ap = spmv(A, p, kernel="spmv.krylov")
        with phase("BLAS1"):
            alpha = rz / dot(p, Ap)
            axpy(alpha, p, x)
            axpy(-alpha, Ap, r)
            rn = norm2(r)
        residuals.append(rn)
        if rn <= tol * r0:
            return KrylovResult(x, it, residuals, True)
        z = M(r)
        with phase("BLAS1"):
            rz_new = dot(r, z)
            beta = rz_new / rz
            p = waxpby(1.0, z, beta, p)
        rz = rz_new
    return KrylovResult(x, max_iter, residuals, False)


def pcg_multi(
    A: CSRMatrix,
    B: np.ndarray,
    *,
    precondition_multi: Callable[[np.ndarray], np.ndarray] | None = None,
    precondition: Callable[[np.ndarray], np.ndarray] | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-7,
    maxiter: int | None = None,
    max_iter: int | None = None,
) -> list[KrylovResult]:
    """Blocked PCG over an ``(n, k)`` block of right-hand sides.

    The *k* CG recurrences run in lockstep with per-column scalars
    (``alpha``, ``beta``), so every SpMV and preconditioner application is
    one blocked kernel.  A column that converges is frozen (dropped from the
    active block), making column *j* bit-identical to
    ``pcg(A, B[:, j], ...)``.  ``precondition_multi`` takes an
    ``(n, k_active)`` block (e.g. ``AMGSolver.precondition_multi``); a
    single-vector ``precondition`` is applied column-wise instead.
    """
    from .gmres import _resolve_multi_precondition

    max_iter = resolve_maxiter(maxiter, max_iter, 1000)
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError(f"expected a 2-D (n, k) block, got shape {B.shape}")
    n, k = B.shape
    if precondition_multi is None and precondition is None:
        M = lambda Vb: Vb.copy()  # noqa: E731 — matches pcg's identity default
    else:
        M = _resolve_multi_precondition(precondition_multi, precondition)

    X = np.zeros((n, k)) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    with phase("SpMV"):
        R = B - spmv_multi(A, X, kernel="spmv.krylov")
    Z = M(R)
    P = Z.copy()
    with phase("BLAS1"):
        rz = dot_multi(R, Z)
        r0 = norm2_multi(R)
    residuals: list[list[float]] = [[float(r0[c])] for c in range(k)]
    iterations = np.zeros(k, dtype=np.int64)
    converged = r0 == 0.0
    active = np.flatnonzero(~converged)

    for it in range(1, max_iter + 1):
        if len(active) == 0:
            break
        Pa = P[:, active]
        with phase("SpMV"):
            APa = spmv_multi(A, Pa, kernel="spmv.krylov")
        with phase("BLAS1"):
            alpha = rz[active] / dot_multi(Pa, APa)
            Xa = X[:, active]
            axpy_multi(alpha, Pa, Xa)
            X[:, active] = Xa
            Ra = R[:, active]
            axpy_multi(-alpha, APa, Ra)
            R[:, active] = Ra
            rn = norm2_multi(Ra)
        done = []
        for idx, c in enumerate(active):
            residuals[c].append(float(rn[idx]))
            iterations[c] = it
            if rn[idx] <= tol * r0[c]:
                converged[c] = True
                done.append(idx)
        if done:
            active = np.delete(active, done)
        if len(active) == 0:
            break
        Za = M(R[:, active])
        Z[:, active] = Za
        with phase("BLAS1"):
            rz_new = dot_multi(R[:, active], Za)
            beta = rz_new / rz[active]
            P[:, active] = waxpby_multi(1.0, Za, beta, P[:, active])
        rz[active] = rz_new

    return [
        KrylovResult(X[:, c].copy(), int(iterations[c]), residuals[c],
                     bool(converged[c]))
        for c in range(k)
    ]
