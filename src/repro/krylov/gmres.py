"""GMRES and Flexible GMRES (Saad [34]).

The multi-node evaluation (Table 4) wraps AMG as the preconditioner of
Flexible GMRES: FGMRES admits a preconditioner that varies between
iterations (an AMG V-cycle is nonlinear in finite precision), at the cost of
storing the preconditioned basis ``Z`` alongside the Krylov basis ``V``.

Right-preconditioned formulation with modified Gram–Schmidt; the Hessenberg
least-squares problem is solved with Givens rotations, so the residual norm
is available every iteration without forming the solution.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..faults.guards import ResidualGuard
from ..faults.plan import FaultEvent
from ..perf.counters import count, phase
from ..results import KrylovResult, resolve_maxiter
from ..sparse.blas1 import axpy, dot, norm2
from ..sparse.csr import CSRMatrix
from ..sparse.spmv import spmv

__all__ = ["fgmres", "gmres", "fgmres_multi", "KrylovResult"]


def _arnoldi_step(A: CSRMatrix, V: list[np.ndarray], H: np.ndarray, j: int,
                  w: np.ndarray) -> np.ndarray:
    """Modified Gram–Schmidt orthogonalization of ``w`` against ``V[:j+1]``."""
    with phase("BLAS1"):
        for i in range(j + 1):
            H[i, j] = dot(w, V[i])
            axpy(-H[i, j], V[i], w)
        H[j + 1, j] = norm2(w)
    return w


def _givens_update(H: np.ndarray, cs: np.ndarray, sn: np.ndarray,
                   g: np.ndarray, j: int) -> float:
    """Apply/extend the Givens rotations; returns the new residual norm."""
    for i in range(j):
        t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
        H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
        H[i, j] = t
    denom = np.hypot(H[j, j], H[j + 1, j])
    if denom == 0.0:
        cs[j], sn[j] = 1.0, 0.0
    else:
        cs[j] = H[j, j] / denom
        sn[j] = H[j + 1, j] / denom
    H[j, j] = cs[j] * H[j, j] + sn[j] * H[j + 1, j]
    H[j + 1, j] = 0.0
    g[j + 1] = -sn[j] * g[j]
    g[j] = cs[j] * g[j]
    return abs(g[j + 1])


def fgmres(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    precondition: Callable[[np.ndarray], np.ndarray] | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-7,
    maxiter: int | None = None,
    max_iter: int | None = None,
    restart: int = 50,
) -> KrylovResult:
    """Flexible GMRES with a (possibly varying) right preconditioner."""
    max_iter = resolve_maxiter(maxiter, max_iter, 200)
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    M = precondition if precondition is not None else (lambda v: v)

    with phase("SpMV"):
        r = b - spmv(A, x, kernel="spmv.krylov")
    with phase("BLAS1"):
        beta = norm2(r)
    r0 = beta
    residuals = [beta]
    if beta == 0.0:
        return KrylovResult(x, 0, residuals, True)
    if not np.isfinite(beta):
        return KrylovResult(x, 0, residuals, False, degraded=True,
                            degraded_reason="nonfinite initial residual",
                            fault_events=[FaultEvent(
                                "nonfinite", detail="initial residual")])
    guard = ResidualGuard(r0, stagnation=False)

    total_it = 0
    while total_it < max_iter:
        m = min(restart, max_iter - total_it)
        V = [r / beta]
        Z: list[np.ndarray] = []
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        j_done = 0
        converged = False
        for j in range(m):
            z = M(V[j])
            Z.append(z)
            with phase("SpMV"):
                w = spmv(A, z, kernel="spmv.krylov")
            w = _arnoldi_step(A, V, H, j, w)
            if H[j + 1, j] != 0.0:
                V.append(w / H[j + 1, j])
            else:
                V.append(w)
            res = _givens_update(H, cs, sn, g, j)
            count("krylov.givens", flops=20.0, phase="Solve_etc")
            residuals.append(res)
            total_it += 1
            verdict = guard.check(res)
            if verdict is not None:
                # A poisoned Hessenberg would poison x through the
                # triangular solve; keep the previous restart's iterate.
                return KrylovResult(
                    x, total_it, residuals, False, degraded=True,
                    degraded_reason=f"{verdict} at iteration {total_it}",
                    fault_events=[FaultEvent(
                        verdict, detail=f"iteration {total_it}")])
            j_done = j + 1
            if res <= tol * r0:
                converged = True
                break
        # Solve the small triangular system and update x from Z.
        y = np.zeros(j_done)
        for i in range(j_done - 1, -1, -1):
            y[i] = (g[i] - H[i, i + 1: j_done] @ y[i + 1: j_done]) / H[i, i]
        with phase("BLAS1"):
            for i in range(j_done):
                axpy(y[i], Z[i], x)
        if converged or total_it >= max_iter:
            with phase("SpMV"):
                r = b - spmv(A, x, kernel="spmv.krylov")
            with phase("BLAS1"):
                beta = norm2(r)
            return KrylovResult(x, total_it, residuals, converged)
        with phase("SpMV"):
            r = b - spmv(A, x, kernel="spmv.krylov")
        with phase("BLAS1"):
            beta = norm2(r)
    return KrylovResult(x, total_it, residuals, False)


def gmres(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-7,
    maxiter: int | None = None,
    max_iter: int | None = None,
    restart: int = 50,
) -> KrylovResult:
    """Plain (unpreconditioned) restarted GMRES — the Krylov baseline whose
    iteration growth with problem size motivates AMG (§1)."""
    return fgmres(
        A, b, precondition=None, x0=x0, tol=tol,
        max_iter=resolve_maxiter(maxiter, max_iter, 200), restart=restart
    )


# ---------------------------------------------------------------------------
# Blocked FGMRES (multiple right-hand sides)
# ---------------------------------------------------------------------------

def _resolve_multi_precondition(precondition_multi, precondition):
    """Build a block preconditioner from whichever callable was given."""
    if precondition_multi is not None:
        return precondition_multi
    if precondition is not None:
        def columnwise(Vb: np.ndarray) -> np.ndarray:
            out = np.empty_like(Vb)
            for j in range(Vb.shape[1]):
                out[:, j] = precondition(Vb[:, j])
            return out

        return columnwise
    return lambda Vb: Vb


def fgmres_multi(
    A: CSRMatrix,
    B: np.ndarray,
    *,
    precondition_multi: Callable[[np.ndarray], np.ndarray] | None = None,
    precondition: Callable[[np.ndarray], np.ndarray] | None = None,
    tol: float = 1e-7,
    maxiter: int | None = None,
    max_iter: int | None = None,
    restart: int = 50,
) -> list[KrylovResult]:
    """Flexible GMRES over an ``(n, k)`` block of right-hand sides.

    The *k* Krylov iterations run in lockstep so every SpMV, preconditioner
    application, and BLAS1 step is one blocked kernel (matrix streamed once
    per step, not *k* times).  Each column keeps its own Hessenberg system;
    a column that converges mid-restart *coasts* — later Arnoldi steps never
    touch the triangular prefix its solution is formed from, so column *j*
    is bit-identical to ``fgmres(A, B[:, j], ...)``.  Converged columns are
    dropped from the block at restart boundaries.

    A column whose residual goes NaN/Inf is *frozen the same way* but
    flagged instead of converged: its solution update is skipped (the
    poisoned Hessenberg would poison ``x``), the verdict lands in its
    ``fault_events``, and — because every blocked kernel is column-wise —
    its siblings are unaffected.

    ``precondition_multi`` takes and returns an ``(n, k_active)`` block
    (e.g. ``AMGSolver.precondition_multi``); alternatively a single-vector
    ``precondition`` is applied column-wise.
    """
    from ..sparse.blas1 import axpy_multi, dot_multi, norm2_multi
    from ..sparse.spmv import spmv_multi

    max_iter = resolve_maxiter(maxiter, max_iter, 200)
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError(f"expected a 2-D (n, k) block, got shape {B.shape}")
    n, k = B.shape
    M = _resolve_multi_precondition(precondition_multi, precondition)

    X = np.zeros((n, k))
    R = B.copy()
    with phase("BLAS1"):
        beta = norm2_multi(R)
    r0 = beta.copy()
    residuals: list[list[float]] = [[float(beta[c])] for c in range(k)]
    iterations = np.zeros(k, dtype=np.int64)
    converged = beta == 0.0
    failed = np.zeros(k, dtype=bool)
    col_events: list[list[FaultEvent]] = [[] for _ in range(k)]
    for c in np.flatnonzero(~np.isfinite(beta)):
        failed[c] = True
        col_events[c].append(FaultEvent("nonfinite",
                                        detail="initial residual"))
    active = np.flatnonzero(~converged & ~failed)

    total_it = 0
    while total_it < max_iter and len(active):
        m = min(restart, max_iter - total_it)
        ka = len(active)
        V = [R[:, active] / beta[active]]
        Z: list[np.ndarray] = []
        H = np.zeros((m + 1, m, ka))
        cs = np.zeros((m, ka))
        sn = np.zeros((m, ka))
        g = np.zeros((m + 1, ka))
        g[0] = beta[active]
        j_done = np.zeros(ka, dtype=np.int64)
        conv_local = np.zeros(ka, dtype=bool)
        fail_local = np.zeros(ka, dtype=bool)
        for j in range(m):
            Zj = M(V[j])
            Z.append(Zj)
            with phase("SpMV"):
                W = spmv_multi(A, Zj, kernel="spmv.krylov")
            with phase("BLAS1"):
                for i in range(j + 1):
                    hij = dot_multi(W, V[i])
                    H[i, j] = hij
                    axpy_multi(-hij, V[i], W)
                h_last = norm2_multi(W)
                H[j + 1, j] = h_last
            Vn = W.copy()
            nz = h_last != 0.0
            Vn[:, nz] /= h_last[nz]
            V.append(Vn)
            # Givens update, vectorized over columns (same FP ops per column
            # as the scalar _givens_update).
            for i in range(j):
                t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = t
            denom = np.hypot(H[j, j], H[j + 1, j])
            csj = np.ones(ka)
            snj = np.zeros(ka)
            nzd = denom != 0.0
            csj[nzd] = H[j, j, nzd] / denom[nzd]
            snj[nzd] = H[j + 1, j, nzd] / denom[nzd]
            cs[j], sn[j] = csj, snj
            H[j, j] = csj * H[j, j] + snj * H[j + 1, j]
            H[j + 1, j] = 0.0
            g[j + 1] = -snj * g[j]
            g[j] = csj * g[j]
            count("krylov.givens", flops=20.0 * ka, phase="Solve_etc")
            res = np.abs(g[j + 1])
            total_it += 1
            for idx in range(ka):
                if conv_local[idx] or fail_local[idx]:
                    continue
                c = active[idx]
                residuals[c].append(float(res[idx]))
                iterations[c] += 1
                if not np.isfinite(res[idx]):
                    fail_local[idx] = True
                    failed[c] = True
                    col_events[c].append(FaultEvent(
                        "nonfinite", detail=f"iteration {int(iterations[c])}"))
                    continue
                j_done[idx] = j + 1
                if res[idx] <= tol * r0[c]:
                    conv_local[idx] = True
            if (conv_local | fail_local).all():
                break
        # Per-column triangular solve and solution update (same work as the
        # scalar restart boundary — the batched savings are in the loop above).
        # Failed columns are skipped: their Hessenberg prefix is poisoned, so
        # their x keeps the last healthy restart's value.
        with phase("BLAS1"):
            for idx in range(ka):
                if fail_local[idx]:
                    continue
                jd = int(j_done[idx])
                Hc, gc = H[:, :, idx], g[:, idx]
                y = np.zeros(jd)
                for i in range(jd - 1, -1, -1):
                    y[i] = (gc[i] - Hc[i, i + 1: jd] @ y[i + 1: jd]) / Hc[i, i]
                xc = X[:, active[idx]]
                for i in range(jd):
                    axpy(y[i], Z[i][:, idx], xc)
        with phase("SpMV"):
            Rnew = B[:, active] - spmv_multi(A, X[:, active], kernel="spmv.krylov")
        R[:, active] = Rnew
        with phase("BLAS1"):
            beta[active] = norm2_multi(Rnew)
        converged[active[conv_local]] = True
        active = active[~conv_local & ~fail_local]

    return [
        KrylovResult(X[:, c].copy(), int(iterations[c]), residuals[c],
                     bool(converged[c]), degraded=bool(failed[c]),
                     degraded_reason=(col_events[c][-1].kind
                                      if failed[c] and col_events[c] else None),
                     fault_events=list(col_events[c]))
        for c in range(k)
    ]
