"""GMRES and Flexible GMRES (Saad [34]).

The multi-node evaluation (Table 4) wraps AMG as the preconditioner of
Flexible GMRES: FGMRES admits a preconditioner that varies between
iterations (an AMG V-cycle is nonlinear in finite precision), at the cost of
storing the preconditioned basis ``Z`` alongside the Krylov basis ``V``.

Right-preconditioned formulation with modified Gram–Schmidt; the Hessenberg
least-squares problem is solved with Givens rotations, so the residual norm
is available every iteration without forming the solution.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..perf.counters import count, phase
from ..sparse.blas1 import axpy, dot, norm2
from ..sparse.csr import CSRMatrix
from ..sparse.spmv import spmv

__all__ = ["fgmres", "gmres", "KrylovResult"]


@dataclass
class KrylovResult:
    x: np.ndarray
    iterations: int
    residuals: list[float]
    converged: bool

    @property
    def final_relres(self) -> float:
        return self.residuals[-1] / self.residuals[0] if self.residuals else np.inf


def _arnoldi_step(A: CSRMatrix, V: list[np.ndarray], H: np.ndarray, j: int,
                  w: np.ndarray) -> np.ndarray:
    """Modified Gram–Schmidt orthogonalization of ``w`` against ``V[:j+1]``."""
    with phase("BLAS1"):
        for i in range(j + 1):
            H[i, j] = dot(w, V[i])
            axpy(-H[i, j], V[i], w)
        H[j + 1, j] = norm2(w)
    return w


def _givens_update(H: np.ndarray, cs: np.ndarray, sn: np.ndarray,
                   g: np.ndarray, j: int) -> float:
    """Apply/extend the Givens rotations; returns the new residual norm."""
    for i in range(j):
        t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
        H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
        H[i, j] = t
    denom = np.hypot(H[j, j], H[j + 1, j])
    if denom == 0.0:
        cs[j], sn[j] = 1.0, 0.0
    else:
        cs[j] = H[j, j] / denom
        sn[j] = H[j + 1, j] / denom
    H[j, j] = cs[j] * H[j, j] + sn[j] * H[j + 1, j]
    H[j + 1, j] = 0.0
    g[j + 1] = -sn[j] * g[j]
    g[j] = cs[j] * g[j]
    return abs(g[j + 1])


def fgmres(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    precondition: Callable[[np.ndarray], np.ndarray] | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-7,
    max_iter: int = 200,
    restart: int = 50,
) -> KrylovResult:
    """Flexible GMRES with a (possibly varying) right preconditioner."""
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    M = precondition if precondition is not None else (lambda v: v)

    with phase("SpMV"):
        r = b - spmv(A, x, kernel="spmv.krylov")
    with phase("BLAS1"):
        beta = norm2(r)
    r0 = beta
    residuals = [beta]
    if beta == 0.0:
        return KrylovResult(x, 0, residuals, True)

    total_it = 0
    while total_it < max_iter:
        m = min(restart, max_iter - total_it)
        V = [r / beta]
        Z: list[np.ndarray] = []
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        j_done = 0
        converged = False
        for j in range(m):
            z = M(V[j])
            Z.append(z)
            with phase("SpMV"):
                w = spmv(A, z, kernel="spmv.krylov")
            w = _arnoldi_step(A, V, H, j, w)
            if H[j + 1, j] != 0.0:
                V.append(w / H[j + 1, j])
            else:
                V.append(w)
            res = _givens_update(H, cs, sn, g, j)
            count("krylov.givens", flops=20.0, phase="Solve_etc")
            residuals.append(res)
            total_it += 1
            j_done = j + 1
            if res <= tol * r0:
                converged = True
                break
        # Solve the small triangular system and update x from Z.
        y = np.zeros(j_done)
        for i in range(j_done - 1, -1, -1):
            y[i] = (g[i] - H[i, i + 1: j_done] @ y[i + 1: j_done]) / H[i, i]
        with phase("BLAS1"):
            for i in range(j_done):
                axpy(y[i], Z[i], x)
        if converged or total_it >= max_iter:
            with phase("SpMV"):
                r = b - spmv(A, x, kernel="spmv.krylov")
            with phase("BLAS1"):
                beta = norm2(r)
            return KrylovResult(x, total_it, residuals, converged)
        with phase("SpMV"):
            r = b - spmv(A, x, kernel="spmv.krylov")
        with phase("BLAS1"):
            beta = norm2(r)
    return KrylovResult(x, total_it, residuals, False)


def gmres(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-7,
    max_iter: int = 200,
    restart: int = 50,
) -> KrylovResult:
    """Plain (unpreconditioned) restarted GMRES — the Krylov baseline whose
    iteration growth with problem size motivates AMG (§1)."""
    return fgmres(
        A, b, precondition=None, x0=x0, tol=tol, max_iter=max_iter, restart=restart
    )
