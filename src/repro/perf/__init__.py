"""Performance instrumentation and analytical machine/network models.

This package is the substitution layer for the paper's hardware (see
DESIGN.md §2): kernels *execute* the real algorithms and *count* the work a
tuned native implementation would perform; the models here turn counts into
modeled seconds on the paper's Table 1 machines and the Endeavor cluster
network.
"""

from .counters import (
    IDX_BYTES,
    PTR_BYTES,
    VAL_BYTES,
    KernelRecord,
    PerfLog,
    active_log,
    collect,
    count,
    count_batch,
    count_record,
    current_phase,
    make_record,
    phase,
)
from .machine import HaswellModel, K40cModel, MachineModel
from .network import FDRInfinibandModel, MessageEvent, NetworkModel
from .report import (
    format_breakdown,
    format_fault_summary,
    format_service_report,
    format_shard_report,
    format_table,
    geomean,
)
from .trace import comm_to_trace, log_to_trace, write_trace

__all__ = [
    "IDX_BYTES",
    "PTR_BYTES",
    "VAL_BYTES",
    "KernelRecord",
    "PerfLog",
    "active_log",
    "collect",
    "count",
    "count_batch",
    "count_record",
    "current_phase",
    "make_record",
    "phase",
    "MachineModel",
    "HaswellModel",
    "K40cModel",
    "NetworkModel",
    "FDRInfinibandModel",
    "MessageEvent",
    "format_breakdown",
    "format_fault_summary",
    "format_service_report",
    "format_shard_report",
    "format_table",
    "geomean",
    "comm_to_trace",
    "log_to_trace",
    "write_trace",
]
