"""Kernel instrumentation: operation/traffic counters.

Every computational kernel in :mod:`repro` reports what a tuned native
implementation of the same algorithm would do to the memory system and the
core: floating-point operations, bytes read and written, data-dependent
branches executed and (estimated) mispredicted.  The counts are *structural*
— they follow from matrix sizes/sparsity patterns and from which algorithmic
variant ran (e.g. one-pass vs. two-pass SpGEMM), not from wall-clock
measurements of the Python vehicle.

A :class:`PerfLog` collects :class:`KernelRecord` entries.  Kernels report
through the module-level :func:`count` helper, which writes into the
currently *active* log (see :func:`collect`).  When no log is active,
counting is a no-op, so library code can always call :func:`count`
unconditionally.

Phases mirror the paper's Fig. 5 breakdown labels::

    Strength+Coarsen | Interp | RAP | Setup_etc | GS | SpMV | BLAS1 | Solve_etc

plus the multi-node phases of Fig. 7 (``Solve_MPI`` etc.) and ``Resetup``,
the pattern-reuse numeric resetup of :meth:`repro.amg.Hierarchy.refresh`
(all of a same-pattern re-setup's work lands in that one bucket).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace

__all__ = [
    "IDX_BYTES",
    "VAL_BYTES",
    "PTR_BYTES",
    "KernelRecord",
    "PerfLog",
    "collect",
    "phase",
    "count",
    "count_batch",
    "count_record",
    "make_record",
    "active_log",
    "current_phase",
]

#: Bytes per column index in the modeled native implementation (HYPRE uses
#: 32-bit local indices).
IDX_BYTES = 4
#: Bytes per matrix/vector value (double precision, Table 3: non-complex FP64).
VAL_BYTES = 8
#: Bytes per row-pointer entry.
PTR_BYTES = 4


@dataclass
class KernelRecord:
    """One instrumented kernel invocation.

    Attributes
    ----------
    phase:
        Breakdown bucket (Fig. 5 / Fig. 7 label) active when the kernel ran.
    kernel:
        Fine-grained kernel name, e.g. ``"spgemm.numeric"``.
    flops:
        Floating point operations (adds + multiplies counted separately).
    bytes_read / bytes_written:
        Memory traffic of the modeled native kernel, in bytes.  Reads that a
        native kernel would serve from cache (e.g. the fused ``B`` rows in the
        Fig. 1a RAP) are *not* counted.
    branches:
        Data-dependent (unpredictable) branches executed.  Loop-bound branches
        are excluded: they are well predicted.
    mispredicts:
        Estimated mispredicted branches.
    parallel:
        Whether the kernel is thread-parallel in the modeled implementation.
        ``HYPRE_base`` runs several setup kernels serially (§3.3).
    level:
        Multigrid level, when applicable.
    """

    phase: str
    kernel: str
    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    branches: float = 0.0
    mispredicts: float = 0.0
    parallel: bool = True
    level: int | None = None

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written


#: Default fraction of data-dependent branches that mispredict.  Sparse
#: accumulation hit/miss branches are close to coin flips on first touch and
#: biased afterwards; 0.3 matches the 2.1x pattern-reuse speedup (§3.1.1)
#: under the Haswell penalty.
DEFAULT_MISPREDICT_RATE = 0.3


# The phase/level stacks are process-global (not per-log) so that a phase
# opened around a distributed operation tags the counts of *every* rank's
# log, whichever one is active when a kernel reports.
_PHASE_STACK: list[str] = []
_LEVEL_STACK: list[int] = []


class PerfLog:
    """Accumulates kernel records, organized by phase."""

    def __init__(self) -> None:
        self.records: list[KernelRecord] = []

    # -- recording -----------------------------------------------------
    def add(
        self,
        kernel: str,
        *,
        flops: float = 0.0,
        bytes_read: float = 0.0,
        bytes_written: float = 0.0,
        branches: float = 0.0,
        mispredicts: float | None = None,
        parallel: bool = True,
        phase: str | None = None,
    ) -> KernelRecord:
        if mispredicts is None:
            mispredicts = branches * DEFAULT_MISPREDICT_RATE
        rec = KernelRecord(
            phase=phase if phase is not None else self.phase,
            kernel=kernel,
            flops=float(flops),
            bytes_read=float(bytes_read),
            bytes_written=float(bytes_written),
            branches=float(branches),
            mispredicts=float(mispredicts),
            parallel=parallel,
            level=_LEVEL_STACK[-1] if _LEVEL_STACK else None,
        )
        self.records.append(rec)
        return rec

    def count_batch(self, kernel: str, n: int, **kw) -> None:
        """Record *n* identical kernel invocations in one bulk append.

        The record *stream* is indistinguishable from *n* individual
        :meth:`add` calls with the same arguments — per-record machine-model
        costs (launch overhead, sequential time summation) and all
        aggregations see the same sequence — but the Python-side cost is one
        record construction instead of *n*.  The appended entries alias one
        :class:`KernelRecord` instance; records are treated as immutable
        once logged.
        """
        if n <= 0:
            return
        rec = self.add(kernel, **kw)
        if n > 1:
            self.records.extend([rec] * (n - 1))

    def add_record(self, rec: KernelRecord) -> None:
        """Append a prebuilt record, retagging phase/level if the current
        stacks differ from the template's (plan-table fast path)."""
        ph = _PHASE_STACK[-1] if _PHASE_STACK else "unattributed"
        lv = _LEVEL_STACK[-1] if _LEVEL_STACK else None
        if rec.phase != ph or rec.level != lv:
            rec = replace(rec, phase=ph, level=lv)
        self.records.append(rec)

    # -- phase management ------------------------------------------------
    @property
    def phase(self) -> str:
        return _PHASE_STACK[-1] if _PHASE_STACK else "unattributed"

    @contextmanager
    def in_phase(self, name: str):
        _PHASE_STACK.append(name)
        try:
            yield self
        finally:
            _PHASE_STACK.pop()

    @contextmanager
    def at_level(self, level: int):
        _LEVEL_STACK.append(level)
        try:
            yield self
        finally:
            _LEVEL_STACK.pop()

    # -- aggregation -----------------------------------------------------
    def totals_by_phase(self) -> dict[str, KernelRecord]:
        """Aggregate records into one synthetic record per phase."""
        out: dict[str, KernelRecord] = {}
        for r in self.records:
            agg = out.get(r.phase)
            if agg is None:
                out[r.phase] = KernelRecord(
                    phase=r.phase,
                    kernel="*",
                    flops=r.flops,
                    bytes_read=r.bytes_read,
                    bytes_written=r.bytes_written,
                    branches=r.branches,
                    mispredicts=r.mispredicts,
                    parallel=r.parallel,
                )
            else:
                agg.flops += r.flops
                agg.bytes_read += r.bytes_read
                agg.bytes_written += r.bytes_written
                agg.branches += r.branches
                agg.mispredicts += r.mispredicts
        return out

    def total(self, attr: str) -> float:
        return sum(getattr(r, attr) for r in self.records)

    def phase_total(self, phase: str, attr: str = "bytes_total") -> float:
        return sum(getattr(r, attr) for r in self.records if r.phase == phase)

    def merge(self, other: "PerfLog") -> None:
        self.records.extend(other.records)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


# --------------------------------------------------------------------------
# Module-level active log
# --------------------------------------------------------------------------

_ACTIVE: list[PerfLog] = []


def active_log() -> PerfLog | None:
    """The innermost active :class:`PerfLog`, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


def current_phase() -> str:
    return _PHASE_STACK[-1] if _PHASE_STACK else "unattributed"


@contextmanager
def collect(log: PerfLog | None = None):
    """Activate *log* (a fresh one if ``None``) for the enclosed block.

    Yields the active log.  Nested ``collect`` blocks record into the
    innermost log only; callers that want merged numbers should use
    :meth:`PerfLog.merge`.
    """
    if log is None:
        log = PerfLog()
    _ACTIVE.append(log)
    try:
        yield log
    finally:
        _ACTIVE.pop()


@contextmanager
def phase(name: str):
    """Tag records emitted in the enclosed block with phase *name*.

    The tag applies process-wide (it survives switching the active log, so
    per-rank logs in the distributed simulator see it too).
    """
    _PHASE_STACK.append(name)
    try:
        yield active_log()
    finally:
        _PHASE_STACK.pop()


def count(kernel: str, **kw) -> None:
    """Record a kernel invocation into the active log (no-op otherwise).

    Keyword arguments are those of :meth:`PerfLog.add`.
    """
    log = active_log()
    if log is not None:
        log.add(kernel, **kw)


def count_batch(kernel: str, n: int, **kw) -> None:
    """Record *n* identical invocations into the active log (no-op otherwise).

    See :meth:`PerfLog.count_batch`: the stream equals *n* ``count`` calls.
    """
    log = active_log()
    if log is not None:
        log.count_batch(kernel, n, **kw)


def count_record(rec: KernelRecord) -> None:
    """Append a prebuilt (plan-table) record into the active log.

    Solve plans precompute each kernel invocation's traffic once from the
    frozen sparsity (:func:`make_record`); the hot loop then just appends.
    Phase/level are retagged from the live stacks when they differ from the
    template, so the resulting stream is identical to an equivalent
    :func:`count` call.
    """
    log = active_log()
    if log is not None:
        log.add_record(rec)


def make_record(
    kernel: str,
    *,
    flops: float = 0.0,
    bytes_read: float = 0.0,
    bytes_written: float = 0.0,
    branches: float = 0.0,
    mispredicts: float | None = None,
    parallel: bool = True,
    phase: str = "unattributed",
    level: int | None = None,
) -> KernelRecord:
    """Build a template :class:`KernelRecord` without logging it.

    Field semantics match :meth:`PerfLog.add` (including the default
    mispredict estimate), so a template appended via :func:`count_record`
    is byte-for-byte what the equivalent :func:`count` call would record.
    """
    if mispredicts is None:
        mispredicts = branches * DEFAULT_MISPREDICT_RATE
    return KernelRecord(
        phase=phase,
        kernel=kernel,
        flops=float(flops),
        bytes_read=float(bytes_read),
        bytes_written=float(bytes_written),
        branches=float(branches),
        mispredicts=float(mispredicts),
        parallel=parallel,
        level=level,
    )
