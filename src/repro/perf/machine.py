"""Analytical node machine models (Table 1 of the paper).

The Python kernels in this library execute the real algorithms but cannot
exhibit the hardware effects (SIMD width, branch predictors, memory-level
parallelism) the paper measures.  Instead, each kernel reports structural
counts (:mod:`repro.perf.counters`) and a :class:`MachineModel` converts the
counts into modeled seconds with a roofline-plus-penalties formula::

    t = max( bytes / BW_eff(threads),
             flops / peak_flops(threads) )
      + mispredicts * branch_penalty / (freq * threads)
      + launch_overhead * kernel_launches        (GPU only)

The two concrete models carry the Table 1 parameters:

* :class:`HaswellModel` — one socket of Xeon E5-2697 v3: 14 cores, 2.6 GHz,
  54 GB/s STREAM triad.
* :class:`K40cModel` — Tesla K40c: 15 SMs / 2880 CUDA cores, 876 MHz,
  249 GB/s STREAM triad (ECC off).

Calibration constants beyond Table 1 (bandwidth efficiency of irregular
access, per-core bandwidth, GPU launch latency) are documented inline; they
set absolute scale only — every base/opt ratio the benchmarks report comes
from the counted quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import KernelRecord, PerfLog

__all__ = ["MachineModel", "HaswellModel", "K40cModel"]


@dataclass
class MachineModel:
    """Roofline machine model; see module docstring for the time formula."""

    name: str
    threads: int
    freq_hz: float
    #: STREAM triad bandwidth, bytes/s, all threads (Table 1, last row).
    stream_bw: float
    #: Bandwidth achievable by a single thread, bytes/s.  Roughly 1/4 of the
    #: socket on Haswell: one core cannot keep enough misses in flight.
    single_thread_bw: float
    #: Peak FP64 flops/s with all threads.
    peak_flops: float
    #: Fraction of STREAM bandwidth sustained on irregular (gather-dominated)
    #: access patterns.
    irregular_efficiency: float = 0.55
    #: Fraction of STREAM bandwidth sustained on streaming access.
    streaming_efficiency: float = 0.85
    #: Cycles lost per mispredicted branch.
    branch_penalty_cycles: float = 16.0
    #: Seconds of fixed overhead per kernel invocation (GPU kernel launch;
    #: zero on the CPU).
    launch_overhead: float = 0.0
    #: Threads used by a kernel marked non-parallel.
    serial_threads: int = 1

    # -- derived helpers ---------------------------------------------------
    def effective_bw(self, parallel: bool, irregular_fraction: float) -> float:
        """Sustained bandwidth given threading and access-pattern mix."""
        base = self.stream_bw if parallel else self.single_thread_bw
        eff = (
            irregular_fraction * self.irregular_efficiency
            + (1.0 - irregular_fraction) * self.streaming_efficiency
        )
        return base * eff

    def record_time(self, rec: KernelRecord, irregular_fraction: float = 0.5) -> float:
        """Modeled seconds for one kernel record."""
        threads = self.threads if rec.parallel else self.serial_threads
        bw = self.effective_bw(rec.parallel, irregular_fraction)
        t_mem = rec.bytes_total / bw if rec.bytes_total else 0.0
        flop_rate = self.peak_flops * threads / self.threads
        t_flop = rec.flops / flop_rate if rec.flops else 0.0
        t_branch = (
            rec.mispredicts * self.branch_penalty_cycles / (self.freq_hz * threads)
            if rec.mispredicts
            else 0.0
        )
        return max(t_mem, t_flop) + t_branch + self.launch_overhead

    def log_time(self, log: PerfLog, irregular_fraction: float = 0.5) -> float:
        return sum(self.record_time(r, irregular_fraction) for r in log.records)

    def phase_times(self, log: PerfLog, irregular_fraction: float = 0.5) -> dict[str, float]:
        """Modeled seconds per breakdown phase."""
        out: dict[str, float] = {}
        for r in log.records:
            out[r.phase] = out.get(r.phase, 0.0) + self.record_time(r, irregular_fraction)
        return out


def HaswellModel(threads: int = 14) -> MachineModel:
    """One socket of Xeon E5-2697 v3 at 2.6 GHz (Table 1)."""
    return MachineModel(
        name="Xeon E5-2697 v3 (HSW)",
        threads=threads,
        freq_hz=2.6e9,
        stream_bw=54e9,
        single_thread_bw=13e9,
        # 14 cores x 2.6 GHz x 16 FP64 flops/cycle (2x FMA on 4-wide SIMD).
        peak_flops=14 * 2.6e9 * 16,
        irregular_efficiency=0.55,
        streaming_efficiency=0.85,
        branch_penalty_cycles=16.0,
        launch_overhead=0.0,
    )


def K40cModel() -> MachineModel:
    """Tesla K40c (Table 1).

    The GPU sustains a much larger share of its bandwidth only on long
    streaming kernels; short irregular kernels on coarse AMG levels are
    dominated by launch latency and under-filled warps, which is what makes
    the AmgX solve phase slower per iteration despite 4.6x the bandwidth
    (§5.2).  ``irregular_efficiency`` and ``launch_overhead`` encode that.
    """
    return MachineModel(
        name="Tesla K40c",
        threads=2880,
        freq_hz=876e6,
        stream_bw=249e9,
        single_thread_bw=10e9,
        peak_flops=1.43e12,  # FP64 peak
        # Kepler-class CSR kernels sustain a small fraction of STREAM on
        # gather-dominated sparse work — the "efficient utilization" gap the
        # paper's introduction calls out.  Calibrated so the AmgX-vs-opt
        # setup/solve/total ratios land near the paper's Fig. 5 averages at
        # the benchmark problem scale (see EXPERIMENTS.md).
        irregular_efficiency=0.11,
        streaming_efficiency=0.48,
        # Branches diverge warps instead of mispredicting; fold divergence
        # into a comparable per-branch cost.
        branch_penalty_cycles=8.0,
        launch_overhead=20e-6,
    )
