"""Network model for the simulated cluster (Endeavor, §5.1.2).

Messages logged by :class:`repro.dist.comm.SimComm` are converted into
modeled seconds with a latency/bandwidth (alpha-beta) model, augmented with
the small-message effect the paper measures: on 128 nodes, halo-exchange
messages shrink below 100 KB and sustain under 1 GB/s effective
uni-directional bandwidth — about 1/6 of the FDR InfiniBand peak.  We model
effective per-message time as::

    t(msg) = alpha + setup + bytes / beta(bytes)

where ``beta`` ramps from ``small_msg_bw`` to ``peak_bw`` as the message
grows past ``rampup_bytes``, and ``setup`` is the per-exchange software cost
(posting Isend/Irecv pairs, protocol handshakes) that *persistent
communication* (§4.4) amortizes: persistent exchanges pay it once at request
creation instead of on every exchange, reproducing the observed 1.7–1.8x
halo-exchange speedup.

Collectives: an allreduce over P ranks costs ``ceil(log2 P)`` latency-bound
rounds (recursive doubling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["NetworkModel", "FDRInfinibandModel", "MessageEvent"]


@dataclass(frozen=True)
class MessageEvent:
    """One logged point-to-point message."""

    src: int
    dst: int
    nbytes: int
    persistent: bool
    tag: str = ""


@dataclass
class NetworkModel:
    name: str
    #: Wire latency per message, seconds.
    alpha: float
    #: Peak uni-directional bandwidth per node, bytes/s.
    peak_bw: float
    #: Effective bandwidth for small messages, bytes/s (paper: <1 GB/s for
    #: <100 KB messages on 128 nodes).
    small_msg_bw: float
    #: Message size at which effective bandwidth reaches the peak.
    rampup_bytes: float
    #: Per-exchange software setup cost for non-persistent communication
    #: (request allocation, rendezvous handshake); persistent requests pay it
    #: once at creation.
    exchange_setup: float
    #: One-time cost to create a persistent request.
    persistent_create: float

    def scaled(self, factor: float) -> "NetworkModel":
        """A copy with all fixed per-message costs divided by *factor*.

        The benchmarks run problems scaled down ~``factor``x from the
        paper's sizes; per-rank compute shrinks proportionally while wire
        latency and software setup are physical constants, so an unscaled
        network would drown every run in latency.  Scaling the fixed costs
        (and the ramp knee, since messages shrink with the surface) keeps
        the compute:communication balance of the paper's configuration —
        the quantity its scaling figures are about (DESIGN.md §2).
        """
        from dataclasses import replace

        return replace(
            self,
            name=f"{self.name} (1/{factor:g} scale)",
            alpha=self.alpha / factor,
            exchange_setup=self.exchange_setup / factor,
            persistent_create=self.persistent_create / factor,
            rampup_bytes=max(self.rampup_bytes / factor, 4096),
        )

    def message_bw(self, nbytes: float) -> float:
        """Effective bandwidth for a message of *nbytes*.

        Quadratic ramp: sub-100 KB messages stay near ``small_msg_bw``
        (the <1 GB/s the paper measures on 128 nodes) and the peak is only
        reached near ``rampup_bytes``.
        """
        if nbytes >= self.rampup_bytes:
            return self.peak_bw
        frac = nbytes / self.rampup_bytes
        return self.small_msg_bw + frac * frac * (self.peak_bw - self.small_msg_bw)

    def message_time(self, msg: MessageEvent) -> float:
        t = self.alpha + msg.nbytes / self.message_bw(msg.nbytes)
        if not msg.persistent:
            t += self.exchange_setup
        return t

    def exchange_time(self, messages: list[MessageEvent], nranks: int) -> float:
        """Modeled time of one neighborhood exchange.

        Each rank sends/receives its messages concurrently; the exchange
        completes when the busiest rank finishes.  Per-rank time is the sum
        over its messages (serialized through one NIC), which matches the
        paper's observation that halo exchange does not overlap across
        neighbors of a rank.
        """
        per_rank = [0.0] * nranks
        for m in messages:
            t = self.message_time(m)
            per_rank[m.src] += t
            per_rank[m.dst] += t
        return max(per_rank) if per_rank else 0.0

    def transfer_time(self, nbytes: float) -> float:
        """Modeled seconds of a one-off, non-persistent transfer.

        The service tier uses this for request forwarding and result return
        between modeled service ranks (:mod:`repro.serve.shard`): each hop
        is a single message that pays wire latency, the per-exchange
        software setup (these transfers are sporadic, so nothing amortizes
        it), and the size-dependent effective bandwidth — the same ramp the
        halo exchanges see, so forwarding a small right-hand side is
        latency-bound while shipping a whole operator rides the bandwidth
        curve.
        """
        return self.alpha + self.exchange_setup + nbytes / self.message_bw(nbytes)

    def state_transfer_time(self, nbytes: float) -> float:
        """Modeled seconds of a bulk state transfer (cache re-warm).

        A rejoining service rank pulls whole hierarchies from a surviving
        replica as one streamed transfer: a single setup handshake, then
        the payload at the peak-bandwidth end of the ramp (state transfers
        are large and contiguous, unlike the sporadic per-request hops of
        :meth:`transfer_time`, so they always ride the full pipe).
        """
        return self.alpha + self.exchange_setup + nbytes / self.peak_bw

    def retry_penalty(self, timeout: float, attempt: int, backoff: float) -> float:
        """Sender-side seconds lost to one failed delivery attempt.

        The reliable protocol of :class:`repro.faults.comm.FaultyComm`
        waits out the (exponentially backed-off) ack timeout before
        retransmitting; the retransmission and its ack are logged as
        ordinary messages, so this charges only the stall.  One wire
        latency is added for the ack that never arrived.
        """
        return timeout * (backoff ** attempt) + self.alpha

    def allreduce_time(self, nranks: int, nbytes: float = 8.0) -> float:
        if nranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        return rounds * (self.alpha + nbytes / self.small_msg_bw + self.exchange_setup * 0.25)


def FDRInfinibandModel() -> NetworkModel:
    """FDR InfiniBand fat-tree (Endeavor cluster).

    Peak ~6 GB/s per direction per node; the paper measures <1 GB/s for
    sub-100 KB messages, which the ramp reproduces.
    """
    return NetworkModel(
        name="FDR InfiniBand fat-tree",
        alpha=1.5e-6,
        peak_bw=6e9,
        small_msg_bw=0.85e9,
        rampup_bytes=1e6,
        exchange_setup=4e-6,
        persistent_create=6e-6,
    )
