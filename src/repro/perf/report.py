"""Plain-text reporting helpers for the benchmark harness.

The paper's figures are stacked-bar breakdowns and scaling curves; the
benches regenerate them as aligned text tables (one row per bar / per curve
point), which is the form the harness prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_breakdown", "format_fault_summary",
           "format_service_report", "format_shard_report", "geomean"]


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    log_sum = 0.0
    for v in vals:
        import math

        log_sum += math.log(v)
    import math

    return math.exp(log_sum / len(vals))


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = []
    for row in rows:
        str_rows.append(
            [float_fmt.format(c) if isinstance(c, float) else str(c) for c in row]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_breakdown(
    label: str,
    phase_times: Mapping[str, float],
    *,
    normalize_to: float | None = None,
    order: Sequence[str] | None = None,
) -> str:
    """One stacked bar of a Fig. 5 / Fig. 7 style breakdown as a text row.

    ``normalize_to`` divides every component (the paper normalizes each
    matrix's bars to HYPRE_base time-to-solution).
    """
    keys = list(order) if order is not None else sorted(phase_times)
    total = sum(phase_times.values())
    scale = normalize_to if normalize_to else 1.0
    parts = [
        f"{k}={phase_times.get(k, 0.0) / scale:.3f}" for k in keys if k in phase_times
    ]
    return f"{label:<16s} total={total / scale:.3f}  " + " ".join(parts)


def format_fault_summary(events: Iterable[object], *,
                         title: str | None = "fault summary") -> str:
    """Histogram of :class:`~repro.faults.plan.FaultEvent` kinds as a table.

    Accepts any iterable of objects with a ``kind`` attribute (the
    ``fault_events`` list of a result, or ``FaultyComm.events``); an empty
    iterable renders a one-line "no faults" note so callers need not guard.
    """
    counts: dict[str, int] = {}
    for ev in events:
        kind = getattr(ev, "kind", str(ev))
        counts[kind] = counts.get(kind, 0) + 1
    if not counts:
        return (f"{title}: " if title else "") + "no fault events recorded"
    rows = [(k, counts[k]) for k in sorted(counts)]
    return format_table(["event", "count"], rows, title=title)


def format_service_report(snapshot: Mapping) -> str:
    """Human rendering of a :meth:`ServiceMetrics.snapshot
    <repro.serve.metrics.ServiceMetrics.snapshot>` — service time and
    modeled kernel time side by side in one report.
    """
    svc = snapshot.get("service", {})
    kern = snapshot.get("kernel", {})
    counters = svc.get("counters", {})
    cache = svc.get("hierarchy_cache", {})
    depth = svc.get("queue_depth", {})
    lines = [format_table(
        ["counter", "value"],
        [(k, counters[k]) for k in sorted(counters)],
        title="service counters")]
    lines.append(format_table(
        ["latency", "count", "mean (ms)", "max (ms)"],
        [
            (name, h.get("count", 0),
             round(h.get("mean", 0.0) * 1e3, 4),
             round(h.get("max", 0.0) * 1e3, 4))
            for name, h in (
                ("queue wait", svc.get("wait_seconds", {})),
                ("batch solve", svc.get("solve_seconds", {})),
                ("end-to-end", svc.get("latency_seconds", {})),
            )
        ],
        title="modeled latency"))
    batch_sizes = svc.get("batch_sizes", {})
    if batch_sizes:
        lines.append(format_table(
            ["batch size", "batches"],
            [(k, batch_sizes[k])
             for k in sorted(batch_sizes, key=int)],
            title="micro-batch distribution"))
    lines.append(
        f"queue depth   : max {depth.get('max', 0)}, "
        f"mean {depth.get('mean', 0.0):.2f} "
        f"over {depth.get('samples', 0)} samples")
    lines.append(
        f"hierarchy $   : {cache.get('hits', 0)} hits / "
        f"{cache.get('misses', 0)} misses "
        f"(hit rate {cache.get('hit_rate', 0.0):.2f}), "
        f"{cache.get('evictions', 0)} evictions")
    lines.append(
        f"virtual time  : {svc.get('virtual_seconds', 0.0) * 1e3:.3f} ms, "
        f"throughput {svc.get('throughput_rps', 0.0):.1f} req/s (modeled)")
    phases = kern.get("phase_seconds")
    if phases:
        rows = [(k, round(phases[k] * 1e3, 4)) for k in sorted(phases)]
        rows.append(("total", round(sum(phases.values()) * 1e3, 4)))
        lines.append(format_table(
            ["kernel phase", "modeled ms"], rows,
            title="modeled kernel time (same workload, same clock)"))
    return "\n".join(lines)


def format_shard_report(snapshot: Mapping) -> str:
    """Human rendering of a :meth:`ShardMetrics.snapshot
    <repro.serve.metrics.ShardMetrics.snapshot>` — the fleet-level view
    (routing, locality, load balance, network) followed by a compact
    per-rank table.
    """
    sh = snapshot.get("sharded", {})
    counters = sh.get("counters", {})
    locality = sh.get("locality", {})
    net = sh.get("network", {})
    balance = sh.get("load_balance", {})
    lines = [format_table(
        ["counter", "value"],
        [(k, counters[k]) for k in sorted(counters)],
        title=(f"sharded service: {sh.get('ranks', 0)} ranks "
               f"({sh.get('active_ranks', 0)} active), "
               f"{sh.get('replicas', 0)} replicas"))]
    lines.append(
        f"cache locality: {locality.get('home_warm', 0)} home+warm of "
        f"{locality.get('redeemed_completed', 0)} completed "
        f"(hit rate {locality.get('hit_rate', 0.0):.2f}); "
        f"{locality.get('home_served', 0)} served on home rank")
    lines.append(
        f"network       : {net.get('forward_messages', 0)} forwards "
        f"({net.get('forward_bytes', 0)} B, "
        f"{net.get('forward_seconds', 0.0) * 1e3:.3f} ms), "
        f"{net.get('return_messages', 0)} returns "
        f"({net.get('return_bytes', 0)} B, "
        f"{net.get('return_seconds', 0.0) * 1e3:.3f} ms)")
    lines.append(
        f"virtual time  : {sh.get('virtual_seconds', 0.0) * 1e3:.3f} ms "
        f"(makespan), throughput {sh.get('throughput_rps', 0.0):.1f} req/s "
        f"(modeled)")
    per_rank = snapshot.get("ranks", [])
    completed = balance.get("completed_per_rank",
                            [0] * len(per_rank))
    busy = balance.get("busy_seconds_per_rank", [0.0] * len(per_rank))
    rows = []
    for rank, snap in enumerate(per_rank):
        svc = snap.get("service", {})
        cache = svc.get("hierarchy_cache", {})
        rows.append((
            rank, completed[rank],
            round(busy[rank] * 1e3, 3),
            round(svc.get("virtual_seconds", 0.0) * 1e3, 3),
            svc.get("counters", {}).get("batches", 0),
            f"{cache.get('hit_rate', 0.0):.2f}",
        ))
    lines.append(format_table(
        ["rank", "completed", "busy ms", "clock ms", "batches", "$ rate"],
        rows,
        title=(f"per-rank load (completed imbalance "
               f"{balance.get('completed_imbalance', 0.0):.2f}, "
               f"busy imbalance {balance.get('busy_imbalance', 0.0):.2f})")))
    events = sh.get("autoscale_events", [])
    if events:
        lines.append(format_table(
            ["t (ms)", "action", "active ranks"],
            [(round(e["t"] * 1e3, 3), e["action"], e["active"])
             for e in events],
            title="autoscale events"))
    faults = sh.get("faults")
    if faults:
        hedges = faults.get("hedges", {})
        rewarm = faults.get("rewarm", {})
        health = faults.get("health", {})
        lines.append(format_table(
            ["fault counter", "value"],
            [
                ("failovers", faults.get("failovers", 0)),
                ("evacuated (queued)", faults.get("evacuated", 0)),
                ("lost in-flight", faults.get("lost_inflight", 0)),
                ("failed (retries exhausted)", faults.get("failed", 0)),
                ("retry backoff ms",
                 round(faults.get("retry_backoff_seconds", 0.0) * 1e3, 3)),
                ("failover bytes", faults.get("failover_bytes", 0)),
                ("hedges issued/won/lost/cancelled",
                 f"{hedges.get('issued', 0)}/{hedges.get('won', 0)}/"
                 f"{hedges.get('lost', 0)}/{hedges.get('cancelled', 0)}"),
                ("re-warm entries", rewarm.get("entries", 0)),
                ("re-warm bytes", rewarm.get("bytes", 0)),
                ("breaker transitions",
                 faults.get("breaker_transitions", 0)),
            ],
            title=(f"fault lifecycle (availability "
                   f"{health.get('availability', 1.0):.4f}, "
                   f"{health.get('heartbeats_missed', 0)} of "
                   f"{health.get('heartbeats', 0)} heartbeats missed)")))
        transitions = health.get("transitions", [])
        if transitions:
            lines.append(format_table(
                ["t (ms)", "rank", "state", "breaker"],
                [(round(e["t"] * 1e3, 3), e["rank"], e["state"],
                  e["breaker"]) for e in transitions],
                title="health transitions"))
    return "\n".join(lines)
