"""Chrome-trace export of instrumentation data.

Converts a :class:`PerfLog` (or a :class:`SimComm`'s per-rank logs plus
message log) into the Trace Event JSON format that ``chrome://tracing`` /
Perfetto render — each kernel record becomes a duration event laid out on
its modeled timeline, each message a flow arrow between ranks.  Purely a
visualization aid; timings are the machine-model times.
"""

from __future__ import annotations

import json

from .counters import PerfLog
from .machine import MachineModel
from .network import NetworkModel

__all__ = ["log_to_trace", "comm_to_trace", "write_trace"]


def log_to_trace(
    log: PerfLog,
    machine: MachineModel,
    *,
    pid: int = 0,
    tid: int = 0,
    start_us: float = 0.0,
) -> list[dict]:
    """Serialize one log as sequential duration events (modeled times)."""
    events = []
    t = start_us
    for rec in log.records:
        dur = machine.record_time(rec) * 1e6
        events.append(
            {
                "name": rec.kernel,
                "cat": rec.phase,
                "ph": "X",
                "ts": round(t, 3),
                "dur": round(max(dur, 0.001), 3),
                "pid": pid,
                "tid": tid,
                "args": {
                    "flops": rec.flops,
                    "bytes": rec.bytes_total,
                    "branches": rec.branches,
                    "parallel": rec.parallel,
                },
            }
        )
        t += dur
    return events


def comm_to_trace(comm, machine: MachineModel, net: NetworkModel) -> list[dict]:
    """Serialize a SimComm run: one track per rank plus message counters."""
    events = []
    for p, log in enumerate(comm.rank_logs):
        events.extend(log_to_trace(log, machine, pid=0, tid=p))
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": p,
             "args": {"name": f"rank {p}"}}
        )
    # Message volume per (src -> dst) as instant events on the source track.
    t = 0.0
    for m in comm.messages:
        dur = net.message_time(m.event) * 1e6
        events.append(
            {
                "name": f"msg {m.event.src}->{m.event.dst} "
                        f"({m.event.nbytes} B{', persistent' if m.event.persistent else ''})",
                "cat": "comm:" + (m.event.tag or "untagged"),
                "ph": "X",
                "ts": round(t, 3),
                "dur": round(max(dur, 0.001), 3),
                "pid": 1,
                "tid": m.event.src,
                "args": {"bytes": m.event.nbytes, "phase": m.phase},
            }
        )
        t += dur
    events.append({"name": "process_name", "ph": "M", "pid": 0,
                   "args": {"name": "compute (modeled)"}})
    events.append({"name": "process_name", "ph": "M", "pid": 1,
                   "args": {"name": "network (modeled)"}})
    return events


def write_trace(path, events: list[dict]) -> None:
    """Write events as a Trace Event JSON file (open in Perfetto)."""
    with open(path, "w") as f:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, f)
