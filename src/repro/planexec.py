"""Solve-plan execution gate.

``REPRO_SOLVEPLAN=off`` disables the plan-driven solve-phase execution paths
(compiled GS sweeps, prebound transfer kernels, plan-table counting) and
falls back to the legacy per-sweep code.  Both paths are bit-identical in
iterates and in the recorded :class:`repro.perf.PerfLog` stream; the gate
exists so benchmarks can measure the wall-clock delta and tests can compare
the two executions directly.

This lives at the package top level (not under ``repro.amg``) because the
low-level ``sparse``/``dist`` kernels consult it too and must not import the
AMG layer.
"""

from __future__ import annotations

import os

__all__ = ["plan_enabled"]


def plan_enabled() -> bool:
    """Whether plan-driven solve execution is on (default: on)."""
    return os.environ.get("REPRO_SOLVEPLAN", "on").lower() != "off"
