"""Workload generators for the paper's evaluation inputs (Table 2, §5.1.2)."""

from .amg2013 import amg2013_problem
from .anisotropic import anisotropic_2d, rotated_anisotropy_2d
from .grf import gaussian_random_field_3d, lognormal_permeability
from .laplace import (
    grid_indices_3d,
    laplace_2d_5pt,
    laplace_3d_7pt,
    laplace_3d_27pt,
    variable_coefficient_3d_7pt,
)
from .reservoir import reservoir_problem
from .stencil import (
    convection_diffusion_3d,
    hex7_matrix_2d,
    stencil_matrix_2d,
    stencil_matrix_3d,
)
from .suite import TABLE2_SUITE, SuiteMatrix, generate, suite_names

__all__ = [
    "amg2013_problem",
    "anisotropic_2d",
    "rotated_anisotropy_2d",
    "gaussian_random_field_3d",
    "lognormal_permeability",
    "grid_indices_3d",
    "laplace_2d_5pt",
    "laplace_3d_7pt",
    "laplace_3d_27pt",
    "variable_coefficient_3d_7pt",
    "reservoir_problem",
    "convection_diffusion_3d",
    "hex7_matrix_2d",
    "stencil_matrix_2d",
    "stencil_matrix_3d",
    "TABLE2_SUITE",
    "SuiteMatrix",
    "generate",
    "suite_names",
]
