"""AMG2013-style semi-structured input (§5.1.2, Fig. 6d–f).

The AMG2013 proxy app's default input (``pooldist=1``) couples structured
grid blocks — one per MPI rank, arranged in a processor grid — through
semi-structured interfaces, producing ~8 nnz/row.  The surrogate here:
each rank owns an ``r^3`` 7-point block; blocks adjacent in the processor
grid are stitched face-to-face (structured coupling), and a fraction of
interface points receive an extra skew coupling into the diagonal
neighbour block (the "semi-structured" part that pushes nnz/row toward 8
and breaks pure grid structure).  Requires >= 8 ranks for a 2x2x2
processor grid, like the original (``pooldist=1`` note in the paper).
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = ["amg2013_problem"]


def _proc_grid(nranks: int) -> tuple[int, int, int]:
    """Near-cubic factorization of the rank count."""
    best = (nranks, 1, 1)
    best_score = nranks
    for px in range(1, nranks + 1):
        if nranks % px:
            continue
        rem = nranks // px
        for py in range(1, rem + 1):
            if rem % py:
                continue
            pz = rem // py
            score = max(px, py, pz) - min(px, py, pz)
            if score < best_score:
                best_score = score
                best = (px, py, pz)
    return best


def amg2013_problem(
    nranks: int, r: int = 8, *, skew_fraction: float = 0.3, seed: int = 0
) -> tuple[CSRMatrix, np.ndarray]:
    """Returns ``(A, rank_sizes)`` for ``nranks`` blocks of ``r^3`` points.

    Rows are ordered rank-major (rank *p*'s block is rows
    ``[p*r^3, (p+1)*r^3)``), so a uniform :class:`RowPartition` matches the
    intended ownership exactly.
    """
    if nranks < 8:
        raise ValueError("the semi-structured input requires >= 8 ranks")
    px, py, pz = _proc_grid(nranks)
    n_blk = r**3
    n = nranks * n_blk
    rng = np.random.default_rng(seed)

    bi, bj, bk = np.meshgrid(np.arange(px), np.arange(py), np.arange(pz),
                             indexing="ij")
    block_id = ((bi * py + bj) * pz + bk)

    li, lj, lk = np.meshgrid(np.arange(r), np.arange(r), np.arange(r),
                             indexing="ij")
    local = ((li * r + lj) * r + lk).ravel()

    rows, cols, vals = [], [], []
    diag = np.zeros(n)

    def gid(b, loc):
        return b * n_blk + loc

    # Interior 7-pt couplings within every block (vectorized over blocks).
    for d in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
        i2, j2, k2 = li + d[0], lj + d[1], lk + d[2]
        ok = ((i2 < r) & (j2 < r) & (k2 < r)).ravel()
        src_l = local[ok]
        dst_l = ((i2 * r + j2) * r + k2).ravel()[ok]
        for b in range(nranks):
            s = gid(b, src_l)
            t = gid(b, dst_l)
            rows.extend([s, t])
            cols.extend([t, s])
            vals.extend([np.full(len(s), -1.0)] * 2)
            diag[s] += 1.0
            diag[t] += 1.0

    # Face couplings between adjacent blocks in the processor grid.
    face = {
        0: (li == r - 1).ravel(),
        1: (lj == r - 1).ravel(),
        2: (lk == r - 1).ravel(),
    }
    opp = {
        0: ((li == 0).ravel()),
        1: ((lj == 0).ravel()),
        2: ((lk == 0).ravel()),
    }
    for axis, dvec in enumerate(((1, 0, 0), (0, 1, 0), (0, 0, 1))):
        nb_i, nb_j, nb_k = bi + dvec[0], bj + dvec[1], bk + dvec[2]
        ok_blk = (nb_i < px) & (nb_j < py) & (nb_k < pz)
        src_blocks = block_id[ok_blk].ravel()
        dst_blocks = ((nb_i * py + nb_j) * pz + nb_k)[ok_blk].ravel()
        f_src = local[face[axis]]
        f_dst = local[opp[axis]]
        for sb, db in zip(src_blocks, dst_blocks):
            s = gid(sb, f_src)
            t = gid(db, f_dst)
            rows.extend([s, t])
            cols.extend([t, s])
            vals.extend([np.full(len(s), -1.0)] * 2)
            diag[s] += 1.0
            diag[t] += 1.0
            # Semi-structured extras: skewed couplings for a subset of the
            # interface points into a shifted partner on the far side.
            m = rng.random(len(s)) < skew_fraction
            if m.any():
                shift = rng.integers(1, r, size=int(m.sum()))
                t2 = gid(db, (f_dst[m] + shift * r) % n_blk)
                s2 = s[m]
                rows.extend([s2, t2])
                cols.extend([t2, s2])
                vals.extend([np.full(len(s2), -0.5)] * 2)
                diag[s2] += 0.5
                diag[t2] += 0.5

    p_all = np.arange(n, dtype=np.int64)
    rows.append(p_all)
    cols.append(p_all)
    vals.append(diag + 1.0)  # boundary closure keeps the operator SPD
    A = CSRMatrix.from_coo(
        (n, n),
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals),
    )
    return A, np.full(nranks, n_blk, dtype=np.int64)
