"""Anisotropic / rotated-anisotropy diffusion problems.

Not part of the paper's Table 2 — used by the extension benchmarks and the
strength-threshold ablation (anisotropy is the classic stressor for the
strength-of-connection heuristic).
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix
from .stencil import stencil_matrix_2d

__all__ = ["anisotropic_2d", "rotated_anisotropy_2d"]


def anisotropic_2d(nx: int, ny: int | None = None, *, epsilon: float = 0.01) -> CSRMatrix:
    """``-u_xx - eps*u_yy`` on a 5-point stencil (grid-aligned anisotropy)."""
    ny = ny or nx
    return stencil_matrix_2d(
        nx, ny,
        [(1, 0), (-1, 0), (0, 1), (0, -1)],
        [-1.0, -1.0, -epsilon, -epsilon],
        diag_shift=1e-8,
    )


def rotated_anisotropy_2d(
    nx: int, ny: int | None = None, *, epsilon: float = 0.01, theta: float = np.pi / 4
) -> CSRMatrix:
    """Anisotropy rotated by *theta*, discretized on a 9-point stencil."""
    ny = ny or nx
    c, s = np.cos(theta), np.sin(theta)
    a = c * c + epsilon * s * s
    b = s * s + epsilon * c * c
    d = (1.0 - epsilon) * s * c
    offsets = [(1, 0), (-1, 0), (0, 1), (0, -1), (1, 1), (-1, -1), (1, -1), (-1, 1)]
    weights = [-a, -a, -b, -b, -d / 2, -d / 2, d / 2, d / 2]
    return stencil_matrix_2d(nx, ny, offsets, weights, diag_shift=1e-8)
