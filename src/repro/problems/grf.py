"""Gaussian random fields (the reservoir-permeability substitute, §5.1.2).

The paper's strong-scaling input is an elliptic problem over a permeability
field "generated geostatistically using sequential Gaussian simulations"
(proprietary data from Stanford).  We substitute an FFT-based stationary
Gaussian random field with an exponential covariance — the same statistical
family sequential Gaussian simulation targets — exponentiated to a
lognormal permeability with several decades of contrast (see DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_random_field_3d", "lognormal_permeability"]


def gaussian_random_field_3d(
    shape: tuple[int, int, int],
    *,
    correlation_length: float = 4.0,
    seed: int = 0,
) -> np.ndarray:
    """Stationary 3-D Gaussian field, exponential covariance, unit variance.

    Spectral (circulant-embedding-lite) synthesis: white noise shaped by the
    square root of the target power spectrum.  Periodic artifacts are
    irrelevant at the correlation lengths used here.
    """
    nx, ny, nz = shape
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(shape)
    kx = np.fft.fftfreq(nx)[:, None, None]
    ky = np.fft.fftfreq(ny)[None, :, None]
    kz = np.fft.fftfreq(nz)[None, None, :]
    k2 = kx**2 + ky**2 + kz**2
    lc = correlation_length
    # Power spectrum of an exponential covariance in 3-D ~ (1 + (lc k)^2)^-2.
    power = (1.0 + (2.0 * np.pi * lc) ** 2 * k2) ** -2
    spec = np.fft.fftn(noise) * np.sqrt(power)
    field = np.real(np.fft.ifftn(spec))
    field -= field.mean()
    std = field.std()
    if std > 0:
        field /= std
    return field


def lognormal_permeability(
    shape: tuple[int, int, int],
    *,
    log10_contrast: float = 6.0,
    correlation_length: float = 4.0,
    seed: int = 0,
) -> np.ndarray:
    """Lognormal permeability with ~``log10_contrast`` decades of range.

    The +/-3 sigma span of the underlying Gaussian maps onto the requested
    contrast, yielding the highly discontinuous, badly conditioned
    coefficients of the paper's reservoir problem.
    """
    g = gaussian_random_field_3d(
        shape, correlation_length=correlation_length, seed=seed
    )
    sigma = log10_contrast / 6.0  # +/-3 sigma covers the contrast
    return 10.0 ** (sigma * g)
