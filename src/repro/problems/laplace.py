"""Structured Laplacian generators (Table 2 / §5 workloads).

* :func:`laplace_2d_5pt` — the ``lap2d_2000`` matrix class (AMG2013's 2-D
  Laplace, 5-point stencil, ~5 nnz/row).
* :func:`laplace_3d_7pt` — 7-point 3-D Poisson (the strong-scaling
  reservoir problem's stencil, ~7 nnz/row; also variable-coefficient form).
* :func:`laplace_3d_27pt` — the HPCG 27-point operator (``lap3d_128``,
  ~27 nnz/row): diagonal 26, all neighbours in the 3x3x3 cube -1.

All generators are fully vectorized and return :class:`CSRMatrix` plus
helper index utilities.  Dirichlet boundaries are imposed by truncating the
stencil at the domain boundary (rows keep the full diagonal), which matches
the benchmark matrices' structure.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = [
    "laplace_2d_5pt",
    "laplace_3d_7pt",
    "laplace_3d_27pt",
    "variable_coefficient_3d_7pt",
    "grid_indices_3d",
]


def laplace_2d_5pt(nx: int, ny: int | None = None) -> CSRMatrix:
    """2-D Poisson, 5-point stencil, Dirichlet boundary (diag 4, off -1)."""
    ny = ny or nx
    n = nx * ny
    ii, jj = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    p = (ii * ny + jj).ravel()
    rows = [p]
    cols = [p]
    vals = [np.full(n, 4.0)]
    for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        i2, j2 = ii + di, jj + dj
        ok = ((i2 >= 0) & (i2 < nx) & (j2 >= 0) & (j2 < ny)).ravel()
        rows.append(p[ok])
        cols.append((i2 * ny + j2).ravel()[ok])
        vals.append(np.full(int(ok.sum()), -1.0))
    return CSRMatrix.from_coo(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def grid_indices_3d(nx: int, ny: int, nz: int):
    """Meshgrid index arrays and the flattening rule used by the 3-D gens."""
    ii, jj, kk = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    flat = (ii * ny + jj) * nz + kk
    return ii, jj, kk, flat


def laplace_3d_7pt(nx: int, ny: int | None = None, nz: int | None = None) -> CSRMatrix:
    """3-D Poisson, 7-point stencil (diag 6, off -1), Dirichlet."""
    ny = ny or nx
    nz = nz or nx
    n = nx * ny * nz
    ii, jj, kk, flat = grid_indices_3d(nx, ny, nz)
    p = flat.ravel()
    rows = [p]
    cols = [p]
    vals = [np.full(n, 6.0)]
    for d in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)):
        i2, j2, k2 = ii + d[0], jj + d[1], kk + d[2]
        ok = (
            (i2 >= 0) & (i2 < nx) & (j2 >= 0) & (j2 < ny) & (k2 >= 0) & (k2 < nz)
        ).ravel()
        rows.append(p[ok])
        cols.append((((i2 * ny) + j2) * nz + k2).ravel()[ok])
        vals.append(np.full(int(ok.sum()), -1.0))
    return CSRMatrix.from_coo(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def laplace_3d_27pt(nx: int, ny: int | None = None, nz: int | None = None) -> CSRMatrix:
    """The HPCG 27-point operator: diagonal 26, every cube neighbour -1."""
    ny = ny or nx
    nz = nz or nx
    n = nx * ny * nz
    ii, jj, kk, flat = grid_indices_3d(nx, ny, nz)
    p = flat.ravel()
    rows = [p]
    cols = [p]
    vals = [np.full(n, 26.0)]
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            for dk in (-1, 0, 1):
                if di == dj == dk == 0:
                    continue
                i2, j2, k2 = ii + di, jj + dj, kk + dk
                ok = (
                    (i2 >= 0) & (i2 < nx) & (j2 >= 0) & (j2 < ny)
                    & (k2 >= 0) & (k2 < nz)
                ).ravel()
                rows.append(p[ok])
                cols.append((((i2 * ny) + j2) * nz + k2).ravel()[ok])
                vals.append(np.full(int(ok.sum()), -1.0))
    return CSRMatrix.from_coo(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def variable_coefficient_3d_7pt(kappa: np.ndarray) -> CSRMatrix:
    """Cell-centered finite-volume discretization of ``-div(kappa grad u)``.

    *kappa* is a positive coefficient field of shape ``(nx, ny, nz)``; face
    transmissibilities use the harmonic mean of the adjacent cells, which is
    the standard reservoir-simulation discretization and produces the badly
    conditioned matrices of the paper's strong-scaling study (§5.1.2).
    Dirichlet boundary conditions (unit transmissibility to the boundary on
    the x faces) keep the operator non-singular.
    """
    kappa = np.asarray(kappa, dtype=np.float64)
    nx, ny, nz = kappa.shape
    n = nx * ny * nz
    ii, jj, kk, flat = grid_indices_3d(nx, ny, nz)
    p = flat.ravel()

    rows, cols, vals = [], [], []
    diag = np.zeros((nx, ny, nz))

    def face(axis, sign):
        sl_lo = [slice(None)] * 3
        sl_hi = [slice(None)] * 3
        sl_lo[axis] = slice(0, -1)
        sl_hi[axis] = slice(1, None)
        k_lo = kappa[tuple(sl_lo)]
        k_hi = kappa[tuple(sl_hi)]
        t = 2.0 * k_lo * k_hi / (k_lo + k_hi)
        return t

    for axis in range(3):
        t = face(axis, +1)
        # neighbour offsets along this axis
        idx_lo = [slice(None)] * 3
        idx_hi = [slice(None)] * 3
        idx_lo[axis] = slice(0, -1)
        idx_hi[axis] = slice(1, None)
        p_lo = flat[tuple(idx_lo)].ravel()
        p_hi = flat[tuple(idx_hi)].ravel()
        tv = t.ravel()
        rows.extend([p_lo, p_hi])
        cols.extend([p_hi, p_lo])
        vals.extend([-tv, -tv])
        diag[tuple(idx_lo)] += t
        diag[tuple(idx_hi)] += t

    # Dirichlet closure on the x = 0 and x = nx-1 faces.
    diag[0, :, :] += 2.0 * kappa[0, :, :]
    diag[-1, :, :] += 2.0 * kappa[-1, :, :]

    rows.append(p)
    cols.append(p)
    vals.append(diag.ravel())
    return CSRMatrix.from_coo(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )
