"""The strong-scaling reservoir-simulation problem (§5.1.2, Fig. 8).

A Poisson-like pressure equation ``-div(kappa grad p) = q`` over a
lognormal permeability field with large contrast, discretized with the
harmonic-mean finite-volume scheme of
:func:`repro.problems.laplace.variable_coefficient_3d_7pt` — 7 nnz/row like
the paper's 128M-row input, scaled down per DESIGN.md §2.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix
from .grf import lognormal_permeability
from .laplace import variable_coefficient_3d_7pt

__all__ = ["reservoir_problem"]


def reservoir_problem(
    nx: int,
    ny: int | None = None,
    nz: int | None = None,
    *,
    log10_contrast: float = 6.0,
    correlation_length: float = 4.0,
    seed: int = 0,
) -> tuple[CSRMatrix, np.ndarray, np.ndarray]:
    """Returns ``(A, b, kappa)``.

    ``b`` models an injector/producer well pair (point sources of opposite
    sign), the standard reservoir test configuration.
    """
    ny = ny or nx
    nz = nz or max(nx // 4, 2)
    kappa = lognormal_permeability(
        (nx, ny, nz),
        log10_contrast=log10_contrast,
        correlation_length=correlation_length,
        seed=seed,
    )
    A = variable_coefficient_3d_7pt(kappa)
    n = nx * ny * nz
    b = np.zeros(n)

    def cell(i, j, k):
        return (i * ny + j) * nz + k

    b[cell(nx // 8, ny // 8, nz // 2)] = 1.0
    b[cell(7 * nx // 8, 7 * ny // 8, nz // 2)] = -1.0
    return A, b, kappa
