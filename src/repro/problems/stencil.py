"""Generic structured-stencil matrix builder.

The Table 2 surrogate suite (see :mod:`repro.problems.suite`) is built from
parameterized stencils on 2-D/3-D grids: arbitrary neighbour offsets,
per-cell coefficient fields, optional convection (nonsymmetric upwind) —
enough structural variety to match each UF matrix's class and nnz/row.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = ["stencil_matrix_2d", "stencil_matrix_3d", "hex7_matrix_2d", "convection_diffusion_3d"]


def _assemble(rows, cols, vals, n) -> CSRMatrix:
    return CSRMatrix.from_coo(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def stencil_matrix_2d(
    nx: int,
    ny: int,
    offsets: list[tuple[int, int]],
    weights: list[float] | None = None,
    *,
    coeff: np.ndarray | None = None,
    diag_shift: float = 0.0,
) -> CSRMatrix:
    """SPD stencil matrix on an ``nx x ny`` grid.

    Each off-diagonal weight is multiplied by the geometric mean of the two
    cells' ``coeff`` values (heterogeneous media); the diagonal is the
    negated off-diagonal row sum plus ``diag_shift`` (weak diagonal
    dominance keeps the operator SPD-ish and AMG-friendly).
    """
    n = nx * ny
    ii, jj = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    p = (ii * ny + jj).ravel()
    if weights is None:
        weights = [-1.0] * len(offsets)
    c = np.ones((nx, ny)) if coeff is None else np.asarray(coeff, dtype=np.float64)

    rows, cols, vals = [], [], []
    diag = np.zeros(n)
    for (di, dj), w in zip(offsets, weights):
        i2, j2 = ii + di, jj + dj
        ok = ((i2 >= 0) & (i2 < nx) & (j2 >= 0) & (j2 < ny)).ravel()
        src = p[ok]
        dst = (i2 * ny + j2).ravel()[ok]
        cw = w * np.sqrt(c.ravel()[src] * c.ravel()[dst])
        rows.append(src)
        cols.append(dst)
        vals.append(cw)
        diag[src] -= cw
    rows.append(p)
    cols.append(p)
    vals.append(diag + diag_shift + np.abs(np.min(vals[-1])) * 0)
    return _assemble(rows, cols, vals, n)


def stencil_matrix_3d(
    nx: int,
    ny: int,
    nz: int,
    offsets: list[tuple[int, int, int]],
    weights: list[float] | None = None,
    *,
    coeff: np.ndarray | None = None,
    diag_shift: float = 0.0,
) -> CSRMatrix:
    """3-D analogue of :func:`stencil_matrix_2d`."""
    n = nx * ny * nz
    ii, jj, kk = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    p = ((ii * ny + jj) * nz + kk).ravel()
    if weights is None:
        weights = [-1.0] * len(offsets)
    c = np.ones((nx, ny, nz)) if coeff is None else np.asarray(coeff, dtype=np.float64)

    rows, cols, vals = [], [], []
    diag = np.zeros(n)
    for (di, dj, dk), w in zip(offsets, weights):
        i2, j2, k2 = ii + di, jj + dj, kk + dk
        ok = (
            (i2 >= 0) & (i2 < nx) & (j2 >= 0) & (j2 < ny) & (k2 >= 0) & (k2 < nz)
        ).ravel()
        src = p[ok]
        dst = (((i2 * ny) + j2) * nz + k2).ravel()[ok]
        cw = w * np.sqrt(c.ravel()[src] * c.ravel()[dst])
        rows.append(src)
        cols.append(dst)
        vals.append(cw)
        diag[src] -= cw
    rows.append(p)
    cols.append(p)
    vals.append(diag + diag_shift)
    return _assemble(rows, cols, vals, n)


def hex7_matrix_2d(nx: int, ny: int, *, coeff: np.ndarray | None = None,
                   diag_shift: float = 0.0) -> CSRMatrix:
    """Hexagonal 7-point 2-D stencil (triangulated-mesh FEM surrogate:
    ~7 nnz/row like ``parabolic_fem``/``thermal2``)."""
    offsets = [(1, 0), (-1, 0), (0, 1), (0, -1), (1, 1), (-1, -1)]
    return stencil_matrix_2d(nx, ny, offsets, coeff=coeff, diag_shift=diag_shift)


def convection_diffusion_3d(
    nx: int, ny: int, nz: int, *, velocity: tuple[float, float, float] = (1.0, 0.5, 0.25),
    peclet: float = 0.5, diag_shift: float = 0.05,
) -> CSRMatrix:
    """Nonsymmetric 3-D convection–diffusion (``atmosmod*`` surrogate).

    Central-difference diffusion plus first-order upwind convection with
    cell Péclet number *peclet*; ~7 nnz/row, mildly nonsymmetric like the
    atmospheric-model matrices.  ``diag_shift`` closes the boundary
    (Dirichlet-like), keeping the operator nonsingular.
    """
    n = nx * ny * nz
    ii, jj, kk = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    p = ((ii * ny + jj) * nz + kk).ravel()
    vx, vy, vz = velocity
    vmax = max(abs(vx), abs(vy), abs(vz), 1e-12)

    rows, cols, vals = [], [], []
    diag = np.zeros(n)
    for axis, (d, v) in enumerate(
        (( (1, 0, 0), vx), ((0, 1, 0), vy), ((0, 0, 1), vz))
    ):
        for sgn in (+1, -1):
            di, dj, dk = (sgn * d[0], sgn * d[1], sgn * d[2])
            i2, j2, k2 = ii + di, jj + dj, kk + dk
            ok = (
                (i2 >= 0) & (i2 < nx) & (j2 >= 0) & (j2 < ny)
                & (k2 >= 0) & (k2 < nz)
            ).ravel()
            src = p[ok]
            dst = (((i2 * ny) + j2) * nz + k2).ravel()[ok]
            w = -1.0
            # Upwind: the face against the flow carries the convective flux.
            upwind = (v > 0 and sgn < 0) or (v < 0 and sgn > 0)
            if upwind:
                w -= peclet * abs(v) / vmax
            rows.append(src)
            cols.append(dst)
            vals.append(np.full(len(src), w))
            diag[src] -= w
    rows.append(p)
    cols.append(p)
    vals.append(diag + diag_shift)
    return _assemble(rows, cols, vals, n)
