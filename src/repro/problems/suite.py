"""The Table 2 single-node matrix suite — synthetic surrogates.

The University of Florida instances themselves are not redistributable /
downloadable in this offline environment, so each is replaced by a
generated matrix of the same *structural class* (discretization family,
nnz/row, symmetry, coefficient character), scaled down ``scale``-fold in
rows (DESIGN.md §2).  The suite drives Fig. 5.

| # | name           | paper rows | nnz/row | surrogate                                   |
|---|----------------|-----------:|--------:|---------------------------------------------|
| 1 | 2cubes_sphere  |    101,492 |       9 | 3-D 7-pt + 2 skew couplings (FEM EM)         |
| 2 | G2_circuit     |    150,102 |       5 | 2-D 5-pt, lognormal conductances (circuit)   |
| 3 | G3_circuit     |  1,585,478 |       5 | same, larger                                 |
| 4 | StocF-1465     |  1,465,137 |      14 | 3-D 13-pt star, stochastic permeability      |
| 5 | apache2        |    715,176 |       7 | 3-D 7-pt structural                          |
| 6 | atmosmodd      |  1,270,432 |       7 | 3-D convection-diffusion (upwind, nonsym)    |
| 7 | atmosmodj      |  1,270,432 |       7 | same, different wind                         |
| 8 | atmosmodl      |  1,489,752 |       7 | same, larger, weak wind                      |
| 9 | ecology2       |    999,999 |       5 | 2-D 5-pt, heterogeneous media                |
|10 | lap2d_2000     |  4,000,000 |       5 | 2-D 5-pt Laplace (AMG2013)                   |
|11 | lap3d_128      |  2,097,152 |      27 | 3-D 27-pt Laplace (HPCG)                     |
|12 | parabolic_fem  |    525,825 |       7 | hex 7-pt + mass term (implicit time step)    |
|13 | thermal2       |  1,228,045 |       7 | hex 7-pt, lognormal conductivity             |
|14 | tmt_sym        |    726,713 |       5 | 2-D 5-pt, mild anisotropy                    |
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from ..sparse.csr import CSRMatrix
from .grf import lognormal_permeability
from .laplace import laplace_2d_5pt, laplace_3d_27pt, laplace_3d_7pt
from .stencil import convection_diffusion_3d, hex7_matrix_2d, stencil_matrix_2d, stencil_matrix_3d

__all__ = ["SuiteMatrix", "TABLE2_SUITE", "generate", "suite_names"]


@dataclass(frozen=True)
class SuiteMatrix:
    name: str
    paper_rows: int
    paper_nnz_per_row: int
    #: Table 3: strength threshold chosen per matrix (0.25 or 0.6) for the
    #: faster time to solution; 0.6 mirrors HYPRE practice on 3-D problems.
    strength_threshold: float
    build: Callable[[int], CSRMatrix]


def _side2d(rows: int, scale: int) -> int:
    return max(int(np.sqrt(rows / scale)), 12)


def _side3d(rows: int, scale: int) -> int:
    return max(int(round((rows / scale) ** (1.0 / 3.0))), 6)


def _coeff2d(nx, ny, contrast, seed):
    k3 = lognormal_permeability((nx, ny, 1), log10_contrast=contrast, seed=seed)
    return k3[:, :, 0]


def _m_2cubes(scale):
    s = _side3d(101_492, scale)
    offs = [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1),
            (1, 1, 0), (-1, -1, 0)]
    return stencil_matrix_3d(s, s, s, offs, diag_shift=0.05)


def _m_circuit(rows, scale, seed):
    s = _side2d(rows, scale)
    c = _coeff2d(s, s, 3.0, seed)
    return stencil_matrix_2d(
        s, s, [(1, 0), (-1, 0), (0, 1), (0, -1)], coeff=c, diag_shift=0.01
    )


def _m_stocf(scale):
    s = _side3d(1_465_137, scale)
    k = lognormal_permeability((s, s, s), log10_contrast=4.0, seed=4)
    offs = [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1),
            (1, 1, 0), (-1, -1, 0), (1, -1, 0), (-1, 1, 0),
            (0, 1, 1), (0, -1, -1), (1, 0, 1), (-1, 0, -1)]
    w = [-1.0] * 6 + [-0.35] * 8
    return stencil_matrix_3d(s, s, s, offs, w, coeff=k, diag_shift=0.02)


def _m_apache(scale):
    s = _side3d(715_176, scale)
    return laplace_3d_7pt(s)


def _m_atmosmod(rows, scale, velocity, peclet):
    s = _side3d(rows, scale)
    return convection_diffusion_3d(s, s, s, velocity=velocity, peclet=peclet)


def _m_ecology(scale):
    s = _side2d(999_999, scale)
    c = _coeff2d(s, s, 2.0, 9)
    return stencil_matrix_2d(
        s, s, [(1, 0), (-1, 0), (0, 1), (0, -1)], coeff=c, diag_shift=0.02
    )


def _m_parabolic(scale):
    s = _side2d(525_825, scale)
    A = hex7_matrix_2d(s, s, diag_shift=0.0)
    # Implicit time step: M + dt*A with a lumped unit mass matrix.
    return CSRMatrix(
        A.shape, A.indptr.copy(), A.indices.copy(),
        np.where(A.indices == A.row_ids(), A.data * 0.2 + 1.0, A.data * 0.2),
    )


def _m_thermal(scale):
    s = _side2d(1_228_045, scale)
    c = _coeff2d(s, s, 2.5, 13)
    return hex7_matrix_2d(s, s, coeff=c, diag_shift=0.01)


def _m_tmt(scale):
    s = _side2d(726_713, scale)
    return stencil_matrix_2d(
        s, s, [(1, 0), (-1, 0), (0, 1), (0, -1)], [-1.0, -1.0, -0.4, -0.4],
        diag_shift=0.01,
    )


TABLE2_SUITE: list[SuiteMatrix] = [
    SuiteMatrix("2cubes_sphere", 101_492, 9, 0.25, _m_2cubes),
    SuiteMatrix("G2_circuit", 150_102, 5, 0.25,
                lambda sc: _m_circuit(150_102, sc, 2)),
    SuiteMatrix("G3_circuit", 1_585_478, 5, 0.25,
                lambda sc: _m_circuit(1_585_478, sc, 3)),
    SuiteMatrix("StocF-1465", 1_465_137, 14, 0.6, _m_stocf),
    SuiteMatrix("apache2", 715_176, 7, 0.25, _m_apache),
    SuiteMatrix("atmosmodd", 1_270_432, 7, 0.25,
                lambda sc: _m_atmosmod(1_270_432, sc, (1.0, 0.0, 0.0), 0.8)),
    SuiteMatrix("atmosmodj", 1_270_432, 7, 0.25,
                lambda sc: _m_atmosmod(1_270_432, sc, (0.7, 0.7, 0.0), 0.8)),
    SuiteMatrix("atmosmodl", 1_489_752, 7, 0.25,
                lambda sc: _m_atmosmod(1_489_752, sc, (0.3, 0.3, 0.3), 0.3)),
    SuiteMatrix("ecology2", 999_999, 5, 0.25, _m_ecology),
    SuiteMatrix("lap2d_2000", 4_000_000, 5, 0.25,
                lambda sc: laplace_2d_5pt(_side2d(4_000_000, sc))),
    SuiteMatrix("lap3d_128", 2_097_152, 27, 0.6,
                lambda sc: laplace_3d_27pt(_side3d(2_097_152, sc))),
    SuiteMatrix("parabolic_fem", 525_825, 7, 0.25, _m_parabolic),
    SuiteMatrix("thermal2", 1_228_045, 7, 0.25, _m_thermal),
    SuiteMatrix("tmt_sym", 726_713, 5, 0.25, _m_tmt),
]


def suite_names() -> list[str]:
    return [m.name for m in TABLE2_SUITE]


def generate(name: str, scale: int = 64) -> tuple[CSRMatrix, SuiteMatrix]:
    """Generate the surrogate for Table 2 matrix *name*.

    ``scale`` divides the paper's row count (default 64x smaller, sized for
    the pure-Python substrate; see DESIGN.md §2).
    """
    for m in TABLE2_SUITE:
        if m.name == name:
            return m.build(scale), m
    raise KeyError(f"unknown suite matrix {name!r}; know {suite_names()}")
