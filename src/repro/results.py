"""Unified solve-result records shared by every solver in the library.

Historically ``AMGSolver``, the Krylov drivers, and ``DistAMGSolver`` each
carried their own result dataclass with the same four fields.  They are now
one type — :class:`SolveResult` — with thin subclasses kept so
``isinstance`` checks and type annotations stay meaningful:

* :class:`SolveResult` — node-level solves (``x`` is a numpy array);
* :class:`KrylovResult` — alias for Krylov drivers (same fields);
* :class:`DistSolveResult` — distributed solves (``x`` is a ``ParVector``);
* :class:`ServiceResult` — a request's outcome from the batching solve
  service (:mod:`repro.serve`): the solve fields plus service-side status,
  modeled wait/solve latencies, and the micro-batch it rode in.

Fields: ``x``, ``iterations``, ``residuals``, ``converged``, plus the
derived ``final_relres`` property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["SolveResult", "KrylovResult", "DistSolveResult", "ServiceResult",
           "SERVICE_STATUSES", "resolve_maxiter"]


def resolve_maxiter(maxiter: int | None, max_iter: int | None, default: int) -> int:
    """Resolve the ``maxiter`` / legacy ``max_iter`` keyword pair.

    Every solver accepts both spellings (``maxiter`` is the unified API
    name; ``max_iter`` predates it).  Passing both with different values is
    an error.
    """
    if maxiter is not None and max_iter is not None and maxiter != max_iter:
        raise TypeError("pass either maxiter or max_iter, not both")
    if maxiter is not None:
        return maxiter
    if max_iter is not None:
        return max_iter
    return default


@dataclass
class SolveResult:
    """Outcome of a linear solve.

    Attributes
    ----------
    x:
        The computed solution (numpy array for node-level solvers,
        ``ParVector`` for distributed ones).
    iterations:
        Iterations (cycles for standalone AMG) performed.
    residuals:
        Residual-norm history, starting with the initial residual.
    converged:
        Whether the stopping tolerance was met within ``maxiter``.
    degraded:
        True when the result was produced through the graceful-degradation
        ladder (e.g. AMG-preconditioned Krylov broke down and the facade
        fell back to diagonal-preconditioned CG), or when a distributed
        solve had to give up after exhausting its restart budget.
    degraded_reason:
        Short human-readable cause of the downgrade (``None`` if not
        degraded).
    fault_events:
        Every fault observed while producing this result: injected
        communication faults and retries (:class:`repro.faults.FaultEvent`
        records from a :class:`~repro.faults.comm.FaultyComm`) plus
        solver-level guard verdicts, breakdowns, checkpoint restarts, and
        downgrade records.  Empty for a clean solve.
    """

    x: Any
    iterations: int
    residuals: list[float] = field(default_factory=list)
    converged: bool = False
    degraded: bool = False
    degraded_reason: str | None = None
    fault_events: list[Any] = field(default_factory=list)

    @property
    def final_relres(self) -> float:
        """Final residual norm relative to the initial one."""
        return self.residuals[-1] / self.residuals[0] if self.residuals else np.inf


@dataclass
class KrylovResult(SolveResult):
    """Result of a Krylov solve (same fields as :class:`SolveResult`)."""


@dataclass
class DistSolveResult(SolveResult):
    """Result of a distributed solve; ``x`` is a ``repro.dist.ParVector``."""


#: Terminal states a service request can end in.  Every submitted request
#: resolves to exactly one of these — admission-control pushback, timeouts,
#: and exhausted failover retries are structured results, never unhandled
#: exceptions.  ``failed`` is reachable only through the sharded tier's
#: fault lifecycle: the request survived admission but every failover
#: attempt (rank deaths, retry budget) was exhausted before any rank could
#: serve it.
SERVICE_STATUSES = ("completed", "rejected", "timeout", "cancelled", "failed")


@dataclass
class ServiceResult(SolveResult):
    """Outcome of one request to the batching solve service.

    Extends :class:`SolveResult` (so ``degraded``/``fault_events`` from the
    underlying solve propagate per request) with service-side fields:

    Attributes
    ----------
    status:
        One of :data:`SERVICE_STATUSES`.  Only ``"completed"`` carries a
        solve; the other states have ``x is None`` and ``degraded=True``
        with the cause in ``degraded_reason``.
    request_id:
        The ticket id this result answers.
    priority:
        The request's admission priority class.
    wait_seconds:
        Modeled time the request sat queued (arrival to batch dispatch).
    solve_seconds:
        Modeled compute time of the micro-batch that served the request
        (shared by every batch member — the worker is occupied for the
        whole batch).
    batch_size:
        Number of requests coalesced into that micro-batch (0 when the
        request never reached a batch).
    cache_hit:
        Whether the batch reused a cached hierarchy (setup phase skipped).
    rank:
        Service rank that executed the request (always 0 for the
        single-rank :class:`~repro.serve.service.SolveService`).
    home_rank:
        The rank the request's routing key hashes to on the consistent-hash
        ring of :class:`~repro.serve.shard.ShardedSolveService` — where the
        request arrived.  ``rank != home_rank`` means the request was
        forwarded to a replica or a less-loaded rank.
    net_seconds:
        Modeled network time the sharded tier charged for this request:
        forwarding the request (and, on first contact, the operator) to the
        serving rank, returning the result to the home rank, plus — under a
        fault plan — failover re-forwards, retry-backoff stalls, and the
        hedge duplicate's forward hop.  Zero for requests served on their
        home rank and for the single-rank service.
    retries:
        Router-level re-submission attempts this request needed (each one
        charged a deterministic :class:`~repro.faults.plan.RetryPolicy`
        backoff delay on the modeled clock).  0 on the no-fault path.
    failovers:
        Rank deaths this request survived: how many times its queued or
        in-flight copy was evacuated from a dead rank and re-routed to a
        ring successor.  0 on the no-fault path.
    hedged:
        True when the sharded tier issued a hedge duplicate for this
        (interactive) request and the *duplicate* won — the result came
        from the hedge rank, not the primary.
    original_rank:
        The rank the request was first dispatched to, recorded only when
        failover moved it (``-1`` otherwise, meaning "never displaced"):
        together with ``retries``/``failovers`` it makes re-runs auditable
        — nothing is silently re-executed.
    """

    status: str = "completed"
    request_id: int = -1
    priority: str = "batch"
    wait_seconds: float = 0.0
    solve_seconds: float = 0.0
    batch_size: int = 0
    cache_hit: bool = False
    rank: int = 0
    home_rank: int = 0
    net_seconds: float = 0.0
    retries: int = 0
    failovers: int = 0
    hedged: bool = False
    original_rank: int = -1

    @property
    def ok(self) -> bool:
        """Completed and converged (the service-level success predicate)."""
        return self.status == "completed" and self.converged

    @property
    def forwarded(self) -> bool:
        """Whether the sharded tier served this request off its home rank."""
        return self.rank != self.home_rank

    @property
    def latency_seconds(self) -> float:
        """End-to-end modeled latency: network + queue wait + batch solve."""
        return self.wait_seconds + self.solve_seconds + self.net_seconds
