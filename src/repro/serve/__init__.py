"""Batching solve service: admission control, coalescing, service metrics.

The serving layer over :mod:`repro.api` (see ``docs/serving.md``):

* :class:`SolveService` — ``submit(A, b) -> Ticket`` / ``result(ticket)``,
  with a worker loop that coalesces same-fingerprint requests into blocked
  multi-RHS micro-batches;
* :class:`ServiceConfig` — queue bound, batch cap ``k``, batch deadline,
  machine model;
* :class:`ServiceMetrics` — counters, latency histograms, batch-size
  distribution, hierarchy-cache hit rate, merged kernel perf, JSON export;
* :class:`WorkloadSpec` / :func:`build` / :func:`named_workload` — seeded
  deterministic request streams over :mod:`repro.problems`
  (``python -m repro serve-bench --workload tiny``).
"""

from ..results import SERVICE_STATUSES, ServiceResult
from .metrics import Histogram, ServiceMetrics
from .queue import AdmissionQueue
from .request import PRIORITIES, Request, Ticket, priority_rank
from .service import ServiceConfig, SolveService
from .workload import (
    NAMED_WORKLOADS,
    Workload,
    WorkloadItem,
    WorkloadSpec,
    build,
    named_workload,
)

__all__ = [
    "SERVICE_STATUSES",
    "ServiceResult",
    "Histogram",
    "ServiceMetrics",
    "AdmissionQueue",
    "PRIORITIES",
    "Request",
    "Ticket",
    "priority_rank",
    "ServiceConfig",
    "SolveService",
    "NAMED_WORKLOADS",
    "Workload",
    "WorkloadItem",
    "WorkloadSpec",
    "build",
    "named_workload",
]
