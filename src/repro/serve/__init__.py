"""Batching solve service: admission control, coalescing, service metrics.

The serving layer over :mod:`repro.api` (see ``docs/serving.md``):

* :class:`SolveService` — ``submit(A, b) -> Ticket`` / ``result(ticket)``,
  with a worker loop that coalesces same-fingerprint requests into blocked
  multi-RHS micro-batches;
* :class:`ShardedSolveService` — N modeled service ranks behind a
  consistent-hash router (:class:`HashRing`): same-pattern traffic stays
  cache-warm on its home rank, replication/spill balances load, forwarding
  is charged through the network model, with load shedding and an
  autoscaler on the deterministic clock — and, under a
  :class:`~repro.faults.ShardFaultPlan`, a full rank-failure lifecycle
  (health-tracked failover, hedged retries, cache re-warm recovery);
* :class:`HealthTracker` — heartbeat-driven ``up``/``suspect``/``down``/
  ``rejoining`` rank states with per-rank circuit breakers, driving ring
  membership under a fault plan;
* :class:`ServiceConfig` — every service knob (queue bound, batch cap
  ``k``, batch deadline, machine model, sharding) in one frozen object;
* :class:`ServiceMetrics` / :class:`ShardMetrics` — counters, latency
  histograms, batch-size distribution, hierarchy-cache hit rate,
  cache-locality hit rate, load balance, merged kernel perf, JSON export;
* :class:`WorkloadSpec` / :func:`build` / :func:`named_workload` — seeded
  deterministic request streams over :mod:`repro.problems`
  (``python -m repro serve-bench --workload tiny --ranks 4``).
"""

from ..results import SERVICE_STATUSES, ServiceResult
from .health import HealthTracker, RankHealth
from .metrics import Histogram, ServiceMetrics, ShardMetrics
from .queue import AdmissionQueue
from .request import PRIORITIES, Request, Ticket, priority_rank
from .service import ServiceConfig, SolveService, resolve_service_config
from .shard import HashRing, ShardedSolveService, ShardTicket
from .workload import (
    NAMED_WORKLOADS,
    Workload,
    WorkloadItem,
    WorkloadSpec,
    build,
    named_workload,
    widened,
)

__all__ = [
    "SERVICE_STATUSES",
    "ServiceResult",
    "HealthTracker",
    "RankHealth",
    "Histogram",
    "ServiceMetrics",
    "ShardMetrics",
    "AdmissionQueue",
    "PRIORITIES",
    "Request",
    "Ticket",
    "priority_rank",
    "ServiceConfig",
    "SolveService",
    "resolve_service_config",
    "HashRing",
    "ShardTicket",
    "ShardedSolveService",
    "NAMED_WORKLOADS",
    "Workload",
    "WorkloadItem",
    "WorkloadSpec",
    "build",
    "named_workload",
    "widened",
]
