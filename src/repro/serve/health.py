"""Deterministic rank-health tracking for the sharded service tier.

The :class:`HealthTracker` turns a :class:`~repro.faults.shard_plan.ShardFaultPlan`
into observable rank *states* the router can act on, the way a production
fleet would: the router cannot see the plan, only missed heartbeats.
Probes happen at fixed multiples of ``heartbeat_interval`` on the modeled
clock, and every state transition is a pure function of the plan, the
seed, and the tick index — two runs of the same (plan, workload) pair
trace identical health histories.

State machine per rank::

    up --(suspect_after consecutive misses)--> suspect
    suspect --(down_after consecutive misses)--> down      [breaker opens]
    suspect --(successful probe)--> up
    down --(successful probe)--> rejoining                 [breaker half-open]
    rejoining --(re-warm done + successful probe)--> up    [breaker closes]
    rejoining --(missed probe, e.g. a flap)--> down        [breaker re-opens]

The circuit breaker shadows the state: ``closed`` for ``up``/``suspect``
(the rank is routable — suspicion alone never sheds traffic, it is the
early-warning signal hedging exploits), ``open`` for ``down`` (the router
removes the rank from the hash ring and fails its work over), and
``half_open`` for ``rejoining`` (the rank is back but cold; it re-enters
the ring only after the cache re-warm completes, so it never takes full
traffic with an empty cache).  The tracker records every breaker
transition and accumulates per-rank unavailable time (``down`` +
``rejoining``) for the availability metric.

The tracker deliberately knows nothing about queues, failover, or
re-warm mechanics — it reports transitions; the
:class:`~repro.serve.shard.ShardedSolveService` acts on them.
"""

from __future__ import annotations

import numpy as np

from ..faults.shard_plan import ShardFaultPlan

__all__ = ["HealthTracker", "RankHealth",
           "UP", "SUSPECT", "DOWN", "REJOINING",
           "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN"]

#: Health states.
UP, SUSPECT, DOWN, REJOINING = "up", "suspect", "down", "rejoining"
#: Circuit-breaker states (closed = routable).
BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN = ("closed", "open",
                                                   "half_open")

#: Breaker state implied by each health state.
_BREAKER_OF = {UP: BREAKER_CLOSED, SUSPECT: BREAKER_CLOSED,
               DOWN: BREAKER_OPEN, REJOINING: BREAKER_HALF_OPEN}


class RankHealth:
    """Mutable health record of one rank (internal to the tracker)."""

    __slots__ = ("state", "missed", "unavailable_since",
                 "unavailable_seconds", "rejoin_until")

    def __init__(self) -> None:
        self.state = UP
        #: Consecutive missed heartbeats.
        self.missed = 0
        #: Modeled time the rank left the routable set (None while routable).
        self.unavailable_since: float | None = None
        #: Accumulated non-routable (down + rejoining) modeled seconds.
        self.unavailable_seconds = 0.0
        #: While rejoining: modeled time the cache re-warm completes.
        self.rejoin_until = 0.0

    @property
    def breaker(self) -> str:
        return _BREAKER_OF[self.state]

    @property
    def routable(self) -> bool:
        """Whether the router may send new traffic to this rank."""
        return self.state in (UP, SUSPECT)


class HealthTracker:
    """Heartbeat-driven health states for every rank of a sharded fleet."""

    def __init__(self, plan: ShardFaultPlan, nranks: int, *,
                 interval: float, suspect_after: int, down_after: int) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if not 1 <= suspect_after <= down_after:
            raise ValueError("need 1 <= suspect_after <= down_after")
        self.plan = plan
        self.nranks = nranks
        self.interval = interval
        self.suspect_after = suspect_after
        self.down_after = down_after
        #: One RNG for the whole tracker, consumed in tick-then-rank order
        #: (one draw per alive rank inside a slow window), so slow-window
        #: misses are identical across runs of the same plan.
        self.rng = np.random.default_rng(plan.seed)
        self.ranks = [RankHealth() for _ in range(nranks)]
        self._tick_index = 0
        self.heartbeats = 0
        self.heartbeats_missed = 0
        #: Every state change: {"t", "rank", "state", "breaker"}.
        self.transitions: list[dict] = []

    # -- clocking ------------------------------------------------------------
    def next_tick(self) -> float:
        """Modeled time of the next heartbeat round."""
        return (self._tick_index + 1) * self.interval

    # -- probing -------------------------------------------------------------
    def _probe_missed(self, rank: int, t: float) -> bool:
        """One heartbeat probe of *rank* at time *t* (True = missed)."""
        self.heartbeats += 1
        if self.plan.is_down(rank, t):
            self.heartbeats_missed += 1
            return True
        miss = self.plan.miss_prob(rank, t)
        if miss > 0.0 and float(self.rng.random()) < miss:
            self.heartbeats_missed += 1
            return True
        return False

    def _set_state(self, rank: int, t: float, state: str,
                   events: list[dict]) -> None:
        rec = self.ranks[rank]
        if rec.state == state:
            return
        was_routable = rec.routable
        rec.state = state
        if was_routable and not rec.routable:
            rec.unavailable_since = t
        elif not was_routable and rec.routable:
            rec.unavailable_seconds += t - rec.unavailable_since
            rec.unavailable_since = None
        event = {"t": t, "rank": rank, "state": state,
                 "breaker": rec.breaker}
        self.transitions.append(event)
        events.append(event)

    def tick(self, t: float) -> list[dict]:
        """Run one heartbeat round at modeled time *t*.

        Returns the state transitions this round caused (also appended to
        :attr:`transitions`); the sharded service reacts to them — ring
        membership, failover, cache re-warm — while the tracker only
        observes.
        """
        self._tick_index += 1
        events: list[dict] = []
        for rank in range(self.nranks):
            rec = self.ranks[rank]
            missed = self._probe_missed(rank, t)
            if missed:
                rec.missed += 1
                if rec.state in (UP, SUSPECT, REJOINING):
                    if rec.missed >= self.down_after or rec.state == REJOINING:
                        # A rejoining rank that misses a probe (a flap
                        # striking mid-re-warm) goes straight back down.
                        self._set_state(rank, t, DOWN, events)
                    elif rec.missed >= self.suspect_after:
                        self._set_state(rank, t, SUSPECT, events)
            else:
                rec.missed = 0
                if rec.state == SUSPECT:
                    self._set_state(rank, t, UP, events)
                elif rec.state == DOWN:
                    self._set_state(rank, t, REJOINING, events)
                elif rec.state == REJOINING and t >= rec.rejoin_until:
                    self._set_state(rank, t, UP, events)
        return events

    def set_rejoin_until(self, rank: int, t: float) -> None:
        """Earliest modeled time a rejoining rank may be declared up
        (set by the service to the cache re-warm completion time)."""
        self.ranks[rank].rejoin_until = t

    # -- reporting -----------------------------------------------------------
    def unavailable_seconds(self, rank: int, now: float) -> float:
        """Accumulated non-routable time of *rank* up to modeled *now*."""
        rec = self.ranks[rank]
        open_window = (now - rec.unavailable_since
                       if rec.unavailable_since is not None else 0.0)
        return rec.unavailable_seconds + max(open_window, 0.0)

    def snapshot(self, now: float) -> dict:
        """JSON-able health summary at modeled time *now*."""
        down = [self.unavailable_seconds(r, now) for r in range(self.nranks)]
        total = self.nranks * now
        return {
            "states": [rec.state for rec in self.ranks],
            "heartbeats": self.heartbeats,
            "heartbeats_missed": self.heartbeats_missed,
            "unavailable_seconds_per_rank": down,
            "availability": (1.0 - sum(down) / total) if total > 0 else 1.0,
            "transitions": list(self.transitions),
        }
