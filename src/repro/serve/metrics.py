"""Service metrics: counters, latency histograms, and the JSON snapshot.

Everything the service measures is in *modeled* (virtual) seconds — the
same clock the :mod:`repro.perf` machine models produce — so a metrics
snapshot is bit-identical across runs of the same seeded workload.  There
is deliberately no wall-clock anywhere in this module.

The snapshot merges two layers into one report:

* **service time** — queue wait and batch latency histograms, batch-size
  distribution, queue depth, admission counters, hierarchy-cache hit rate;
* **kernel time** — the :class:`~repro.perf.counters.PerfLog` of every
  kernel the worker's solves charged, converted to modeled seconds per
  Fig. 5 phase by a :class:`~repro.perf.machine.MachineModel`.

``snapshot()`` returns plain dict/list/str/float JSON material;
``to_json()`` serializes it with sorted keys so two identical runs produce
byte-identical files (the CI smoke step diffs exactly that).
"""

from __future__ import annotations

import json

from ..perf.counters import PerfLog
from ..perf.machine import MachineModel

__all__ = ["Histogram", "ServiceMetrics"]

#: Fixed histogram bucket edges (modeled seconds), geometric decades from
#: 1 µs to 10 s.  Fixed edges keep snapshots comparable across runs and
#: workloads; out-of-range observations land in the open last bucket.
DEFAULT_EDGES = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Histogram:
    """Fixed-bucket latency histogram with exact count/sum/min/max."""

    def __init__(self, edges: tuple[float, ...] = DEFAULT_EDGES) -> None:
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        i = 0
        while i < len(self.edges) and value > self.edges[i]:
            i += 1
        self.counts[i] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        buckets = {}
        for i, edge in enumerate(self.edges):
            buckets[f"le_{edge:g}"] = self.counts[i]
        buckets["inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "buckets": buckets,
        }


class ServiceMetrics:
    """Aggregated service health: counters, histograms, kernel perf."""

    def __init__(self) -> None:
        # Admission outcomes.
        self.submitted = 0
        self.rejected = 0
        self.cancelled = 0
        self.timed_out = 0
        self.completed = 0
        self.degraded = 0
        # Dispatch.
        self.batches = 0
        self.batch_sizes: dict[int, int] = {}
        #: Batches served through the hierarchy cache's pattern tier — a
        #: same-sparsity operator served via numeric resetup (refresh)
        #: instead of rebuilt from scratch.
        self.refresh_hits = 0
        # Latency (modeled seconds).
        self.wait = Histogram()
        self.solve = Histogram()
        self.latency = Histogram()
        # Queue depth, sampled at every submit and dispatch.
        self.depth_samples = 0
        self.depth_sum = 0
        self.depth_max = 0
        #: Merged kernel records of every batch the worker ran.
        self.perf = PerfLog()

    # -- recording ---------------------------------------------------------
    def sample_depth(self, depth: int) -> None:
        self.depth_samples += 1
        self.depth_sum += depth
        self.depth_max = max(self.depth_max, depth)

    def record_batch(self, size: int, solve_seconds: float) -> None:
        self.batches += 1
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1
        self.solve.observe(solve_seconds)

    def record_completion(self, wait_seconds: float, latency_seconds: float,
                          degraded: bool) -> None:
        self.completed += 1
        self.wait.observe(wait_seconds)
        self.latency.observe(latency_seconds)
        if degraded:
            self.degraded += 1

    # -- reporting ---------------------------------------------------------
    def snapshot(
        self,
        *,
        machine: MachineModel | None = None,
        virtual_seconds: float = 0.0,
        cache_stats: dict[str, int] | None = None,
    ) -> dict:
        """JSON-able snapshot combining service and kernel time.

        ``machine`` converts the merged kernel records into modeled
        seconds (omitted -> counts only); ``virtual_seconds`` is the
        service clock at snapshot time; ``cache_stats`` is
        :meth:`HierarchyCache.stats` of the service's hierarchy cache.
        """
        cache_stats = cache_stats or {}
        lookups = cache_stats.get("hits", 0) + cache_stats.get("misses", 0)
        snap = {
            "service": {
                "virtual_seconds": virtual_seconds,
                "throughput_rps": (self.completed / virtual_seconds
                                   if virtual_seconds > 0 else 0.0),
                "counters": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "rejected": self.rejected,
                    "cancelled": self.cancelled,
                    "timed_out": self.timed_out,
                    "degraded": self.degraded,
                    "batches": self.batches,
                    "refresh_hits": self.refresh_hits,
                },
                "batch_sizes": {str(k): v for k, v in
                                sorted(self.batch_sizes.items())},
                "wait_seconds": self.wait.snapshot(),
                "solve_seconds": self.solve.snapshot(),
                "latency_seconds": self.latency.snapshot(),
                "queue_depth": {
                    "max": self.depth_max,
                    "mean": (self.depth_sum / self.depth_samples
                             if self.depth_samples else 0.0),
                    "samples": self.depth_samples,
                },
                "hierarchy_cache": {
                    **cache_stats,
                    "hit_rate": (cache_stats.get("hits", 0) / lookups
                                 if lookups else 0.0),
                },
            },
            "kernel": {
                "records": len(self.perf),
                "flops": self.perf.total("flops"),
                "bytes": self.perf.total("bytes_total"),
            },
        }
        if machine is not None:
            phases = machine.phase_times(self.perf)
            snap["kernel"]["modeled_seconds"] = sum(phases.values())
            snap["kernel"]["phase_seconds"] = {
                k: phases[k] for k in sorted(phases)
            }
        return snap

    def to_json(self, **snapshot_kwargs) -> str:
        """Deterministic JSON serialization of :meth:`snapshot`."""
        return json.dumps(self.snapshot(**snapshot_kwargs), indent=2,
                          sort_keys=True)
