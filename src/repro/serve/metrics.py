"""Service metrics: counters, latency histograms, and the JSON snapshot.

Everything the service measures is in *modeled* (virtual) seconds — the
same clock the :mod:`repro.perf` machine models produce — so a metrics
snapshot is bit-identical across runs of the same seeded workload.  There
is deliberately no wall-clock anywhere in this module.

The snapshot merges two layers into one report:

* **service time** — queue wait and batch latency histograms, batch-size
  distribution, queue depth, admission counters, hierarchy-cache hit rate;
* **kernel time** — the :class:`~repro.perf.counters.PerfLog` of every
  kernel the worker's solves charged, converted to modeled seconds per
  Fig. 5 phase by a :class:`~repro.perf.machine.MachineModel`.

``snapshot()`` returns plain dict/list/str/float JSON material;
``to_json()`` serializes it with sorted keys so two identical runs produce
byte-identical files (the CI smoke step diffs exactly that).
"""

from __future__ import annotations

import json

from ..perf.counters import PerfLog
from ..perf.machine import MachineModel

__all__ = ["Histogram", "ServiceMetrics", "ShardMetrics"]

#: Fixed histogram bucket edges (modeled seconds), geometric decades from
#: 1 µs to 10 s.  Fixed edges keep snapshots comparable across runs and
#: workloads; out-of-range observations land in the open last bucket.
DEFAULT_EDGES = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Histogram:
    """Fixed-bucket latency histogram with exact count/sum/min/max."""

    def __init__(self, edges: tuple[float, ...] = DEFAULT_EDGES) -> None:
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        i = 0
        while i < len(self.edges) and value > self.edges[i]:
            i += 1
        self.counts[i] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        buckets = {}
        for i, edge in enumerate(self.edges):
            buckets[f"le_{edge:g}"] = self.counts[i]
        buckets["inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "buckets": buckets,
        }


class ServiceMetrics:
    """Aggregated service health: counters, histograms, kernel perf."""

    def __init__(self) -> None:
        # Admission outcomes.
        self.submitted = 0
        self.rejected = 0
        self.cancelled = 0
        self.timed_out = 0
        self.completed = 0
        self.degraded = 0
        # Dispatch.
        self.batches = 0
        self.batch_sizes: dict[int, int] = {}
        #: Batches served through the hierarchy cache's pattern tier — a
        #: same-sparsity operator served via numeric resetup (refresh)
        #: instead of rebuilt from scratch.
        self.refresh_hits = 0
        # Latency (modeled seconds).
        self.wait = Histogram()
        self.solve = Histogram()
        self.latency = Histogram()
        # Queue depth, sampled at every submit and dispatch.
        self.depth_samples = 0
        self.depth_sum = 0
        self.depth_max = 0
        #: Merged kernel records of every batch the worker ran.
        self.perf = PerfLog()

    # -- recording ---------------------------------------------------------
    def sample_depth(self, depth: int) -> None:
        self.depth_samples += 1
        self.depth_sum += depth
        self.depth_max = max(self.depth_max, depth)

    def record_batch(self, size: int, solve_seconds: float) -> None:
        self.batches += 1
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1
        self.solve.observe(solve_seconds)

    def record_completion(self, wait_seconds: float, latency_seconds: float,
                          degraded: bool) -> None:
        self.completed += 1
        self.wait.observe(wait_seconds)
        self.latency.observe(latency_seconds)
        if degraded:
            self.degraded += 1

    # -- reporting ---------------------------------------------------------
    def snapshot(
        self,
        *,
        machine: MachineModel | None = None,
        virtual_seconds: float = 0.0,
        cache_stats: dict[str, int] | None = None,
    ) -> dict:
        """JSON-able snapshot combining service and kernel time.

        ``machine`` converts the merged kernel records into modeled
        seconds (omitted -> counts only); ``virtual_seconds`` is the
        service clock at snapshot time; ``cache_stats`` is
        :meth:`HierarchyCache.stats` of the service's hierarchy cache.
        """
        cache_stats = cache_stats or {}
        lookups = cache_stats.get("hits", 0) + cache_stats.get("misses", 0)
        snap = {
            "service": {
                "virtual_seconds": virtual_seconds,
                "throughput_rps": (self.completed / virtual_seconds
                                   if virtual_seconds > 0 else 0.0),
                "counters": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "rejected": self.rejected,
                    "cancelled": self.cancelled,
                    "timed_out": self.timed_out,
                    "degraded": self.degraded,
                    "batches": self.batches,
                    "refresh_hits": self.refresh_hits,
                },
                "batch_sizes": {str(k): v for k, v in
                                sorted(self.batch_sizes.items())},
                "wait_seconds": self.wait.snapshot(),
                "solve_seconds": self.solve.snapshot(),
                "latency_seconds": self.latency.snapshot(),
                "queue_depth": {
                    "max": self.depth_max,
                    "mean": (self.depth_sum / self.depth_samples
                             if self.depth_samples else 0.0),
                    "samples": self.depth_samples,
                },
                "hierarchy_cache": {
                    **cache_stats,
                    "hit_rate": (cache_stats.get("hits", 0) / lookups
                                 if lookups else 0.0),
                },
            },
            "kernel": {
                "records": len(self.perf),
                "flops": self.perf.total("flops"),
                "bytes": self.perf.total("bytes_total"),
            },
        }
        if machine is not None:
            phases = machine.phase_times(self.perf)
            snap["kernel"]["modeled_seconds"] = sum(phases.values())
            snap["kernel"]["phase_seconds"] = {
                k: phases[k] for k in sorted(phases)
            }
        return snap

    def to_json(self, **snapshot_kwargs) -> str:
        """Deterministic JSON serialization of :meth:`snapshot`."""
        return json.dumps(self.snapshot(**snapshot_kwargs), indent=2,
                          sort_keys=True)


class ShardMetrics:
    """Shard-tier health: routing, forwarding volume, locality, autoscale.

    Each rank of a :class:`~repro.serve.shard.ShardedSolveService` keeps
    its own :class:`ServiceMetrics`; this object records only what happens
    *between* ranks — routing decisions, modeled forwarding traffic,
    operator replication, load shedding, autoscaler actions — plus the
    cache-locality tally.  :meth:`snapshot` merges the per-rank snapshots
    with the shard-level view into one deterministic report.

    Locality is counted when a result is redeemed (the return hop is
    charged then), so the hit-rate denominator is redeemed completed
    requests, not all completions.
    """

    def __init__(self) -> None:
        # Routing.
        self.routed = 0
        self.forwarded = 0
        self.shed = 0
        #: Operators replicated to a non-home rank (first forward of a
        #: fingerprint ships the matrix, later forwards only the vector).
        self.shipments = 0
        # Modeled forwarding traffic (request hop / result-return hop).
        self.forward_bytes = 0
        self.forward_seconds = 0.0
        self.return_messages = 0
        self.return_bytes = 0
        self.return_seconds = 0.0
        # Cache locality: completed requests served on their home rank,
        # and the subset that also found a warm hierarchy there.
        self.home_served = 0
        self.home_warm = 0
        self.redeemed_completed = 0
        #: Autoscaler actions: {"t", "action" ("up"/"down"), "active"}.
        self.autoscale_events: list[dict] = []
        # Fault lifecycle (counted only while a fault plan is active; the
        # snapshot emits them only then, so no-fault JSON is unchanged).
        self.failovers = 0
        self.evacuated = 0
        self.lost_inflight = 0
        self.failed = 0
        self.retry_backoff_seconds = 0.0
        self.failover_bytes = 0
        self.failover_seconds = 0.0
        self.failover_shipments = 0
        self.hedges_issued = 0
        self.hedges_won = 0
        self.hedges_lost = 0
        self.hedges_cancelled = 0
        self.hedge_bytes = 0
        self.hedge_seconds = 0.0
        self.rewarm_events = 0
        self.rewarm_entries = 0
        self.rewarm_bytes = 0
        self.rewarm_seconds = 0.0

    # -- recording ---------------------------------------------------------
    def record_route(self, *, forwarded: bool, forward_bytes: int = 0,
                     forward_seconds: float = 0.0,
                     shipped: bool = False) -> None:
        self.routed += 1
        if forwarded:
            self.forwarded += 1
            self.forward_bytes += forward_bytes
            self.forward_seconds += forward_seconds
            if shipped:
                self.shipments += 1

    def record_shed(self) -> None:
        self.routed += 1
        self.shed += 1

    def record_result(self, result, *, return_bytes: int = 0,
                      return_seconds: float = 0.0) -> None:
        """Tally a redeemed result: locality and the result-return hop."""
        if result.status != "completed":
            return
        self.redeemed_completed += 1
        if return_bytes:
            self.return_messages += 1
            self.return_bytes += return_bytes
            self.return_seconds += return_seconds
        if result.rank == result.home_rank:
            self.home_served += 1
            if result.cache_hit:
                self.home_warm += 1

    def record_autoscale(self, t: float, action: str, active: int) -> None:
        self.autoscale_events.append(
            {"t": t, "action": action, "active": active})

    # -- fault lifecycle ---------------------------------------------------
    def record_displaced(self, kind: str) -> None:
        """A request lost its rank: ``"queued"`` (evacuated from the dead
        rank's admission queue) or ``"in_flight"`` (a clairvoyantly
        scheduled result retracted because it finished past the death)."""
        if kind == "queued":
            self.evacuated += 1
        else:
            self.lost_inflight += 1

    def record_failover(self, *, backoff_seconds: float, forward_bytes: int,
                        forward_seconds: float, shipped: bool) -> None:
        self.failovers += 1
        self.retry_backoff_seconds += backoff_seconds
        self.failover_bytes += forward_bytes
        self.failover_seconds += forward_seconds
        if shipped:
            self.failover_shipments += 1

    def record_failed(self) -> None:
        self.failed += 1

    def record_hedge_issued(self, *, forward_bytes: int,
                            forward_seconds: float,
                            shipped: bool = False) -> None:
        """*shipped* is accepted for call-site symmetry with
        :meth:`record_failover`; a dup's operator ship is already folded
        into ``forward_bytes``."""
        self.hedges_issued += 1
        self.hedge_bytes += forward_bytes
        self.hedge_seconds += forward_seconds

    def record_hedge_won(self) -> None:
        self.hedges_won += 1

    def record_hedge_lost(self) -> None:
        self.hedges_lost += 1

    def record_hedge_cancelled(self) -> None:
        self.hedges_cancelled += 1

    def record_rewarm(self, *, entries: int, nbytes: int,
                      seconds: float) -> None:
        self.rewarm_events += 1
        self.rewarm_entries += entries
        self.rewarm_bytes += nbytes
        self.rewarm_seconds += seconds

    def faults_snapshot(self, health: dict) -> dict:
        """The ``faults`` section of the sharded report.

        *health* is a :meth:`HealthTracker.snapshot
        <repro.serve.health.HealthTracker.snapshot>`; breaker transitions
        are counted from its transition log (a health transition that
        keeps the breaker state — e.g. ``up`` → ``suspect`` — is not one).
        """
        last: dict[int, str] = {}
        breaker_transitions = 0
        for ev in health.get("transitions", []):
            prev = last.get(ev["rank"], "closed")
            if ev["breaker"] != prev:
                breaker_transitions += 1
            last[ev["rank"]] = ev["breaker"]
        return {
            "failovers": self.failovers,
            "evacuated": self.evacuated,
            "lost_inflight": self.lost_inflight,
            "failed": self.failed,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "failover_bytes": self.failover_bytes,
            "failover_seconds": self.failover_seconds,
            "failover_shipments": self.failover_shipments,
            "hedges": {
                "issued": self.hedges_issued,
                "won": self.hedges_won,
                "lost": self.hedges_lost,
                "cancelled": self.hedges_cancelled,
                "bytes": self.hedge_bytes,
                "seconds": self.hedge_seconds,
            },
            "rewarm": {
                "events": self.rewarm_events,
                "entries": self.rewarm_entries,
                "bytes": self.rewarm_bytes,
                "seconds": self.rewarm_seconds,
            },
            "breaker_transitions": breaker_transitions,
            "health": health,
        }

    # -- reporting ---------------------------------------------------------
    def snapshot(self, *, per_rank: list[dict], virtual_seconds: float,
                 active_ranks: int, replicas: int,
                 faults: dict | None = None) -> dict:
        """Aggregated sharded report over the per-rank service snapshots.

        ``per_rank`` is one :meth:`ServiceMetrics.snapshot` per configured
        rank (index = rank id); ``virtual_seconds`` the makespan (the
        busiest rank's clock); ``active_ranks`` the autoscaler's current
        worker count.  ``faults`` is a :meth:`faults_snapshot` and is
        emitted only when given — a report without a fault plan stays
        byte-identical to one produced before the fault lifecycle existed.
        """
        agg: dict[str, int] = {}
        for snap in per_rank:
            for key, val in snap["service"]["counters"].items():
                agg[key] = agg.get(key, 0) + val
        completed = [s["service"]["counters"]["completed"] for s in per_rank]
        busy = [s["service"]["solve_seconds"]["sum"] for s in per_rank]
        n_active = max(active_ranks, 1)

        def imbalance(values: list[float]) -> float:
            mean = sum(values) / n_active
            return max(values) / mean if mean > 0 else 0.0

        total_completed = sum(completed)
        out = {
            "sharded": {
                "ranks": len(per_rank),
                "active_ranks": active_ranks,
                "replicas": replicas,
                "virtual_seconds": virtual_seconds,
                "throughput_rps": (total_completed / virtual_seconds
                                   if virtual_seconds > 0 else 0.0),
                "counters": {
                    **{k: agg[k] for k in sorted(agg)},
                    "routed": self.routed,
                    "forwarded": self.forwarded,
                    "shed": self.shed,
                    "shipments": self.shipments,
                },
                "locality": {
                    "redeemed_completed": self.redeemed_completed,
                    "home_served": self.home_served,
                    "home_warm": self.home_warm,
                    "hit_rate": (self.home_warm / self.redeemed_completed
                                 if self.redeemed_completed else 0.0),
                },
                "network": {
                    "forward_messages": self.forwarded,
                    "forward_bytes": self.forward_bytes,
                    "forward_seconds": self.forward_seconds,
                    "return_messages": self.return_messages,
                    "return_bytes": self.return_bytes,
                    "return_seconds": self.return_seconds,
                },
                "load_balance": {
                    "completed_per_rank": completed,
                    "busy_seconds_per_rank": busy,
                    "completed_imbalance": imbalance(completed),
                    "busy_imbalance": imbalance(busy),
                },
                "autoscale_events": list(self.autoscale_events),
            },
            "ranks": per_rank,
        }
        if faults is not None:
            out["sharded"]["faults"] = faults
        return out

    def to_json(self, **snapshot_kwargs) -> str:
        """Deterministic JSON serialization of :meth:`snapshot`."""
        return json.dumps(self.snapshot(**snapshot_kwargs), indent=2,
                          sort_keys=True)
