"""Bounded admission queue with backpressure.

The queue is the service's only buffer: ``capacity`` slots, first-come
storage, no implicit growth.  ``offer`` refuses (returns ``False``) when
full — the service turns that into a structured ``Rejected`` result, never
an exception — and ``cancel`` frees the slot immediately, so a cancelled
request cannot hold capacity against live traffic.

The queue deliberately knows nothing about batching policy (deadlines,
priorities, coalescing keys live in the service's dispatch loop); it only
guarantees bounded, thread-safe, insertion-ordered storage.  A single lock
guards the slot map, matching the :class:`~repro.amg.cache.HierarchyCache`
locking discipline.
"""

from __future__ import annotations

import threading

from .request import Request

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Bounded, thread-safe store of pending :class:`Request` objects."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._slots: dict[int, Request] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    @property
    def full(self) -> bool:
        """Whether the next ``offer`` would be refused (backpressure)."""
        with self._lock:
            return len(self._slots) >= self.capacity

    def offer(self, req: Request) -> bool:
        """Admit *req* if a slot is free; ``False`` means backpressure."""
        with self._lock:
            if len(self._slots) >= self.capacity:
                return False
            self._slots[req.id] = req
            return True

    def cancel(self, request_id: int) -> Request | None:
        """Remove a pending request, freeing its slot; ``None`` if absent."""
        with self._lock:
            return self._slots.pop(request_id, None)

    def take(self, request_ids: list[int]) -> list[Request]:
        """Atomically remove and return the given pending requests."""
        with self._lock:
            out = []
            for rid in request_ids:
                req = self._slots.pop(rid, None)
                if req is not None:
                    out.append(req)
            return out

    def pending(self) -> list[Request]:
        """Snapshot of queued requests in submission order."""
        with self._lock:
            return list(self._slots.values())
