"""Request records and priority classes for the solve service.

A :class:`Request` is one queued ``A x = b`` solve with everything the
worker needs to batch and dispatch it: the operator, the right-hand side,
the solve parameters, the admission priority, the (virtual) arrival time,
and the precomputed *coalescing key*.  Two requests may share a micro-batch
iff their keys are equal — the key bundles the (matrix, config)
:func:`repro.api.fingerprint` with the solve parameters (``method``,
``tol``, ``maxiter``), because columns of one blocked ``solve_many`` call
all run under the same stopping rule.

Clients never see a :class:`Request`; :meth:`SolveService.submit
<repro.serve.service.SolveService.submit>` returns an opaque
:class:`Ticket` to redeem for a :class:`~repro.results.ServiceResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import AMGConfig
from ..sparse.csr import CSRMatrix

__all__ = ["PRIORITIES", "priority_rank", "Request", "Ticket"]

#: Admission priority classes, best first.  ``interactive`` requests jump
#: the queue at dispatch time, ``bulk`` requests yield to everything else;
#: ties break by arrival time, then submission order.
PRIORITIES = ("interactive", "batch", "bulk")

_RANK = {name: i for i, name in enumerate(PRIORITIES)}


def priority_rank(priority: str) -> int:
    """Dispatch rank of a priority class (lower dispatches first)."""
    try:
        return _RANK[priority]
    except KeyError:
        raise ValueError(
            f"unknown priority {priority!r}; choose from {PRIORITIES}"
        ) from None


@dataclass(frozen=True)
class Ticket:
    """Opaque handle returned by ``submit``; redeem with ``result()``.

    ``rank`` names the service rank holding the request: always 0 for the
    single-rank :class:`~repro.serve.service.SolveService`; the rank the
    router dispatched to for the sharded tier (−1 marks a request the
    sharded admission layer resolved itself, e.g. load shedding).
    """

    id: int
    rank: int = 0


@dataclass
class Request:
    """One admitted solve request (internal to the service)."""

    id: int
    A: CSRMatrix
    b: np.ndarray
    config: AMGConfig
    method: str
    tol: float
    maxiter: int | None
    priority: str
    arrival: float
    timeout: float | None
    #: Coalescing key: (fingerprint(A, config), method, tol, maxiter).
    key: tuple = field(default=())

    def dispatch_order(self) -> tuple[int, float, int]:
        """Sort key for head-of-queue selection (priority, arrival, id)."""
        return (priority_rank(self.priority), self.arrival, self.id)

    def batch_order(self) -> tuple[float, int]:
        """Sort key for filling a micro-batch (arrival, id)."""
        return (self.arrival, self.id)

    def expired(self, now: float) -> bool:
        """Whether the request's deadline passed without being dispatched."""
        return (self.timeout is not None
                and self.arrival <= now
                and self.arrival + self.timeout <= now)
