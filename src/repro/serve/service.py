"""The in-process batching solve service.

:class:`SolveService` turns the one-shot ``repro.solve`` facade into a
request/response service with ``submit(A, b, ...) -> Ticket`` /
``result(ticket) -> ServiceResult`` semantics.  The worker loop coalesces
queued requests that share a hierarchy fingerprint
(:func:`repro.api.fingerprint` of the operator and config, plus the solve
parameters) into blocked :meth:`~repro.api.SolverHandle.solve_many`
micro-batches, so the level matrices stream once per cycle for the whole
batch — the PR-1 multi-RHS amortization, now exploited across independent
requests (Richtmann et al.'s multiple-right-hand-side setup argument at
the serving layer).

Time is **virtual**: the clock advances by the modeled seconds of each
dispatched batch (machine-model time of the kernels it charged), and
arrivals come from the workload's seeded arrival process.  Nothing reads a
wall clock, so a seeded workload produces bit-identical results *and*
metrics on every run.

Scheduling, in one paragraph: the worker picks the head request by
``(priority class, arrival, id)``, gathers up to ``max_batch`` queued
requests with the same coalescing key, and waits at most ``max_wait``
virtual seconds past the head's arrival for later same-key arrivals to
join (the micro-batch deadline).  Because the whole arrival schedule is
queued up front, the worker dispatches as soon as the batch provably
cannot grow — a lone request does not idle out its full deadline, but a
same-key request arriving within the window *is* waited for.  Requests
whose per-request ``timeout`` elapses before dispatch resolve to a
structured ``timeout`` result; a full admission queue resolves a submit to
a structured ``rejected`` result (backpressure is data, never an
exception); ``cancel`` frees the queue slot immediately.  Degradation
verdicts and fault events from the underlying solvers propagate to each
request's :class:`~repro.results.ServiceResult` unchanged — one broken
column never poisons its batch siblings (the blocked solvers freeze it
per column, PR 2).
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, fields

import numpy as np

from ..amg.cache import HierarchyCache
from ..analysis.events import EventLog
from ..api import _as_rhs, _validate_operator, as_csr, fingerprint, setup
from ..config import AMGConfig, single_node_config
from ..perf.counters import collect
from ..perf.machine import HaswellModel, MachineModel
from ..results import ServiceResult, SolveResult
from .metrics import ServiceMetrics
from .queue import AdmissionQueue
from .request import Request, Ticket, priority_rank
from .workload import Workload

__all__ = ["ServiceConfig", "SolveService", "resolve_service_config"]


@dataclass(frozen=True)
class ServiceConfig:
    """Every service knob in one frozen object — the single place the
    serving tier's defaults are defined.

    The first block configures one service rank (admission, coalescing,
    machine model); the second configures the sharded tier
    (:class:`~repro.serve.shard.ShardedSolveService`) and is ignored by a
    plain single-rank :class:`SolveService`.  Constructor keywords on the
    service classes that duplicate these fields are deprecated — pass a
    ``ServiceConfig`` (the ``use-config-objects`` lint rule enforces this
    for library code).
    """

    #: Admission-queue capacity; submits beyond it are rejected.
    max_queue: int = 64
    #: Micro-batch cap ``k``: at most this many same-key requests per
    #: blocked solve.
    max_batch: int = 8
    #: Micro-batch deadline, virtual seconds: how long the head request may
    #: wait for same-key arrivals before the batch dispatches anyway.
    max_wait: float = 1e-3
    #: Bound on retained hierarchies in the service's cache.
    cache_entries: int = 8
    #: Modeled thread count of the worker's machine model.
    threads: int = 14
    default_method: str = "amg"
    default_tol: float = 1e-7
    default_maxiter: int | None = None
    default_priority: str = "batch"

    # -- sharded tier (ShardedSolveService) --------------------------------
    #: Modeled service ranks requests are sharded across.
    ranks: int = 1
    #: Candidate ranks per routing key on the consistent-hash ring: the
    #: home rank plus ``replicas - 1`` successors a hot key may spill to.
    replicas: int = 1
    #: Virtual nodes per rank on the hash ring (more -> smoother balance).
    ring_vnodes: int = 64
    #: Load advantage a non-home candidate must show before a request is
    #: forwarded off its home rank, in multiples of the request's own
    #: operator nnz (0 -> pure least-loaded-by-work routing).
    spill_penalty: int = 4
    #: Load shedding: reject a request outright when every candidate
    #: rank's queue is at least this deep (``None`` disables shedding, so
    #: only a full admission queue pushes back).
    shed_depth: int | None = None
    #: Autoscaler: grow/shrink the active rank count from admission-queue
    #: depth (disabled -> all ``ranks`` stay active).
    autoscale: bool = False
    #: Floor on active ranks while autoscaling.
    min_ranks: int = 1
    #: Activate a rank when mean queued requests per active rank exceeds
    #: this; deactivate one when it drops below ``scale_down_depth``.
    scale_up_depth: float = 8.0
    scale_down_depth: float = 1.0

    # -- fault tolerance (sharded tier under a ShardFaultPlan) --------------
    #: Heartbeat probe period, modeled seconds: the health tracker probes
    #: every rank at fixed multiples of this on the virtual clock.
    heartbeat_interval: float = 1e-3
    #: Consecutive missed heartbeats before a rank is marked ``suspect``.
    suspect_after: int = 1
    #: Consecutive missed heartbeats before a rank is declared ``down``
    #: (breaker opens; its work fails over to ring successors).
    down_after: int = 3
    #: Hedged requests: after this many modeled seconds without a result,
    #: an ``interactive`` request is duplicated to one replica and the
    #: first copy to finish wins (``None`` disables hedging).  Hedges fire
    #: at heartbeat-tick granularity to keep the schedule deterministic.
    hedge_delay: float | None = None
    #: Cache re-warm breadth: a rejoining rank replays this many of the
    #: hottest pattern fingerprints from a surviving replica before it
    #: re-enters the ring (0 disables re-warm; the rank rejoins cold).
    rewarm_top_k: int = 4

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        priority_rank(self.default_priority)
        if self.ranks < 1:
            raise ValueError("ranks must be >= 1")
        if not 1 <= self.replicas <= self.ranks:
            raise ValueError(
                f"replicas must be in [1, ranks={self.ranks}], "
                f"got {self.replicas}")
        if self.ring_vnodes < 1:
            raise ValueError("ring_vnodes must be >= 1")
        if self.spill_penalty < 0:
            raise ValueError("spill_penalty must be >= 0")
        if self.shed_depth is not None and self.shed_depth < 1:
            raise ValueError("shed_depth must be >= 1 (or None to disable)")
        if not 1 <= self.min_ranks <= self.ranks:
            raise ValueError(
                f"min_ranks must be in [1, ranks={self.ranks}], "
                f"got {self.min_ranks}")
        if self.scale_down_depth > self.scale_up_depth:
            raise ValueError("scale_down_depth must be <= scale_up_depth")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if not 1 <= self.suspect_after <= self.down_after:
            raise ValueError(
                f"need 1 <= suspect_after <= down_after, got "
                f"suspect_after={self.suspect_after} "
                f"down_after={self.down_after}")
        if self.hedge_delay is not None and self.hedge_delay <= 0:
            raise ValueError("hedge_delay must be positive (or None)")
        if self.rewarm_top_k < 0:
            raise ValueError("rewarm_top_k must be >= 0")


#: ServiceConfig field names — the keywords the deprecation shim accepts.
_CONFIG_FIELDS = frozenset(f.name for f in fields(ServiceConfig))


def resolve_service_config(config: ServiceConfig | None, legacy: dict,
                           cls_name: str) -> ServiceConfig:
    """Fold deprecated per-field constructor keywords into a ServiceConfig.

    ``SolveService(max_batch=8)``-style calls keep working but emit a
    :class:`DeprecationWarning`; mixing a config object with legacy
    keywords is an error (two sources of truth).  New call sites must pass
    ``ServiceConfig`` — the ``use-config-objects`` lint rule rejects the
    legacy spelling in library code.
    """
    if not legacy:
        return config if config is not None else ServiceConfig()
    unknown = sorted(set(legacy) - _CONFIG_FIELDS)
    if unknown:
        raise TypeError(
            f"{cls_name}() got unexpected keyword argument(s) {unknown}")
    if config is not None:
        raise TypeError(
            f"pass {cls_name} a ServiceConfig or the legacy keyword(s) "
            f"{sorted(legacy)}, not both")
    warnings.warn(
        f"{cls_name}({', '.join(sorted(legacy))}=...) is deprecated; pass "
        f"{cls_name}(ServiceConfig(...)) instead",
        DeprecationWarning, stacklevel=3)
    return ServiceConfig(**legacy)


class SolveService:
    """Admission-controlled, micro-batching front end over ``repro.api``.

    Usage::

        svc = SolveService(ServiceConfig(max_batch=8))
        t1 = svc.submit(A, b1)
        t2 = svc.submit(A, b2)          # same fingerprint: coalesces
        r1 = svc.result(t1)             # runs the worker loop as needed
        print(svc.metrics_json())

    ``submit`` may be called from multiple threads (queue, cache, and
    result map are lock-guarded); the worker loop itself is single-logical
    -worker by design — batching is a scheduling decision, and one
    deterministic dispatcher is what makes runs reproducible.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 amg_config: AMGConfig | None = None,
                 machine: MachineModel | None = None,
                 cache: HierarchyCache | None = None,
                 **legacy) -> None:
        self.config = resolve_service_config(config, legacy, "SolveService")
        self.amg_config = amg_config or single_node_config(
            nthreads=self.config.threads)
        self.machine = machine or HaswellModel(threads=self.config.threads)
        self.cache = cache if cache is not None else HierarchyCache(
            self.config.cache_entries)
        self.metrics = ServiceMetrics()
        self.now = 0.0
        #: Ticket-lifecycle event log (``repro.analysis.events``): empty
        #: unless ``REPRO_CHECK`` is at least ``cheap``, so the off-level
        #: service stays byte-identical.  The sharded tier rebinds this to
        #: one fleet-shared log with per-rank actor names.
        self.events = EventLog()
        self.event_actor = "service"
        self._queue = AdmissionQueue(self.config.max_queue)
        self._results: dict[int, ServiceResult] = {}
        self._known: set[int] = set()
        self._next_id = 0
        self._lock = threading.RLock()

    # -- submission --------------------------------------------------------
    def submit(
        self,
        A,
        b,
        *,
        config: AMGConfig | None = None,
        method: str | None = None,
        tol: float | None = None,
        maxiter: int | None = None,
        priority: str | None = None,
        timeout: float | None = None,
        arrival: float | None = None,
    ) -> Ticket:
        """Enqueue one solve; always returns a :class:`Ticket`.

        Admission failures — full queue, malformed operator or right-hand
        side, unknown priority — resolve the ticket immediately to a
        structured ``rejected`` :class:`~repro.results.ServiceResult`;
        ``submit`` never raises for per-request problems.  ``arrival`` is
        the request's virtual arrival time (defaults to the service clock
        ``now``; workload replay passes the generated arrival process).
        """
        cfg = config or self.amg_config
        method = method or self.config.default_method
        tol = self.config.default_tol if tol is None else tol
        maxiter = self.config.default_maxiter if maxiter is None else maxiter
        priority = priority or self.config.default_priority
        with self._lock:
            rid = self._next_id
            self._next_id += 1
            self._known.add(rid)
            self.metrics.submitted += 1
            ticket = Ticket(rid)
            t_arr = self.now if arrival is None else float(arrival)
            self.events.record(self.event_actor, "submit", time=t_arr,
                               ticket=rid, detail=priority)
            try:
                priority_rank(priority)
                A = _validate_operator(as_csr(A))
                b = _as_rhs(b, A.nrows)
            except (TypeError, ValueError) as exc:
                self._reject(ticket, priority="batch",
                             reason=f"invalid request: {exc}")
                return ticket
            req = Request(
                id=rid, A=A, b=b, config=cfg, method=method, tol=tol,
                maxiter=maxiter, priority=priority,
                arrival=t_arr,
                timeout=timeout,
                key=(fingerprint(A, cfg), method, tol, maxiter),
            )
            if not self._queue.offer(req):
                self._reject(ticket, priority=priority,
                             reason=f"queue full "
                                    f"(capacity {self.config.max_queue})")
                return ticket
            self.events.record(self.event_actor, "admit", time=req.arrival,
                               ticket=rid)
            self.metrics.sample_depth(len(self._queue))
        return ticket

    def _reject(self, ticket: Ticket, *, priority: str, reason: str) -> None:
        self.events.record(self.event_actor, "reject", time=self.now,
                           ticket=ticket.id, detail=reason.split(":")[0])
        self.metrics.rejected += 1
        self._results[ticket.id] = ServiceResult(
            x=None, iterations=0, residuals=[], converged=False,
            degraded=True, degraded_reason=f"rejected: {reason}",
            status="rejected", request_id=ticket.id, priority=priority)

    def cancel(self, ticket: Ticket) -> bool:
        """Withdraw a pending request, freeing its queue slot.

        Returns ``True`` if the request was still queued (it resolves to a
        ``cancelled`` result); ``False`` if it already resolved or was
        never known.
        """
        with self._lock:
            req = self._queue.cancel(ticket.id)
            if req is None:
                return False
            self.events.record(self.event_actor, "cancel", time=self.now,
                               ticket=ticket.id)
            self.metrics.cancelled += 1
            self._results[ticket.id] = ServiceResult(
                x=None, iterations=0, residuals=[], converged=False,
                degraded=True, degraded_reason="cancelled by client",
                status="cancelled", request_id=ticket.id,
                priority=req.priority)
            return True

    # -- crash primitives (used by the sharded tier's fault lifecycle) -----
    def evacuate(self) -> list[Request]:
        """Pull every queued request out of the admission queue.

        The rank-death half of failover: when the sharded router declares
        this rank down, its undispatched requests are not lost — they are
        evacuated here and re-routed to ring successors.  The requests
        leave with their metadata intact (the router re-submits them under
        new arrival times); no results are recorded for them on this rank.
        """
        with self._lock:
            pending = self._queue.pending()
            taken = self._queue.take([r.id for r in pending])
            for req in taken:
                self.events.record(self.event_actor, "evacuate",
                                   time=self.now, ticket=req.id)
            return taken

    def retract(self, request_id: int) -> ServiceResult | None:
        """Take back a resolved result that a rank crash invalidated.

        The worker loop is clairvoyant — it may already have resolved a
        request whose modeled *finish* time lies beyond the instant the
        rank died.  Those results never happened: the sharded tier retracts
        them (removing the result and the ticket from this rank's maps) and
        fails the request over.  Completion-side metrics recorded for a
        retracted result are deliberately left in place: per-rank counters
        describe work the rank *attempted*, and the fleet-level fault
        section accounts for the loss.  Returns the retracted result, or
        ``None`` if the request never resolved here.
        """
        with self._lock:
            res = self._results.pop(request_id, None)
            if res is not None:
                self._known.discard(request_id)
                self.events.record(self.event_actor, "retract",
                                   time=self.now, ticket=request_id)
            return res

    # -- results -----------------------------------------------------------
    def result(self, ticket: Ticket, *, wait: bool = True) -> ServiceResult | None:
        """The request's :class:`~repro.results.ServiceResult`.

        With ``wait=True`` (default) the caller drives the worker loop
        until the ticket resolves; ``wait=False`` returns ``None`` while
        the request is still pending.  Unknown tickets raise ``KeyError``
        (that is a caller bug, not a service condition).
        """
        if ticket.id not in self._known:
            raise KeyError(f"unknown ticket {ticket.id}")
        while ticket.id not in self._results:
            if not wait:
                return None
            if not self.step():
                raise RuntimeError(
                    f"ticket {ticket.id} is pending but the queue is empty")
        return self._results[ticket.id]

    def run(self) -> None:
        """Drive the worker loop until the admission queue drains."""
        while self.step():
            pass

    @property
    def queue_depth(self) -> int:
        """Currently queued (admitted, undispatched) requests."""
        return len(self._queue)

    @property
    def queued_work(self) -> int:
        """Total stored nonzeros across queued operators.

        A cost proxy for the sharded router's load scoring: queue *depth*
        treats a 3-D setup and a tiny 2-D solve as equal load, which
        starves balance on heterogeneous traffic; summed nnz tracks the
        actual setup/solve cost the queue represents.
        """
        return sum(r.A.nnz for r in self._queue.pending())

    def drain_until(self, horizon: float) -> None:
        """Run every worker step whose outcome no longer depends on
        arrivals after *horizon*.

        The scheduler is clairvoyant over the queued arrival schedule: a
        micro-batch may pick up any same-key request arriving inside its
        join window, so a batch must not dispatch until every arrival up
        to its join deadline has been submitted.  The sharded tier submits
        arrivals in time order and calls ``drain_until(next_arrival)``
        between submissions, which yields bit-identical scheduling to
        submitting the whole workload up front and then running — while
        letting the router observe live queue depths.
        """
        while True:
            with self._lock:
                pending = self._queue.pending()
                if not pending:
                    return
                now = max(self.now, min(r.arrival for r in pending))
                if now > horizon:
                    return
                if not any(r.expired(now) for r in pending):
                    ready = [r for r in pending if r.arrival <= now]
                    head = min(ready, key=Request.dispatch_order)
                    if max(now, head.arrival + self.config.max_wait) > horizon:
                        return
            self.step()

    # -- the worker loop ---------------------------------------------------
    def step(self) -> bool:
        """Dispatch one micro-batch (or expire timeouts); False when idle."""
        with self._lock:
            pending = self._queue.pending()
            if not pending:
                return False
            # Idle until the first arrival if the queue holds only
            # future-dated requests.
            now = max(self.now, min(r.arrival for r in pending))
            if self._expire([r for r in pending if r.expired(now)], now):
                self.now = now
                return True
            pending = self._queue.pending()
            ready = [r for r in pending if r.arrival <= now]
            head = min(ready, key=Request.dispatch_order)
            # Same-key requests may join until the head's deadline; if the
            # worker is already past it, late-but-queued requests still
            # ride along (the batch starts now regardless).
            join_deadline = max(now, head.arrival + self.config.max_wait)
            mates = sorted((r for r in pending
                            if r.key == head.key
                            and r.arrival <= join_deadline),
                           key=Request.batch_order)
            batch = mates[:self.config.max_batch]
            start = max(now, max(r.arrival for r in batch))
            # Members whose own deadline elapses before the batch starts
            # time out instead of dispatching.
            stale = [r for r in batch if r.expired(start)]
            if self._expire(stale, start):
                self.now = max(self.now, now)
                return True
            self.metrics.sample_depth(len(pending))
            taken = self._queue.take([r.id for r in batch])
            self.now = start
            self._dispatch(taken, start)
            return True

    def _expire(self, stale: list[Request], now: float) -> bool:
        """Resolve timed-out requests; True if any were expired."""
        for req in self._queue.take([r.id for r in stale]):
            self.events.record(self.event_actor, "timeout", time=now,
                               ticket=req.id)
            self.metrics.timed_out += 1
            self._results[req.id] = ServiceResult(
                x=None, iterations=0, residuals=[], converged=False,
                degraded=True,
                degraded_reason=(f"timeout: waited "
                                 f"{now - req.arrival:.3g}s of "
                                 f"{req.timeout:.3g}s budget"),
                status="timeout", request_id=req.id, priority=req.priority,
                wait_seconds=now - req.arrival)
        return bool(stale)

    def _dispatch(self, batch: list[Request], start: float) -> None:
        """Run one coalesced micro-batch and resolve its tickets."""
        head = batch[0]
        self.events.record(self.event_actor, "batch", time=start,
                           ticket=head.id, detail=f"k={len(batch)}")
        for req in batch:
            self.events.record(self.event_actor, "solve", time=start,
                               ticket=req.id)
        stats_before = self.cache.stats()
        hits_before = stats_before["hits"]
        refresh_before = stats_before.get("pattern_hits", 0)
        with collect() as log:
            handle = setup(head.A, head.config, cache=self.cache)
            if len(batch) == 1:
                solved = [handle.solve(head.b, method=head.method,
                                       tol=head.tol, maxiter=head.maxiter)]
            else:
                B = np.column_stack([r.b for r in batch])
                solved = handle.solve_many(B, method=head.method,
                                           tol=head.tol,
                                           maxiter=head.maxiter)
        stats_after = self.cache.stats()
        cache_hit = stats_after["hits"] > hits_before
        # Same-pattern requests routed through the numeric-resetup tier.
        self.metrics.refresh_hits += (
            stats_after.get("pattern_hits", 0) - refresh_before
        )
        t_batch = self.machine.log_time(log)
        self.metrics.perf.merge(log)
        self.metrics.record_batch(len(batch), t_batch)
        self.now = start + t_batch
        for req, res in zip(batch, solved):
            self._resolve(req, res, start, t_batch, len(batch), cache_hit)

    def _resolve(self, req: Request, res: SolveResult, start: float,
                 t_batch: float, batch_size: int, cache_hit: bool) -> None:
        wait = start - req.arrival
        self.events.record(self.event_actor, "result", time=start + t_batch,
                           ticket=req.id)
        self.metrics.record_completion(wait, wait + t_batch, res.degraded)
        self._results[req.id] = ServiceResult(
            x=res.x, iterations=res.iterations, residuals=res.residuals,
            converged=res.converged, degraded=res.degraded,
            degraded_reason=res.degraded_reason,
            fault_events=list(res.fault_events),
            status="completed", request_id=req.id, priority=req.priority,
            wait_seconds=wait, solve_seconds=t_batch,
            batch_size=batch_size, cache_hit=cache_hit)

    # -- workload replay and reporting -------------------------------------
    def run_workload(self, workload: Workload) -> list[ServiceResult]:
        """Submit a generated workload, drain it, return results in order."""
        spec = workload.spec
        tickets = [
            self.submit(
                workload.matrices[item.matrix_index], item.b,
                method=spec.method, tol=spec.tol, maxiter=spec.maxiter,
                priority=item.priority, timeout=spec.timeout,
                arrival=item.arrival)
            for item in workload.items
        ]
        self.run()
        return [self.result(t, wait=False) for t in tickets]

    def metrics_snapshot(self) -> dict:
        """Combined service + kernel report (see ``ServiceMetrics``)."""
        return self.metrics.snapshot(machine=self.machine,
                                     virtual_seconds=self.now,
                                     cache_stats=self.cache.stats())

    def metrics_json(self) -> str:
        """Deterministic JSON of :meth:`metrics_snapshot`."""
        return self.metrics.to_json(machine=self.machine,
                                    virtual_seconds=self.now,
                                    cache_stats=self.cache.stats())
