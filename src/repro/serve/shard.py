"""Sharded multi-rank solve service with consistent-hash routing.

:class:`ShardedSolveService` scales the single-rank
:class:`~repro.serve.service.SolveService` out to ``ServiceConfig.ranks``
modeled service ranks.  Each rank is a full, independent service — its own
admission queue, :class:`~repro.amg.cache.HierarchyCache`, machine model,
and :class:`~repro.serve.metrics.ServiceMetrics` — and a thin router in
front decides which rank serves each request.

**Routing.**  The routing key is the *pattern-tier* cache key
(:func:`~repro.amg.cache.pattern_fingerprint` of the operator plus the
config digest), hashed onto a consistent-hash ring (:class:`HashRing`,
SHA-256 virtual nodes).  Same-pattern traffic — time stepping, Newton
sequences, repeated operators — therefore lands on the same *home* rank,
where the hierarchy is already warm (exact hit or numeric refresh), which
is the whole point of sharding a setup-dominated workload.  Adding or
removing a rank moves only ~1/N of the key space, so an autoscaling tier
does not flush every cache.

**Replication and spill.**  ``ServiceConfig.replicas`` widens each key's
candidate set to the home rank plus the next ``replicas - 1`` distinct
ring successors.  The router scores candidates by queue depth, charging
non-home candidates ``spill_penalty`` extra (so a hot key spills off its
home only under real load), breaking ties toward ranks whose cache is
already warm for the key, then by candidate order.  Forwarding off the
home rank is not free: the request hop (right-hand side, plus the full
CSR operator the first time a given exact fingerprint reaches a rank) and
the result-return hop are charged through the
:class:`~repro.perf.network.NetworkModel` as modeled seconds and bytes —
a forwarded request *arrives later* at its serving rank, and the network
volume shows up in the metrics snapshot.

**Shedding and autoscale.**  With ``shed_depth`` set, a request whose
every candidate queue is at least that deep is rejected at the router
(status ``rejected``, reason ``shed: ...``) without consuming rank
capacity.  With ``autoscale=True`` the active rank count starts at
``min_ranks`` and grows/shrinks one rank at a time from mean
admission-queue depth, observed at arrival times on the deterministic
clock; ring membership follows, and every action is recorded in the
metrics.

Everything runs on the same virtual clock as the single-rank service:
identical seed + workload + config give bit-identical routing, results,
and metrics JSON.  With ``ranks=1`` (and shedding/autoscale off) the
service degenerates to exactly the single-rank scheduler — byte-identical
per-rank metrics — because every request is home-routed with zero network
cost and the workload is replayed through the same clairvoyant path.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort
from dataclasses import dataclass, replace

from ..amg.cache import fingerprint
from ..api import _as_rhs, _validate_operator, as_csr
from ..config import AMGConfig, single_node_config
from ..perf.network import FDRInfinibandModel, NetworkModel
from ..results import ServiceResult
from .metrics import ShardMetrics
from .request import Ticket
from .service import ServiceConfig, SolveService, resolve_service_config
from .workload import Workload

__all__ = ["HashRing", "ShardTicket", "ShardedSolveService"]

#: Modeled wire size of a forwarded request or returned result carrying an
#: n-vector of float64 payload: the vector plus a small framing envelope.
_ENVELOPE_BYTES = 64


def _vector_bytes(n: int) -> int:
    return 8 * n + _ENVELOPE_BYTES


def _operator_bytes(n: int, nnz: int) -> int:
    """Wire size of a full CSR operator: data + indices (12 B/nnz) + indptr."""
    return 12 * nnz + 8 * (n + 1)


class HashRing:
    """Consistent-hash ring with SHA-256 virtual nodes.

    Each member rank owns ``vnodes`` points on a 64-bit ring; a key maps
    to the rank owning the first point clockwise from the key's own hash.
    With V virtual nodes per rank the load split is near-uniform, and
    adding or removing one rank reassigns only ~1/N of the key space —
    the property the ring-stability test pins down.
    """

    def __init__(self, ranks: tuple[int, ...] | list[int] = (), *,
                 vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: Sorted (point, rank) pairs; ranks are small non-negative ints.
        self._points: list[tuple[int, int]] = []
        self._members: set[int] = set()
        for rank in ranks:
            self.add(rank)

    @staticmethod
    def _point(token: str) -> int:
        digest = hashlib.sha256(token.encode()).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self._members))

    def add(self, rank: int) -> None:
        if rank in self._members:
            return
        self._members.add(rank)
        for v in range(self.vnodes):
            insort(self._points, (self._point(f"rank{rank}:{v}"), rank))

    def remove(self, rank: int) -> None:
        if rank not in self._members:
            return
        self._members.discard(rank)
        self._points = [(p, r) for p, r in self._points if r != rank]

    def lookup(self, key: str) -> int:
        """The rank owning *key* (its home rank)."""
        return self.successors(key, 1)[0]

    def successors(self, key: str, n: int) -> list[int]:
        """First *n* distinct ranks clockwise from *key*'s ring point.

        Element 0 is the key's home rank; the rest are its replica
        candidates, in deterministic ring order.
        """
        if not self._points:
            raise ValueError("ring has no members")
        n = min(n, len(self._members))
        start = bisect_left(self._points, (self._point(key), -1))
        out: list[int] = []
        for i in range(len(self._points)):
            rank = self._points[(start + i) % len(self._points)][1]
            if rank not in out:
                out.append(rank)
                if len(out) == n:
                    break
        return out


@dataclass(frozen=True)
class ShardTicket:
    """Sharded ticket: which rank holds the request, and whose key it is.

    ``rank`` is the serving rank the router dispatched to (−1 when the
    router resolved the request itself, e.g. load shedding); ``home_rank``
    is the ring owner of the request's routing key.  They differ exactly
    when the request was forwarded.
    """

    id: int
    rank: int
    home_rank: int


class ShardedSolveService:
    """N modeled service ranks behind one consistent-hash router.

    Usage::

        svc = ShardedSolveService(ServiceConfig(ranks=4, replicas=2))
        t = svc.submit(A, b)
        res = svc.result(t)             # res.rank / res.home_rank / net_seconds
        print(svc.metrics_json())       # sharded + per-rank report

    The constructor accepts the same deprecated per-field keywords as
    :class:`~repro.serve.service.SolveService` (shimmed through
    :func:`~repro.serve.service.resolve_service_config`).  All ranks share
    one ``ServiceConfig`` and one AMG config, so a fingerprint computed on
    any rank is valid on every rank.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 amg_config: AMGConfig | None = None,
                 network: NetworkModel | None = None,
                 **legacy) -> None:
        self.config = resolve_service_config(config, legacy,
                                             "ShardedSolveService")
        self.amg_config = amg_config or single_node_config(
            nthreads=self.config.threads)
        self.network = network or FDRInfinibandModel()
        #: One full service per rank, each with its own cache and metrics.
        self.services = [
            SolveService(self.config, amg_config=self.amg_config)
            for _ in range(self.config.ranks)
        ]
        self.shard_metrics = ShardMetrics()
        start = (self.config.min_ranks if self.config.autoscale
                 else self.config.ranks)
        #: Active rank ids, always a prefix ``range(k)`` of the fleet.
        self._active = list(range(start))
        self.ring = HashRing(self._active, vnodes=self.config.ring_vnodes)
        #: (rank, local id) -> route record for result wrapping.
        self._routes: dict[tuple[int, int], dict] = {}
        self._wrapped: dict[tuple[int, int], ServiceResult] = {}
        #: (rank, exact fingerprint) pairs whose operator already crossed
        #: the wire to that rank — later forwards ship only the vector.
        self._shipped: set[tuple[int, str]] = set()
        #: Router-resolved (shed) results, keyed by shard-level id.
        self._shed_results: dict[int, ServiceResult] = {}
        self._next_shed_id = 0

    # -- clocks and depth ---------------------------------------------------
    @property
    def now(self) -> float:
        """The fleet clock: the busiest rank's virtual time (makespan)."""
        return max(svc.now for svc in self.services)

    @property
    def active_ranks(self) -> list[int]:
        """Currently active rank ids (all of them unless autoscaling)."""
        return list(self._active)

    def queue_depths(self) -> list[int]:
        """Admission-queue depth of every rank (index = rank id)."""
        return [svc.queue_depth for svc in self.services]

    # -- submission ---------------------------------------------------------
    def submit(self, A, b, *, config: AMGConfig | None = None,
               method: str | None = None, tol: float | None = None,
               maxiter: int | None = None, priority: str | None = None,
               timeout: float | None = None,
               arrival: float | None = None) -> ShardTicket:
        """Route one solve to a rank; always returns a :class:`ShardTicket`.

        The router picks the home rank by consistent-hashing the request's
        pattern-tier key, widens to the replica candidate set, sheds if
        every candidate is overloaded, and otherwise dispatches to the
        best-scored candidate — charging modeled network time when that is
        not the home rank (the request *arrives later* there).  Malformed
        requests are delegated to a rank so they resolve to the same
        structured ``rejected`` result a single-rank service produces.
        """
        t = self.now if arrival is None else float(arrival)
        cfg = config or self.amg_config
        if self.config.autoscale:
            self._autoscale(t)
        try:
            A_csr = _validate_operator(as_csr(A))
            _as_rhs(b, A_csr.nrows)
        except (TypeError, ValueError):
            # Un-routable request: any rank produces the canonical
            # structured rejection.  Charged nowhere on the network.
            rank = self._active[0]
            ticket = self.services[rank].submit(
                A, b, config=cfg, method=method, tol=tol, maxiter=maxiter,
                priority=priority, timeout=timeout, arrival=t)
            self._routes[(rank, ticket.id)] = {
                "home": rank, "rank": rank, "forward_seconds": 0.0, "n": 0}
            self.shard_metrics.record_route(forwarded=False)
            return ShardTicket(ticket.id, rank, rank)

        key = self.services[0].cache.pattern_key(A_csr, cfg)
        candidates = self.ring.successors(
            key, min(self.config.replicas, len(self._active)))
        home = candidates[0]
        depths = self.queue_depths()

        if (self.config.shed_depth is not None
                and all(depths[c] >= self.config.shed_depth
                        for c in candidates)):
            return self._shed(candidates, depths, priority)

        # Load is queued *work* (summed nnz), not request count, so one
        # queued 3-D setup outweighs a handful of tiny 2-D solves; the
        # spill penalty is denominated in this request's own cost, so a
        # request leaves its (cache-warm) home only when home holds at
        # least spill_penalty times this request's work more than a
        # replica.
        work = [self.services[c].queued_work for c in range(len(depths))]

        def score(c: int) -> tuple[int, int, int]:
            spill = (0 if c == home
                     else self.config.spill_penalty * A_csr.nnz)
            warm = 0 if self.services[c].cache.has_pattern(key) else 1
            return (work[c] + spill, warm, candidates.index(c))

        rank = min(candidates, key=score)
        fwd_seconds = 0.0
        fwd_bytes = 0
        shipped = False
        if rank != home:
            fwd_bytes = _vector_bytes(A_csr.nrows)
            exact = fingerprint(A_csr, cfg)
            if (rank, exact) not in self._shipped:
                fwd_bytes += _operator_bytes(A_csr.nrows, A_csr.nnz)
                self._shipped.add((rank, exact))
                shipped = True
            fwd_seconds = self.network.transfer_time(fwd_bytes)
        self.shard_metrics.record_route(
            forwarded=rank != home, forward_bytes=fwd_bytes,
            forward_seconds=fwd_seconds, shipped=shipped)
        ticket = self.services[rank].submit(
            A_csr, b, config=cfg, method=method, tol=tol, maxiter=maxiter,
            priority=priority, timeout=timeout, arrival=t + fwd_seconds)
        self._routes[(rank, ticket.id)] = {
            "home": home, "rank": rank, "forward_seconds": fwd_seconds,
            "n": A_csr.nrows}
        return ShardTicket(ticket.id, rank, home)

    def _shed(self, candidates: list[int], depths: list[int],
              priority: str | None) -> ShardTicket:
        """Reject at the router: every candidate queue is too deep."""
        self.shard_metrics.record_shed()
        sid = self._next_shed_id
        self._next_shed_id += 1
        load = ", ".join(f"rank {c}: {depths[c]}" for c in candidates)
        self._shed_results[sid] = ServiceResult(
            x=None, iterations=0, residuals=[], converged=False,
            degraded=True,
            degraded_reason=(
                f"rejected: shed: every candidate rank at or above "
                f"shed_depth={self.config.shed_depth} ({load})"),
            status="rejected", request_id=sid,
            priority=priority or self.config.default_priority,
            rank=-1, home_rank=candidates[0])
        return ShardTicket(sid, -1, candidates[0])

    def cancel(self, ticket: ShardTicket) -> bool:
        """Withdraw a pending request on its serving rank."""
        if ticket.rank < 0:
            return False
        return self.services[ticket.rank].cancel(Ticket(ticket.id))

    # -- autoscaling --------------------------------------------------------
    def _autoscale(self, t: float) -> None:
        """Grow/shrink the active rank prefix from mean queue depth.

        Observed at arrival times on the virtual clock, one action per
        observation.  A deactivated rank finishes what it already queued
        (it leaves the ring, so no new keys route to it); activation adds
        the next rank id, moving ~1/N of the key space onto it.
        """
        depths = self.queue_depths()
        mean = sum(depths[c] for c in self._active) / len(self._active)
        if (mean > self.config.scale_up_depth
                and len(self._active) < self.config.ranks):
            new = len(self._active)
            self._active.append(new)
            self.ring.add(new)
            self.shard_metrics.record_autoscale(t, "up", len(self._active))
        elif (mean < self.config.scale_down_depth
                and len(self._active) > self.config.min_ranks):
            gone = self._active.pop()
            self.ring.remove(gone)
            self.shard_metrics.record_autoscale(t, "down", len(self._active))

    # -- results ------------------------------------------------------------
    def result(self, ticket: ShardTicket, *,
               wait: bool = True) -> ServiceResult | None:
        """The request's :class:`~repro.results.ServiceResult`.

        Delegates to the serving rank, then wraps the result with the
        route: ``rank``, ``home_rank``, and ``net_seconds`` (forward hop
        plus, for completed forwarded requests, the result-return hop —
        both charged through the network model).  Each result is wrapped
        and counted in the shard metrics exactly once.
        """
        if ticket.rank < 0:
            return self._shed_results[ticket.id]
        route_key = (ticket.rank, ticket.id)
        if route_key in self._wrapped:
            return self._wrapped[route_key]
        res = self.services[ticket.rank].result(Ticket(ticket.id), wait=wait)
        if res is None:
            return None
        route = self._routes[route_key]
        ret_bytes = 0
        ret_seconds = 0.0
        if route["rank"] != route["home"] and res.status == "completed":
            ret_bytes = _vector_bytes(route["n"])
            ret_seconds = self.network.transfer_time(ret_bytes)
        wrapped = replace(
            res, rank=route["rank"], home_rank=route["home"],
            net_seconds=route["forward_seconds"] + ret_seconds)
        self._wrapped[route_key] = wrapped
        self.shard_metrics.record_result(
            wrapped, return_bytes=ret_bytes, return_seconds=ret_seconds)
        return wrapped

    # -- driving the fleet --------------------------------------------------
    def step(self) -> bool:
        """One worker step on each rank; False when the whole fleet idles."""
        progress = False
        for svc in self.services:
            progress |= svc.step()
        return progress

    def run(self) -> None:
        """Drive every rank's worker loop until all queues drain."""
        while self.step():
            pass

    def drain_until(self, horizon: float) -> None:
        """Run all fleet work provably unaffected by arrivals past *horizon*."""
        for svc in self.services:
            svc.drain_until(horizon)

    def run_workload(self, workload: Workload) -> list[ServiceResult]:
        """Replay a generated workload through the router, in arrival order.

        Arrivals are interleaved with draining (``drain_until`` up to each
        arrival) so the router and autoscaler observe live queue depths —
        the same depths a long-running service would see.  The clairvoyant
        batch guard makes this interleaving bit-identical to submitting
        everything up front; with ``ranks=1`` and shedding/autoscale off
        the up-front path is taken directly, which keeps the single rank's
        metrics byte-identical to a plain ``SolveService`` run.
        """
        spec = workload.spec
        interleave = (self.config.ranks > 1
                      or self.config.shed_depth is not None
                      or self.config.autoscale)
        tickets = []
        for item in workload.items:
            if interleave:
                self.drain_until(item.arrival)
            tickets.append(self.submit(
                workload.matrices[item.matrix_index], item.b,
                method=spec.method, tol=spec.tol, maxiter=spec.maxiter,
                priority=item.priority, timeout=spec.timeout,
                arrival=item.arrival))
        self.run()
        return [self.result(t, wait=False) for t in tickets]

    # -- reporting ----------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Sharded report: aggregate + locality + per-rank snapshots."""
        return self.shard_metrics.snapshot(
            per_rank=[svc.metrics_snapshot() for svc in self.services],
            virtual_seconds=self.now,
            active_ranks=len(self._active),
            replicas=self.config.replicas)

    def metrics_json(self) -> str:
        """Deterministic JSON of :meth:`metrics_snapshot`."""
        return self.shard_metrics.to_json(
            per_rank=[svc.metrics_snapshot() for svc in self.services],
            virtual_seconds=self.now,
            active_ranks=len(self._active),
            replicas=self.config.replicas)
