"""Sharded multi-rank solve service with consistent-hash routing.

:class:`ShardedSolveService` scales the single-rank
:class:`~repro.serve.service.SolveService` out to ``ServiceConfig.ranks``
modeled service ranks.  Each rank is a full, independent service — its own
admission queue, :class:`~repro.amg.cache.HierarchyCache`, machine model,
and :class:`~repro.serve.metrics.ServiceMetrics` — and a thin router in
front decides which rank serves each request.

**Routing.**  The routing key is the *pattern-tier* cache key
(:func:`~repro.amg.cache.pattern_fingerprint` of the operator plus the
config digest), hashed onto a consistent-hash ring (:class:`HashRing`,
SHA-256 virtual nodes).  Same-pattern traffic — time stepping, Newton
sequences, repeated operators — therefore lands on the same *home* rank,
where the hierarchy is already warm (exact hit or numeric refresh), which
is the whole point of sharding a setup-dominated workload.  Adding or
removing a rank moves only ~1/N of the key space, so an autoscaling tier
does not flush every cache.

**Replication and spill.**  ``ServiceConfig.replicas`` widens each key's
candidate set to the home rank plus the next ``replicas - 1`` distinct
ring successors.  The router scores candidates by queue depth, charging
non-home candidates ``spill_penalty`` extra (so a hot key spills off its
home only under real load), breaking ties toward ranks whose cache is
already warm for the key, then by candidate order.  Forwarding off the
home rank is not free: the request hop (right-hand side, plus the full
CSR operator the first time a given exact fingerprint reaches a rank) and
the result-return hop are charged through the
:class:`~repro.perf.network.NetworkModel` as modeled seconds and bytes —
a forwarded request *arrives later* at its serving rank, and the network
volume shows up in the metrics snapshot.

**Shedding and autoscale.**  With ``shed_depth`` set, a request whose
every candidate queue is at least that deep is rejected at the router
(status ``rejected``, reason ``shed: ...``) without consuming rank
capacity.  With ``autoscale=True`` the active rank count starts at
``min_ranks`` and grows/shrinks one rank at a time from mean
admission-queue depth, observed at arrival times on the deterministic
clock; ring membership follows, and every action is recorded in the
metrics.

**Fault tolerance.**  Passing a non-empty
:class:`~repro.faults.shard_plan.ShardFaultPlan` activates the rank-failure
lifecycle.  A :class:`~repro.serve.health.HealthTracker` probes every rank
at ``heartbeat_interval`` multiples of the modeled clock; consecutive
misses walk a rank ``up`` → ``suspect`` → ``down`` (circuit breaker opens).
A ``down`` rank leaves the ring and loses everything it held: its queued
requests are evacuated and its already-scheduled results whose modeled
finish lies past the death instant are *retracted* — both re-route to ring
successors under the plan's :class:`~repro.faults.plan.RetryPolicy`, each
attempt charged a deterministic backoff stall plus the re-forward (and,
when the successor never saw the operator, the re-ship) through the
network model.  A request that exhausts the retry budget — or finds the
ring empty — resolves to a structured ``failed`` result, never an
exception.  When the plan lets the rank breathe again it turns
``rejoining`` (breaker half-open): it re-enters cold, replays the
``rewarm_top_k`` hottest pattern fingerprints from surviving replicas
(charged as bulk state transfers), and only then closes the breaker and
rejoins the ring.  With ``hedge_delay`` set, an ``interactive`` request
still unresolved one hedge delay after arrival is duplicated to one
replica at the next heartbeat tick; the first copy to finish wins and the
loser is cancelled, freeing its queue slot.  Every fault-path quantity
lands in a ``faults`` section of the metrics snapshot — emitted *only*
when the lifecycle is active, so the no-fault snapshot stays byte-for-byte
what it was without a plan.

Everything runs on the same virtual clock as the single-rank service:
identical seed + workload + config give bit-identical routing, results,
and metrics JSON.  With ``ranks=1`` (and shedding/autoscale off) the
service degenerates to exactly the single-rank scheduler — byte-identical
per-rank metrics — because every request is home-routed with zero network
cost and the workload is replayed through the same clairvoyant path.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort
from dataclasses import dataclass, replace

from ..amg.cache import fingerprint
from ..analysis.events import EventLog
from ..api import _as_rhs, _validate_operator, as_csr
from ..config import AMGConfig, single_node_config
from ..faults.shard_plan import ShardFaultPlan
from ..perf.network import FDRInfinibandModel, NetworkModel
from ..results import ServiceResult
from .health import DOWN, REJOINING, UP, HealthTracker
from .metrics import ShardMetrics
from .request import Ticket
from .service import ServiceConfig, SolveService, resolve_service_config
from .workload import Workload

__all__ = ["HashRing", "ShardTicket", "ShardedSolveService"]

#: Modeled wire size of a forwarded request or returned result carrying an
#: n-vector of float64 payload: the vector plus a small framing envelope.
_ENVELOPE_BYTES = 64


def _vector_bytes(n: int) -> int:
    return 8 * n + _ENVELOPE_BYTES


def _operator_bytes(n: int, nnz: int) -> int:
    """Wire size of a full CSR operator: data + indices (12 B/nnz) + indptr."""
    return 12 * nnz + 8 * (n + 1)


class HashRing:
    """Consistent-hash ring with SHA-256 virtual nodes.

    Each member rank owns ``vnodes`` points on a 64-bit ring; a key maps
    to the rank owning the first point clockwise from the key's own hash.
    With V virtual nodes per rank the load split is near-uniform, and
    adding or removing one rank reassigns only ~1/N of the key space —
    the property the ring-stability test pins down.
    """

    def __init__(self, ranks: tuple[int, ...] | list[int] = (), *,
                 vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: Sorted (point, rank) pairs; ranks are small non-negative ints.
        self._points: list[tuple[int, int]] = []
        self._members: set[int] = set()
        for rank in ranks:
            self.add(rank)

    @staticmethod
    def _point(token: str) -> int:
        digest = hashlib.sha256(token.encode()).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self._members))

    def add(self, rank: int) -> None:
        if rank in self._members:
            return
        self._members.add(rank)
        for v in range(self.vnodes):
            insort(self._points, (self._point(f"rank{rank}:{v}"), rank))

    def remove(self, rank: int) -> None:
        if rank not in self._members:
            return
        self._members.discard(rank)
        self._points = [(p, r) for p, r in self._points if r != rank]

    def lookup(self, key: str) -> int:
        """The rank owning *key* (its home rank)."""
        return self.successors(key, 1)[0]

    def successors(self, key: str, n: int) -> list[int]:
        """First *n* distinct ranks clockwise from *key*'s ring point.

        Element 0 is the key's home rank; the rest are its replica
        candidates, in deterministic ring order.
        """
        if not self._points:
            raise ValueError("ring has no members")
        n = min(n, len(self._members))
        start = bisect_left(self._points, (self._point(key), -1))
        out: list[int] = []
        for i in range(len(self._points)):
            rank = self._points[(start + i) % len(self._points)][1]
            if rank not in out:
                out.append(rank)
                if len(out) == n:
                    break
        return out


@dataclass(frozen=True)
class ShardTicket:
    """Sharded ticket: which rank holds the request, and whose key it is.

    ``rank`` is the serving rank the router dispatched to (−1 when the
    router resolved the request itself, e.g. load shedding); ``home_rank``
    is the ring owner of the request's routing key.  They differ exactly
    when the request was forwarded.
    """

    id: int
    rank: int
    home_rank: int


class ShardedSolveService:
    """N modeled service ranks behind one consistent-hash router.

    Usage::

        svc = ShardedSolveService(ServiceConfig(ranks=4, replicas=2))
        t = svc.submit(A, b)
        res = svc.result(t)             # res.rank / res.home_rank / net_seconds
        print(svc.metrics_json())       # sharded + per-rank report

    The constructor accepts the same deprecated per-field keywords as
    :class:`~repro.serve.service.SolveService` (shimmed through
    :func:`~repro.serve.service.resolve_service_config`).  All ranks share
    one ``ServiceConfig`` and one AMG config, so a fingerprint computed on
    any rank is valid on every rank.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 amg_config: AMGConfig | None = None,
                 network: NetworkModel | None = None,
                 fault_plan: ShardFaultPlan | None = None,
                 **legacy) -> None:
        self.config = resolve_service_config(config, legacy,
                                             "ShardedSolveService")
        self.amg_config = amg_config or single_node_config(
            nthreads=self.config.threads)
        self.network = network or FDRInfinibandModel()
        #: One full service per rank, each with its own cache and metrics.
        self.services = [
            SolveService(self.config, amg_config=self.amg_config)
            for _ in range(self.config.ranks)
        ]
        self.shard_metrics = ShardMetrics()
        #: Fleet-shared ticket-lifecycle event log: the router and every
        #: rank record into one sequence, so the happens-before checker
        #: (``repro.analysis.events``) sees cross-actor edges.  Empty
        #: unless ``REPRO_CHECK`` is at least ``cheap``.
        self.events = EventLog()
        for i, svc in enumerate(self.services):
            svc.events = self.events
            svc.event_actor = f"rank{i}"
        start = (self.config.min_ranks if self.config.autoscale
                 else self.config.ranks)
        #: Active rank ids, always a prefix ``range(k)`` of the fleet.
        self._active = list(range(start))
        self.ring = HashRing(self._active, vnodes=self.config.ring_vnodes)
        #: (rank, local id) -> route record for result wrapping.
        self._routes: dict[tuple[int, int], dict] = {}
        self._wrapped: dict[tuple[int, int], ServiceResult] = {}
        #: (rank, exact fingerprint) pairs whose operator already crossed
        #: the wire to that rank — later forwards ship only the vector.
        self._shipped: set[tuple[int, str]] = set()
        #: Router-resolved (shed / fleet-down) results, by shard-level id.
        self._shed_results: dict[int, ServiceResult] = {}
        self._next_shed_id = 0
        # -- fault lifecycle (active only under a non-empty fault plan) ----
        self._plan = fault_plan
        chaos = fault_plan is not None and not fault_plan.is_empty
        if chaos and self.config.autoscale:
            raise ValueError(
                "autoscale and a non-empty ShardFaultPlan cannot be "
                "combined: the autoscaler and the failure lifecycle would "
                "both edit ring membership")
        #: Health tracker; ``None`` means the fault lifecycle is inactive
        #: and every chaos path below is skipped (the no-fault scheduler
        #: stays bit-identical to running without a plan).
        self._tracker = HealthTracker(
            fault_plan, self.config.ranks,
            interval=self.config.heartbeat_interval,
            suspect_after=self.config.suspect_after,
            down_after=self.config.down_after) if chaos else None
        #: Origin route key -> latest (rank, local id) after failovers.
        self._redirects: dict[tuple[int, int], tuple[int, int]] = {}
        #: Origin route key -> terminal router result (exhausted retries).
        self._router_results: dict[tuple[int, int], ServiceResult] = {}
        #: Pattern key -> routed-request count (re-warm heat ranking).
        self._pattern_traffic: dict[str, int] = {}
        #: Origin route key -> {"deadline", "fired", "dup"} hedge registry.
        self._pending_hedges: dict[tuple[int, int], dict] = {}

    # -- clocks and depth ---------------------------------------------------
    @property
    def now(self) -> float:
        """The fleet clock: the busiest rank's virtual time (makespan)."""
        return max(svc.now for svc in self.services)

    @property
    def active_ranks(self) -> list[int]:
        """Currently active rank ids (all of them unless autoscaling)."""
        return list(self._active)

    def queue_depths(self) -> list[int]:
        """Admission-queue depth of every rank (index = rank id)."""
        return [svc.queue_depth for svc in self.services]

    # -- submission ---------------------------------------------------------
    def submit(self, A, b, *, config: AMGConfig | None = None,
               method: str | None = None, tol: float | None = None,
               maxiter: int | None = None, priority: str | None = None,
               timeout: float | None = None,
               arrival: float | None = None) -> ShardTicket:
        """Route one solve to a rank; always returns a :class:`ShardTicket`.

        The router picks the home rank by consistent-hashing the request's
        pattern-tier key, widens to the replica candidate set, sheds if
        every candidate is overloaded, and otherwise dispatches to the
        best-scored candidate — charging modeled network time when that is
        not the home rank (the request *arrives later* there).  Malformed
        requests are delegated to a rank so they resolve to the same
        structured ``rejected`` result a single-rank service produces.
        """
        t = self.now if arrival is None else float(arrival)
        cfg = config or self.amg_config
        if self.config.autoscale:
            self._autoscale(t)
        chaos = self._tracker is not None
        try:
            A_csr = _validate_operator(as_csr(A))
            _as_rhs(b, A_csr.nrows)
        except (TypeError, ValueError) as exc:
            if chaos and not self.ring.members:
                return self._router_fail(
                    f"rejected: invalid request: {exc} (no routable ranks)",
                    priority, status="rejected")
            # Un-routable request: any rank produces the canonical
            # structured rejection.  Charged nowhere on the network.
            rank = self.ring.members[0] if chaos else self._active[0]
            ticket = self.services[rank].submit(
                A, b, config=cfg, method=method, tol=tol, maxiter=maxiter,
                priority=priority, timeout=timeout, arrival=t)
            rec = {"home": rank, "rank": rank, "forward_seconds": 0.0,
                   "n": 0}
            if chaos:
                rec.update(origin=(rank, ticket.id), net=0.0, retries=0,
                           failovers=0, original_rank=rank, local_arrival=t)
            self._routes[(rank, ticket.id)] = rec
            self.events.record("router", "route", time=t, ticket=ticket.id,
                               rank=rank, detail="invalid")
            self.shard_metrics.record_route(forwarded=False)
            return ShardTicket(ticket.id, rank, rank)

        key = self.services[0].cache.pattern_key(A_csr, cfg)
        if chaos:
            self._pattern_traffic[key] = self._pattern_traffic.get(key, 0) + 1
            if not self.ring.members:
                return self._router_fail(
                    "failed: no routable ranks (every service rank is down)",
                    priority, status="failed")
        candidates = self.ring.successors(
            key, min(self.config.replicas, len(self.ring.members)))
        home = candidates[0]
        depths = self.queue_depths()

        if (self.config.shed_depth is not None
                and all(depths[c] >= self.config.shed_depth
                        for c in candidates)):
            return self._shed(candidates, depths, priority)

        rank = self._pick_rank(key, A_csr.nnz, candidates)
        fwd_seconds = 0.0
        fwd_bytes = 0
        shipped = False
        exact = fingerprint(A_csr, cfg) if chaos else None
        if rank != home:
            if exact is None:
                exact = fingerprint(A_csr, cfg)
            fwd_bytes, fwd_seconds, shipped = self._ship_charge(
                rank, A_csr.nrows, A_csr.nnz, exact)
        self.shard_metrics.record_route(
            forwarded=rank != home, forward_bytes=fwd_bytes,
            forward_seconds=fwd_seconds, shipped=shipped)
        ticket = self.services[rank].submit(
            A_csr, b, config=cfg, method=method, tol=tol, maxiter=maxiter,
            priority=priority, timeout=timeout, arrival=t + fwd_seconds)
        rec = {"home": home, "rank": rank, "forward_seconds": fwd_seconds,
               "n": A_csr.nrows}
        if chaos:
            rpri = priority or self.config.default_priority
            rec.update(
                origin=(rank, ticket.id),
                req=dict(A=A_csr, b=b, config=cfg, method=method, tol=tol,
                         maxiter=maxiter, priority=rpri, timeout=timeout),
                key=key, exact=exact, nnz=A_csr.nnz, net=fwd_seconds,
                retries=0, failovers=0, original_rank=rank,
                local_arrival=t + fwd_seconds)
            if (self.config.hedge_delay is not None
                    and rpri == "interactive"
                    and len(self.ring.members) > 1):
                self._pending_hedges[(rank, ticket.id)] = {
                    "deadline": t + self.config.hedge_delay,
                    "fired": False, "dup": None}
        self._routes[(rank, ticket.id)] = rec
        self.events.record("router", "route", time=t, ticket=ticket.id,
                           rank=rank, detail=f"home=rank{home}")
        if rank != home:
            self.events.record("router", "forward", time=t,
                               ticket=ticket.id, rank=rank,
                               detail=f"off-home from rank{home}")
        return ShardTicket(ticket.id, rank, home)

    def _pick_rank(self, key: str, nnz: int, candidates: list[int]) -> int:
        """Best-scored candidate for a request of *nnz* work on *key*.

        Load is queued *work* (summed nnz), not request count, so one
        queued 3-D setup outweighs a handful of tiny 2-D solves; the
        spill penalty is denominated in this request's own cost, so a
        request leaves its (cache-warm) home only when home holds at
        least spill_penalty times this request's work more than a
        replica.  Ties break toward warm caches, then candidate order.
        """
        home = candidates[0]
        work = {c: self.services[c].queued_work for c in candidates}

        def score(c: int) -> tuple[int, int, int]:
            spill = 0 if c == home else self.config.spill_penalty * nnz
            warm = 0 if self.services[c].cache.has_pattern(key) else 1
            return (work[c] + spill, warm, candidates.index(c))

        return min(candidates, key=score)

    def _ship_charge(self, rank: int, n: int, nnz: int,
                     exact: str) -> tuple[int, float, bool]:
        """Wire cost of forwarding a request to *rank*.

        Returns ``(bytes, modeled seconds, operator shipped)``: the
        right-hand-side vector always crosses; the full CSR operator rides
        along the first time this exact fingerprint reaches the rank.
        """
        nbytes = _vector_bytes(n)
        shipped = False
        if (rank, exact) not in self._shipped:
            nbytes += _operator_bytes(n, nnz)
            self._shipped.add((rank, exact))
            shipped = True
        return nbytes, self.network.transfer_time(nbytes), shipped

    def _router_fail(self, reason: str, priority: str | None, *,
                     status: str) -> ShardTicket:
        """Resolve a submit at the router when no rank can take it."""
        sid = self._next_shed_id
        self._next_shed_id += 1
        self.events.record("router", "reject", time=self.now, ticket=sid,
                           detail=status)
        self.shard_metrics.routed += 1
        if status == "failed":
            self.shard_metrics.failed += 1
        self._shed_results[sid] = ServiceResult(
            x=None, iterations=0, residuals=[], converged=False,
            degraded=True, degraded_reason=reason, status=status,
            request_id=sid,
            priority=priority or self.config.default_priority,
            rank=-1, home_rank=-1)
        return ShardTicket(sid, -1, -1)

    def _shed(self, candidates: list[int], depths: list[int],
              priority: str | None) -> ShardTicket:
        """Reject at the router: every candidate queue is too deep."""
        self.shard_metrics.record_shed()
        sid = self._next_shed_id
        self._next_shed_id += 1
        self.events.record("router", "shed", time=self.now, ticket=sid,
                           detail=f"candidates={candidates}")
        load = ", ".join(f"rank {c}: {depths[c]}" for c in candidates)
        self._shed_results[sid] = ServiceResult(
            x=None, iterations=0, residuals=[], converged=False,
            degraded=True,
            degraded_reason=(
                f"rejected: shed: every candidate rank at or above "
                f"shed_depth={self.config.shed_depth} ({load})"),
            status="rejected", request_id=sid,
            priority=priority or self.config.default_priority,
            rank=-1, home_rank=candidates[0])
        return ShardTicket(sid, -1, candidates[0])

    def cancel(self, ticket: ShardTicket) -> bool:
        """Withdraw a pending request, wherever failover moved it.

        Under a fault plan the ticket's original rank may be dead and its
        request re-homed; the redirect map is followed so the *current*
        copy is cancelled and its queue slot freed.  A pending hedge
        duplicate is cancelled along with it.
        """
        if ticket.rank < 0:
            return False
        if self._tracker is None:
            ok = self.services[ticket.rank].cancel(Ticket(ticket.id))
            if ok:
                self.events.record("router", "cancel", time=self.now,
                                   ticket=ticket.id, rank=ticket.rank)
            return ok
        origin = (ticket.rank, ticket.id)
        if origin in self._wrapped or origin in self._router_results:
            return False
        cur = self._redirects.get(origin, origin)
        entry = self._pending_hedges.pop(origin, None)
        if entry is not None and entry.get("dup") is not None:
            dup = entry["dup"]
            if self.services[dup[0]].cancel(Ticket(dup[1])):
                self.shard_metrics.record_hedge_cancelled()
        ok = self.services[cur[0]].cancel(Ticket(cur[1]))
        if ok:
            self.events.record("router", "cancel", time=self.now,
                               ticket=origin[1], rank=origin[0])
        return ok

    # -- autoscaling --------------------------------------------------------
    def _autoscale(self, t: float) -> None:
        """Grow/shrink the active rank prefix from mean queue depth.

        Observed at arrival times on the virtual clock, one action per
        observation.  A deactivated rank finishes what it already queued
        (it leaves the ring, so no new keys route to it); activation adds
        the next rank id, moving ~1/N of the key space onto it.
        """
        depths = self.queue_depths()
        mean = sum(depths[c] for c in self._active) / len(self._active)
        if (mean > self.config.scale_up_depth
                and len(self._active) < self.config.ranks):
            new = len(self._active)
            self._active.append(new)
            self.ring.add(new)
            self.shard_metrics.record_autoscale(t, "up", len(self._active))
        elif (mean < self.config.scale_down_depth
                and len(self._active) > self.config.min_ranks):
            gone = self._active.pop()
            self.ring.remove(gone)
            self.shard_metrics.record_autoscale(t, "down", len(self._active))

    # -- results ------------------------------------------------------------
    def result(self, ticket: ShardTicket, *,
               wait: bool = True) -> ServiceResult | None:
        """The request's :class:`~repro.results.ServiceResult`.

        Delegates to the serving rank, then wraps the result with the
        route: ``rank``, ``home_rank``, and ``net_seconds`` (forward hop
        plus, for completed forwarded requests, the result-return hop —
        both charged through the network model).  Each result is wrapped
        and counted in the shard metrics exactly once.
        """
        if ticket.rank < 0:
            return self._shed_results[ticket.id]
        route_key = (ticket.rank, ticket.id)
        if route_key in self._wrapped:
            return self._wrapped[route_key]
        if self._tracker is not None:
            return self._result_chaos(route_key, wait)
        res = self.services[ticket.rank].result(Ticket(ticket.id), wait=wait)
        if res is None:
            return None
        route = self._routes[route_key]
        ret_bytes = 0
        ret_seconds = 0.0
        if route["rank"] != route["home"] and res.status == "completed":
            ret_bytes = _vector_bytes(route["n"])
            ret_seconds = self.network.transfer_time(ret_bytes)
        wrapped = replace(
            res, rank=route["rank"], home_rank=route["home"],
            net_seconds=route["forward_seconds"] + ret_seconds)
        self._wrapped[route_key] = wrapped
        self.events.record("router", "deliver", time=self.now,
                           ticket=ticket.id, rank=ticket.rank,
                           detail=wrapped.status)
        self.shard_metrics.record_result(
            wrapped, return_bytes=ret_bytes, return_seconds=ret_seconds)
        return wrapped

    def _result_chaos(self, origin: tuple[int, int],
                      wait: bool) -> ServiceResult | None:
        """Redeem a ticket under the fault lifecycle.

        Follows the failover redirect chain to the request's current copy,
        resolves the hedge race (earliest modeled finish wins; the loser
        is cancelled if still queued), and wraps the winner with the
        accumulated fault accounting.  Results the router itself resolved
        (exhausted retries) are returned as-is.
        """
        if wait:
            self.run()
        if origin in self._router_results:
            wrapped = self._router_results[origin]
            self._wrapped[origin] = wrapped
            self.events.record("router", "deliver", time=self.now,
                               ticket=origin[1], rank=origin[0],
                               detail=wrapped.status)
            self.shard_metrics.record_result(wrapped)
            return wrapped
        cur = self._redirects.get(origin, origin)
        rec = self._routes[cur]
        res = self.services[cur[0]]._results.get(cur[1])
        entry = self._pending_hedges.pop(origin, None)
        if res is None:
            if entry is not None:
                self._pending_hedges[origin] = entry
            return None
        hedged = False
        dup = entry.get("dup") if entry is not None else None
        if dup is not None:
            drec = self._routes[dup]
            dres = self.services[dup[0]]._results.get(dup[1])
            if dres is None:
                if self.services[dup[0]].cancel(Ticket(dup[1])):
                    self.shard_metrics.record_hedge_cancelled()
            else:
                finish = (rec["local_arrival"] + res.wait_seconds
                          + res.solve_seconds)
                dfinish = (drec["local_arrival"] + dres.wait_seconds
                           + dres.solve_seconds)
                d_ok = dres.status == "completed"
                p_ok = res.status == "completed"
                if d_ok and (not p_ok or dfinish < finish):
                    cur, rec, res = dup, drec, dres
                    hedged = True
                else:
                    self.shard_metrics.record_hedge_lost()
        return self._wrap_chaos(origin, cur, rec, res, hedged)

    def _wrap_chaos(self, origin: tuple[int, int], cur: tuple[int, int],
                    rec: dict, res: ServiceResult,
                    hedged: bool) -> ServiceResult:
        """Stamp the fault accounting onto a redeemed chaos result."""
        ret_bytes = 0
        ret_seconds = 0.0
        if cur[0] != rec["home"] and res.status == "completed":
            ret_bytes = _vector_bytes(rec["n"])
            ret_seconds = self.network.transfer_time(ret_bytes)
        hedged = hedged or bool(rec.get("hedged"))
        displaced = rec["failovers"] > 0 or hedged
        wrapped = replace(
            res, request_id=origin[1], rank=cur[0], home_rank=rec["home"],
            net_seconds=rec["net"] + ret_seconds,
            retries=rec["retries"], failovers=rec["failovers"],
            hedged=hedged,
            original_rank=rec["original_rank"] if displaced else -1)
        self._wrapped[origin] = wrapped
        self.events.record("router", "deliver", time=self.now,
                           ticket=origin[1], rank=origin[0],
                           detail=wrapped.status)
        if hedged and wrapped.status == "completed":
            self.shard_metrics.record_hedge_won()
        self.shard_metrics.record_result(
            wrapped, return_bytes=ret_bytes, return_seconds=ret_seconds)
        return wrapped

    # -- driving the fleet --------------------------------------------------
    def step(self) -> bool:
        """One worker step on each rank; False when the whole fleet idles."""
        progress = False
        for svc in self.services:
            progress |= svc.step()
        return progress

    def run(self) -> None:
        """Drive every rank's worker loop until all queues drain.

        Under a fault plan this drives the full failure lifecycle instead:
        heartbeat ticks, failover, re-warm, and hedging, until every rank
        is back up and every queue has drained.
        """
        if self._tracker is not None:
            self._finish_chaos()
            return
        while self.step():
            pass

    # -- the fault lifecycle ------------------------------------------------
    def _drain_alive(self, horizon: float) -> None:
        """``drain_until(horizon)`` on every routable rank; dead and
        rejoining ranks execute nothing."""
        for rank, rec in enumerate(self._tracker.ranks):
            if rec.routable:
                self.services[rank].drain_until(horizon)

    def _advance_to(self, horizon: float) -> None:
        """Advance the fault lifecycle through every heartbeat tick up to
        *horizon*, draining routable ranks between ticks."""
        while self._tracker.next_tick() <= horizon:
            tau = self._tracker.next_tick()
            self._drain_alive(tau)
            events = self._tracker.tick(tau)
            self._apply_transitions(events, tau)
            self._fire_hedges(tau)
            self._settle_hedges(tau)
        self._drain_alive(horizon)

    def _finish_chaos(self) -> None:
        """Tick through the rest of the plan, then drain the fleet.

        Ticks continue past the last arrival until every plan window has
        passed *and* every rank has walked back to ``up`` (bounded: after
        the plan's end every probe succeeds and each re-warm deadline is
        finite), so post-recovery work lands on the full fleet.
        """
        end = self._plan.end_time()
        while (self._tracker.next_tick() <= end
               or any(rec.state != UP for rec in self._tracker.ranks)):
            self._advance_to(self._tracker.next_tick())
        for svc in self.services:
            svc.run()

    def _apply_transitions(self, events: list[dict], tau: float) -> None:
        """React to health transitions: ring membership, failover, re-warm."""
        for ev in events:
            rank = ev["rank"]
            self.events.record("router", "health", time=tau, rank=rank,
                               detail=ev["state"])
            if ev["state"] == DOWN:
                self._on_rank_down(rank, tau)
            elif ev["state"] == REJOINING:
                self._start_rewarm(rank, tau)
            elif ev["state"] == UP and rank not in self.ring.members:
                # Re-warm done: breaker closes, the rank takes keys again.
                self.ring.add(rank)
                svc = self.services[rank]
                svc.now = max(svc.now, tau)

    def _on_rank_down(self, rank: int, tau: float) -> None:
        """A rank died: evacuate, retract, wipe its state, fail work over.

        The death instant is the start of the plan window that tripped the
        detector (the rank actually stopped there; the tracker only *sees*
        it ``down_after`` missed probes later).  Everything the rank held
        is displaced: queued requests are evacuated, and already-scheduled
        results whose modeled finish lies past the death instant are
        retracted — the clairvoyant worker had charged work the crash
        threw away.  Its hierarchy cache and shipped-operator marks are
        wiped, so a later re-forward must re-ship.
        """
        self.ring.remove(rank)
        svc = self.services[rank]
        death = max((s for s, e in self._plan.down_windows(rank)
                     if s <= tau), default=tau)
        displaced: list[tuple[tuple[int, int], str]] = []
        for old_key in sorted(k for k in self._routes if k[0] == rank):
            rec = self._routes[old_key]
            if rec.get("origin") in self._wrapped:
                continue
            res = svc._results.get(old_key[1])
            if res is None or res.status != "completed":
                # Queued (evacuated below) or already terminal: keep.
                continue
            finish = (rec.get("local_arrival", 0.0) + res.wait_seconds
                      + res.solve_seconds)
            if finish > death:
                svc.retract(old_key[1])
                displaced.append((old_key, "in_flight"))
        for req in svc.evacuate():
            displaced.append(((rank, req.id), "queued"))
        svc.cache.drop_all()
        self._shipped = {(r, f) for r, f in self._shipped if r != rank}
        svc.now = min(svc.now, death)
        for old_key, kind in displaced:
            rec = self._routes.pop(old_key)
            hedge_origin = rec.get("hedge_of")
            if hedge_origin is not None:
                # A hedge duplicate died with its rank: the primary still
                # stands, so the dup is simply cancelled, never failed over.
                entry = self._pending_hedges.get(hedge_origin)
                if entry is not None and entry.get("dup") == old_key:
                    entry["dup"] = None
                self.shard_metrics.record_hedge_cancelled()
                continue
            self.shard_metrics.record_displaced(kind)
            self._failover(
                rec, tau, cause=f"rank {rank} down at t={tau:.6g} ({kind})")

    def _failover(self, rec: dict, tau: float, cause: str) -> None:
        """Re-route one displaced request to a ring successor.

        Each attempt is charged the plan's retry-policy backoff stall plus
        the re-forward (and re-ship, if the target never saw the operator)
        through the network model; the redirect map keeps the original
        ticket redeemable.  Past the retry budget — or with an empty ring —
        the request resolves to a structured ``failed`` result (unless a
        live hedge duplicate can be promoted to take its place).
        """
        origin = rec["origin"]
        policy = self._plan.retry
        attempts = rec["retries"]
        members = self.ring.members
        if attempts >= policy.max_retries or not members:
            entry = self._pending_hedges.pop(origin, None)
            if entry is not None and entry.get("dup") is not None:
                # The hedge duplicate survives: promote it to primary.
                dup = entry["dup"]
                drec = self._routes[dup]
                drec.pop("hedge_of", None)
                drec["hedged"] = True
                drec["retries"] = rec["retries"]
                drec["failovers"] = rec["failovers"]
                self._redirects[origin] = dup
                self.events.record("router", "failover", time=tau,
                                   ticket=origin[1], rank=origin[0],
                                   detail=f"hedge promoted on rank{dup[0]}")
                return
            reason = ("no routable ranks" if not members else
                      f"retry budget exhausted after {attempts} retries")
            self._router_results[origin] = ServiceResult(
                x=None, iterations=0, residuals=[], converged=False,
                degraded=True, degraded_reason=f"failed: {cause}; {reason}",
                status="failed", request_id=origin[1],
                priority=rec["req"]["priority"], rank=-1,
                home_rank=rec["home"], retries=rec["retries"],
                failovers=rec["failovers"],
                original_rank=rec["original_rank"])
            self.shard_metrics.record_failed()
            return
        backoff = self.network.retry_penalty(
            policy.timeout, attempts, policy.backoff)
        candidates = self.ring.successors(
            rec["key"], min(self.config.replicas, len(members)))
        target = self._pick_rank(rec["key"], rec["nnz"], candidates)
        nbytes, fwd_seconds, shipped = self._ship_charge(
            target, rec["n"], rec["nnz"], rec["exact"])
        req = rec["req"]
        new_arrival = tau + backoff + fwd_seconds
        ticket = self.services[target].submit(
            req["A"], req["b"], config=req["config"], method=req["method"],
            tol=req["tol"], maxiter=req["maxiter"],
            priority=req["priority"], timeout=req["timeout"],
            arrival=new_arrival)
        new_key = (target, ticket.id)
        self._routes[new_key] = dict(
            rec, rank=target, retries=attempts + 1,
            failovers=rec["failovers"] + 1,
            net=rec["net"] + backoff + fwd_seconds,
            local_arrival=new_arrival)
        self._redirects[origin] = new_key
        self.events.record("router", "failover", time=tau,
                           ticket=origin[1], rank=origin[0],
                           detail=f"attempt {attempts + 1} to rank{target}")
        self.shard_metrics.record_failover(
            backoff_seconds=backoff, forward_bytes=nbytes,
            forward_seconds=fwd_seconds, shipped=shipped)

    def _start_rewarm(self, rank: int, tau: float) -> None:
        """A dead rank answered a probe: re-warm its cache before rejoin.

        The ``rewarm_top_k`` hottest pattern fingerprints (by routed
        traffic) that a surviving routable rank still holds are copied
        into the rejoining rank's cache — frozen hierarchies, so sharing
        the objects is safe — and the full operator bytes of every copied
        hierarchy level are charged to the interconnect as bulk state
        transfers.  The rank re-enters the ring only once the transfer
        completes (``rejoin_until``); with nothing to copy it rejoins cold
        at the next successful probe.
        """
        svc = self.services[rank]
        entries = 0
        total_bytes = 0
        seconds = 0.0
        if self.config.rewarm_top_k > 0:
            hot = sorted(self._pattern_traffic.items(),
                         key=lambda kv: (-kv[1], kv[0]))
            donors = [r for r in range(self.config.ranks)
                      if r != rank and self._tracker.ranks[r].routable]
            for pkey, _count in hot:
                if entries >= self.config.rewarm_top_k:
                    break
                for donor in donors:
                    found = self.services[donor].cache.peek_pattern(pkey)
                    if found is None:
                        continue
                    exact, hier = found
                    svc.cache.seed(exact, pkey, hier)
                    self._shipped.add((rank, exact))
                    nbytes = sum(_operator_bytes(n, nnz)
                                 for n, nnz in hier.level_sizes())
                    total_bytes += nbytes
                    seconds += self.network.state_transfer_time(nbytes)
                    entries += 1
                    break
        self._tracker.set_rejoin_until(rank, tau + seconds)
        self.events.record("router", "rewarm", time=tau, rank=rank,
                           detail=f"entries={entries}")
        self.shard_metrics.record_rewarm(
            entries=entries, nbytes=total_bytes, seconds=seconds)

    def _fire_hedges(self, tau: float) -> None:
        """Duplicate overdue interactive requests to one replica each.

        A registered request whose result is not in hand by its deadline
        (unresolved, or scheduled to finish only after this tick) gets one
        duplicate on the best-scored other ring member, charged a normal
        forward hop.  Firing happens at heartbeat ticks so the hedge
        schedule is a pure function of the (plan, workload) pair.
        """
        if self.config.hedge_delay is None:
            return
        for origin in sorted(self._pending_hedges):
            entry = self._pending_hedges[origin]
            if entry["fired"] or entry["deadline"] > tau:
                continue
            if origin in self._router_results:
                continue
            cur = self._redirects.get(origin, origin)
            rec = self._routes.get(cur)
            if rec is None:
                continue
            res = self.services[cur[0]]._results.get(cur[1])
            if res is not None:
                finish = (rec["local_arrival"] + res.wait_seconds
                          + res.solve_seconds)
                if res.status != "completed" or finish <= tau:
                    del self._pending_hedges[origin]
                    continue
            members = self.ring.members
            cands = [c for c in self.ring.successors(
                rec["key"], min(max(self.config.replicas, 2), len(members)))
                if c != cur[0]]
            if not cands:
                continue
            target = self._pick_rank(rec["key"], rec["nnz"], cands)
            nbytes, fwd_seconds, shipped = self._ship_charge(
                target, rec["n"], rec["nnz"], rec["exact"])
            req = rec["req"]
            ticket = self.services[target].submit(
                req["A"], req["b"], config=req["config"],
                method=req["method"], tol=req["tol"],
                maxiter=req["maxiter"], priority=req["priority"],
                timeout=req["timeout"], arrival=tau + fwd_seconds)
            dup = (target, ticket.id)
            self._routes[dup] = dict(
                rec, rank=target, net=fwd_seconds,
                local_arrival=tau + fwd_seconds, hedge_of=origin)
            entry.update(fired=True, dup=dup)
            self.events.record("router", "hedge", time=tau,
                               ticket=origin[1], rank=origin[0],
                               detail=f"dup on rank{target}")
            self.shard_metrics.record_hedge_issued(
                forward_bytes=nbytes, forward_seconds=fwd_seconds,
                shipped=shipped)

    def _settle_hedges(self, tau: float) -> None:
        """Cancel the losing copy of any hedge race decided by *tau*.

        The moment one copy's modeled finish has passed while the other is
        still queued, the queued loser is cancelled — its admission slot
        frees *now*, on the modeled clock, not at redemption time.  Races
        where both copies already ran are scored at redemption.
        """
        for origin in sorted(self._pending_hedges):
            entry = self._pending_hedges[origin]
            dup = entry.get("dup")
            if dup is None:
                continue
            cur = self._redirects.get(origin, origin)
            prec = self._routes.get(cur)
            pres = self.services[cur[0]]._results.get(cur[1])
            drec = self._routes.get(dup)
            dres = self.services[dup[0]]._results.get(dup[1])
            if (pres is not None and prec is not None and dres is None
                    and pres.status == "completed"
                    and prec["local_arrival"] + pres.wait_seconds
                    + pres.solve_seconds <= tau):
                self.services[dup[0]].cancel(Ticket(dup[1]))
            elif (dres is not None and drec is not None and pres is None
                    and dres.status == "completed"
                    and drec["local_arrival"] + dres.wait_seconds
                    + dres.solve_seconds <= tau):
                self.services[cur[0]].cancel(Ticket(cur[1]))

    def drain_until(self, horizon: float) -> None:
        """Run all fleet work provably unaffected by arrivals past *horizon*."""
        for svc in self.services:
            svc.drain_until(horizon)

    def run_workload(self, workload: Workload) -> list[ServiceResult]:
        """Replay a generated workload through the router, in arrival order.

        Arrivals are interleaved with draining (``drain_until`` up to each
        arrival) so the router and autoscaler observe live queue depths —
        the same depths a long-running service would see.  The clairvoyant
        batch guard makes this interleaving bit-identical to submitting
        everything up front; with ``ranks=1`` and shedding/autoscale off
        the up-front path is taken directly, which keeps the single rank's
        metrics byte-identical to a plain ``SolveService`` run.
        """
        spec = workload.spec
        if self._tracker is not None:
            # Fault lifecycle: heartbeat ticks interleave with arrivals so
            # deaths, failovers, and rejoins land between submissions at
            # their modeled times.
            tickets = []
            for item in workload.items:
                self._advance_to(item.arrival)
                tickets.append(self.submit(
                    workload.matrices[item.matrix_index], item.b,
                    method=spec.method, tol=spec.tol, maxiter=spec.maxiter,
                    priority=item.priority, timeout=spec.timeout,
                    arrival=item.arrival))
            self._finish_chaos()
            return [self.result(t, wait=False) for t in tickets]
        interleave = (self.config.ranks > 1
                      or self.config.shed_depth is not None
                      or self.config.autoscale)
        tickets = []
        for item in workload.items:
            if interleave:
                self.drain_until(item.arrival)
            tickets.append(self.submit(
                workload.matrices[item.matrix_index], item.b,
                method=spec.method, tol=spec.tol, maxiter=spec.maxiter,
                priority=item.priority, timeout=spec.timeout,
                arrival=item.arrival))
        self.run()
        return [self.result(t, wait=False) for t in tickets]

    # -- reporting ----------------------------------------------------------
    def _faults_snapshot(self) -> dict | None:
        """The ``faults`` metrics section, or ``None`` when no lifecycle
        is active (its absence keeps no-fault snapshots byte-identical)."""
        if self._tracker is None:
            return None
        return self.shard_metrics.faults_snapshot(
            self._tracker.snapshot(self.now))

    def metrics_snapshot(self) -> dict:
        """Sharded report: aggregate + locality + per-rank snapshots."""
        return self.shard_metrics.snapshot(
            per_rank=[svc.metrics_snapshot() for svc in self.services],
            virtual_seconds=self.now,
            active_ranks=len(self._active),
            replicas=self.config.replicas,
            faults=self._faults_snapshot())

    def metrics_json(self) -> str:
        """Deterministic JSON of :meth:`metrics_snapshot`."""
        return self.shard_metrics.to_json(
            per_rank=[svc.metrics_snapshot() for svc in self.services],
            virtual_seconds=self.now,
            active_ranks=len(self._active),
            replicas=self.config.replicas,
            faults=self._faults_snapshot())
