"""Seeded, deterministic workload generator for the solve service.

A :class:`WorkloadSpec` describes a request stream declaratively — arrival
rate, request count, a weighted mix of matrices from :mod:`repro.problems`,
a priority mix, optional per-request deadlines — and serializes to/from
JSON (``python -m repro serve-bench --workload W.json``).  :func:`build`
materializes it into a :class:`Workload`: concrete matrices, right-hand
sides, arrival times, and priorities, all drawn from **one** RNG seeded by
``spec.seed`` in a fixed order, so a given spec always produces the exact
same traffic.  That determinism is what makes the service's metrics
snapshot reproducible end to end (the CI smoke step runs the same workload
twice and diffs the JSON).

Arrivals follow a Poisson process (exponential inter-arrival times at
``rate`` requests per modeled second); ``rate: null`` means every request
arrives at t=0 (a closed batch — the coalescing best case).

Time-stepping sequences: with ``steps > 1`` every problem in the mix
becomes a sequence of ``steps`` operators sharing one sparsity pattern —
step *t* scales the base values by ``1 + step_shift * t`` (a
time-dependent coefficient).  The stream walks the steps in arrival
order, so the service's hierarchy cache sees a cold build for step 0 and
same-pattern updates after — the numeric-resetup workload
(``ServiceMetrics.refresh_hits``).

Named presets (``tiny``, ``small``, ``mixed``, ``timestep``) cover the
CLI and CI without shipping JSON files.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from ..problems import (
    anisotropic_2d,
    laplace_2d_5pt,
    laplace_3d_7pt,
    laplace_3d_27pt,
)
from ..sparse.csr import CSRMatrix
from .request import PRIORITIES

__all__ = ["WorkloadSpec", "WorkloadItem", "Workload", "build",
           "named_workload", "widened", "NAMED_WORKLOADS"]

def _laplace_3d_27pt_generic(n: int) -> CSRMatrix:
    """27-point Laplacian with seeded symmetric off-diagonal jitter.

    The uniform stencil's interpolation-weight ratios are exact decimals
    that collide with the truncation threshold, so any value update flips
    the pattern and defeats numeric resetup.  A few percent of symmetric
    jitter makes every threshold comparison generic — the time-stepping
    workload's operators then refresh on the fast path (see
    docs/performance_model.md).
    """
    base = laplace_3d_27pt(n)
    rng = np.random.default_rng(1234)
    g = rng.random(base.nrows)
    rid = base.row_ids()
    offdiag = base.indices != rid
    fac = np.where(offdiag, 1.0 + 0.02 * (g[rid] + g[base.indices]), 1.0)
    return CSRMatrix(base.shape, base.indptr.copy(), base.indices.copy(),
                     base.data * fac)


#: Matrix generators a spec may reference by name.
PROBLEM_BUILDERS = {
    "lap2d": laplace_2d_5pt,
    "lap3d7": laplace_3d_7pt,
    "lap3d27": laplace_3d_27pt,
    "lap3d27g": _laplace_3d_27pt_generic,
    "anisotropic": anisotropic_2d,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative, JSON-serializable description of a request stream."""

    seed: int = 0
    requests: int = 16
    #: Mean arrival rate, requests per modeled second; ``None`` -> all at 0.
    rate: float | None = None
    #: Weighted matrix mix: ``[{"problem": name, "size": n, "weight": w}]``.
    problems: tuple[dict, ...] = (
        {"problem": "lap2d", "size": 16, "weight": 1.0},
    )
    #: Weighted priority mix over :data:`repro.serve.request.PRIORITIES`.
    priorities: dict = field(default_factory=lambda: {"batch": 1.0})
    #: Per-request deadline in modeled seconds (``None`` -> no timeout).
    timeout: float | None = None
    method: str = "amg"
    tol: float = 1e-7
    maxiter: int | None = None
    #: Time-stepping: each problem becomes ``steps`` same-pattern
    #: operators, step *t* scaling the base values by
    #: ``1 + step_shift * t``; the stream visits steps in arrival order.
    steps: int = 1
    step_shift: float = 0.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive (or null)")
        if not self.problems:
            raise ValueError("problems mix must not be empty")
        for entry in self.problems:
            name = entry.get("problem")
            if name not in PROBLEM_BUILDERS:
                raise ValueError(
                    f"unknown problem {name!r}; choose from "
                    f"{sorted(PROBLEM_BUILDERS)}")
        for prio in self.priorities:
            if prio not in PRIORITIES:
                raise ValueError(
                    f"unknown priority {prio!r}; choose from {PRIORITIES}")

    # -- (de)serialization -------------------------------------------------
    def to_json(self) -> str:
        d = asdict(self)
        d["problems"] = list(d["problems"])
        return json.dumps(d, indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadSpec":
        d = dict(d)
        if "problems" in d:
            d["problems"] = tuple(dict(p) for p in d["problems"])
        return cls(**d)

    @classmethod
    def from_json_file(cls, path) -> "WorkloadSpec":
        with open(path) as f:
            return cls.from_dict(json.load(f))


@dataclass
class WorkloadItem:
    """One generated request: when it arrives, against what, with what b."""

    arrival: float
    matrix_index: int
    b: np.ndarray
    priority: str


@dataclass
class Workload:
    """A materialized request stream ready to feed a ``SolveService``."""

    spec: WorkloadSpec
    #: Distinct operators; items reference them by index so the service
    #: sees genuinely shared matrices (same object, same fingerprint).
    matrices: list[CSRMatrix]
    items: list[WorkloadItem]


def build(spec: WorkloadSpec) -> Workload:
    """Materialize *spec* deterministically (single seeded RNG)."""
    rng = np.random.default_rng(spec.seed)
    base = [PROBLEM_BUILDERS[p["problem"]](int(p["size"]))
            for p in spec.problems]
    if spec.steps > 1:
        # Same-pattern sequence per problem: index (m, t) -> m*steps + t.
        matrices = [
            CSRMatrix(M.shape, M.indptr.copy(), M.indices.copy(),
                      M.data * (1.0 + spec.step_shift * t)) if t else M
            for M in base for t in range(spec.steps)
        ]
    else:
        matrices = base
    weights = np.array([float(p.get("weight", 1.0)) for p in spec.problems])
    weights = weights / weights.sum()
    prio_names = sorted(spec.priorities)
    prio_w = np.array([float(spec.priorities[p]) for p in prio_names])
    prio_w = prio_w / prio_w.sum()

    items: list[WorkloadItem] = []
    t = 0.0
    for i in range(spec.requests):
        if spec.rate is not None:
            t += float(rng.exponential(1.0 / spec.rate))
        m = int(rng.choice(len(base), p=weights))
        if spec.steps > 1:
            # Steps advance monotonically through the stream, so every
            # problem's operator sequence arrives in time order.
            step = (i * spec.steps) // spec.requests
            m = m * spec.steps + step
        prio = prio_names[int(rng.choice(len(prio_names), p=prio_w))]
        b = rng.standard_normal(matrices[m].nrows)
        items.append(WorkloadItem(arrival=t, matrix_index=m, b=b,
                                  priority=prio))
    return Workload(spec=spec, matrices=matrices, items=items)


def widened(spec: WorkloadSpec, *, copies: int = 4,
            requests: int | None = None) -> WorkloadSpec:
    """Widen *spec*'s key space for sharded runs.

    Replicates every problem entry at ``copies`` consecutive sizes
    (``size``, ``size+1``, ...), keeping weights, so the stream carries
    ``copies``x as many distinct fingerprints.  A consistent-hash ring can
    only balance as many ranks as there are keys — the three-fingerprint
    ``mixed`` preset saturates at three ranks, but its widened form spreads
    over a whole fleet.  ``requests`` optionally rescales the stream length
    to keep per-key traffic comparable.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    problems = tuple(
        {**p, "size": int(p["size"]) + d}
        for p in spec.problems for d in range(copies))
    d = {**asdict(spec), "problems": problems}
    if requests is not None:
        d["requests"] = requests
    return WorkloadSpec.from_dict(d)


#: CLI-addressable presets.  ``tiny`` is the CI smoke workload: small
#: enough to run in seconds, mixed enough to exercise coalescing across
#: two fingerprints and both priority classes.  ``fleet`` is the sharded
#: tier's scaling workload: a closed batch (every request at t=0) over
#: many comparable-cost fingerprints, so the ring has enough keys to
#: balance 8+ ranks and the makespan measures pure fleet throughput.
NAMED_WORKLOADS: dict[str, WorkloadSpec] = {
    "tiny": WorkloadSpec(
        seed=0, requests=12, rate=2000.0,
        problems=(
            {"problem": "lap2d", "size": 12, "weight": 3.0},
            {"problem": "lap2d", "size": 14, "weight": 1.0},
        ),
        priorities={"interactive": 1.0, "batch": 3.0},
    ),
    "small": WorkloadSpec(
        seed=1, requests=32, rate=1000.0,
        problems=(
            {"problem": "lap2d", "size": 24, "weight": 2.0},
            {"problem": "lap3d7", "size": 8, "weight": 1.0},
        ),
        priorities={"batch": 1.0},
    ),
    "mixed": WorkloadSpec(
        seed=2, requests=48, rate=500.0,
        problems=(
            {"problem": "lap2d", "size": 24, "weight": 2.0},
            {"problem": "lap3d27", "size": 8, "weight": 1.0},
            {"problem": "anisotropic", "size": 20, "weight": 1.0},
        ),
        priorities={"interactive": 1.0, "batch": 2.0, "bulk": 1.0},
    ),
    "fleet": WorkloadSpec(
        seed=4, requests=192, rate=None,
        problems=tuple(
            [{"problem": "lap2d", "size": s, "weight": 1.0}
             for s in range(20, 36)]
            + [{"problem": "anisotropic", "size": s, "weight": 1.0}
               for s in range(20, 28)]
        ),
        priorities={"batch": 1.0},
    ),
    # Implicit time stepping: one pattern, sixteen requests walking eight
    # coefficient steps — cold setup once, then numeric resetup
    # (refresh_hits) for every new step and exact cache hits in between.
    "timestep": WorkloadSpec(
        seed=3, requests=16, rate=1000.0,
        problems=({"problem": "lap3d27g", "size": 8, "weight": 1.0},),
        priorities={"batch": 1.0},
        steps=8, step_shift=0.02,
    ),
}


def named_workload(name: str, *, seed: int | None = None) -> WorkloadSpec:
    """A preset spec by name, optionally reseeded."""
    try:
        spec = NAMED_WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(NAMED_WORKLOADS)} or pass a JSON file path") from None
    if seed is not None and seed != spec.seed:
        spec = WorkloadSpec.from_dict({**asdict(spec), "seed": seed})
    return spec
