"""From-scratch sparse-matrix substrate: CSR storage and the paper's kernels.

Everything AMG needs lives here — SpMV, SpGEMM (several instrumented
variants), transpose, CF reordering, the Galerkin triple product — built on
numpy arrays only.  scipy.sparse appears solely in test oracles.
"""

from .accumulator import SparseAccumulator, spgemm_gustavson
from .blas1 import (
    axpy,
    axpy_multi,
    dot,
    dot_multi,
    norm2,
    norm2_multi,
    scale,
    scale_multi,
    vcopy,
    vcopy_multi,
    vzero,
    vzero_multi,
    waxpby,
    waxpby_multi,
)
from .csr import CSRMatrix
from .io import load_matrix_market, load_npz, save_matrix_market, save_npz
from .ops import (
    counts_from_indptr,
    gather_range_indices,
    indptr_from_counts,
    prefix_sum_partition,
    row_ids_from_indptr,
    segment_sum,
)
from .reorder import (
    cf_permutation,
    compose_cf_interpolation,
    extract_cf_blocks,
    partition_rows_by_category,
    permute_matrix,
    permute_rows,
)
from .spgemm import (
    SpGEMMPlan,
    expansion_size,
    sp_add,
    spgemm,
    spgemm_numeric,
    spgemm_symbolic,
)
from .spmv import (
    residual,
    residual_multi,
    spmv,
    spmv_dot_fused,
    spmv_identity_block,
    spmv_identity_block_multi,
    spmv_identity_block_transposed,
    spmv_identity_block_transposed_multi,
    spmv_multi,
    spmv_transposed,
    spmv_transposed_multi,
)
from .transpose import balanced_nnz_partition, transpose
from .triple_product import (
    fusion_flop_counts,
    rap_cf_block,
    rap_fused,
    rap_hypre_fusion,
    rap_unfused,
)

__all__ = [
    "CSRMatrix",
    "load_matrix_market",
    "load_npz",
    "save_matrix_market",
    "save_npz",
    "SparseAccumulator",
    "spgemm_gustavson",
    "axpy",
    "axpy_multi",
    "dot",
    "dot_multi",
    "norm2",
    "norm2_multi",
    "scale",
    "scale_multi",
    "vcopy",
    "vcopy_multi",
    "vzero",
    "vzero_multi",
    "waxpby",
    "waxpby_multi",
    "counts_from_indptr",
    "gather_range_indices",
    "indptr_from_counts",
    "prefix_sum_partition",
    "row_ids_from_indptr",
    "segment_sum",
    "cf_permutation",
    "compose_cf_interpolation",
    "extract_cf_blocks",
    "partition_rows_by_category",
    "permute_matrix",
    "permute_rows",
    "SpGEMMPlan",
    "expansion_size",
    "sp_add",
    "spgemm",
    "spgemm_numeric",
    "spgemm_symbolic",
    "residual",
    "residual_multi",
    "spmv",
    "spmv_dot_fused",
    "spmv_identity_block",
    "spmv_identity_block_multi",
    "spmv_identity_block_transposed",
    "spmv_identity_block_transposed_multi",
    "spmv_multi",
    "spmv_transposed",
    "spmv_transposed_multi",
    "balanced_nnz_partition",
    "transpose",
    "fusion_flop_counts",
    "rap_cf_block",
    "rap_fused",
    "rap_hypre_fusion",
    "rap_unfused",
]
