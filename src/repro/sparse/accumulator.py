"""The marker-array sparse accumulator (SPA) and the literal Gustavson SpGEMM.

§3.1.1 presents this idiom as the building block of SpGEMM, strength-matrix
creation and interpolation construction: an auxiliary ``marker`` array maps a
global column index to its position in the output row being accumulated
(``marker[k] < C.rowptr[i]`` means column *k* has not been touched in row
*i* yet).  The array is in effect a perfect hash through which set-union-
with-add is performed.

:func:`spgemm_gustavson` is a line-by-line transcription of the paper's
pseudo code.  It is the *reference* implementation: the vectorized
production kernel (:func:`repro.sparse.spgemm.spgemm`) is validated against
it (and against scipy) in the tests.  Being a Python row loop it is only
used on small matrices.

:class:`SparseAccumulator` exposes the same idiom reusable across kernels
(the paper notes it also appears in coarsening and interpolation).
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import count
from .csr import CSRMatrix

__all__ = ["SparseAccumulator", "spgemm_gustavson"]


class SparseAccumulator:
    """Accumulate sparse vectors into one sparse output row.

    Usage::

        spa = SparseAccumulator(ncols)
        spa.begin_row()
        spa.scatter(cols, vals)     # repeatable
        cols, vals = spa.finish_row()

    ``begin_row``/``finish_row`` are O(nnz of the row); the marker array is
    never cleared wholesale (the ``marker[k] < row_start`` trick makes stale
    entries self-invalidating), exactly as in the paper's pseudo code.
    """

    def __init__(self, ncols: int) -> None:
        self.marker = np.full(ncols, -1, dtype=np.int64)
        self.cols: list[int] = []
        self.vals: list[float] = []
        self._row_start = 0
        self.branches_executed = 0

    def begin_row(self) -> None:
        self._row_start = len(self.cols)

    def scatter(self, cols, vals) -> None:
        """Accumulate ``vals`` into columns ``cols`` of the current row."""
        marker = self.marker
        start = self._row_start
        out_cols, out_vals = self.cols, self.vals
        for k, v in zip(cols, vals):
            self.branches_executed += 1
            if marker[k] < start:
                marker[k] = len(out_cols)
                out_cols.append(int(k))
                out_vals.append(float(v))
            else:
                out_vals[marker[k]] += float(v)

    def finish_row(self) -> tuple[np.ndarray, np.ndarray]:
        cols = np.array(self.cols[self._row_start :], dtype=np.int64)
        vals = np.array(self.vals[self._row_start :], dtype=np.float64)
        return cols, vals

    def result(self, shape: tuple[int, int], indptr: np.ndarray) -> CSRMatrix:
        return CSRMatrix(
            shape,
            indptr,
            np.array(self.cols, dtype=np.int64),
            np.array(self.vals, dtype=np.float64),
        )


def spgemm_gustavson(A: CSRMatrix, B: CSRMatrix, *, preallocate: bool = True) -> CSRMatrix:
    """Literal Gustavson SpGEMM with a marker-array accumulator.

    ``preallocate=True`` follows the paper's one-pass scheme (append into a
    pre-allocated chunk, sizes discovered on the fly); ``False`` runs a
    symbolic counting pass first, modeling the traditional two-pass scheme.
    Both produce identical results; only the counted work differs.
    """
    if A.ncols != B.nrows:
        raise ValueError("dimension mismatch")
    n, m = A.nrows, B.ncols
    spa = SparseAccumulator(m)
    indptr = np.zeros(n + 1, dtype=np.int64)
    symbolic_branches = 0

    if not preallocate:
        # Symbolic pass: count row sizes by running the accumulator without
        # values, reading the index structure of both inputs.
        sym = SparseAccumulator(m)
        for i in range(n):
            sym.begin_row()
            for t in range(A.indptr[i], A.indptr[i + 1]):
                j = A.indices[t]
                cols = B.indices[B.indptr[j] : B.indptr[j + 1]]
                sym.scatter(cols, np.zeros(len(cols)))
            sym.finish_row()
        symbolic_branches = sym.branches_executed

    for i in range(n):
        spa.begin_row()
        for t in range(A.indptr[i], A.indptr[i + 1]):
            j = A.indices[t]
            lo, hi = B.indptr[j], B.indptr[j + 1]
            spa.scatter(B.indices[lo:hi], A.data[t] * B.data[lo:hi])
        indptr[i + 1] = len(spa.cols)

    count(
        "spgemm.gustavson_reference",
        flops=2 * spa.branches_executed,
        branches=float(spa.branches_executed + symbolic_branches),
        parallel=False,
    )
    return spa.result((n, m), indptr).sort_indices()
