"""Instrumented level-1 vector operations.

The solve phase's ``BLAS1`` bucket in Fig. 5 (vector scaling, addition,
inner products).  Each helper performs the numpy operation and counts the
streaming traffic of a native implementation.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import VAL_BYTES, count

__all__ = ["dot", "norm2", "axpy", "scale", "waxpby", "vcopy", "vzero"]


def dot(x: np.ndarray, y: np.ndarray) -> float:
    n = len(x)
    count("blas1.dot", flops=2 * n, bytes_read=2 * n * VAL_BYTES)
    return float(np.dot(x, y))


def norm2(x: np.ndarray) -> float:
    n = len(x)
    count("blas1.norm2", flops=2 * n, bytes_read=n * VAL_BYTES)
    return float(np.sqrt(np.dot(x, x)))


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y += alpha * x`` (in place, returns y)."""
    n = len(x)
    y += alpha * x
    count("blas1.axpy", flops=2 * n, bytes_read=2 * n * VAL_BYTES, bytes_written=n * VAL_BYTES)
    return y


def waxpby(alpha: float, x: np.ndarray, beta: float, y: np.ndarray) -> np.ndarray:
    """``w = alpha*x + beta*y`` (new vector)."""
    n = len(x)
    count("blas1.waxpby", flops=3 * n, bytes_read=2 * n * VAL_BYTES, bytes_written=n * VAL_BYTES)
    return alpha * x + beta * y


def scale(alpha: float, x: np.ndarray) -> np.ndarray:
    """``x *= alpha`` (in place, returns x)."""
    n = len(x)
    x *= alpha
    count("blas1.scal", flops=n, bytes_read=n * VAL_BYTES, bytes_written=n * VAL_BYTES)
    return x


def vcopy(x: np.ndarray) -> np.ndarray:
    n = len(x)
    count("blas1.copy", bytes_read=n * VAL_BYTES, bytes_written=n * VAL_BYTES)
    return x.copy()


def vzero(n: int) -> np.ndarray:
    count("blas1.zero", bytes_written=n * VAL_BYTES)
    return np.zeros(n, dtype=np.float64)
