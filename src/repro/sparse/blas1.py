"""Instrumented level-1 vector operations.

The solve phase's ``BLAS1`` bucket in Fig. 5 (vector scaling, addition,
inner products).  Each helper performs the numpy operation and counts the
streaming traffic of a native implementation.

The ``*_multi`` variants operate on ``(n, k)`` blocks — one fused pass over
*k* right-hand sides.  BLAS1 traffic is pure vector data, so there is no
matrix stream to amortize; batching still helps the machine model through
one kernel record (one launch on GPU models) per block instead of *k*.
Column *j* of every multi op is bit-identical to the single-vector op on
column *j*.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import VAL_BYTES, count

__all__ = [
    "dot", "norm2", "axpy", "scale", "waxpby", "vcopy", "vzero",
    "dot_multi", "norm2_multi", "axpy_multi", "scale_multi", "waxpby_multi",
    "vcopy_multi", "vzero_multi",
]


def dot(x: np.ndarray, y: np.ndarray) -> float:
    n = len(x)
    count("blas1.dot", flops=2 * n, bytes_read=2 * n * VAL_BYTES)
    return float(np.dot(x, y))


def norm2(x: np.ndarray) -> float:
    n = len(x)
    count("blas1.norm2", flops=2 * n, bytes_read=n * VAL_BYTES)
    return float(np.sqrt(np.dot(x, x)))


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y += alpha * x`` (in place, returns y)."""
    n = len(x)
    y += alpha * x
    count("blas1.axpy", flops=2 * n, bytes_read=2 * n * VAL_BYTES, bytes_written=n * VAL_BYTES)
    return y


def waxpby(alpha: float, x: np.ndarray, beta: float, y: np.ndarray) -> np.ndarray:
    """``w = alpha*x + beta*y`` (new vector)."""
    n = len(x)
    count("blas1.waxpby", flops=3 * n, bytes_read=2 * n * VAL_BYTES, bytes_written=n * VAL_BYTES)
    return alpha * x + beta * y


def scale(alpha: float, x: np.ndarray) -> np.ndarray:
    """``x *= alpha`` (in place, returns x)."""
    n = len(x)
    x *= alpha
    count("blas1.scal", flops=n, bytes_read=n * VAL_BYTES, bytes_written=n * VAL_BYTES)
    return x


def vcopy(x: np.ndarray) -> np.ndarray:
    n = len(x)
    count("blas1.copy", bytes_read=n * VAL_BYTES, bytes_written=n * VAL_BYTES)
    return x.copy()


def vzero(n: int) -> np.ndarray:
    count("blas1.zero", bytes_written=n * VAL_BYTES)
    return np.zeros(n, dtype=np.float64)


# ---------------------------------------------------------------------------
# Multiple right-hand sides
# ---------------------------------------------------------------------------

def _nk(X: np.ndarray) -> tuple[int, int]:
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D (n, k) block, got shape {X.shape}")
    return X.shape[0], X.shape[1]


def dot_multi(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Column-wise inner products; returns a length-``k`` array."""
    n, k = _nk(X)
    count("blas1.dot", flops=2 * n * k, bytes_read=2 * n * k * VAL_BYTES)
    out = np.empty(k)
    for j in range(k):
        # Contiguous copies so the reduction takes the same code path (and
        # produces the same bits) as dot() on a 1-D vector.
        out[j] = float(np.dot(np.ascontiguousarray(X[:, j]),
                              np.ascontiguousarray(Y[:, j])))
    return out


def norm2_multi(X: np.ndarray) -> np.ndarray:
    """Column-wise 2-norms; returns a length-``k`` array."""
    n, k = _nk(X)
    count("blas1.norm2", flops=2 * n * k, bytes_read=n * k * VAL_BYTES)
    out = np.empty(k)
    for j in range(k):
        xj = np.ascontiguousarray(X[:, j])
        out[j] = float(np.sqrt(np.dot(xj, xj)))
    return out


def axpy_multi(alpha, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """``Y += alpha * X`` in place; *alpha* is a scalar or per-column array."""
    n, k = _nk(X)
    Y += np.asarray(alpha) * X
    count("blas1.axpy", flops=2 * n * k, bytes_read=2 * n * k * VAL_BYTES,
          bytes_written=n * k * VAL_BYTES)
    return Y


def waxpby_multi(alpha, X: np.ndarray, beta, Y: np.ndarray) -> np.ndarray:
    """``W = alpha*X + beta*Y`` (new block); scalars or per-column arrays."""
    n, k = _nk(X)
    count("blas1.waxpby", flops=3 * n * k, bytes_read=2 * n * k * VAL_BYTES,
          bytes_written=n * k * VAL_BYTES)
    return np.asarray(alpha) * X + np.asarray(beta) * Y


def scale_multi(alpha, X: np.ndarray) -> np.ndarray:
    """``X *= alpha`` in place; *alpha* is a scalar or per-column array."""
    n, k = _nk(X)
    X *= np.asarray(alpha)
    count("blas1.scal", flops=n * k, bytes_read=n * k * VAL_BYTES,
          bytes_written=n * k * VAL_BYTES)
    return X


def vcopy_multi(X: np.ndarray) -> np.ndarray:
    n, k = _nk(X)
    count("blas1.copy", bytes_read=n * k * VAL_BYTES, bytes_written=n * k * VAL_BYTES)
    return X.copy()


def vzero_multi(n: int, k: int) -> np.ndarray:
    count("blas1.zero", bytes_written=n * k * VAL_BYTES)
    return np.zeros((n, k), dtype=np.float64)
