"""Compressed sparse row matrix, implemented from scratch on numpy arrays.

This is the library's own CSR type — the substrate every AMG kernel operates
on.  It deliberately mirrors the layout HYPRE uses (``rowptr`` /
``colidx`` / ``values`` in the paper's pseudo code): three flat arrays, rows
sorted by column index unless a kernel says otherwise.

scipy.sparse is *not* used anywhere in the library; tests convert through
:meth:`CSRMatrix.to_scipy` purely to cross-check results against an
independent implementation.
"""

from __future__ import annotations

import numpy as np

from .ops import gather_range_indices, indptr_from_counts, row_ids_from_indptr, segment_sum

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A CSR sparse matrix over ``float64`` values and ``int64`` indices.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    indptr, indices, data:
        Standard CSR arrays.  ``indptr`` has length ``nrows + 1``.

    Notes
    -----
    The class caches the expanded per-entry row-id array
    (:meth:`row_ids`) used by the vectorized SpMV/SpGEMM kernels; any method
    that mutates structure invalidates the cache.
    """

    __slots__ = ("shape", "indptr", "indices", "data", "_row_ids")

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        nrows, ncols = int(shape[0]), int(shape[1])
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if indptr.shape != (nrows + 1,):
            raise ValueError(f"indptr has shape {indptr.shape}, expected ({nrows + 1},)")
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if len(indices) != len(data) or len(indices) != indptr[-1]:
            raise ValueError("indices/data length must equal indptr[-1]")
        self.shape = (nrows, ncols)
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self._row_ids: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        shape: tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        *,
        sum_duplicates: bool = True,
    ) -> "CSRMatrix":
        """Build from coordinate triplets; duplicates are summed by default."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        nrows, ncols = shape
        if len(rows) and (rows.min() < 0 or rows.max() >= nrows):
            raise ValueError("row index out of range")
        if len(cols) and (cols.min() < 0 or cols.max() >= ncols):
            raise ValueError("column index out of range")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and len(rows):
            key_new = np.empty(len(rows), dtype=bool)
            key_new[0] = True
            key_new[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            group = np.cumsum(key_new) - 1
            nuniq = int(group[-1]) + 1
            out_vals = np.bincount(group, weights=vals, minlength=nuniq)
            rows, cols, vals = rows[key_new], cols[key_new], out_vals
        indptr = indptr_from_counts(np.bincount(rows, minlength=nrows))
        return cls((nrows, ncols), indptr, cols, vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, tol: float = 0.0) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        rows, cols = np.nonzero(np.abs(dense) > tol)
        return cls.from_coo(dense.shape, rows, cols, dense[rows, cols])

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), np.arange(n + 1, dtype=np.int64), idx, np.ones(n))

    @classmethod
    def zeros(cls, shape: tuple[int, int]) -> "CSRMatrix":
        return cls(
            shape,
            np.zeros(shape[0] + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    def row_ids(self) -> np.ndarray:
        """Per-entry row ids, memoized for the life of the (frozen) matrix.

        Matrices are structurally immutable once built, so the cache never
        goes stale on its own; code paths that do rebuild structure in place
        call :meth:`invalidate_cache`.
        """
        if self._row_ids is None:
            self._row_ids = row_ids_from_indptr(self.indptr)
        return self._row_ids

    def invalidate_cache(self) -> None:
        self._row_ids = None

    # ------------------------------------------------------------------
    # Structure utilities
    # ------------------------------------------------------------------
    def has_sorted_indices(self) -> bool:
        if self.nnz <= 1:
            return True
        d = np.diff(self.indices)
        boundaries = self.indptr[1:-1]
        mask = np.ones(self.nnz - 1, dtype=bool)
        mask[boundaries[(boundaries > 0) & (boundaries < self.nnz)] - 1] = False
        return bool(np.all(d[mask] > 0))

    def sort_indices(self) -> "CSRMatrix":
        """Return a copy with column indices sorted within each row."""
        order = np.lexsort((self.indices, self.row_ids()))
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices[order], self.data[order])

    def diagonal(self) -> np.ndarray:
        """Main-diagonal values (zeros where absent)."""
        diag = np.zeros(min(self.shape), dtype=np.float64)
        rid = self.row_ids()
        mask = self.indices == rid
        diag_rows = rid[mask]
        diag[diag_rows] = self.data[mask]
        return diag

    def row_slice_arrays(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather the entries of *rows*: ``(local_row_ids, cols, vals)``.

        ``local_row_ids[k]`` indexes into *rows*, not the original matrix.
        """
        rows = np.asarray(rows, dtype=np.int64)
        counts = self.indptr[rows + 1] - self.indptr[rows]
        idx = gather_range_indices(self.indptr[rows], counts)
        local = np.repeat(np.arange(len(rows), dtype=np.int64), counts)
        return local, self.indices[idx], self.data[idx]

    def extract_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """Submatrix of the given rows (all columns), preserving row order."""
        local, cols, vals = self.row_slice_arrays(rows)
        counts = self.indptr[np.asarray(rows, dtype=np.int64) + 1] - self.indptr[rows]
        return CSRMatrix((len(rows), self.ncols), indptr_from_counts(counts), cols, vals)

    def extract_columns(self, col_mask: np.ndarray, new_index: np.ndarray) -> "CSRMatrix":
        """Keep entries whose column satisfies *col_mask*, renumbering columns
        through *new_index* (old global column -> new column id)."""
        keep = col_mask[self.indices]
        counts = segment_sum(keep.astype(np.float64), self.row_ids(), self.nrows).astype(np.int64)
        ncols_new = int(new_index.max()) + 1 if np.any(col_mask) else 0
        return CSRMatrix(
            (self.nrows, ncols_new),
            indptr_from_counts(counts),
            new_index[self.indices[keep]],
            self.data[keep],
        )

    def eliminate_zeros(self, tol: float = 0.0) -> "CSRMatrix":
        keep = np.abs(self.data) > tol
        counts = segment_sum(keep.astype(np.float64), self.row_ids(), self.nrows).astype(np.int64)
        return CSRMatrix(
            self.shape, indptr_from_counts(counts), self.indices[keep], self.data[keep]
        )

    def scale_rows(self, s: np.ndarray) -> "CSRMatrix":
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(),
                         self.data * np.asarray(s, dtype=np.float64)[self.row_ids()])

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(), self.data.copy())

    def check(self) -> None:
        """Validate CSR invariants; raises ``AssertionError`` on violation."""
        assert self.indptr[0] == 0
        assert np.all(np.diff(self.indptr) >= 0), "indptr must be non-decreasing"
        assert self.indptr[-1] == len(self.indices) == len(self.data)
        if self.nnz:
            assert self.indices.min() >= 0 and self.indices.max() < self.ncols

    # ------------------------------------------------------------------
    # Conversion / comparison
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        # Accumulate to tolerate duplicate entries.
        np.add.at(out, (self.row_ids(), self.indices), self.data)
        return out

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (test oracle only)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()), shape=self.shape
        )

    @classmethod
    def from_scipy(cls, m) -> "CSRMatrix":
        m = m.tocsr()
        return cls(m.shape, m.indptr.astype(np.int64), m.indices.astype(np.int64),
                   m.data.astype(np.float64))

    def allclose(self, other: "CSRMatrix", rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        if self.shape != other.shape:
            return False
        return np.allclose(self.to_dense(), other.to_dense(), rtol=rtol, atol=atol)

    # ------------------------------------------------------------------
    # Operators (thin wrappers over the instrumented kernels)
    # ------------------------------------------------------------------
    def __matmul__(self, other):
        import numpy as _np

        if isinstance(other, CSRMatrix):
            from .spgemm import spgemm

            return spgemm(self, other)
        other = _np.asarray(other)
        from .spmv import spmv

        return spmv(self, other)

    def transpose(self) -> "CSRMatrix":
        from .transpose import transpose

        return transpose(self)

    @property
    def T(self) -> "CSRMatrix":
        return self.transpose()

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
