"""Matrix I/O: MatrixMarket coordinate text and a fast NPZ container.

The paper's suite comes from the UF/SuiteSparse collection, which ships
MatrixMarket files — this module lets users run the solver on the *real*
matrices when they have them (``load_matrix_market``), and round-trip
generated problems quickly (``save_npz``/``load_npz``).
"""

from __future__ import annotations

import gzip
from pathlib import Path

import numpy as np

from ..analysis import InvariantViolation, check_csr
from .csr import CSRMatrix

__all__ = [
    "load_matrix_market",
    "save_matrix_market",
    "save_npz",
    "load_npz",
]


def _checked(A: CSRMatrix, path) -> CSRMatrix:
    """Full CSR validation of a freshly loaded matrix.

    Files come from outside the library, so loaders always validate —
    regardless of the ``REPRO_CHECK`` level — and reject malformed input
    with a structured :class:`InvariantViolation` naming the file.
    """
    return check_csr(A, name=Path(path).name, context=str(path), full=True)


def _open_maybe_gz(path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def load_matrix_market(path) -> CSRMatrix:
    """Read a MatrixMarket ``coordinate`` file (``.mtx`` or ``.mtx.gz``).

    Supports ``real``/``integer``/``pattern`` fields and
    ``general``/``symmetric``/``skew-symmetric`` symmetries (symmetric
    storage is expanded).
    """
    with _open_maybe_gz(path, "r") as f:
        header = f.readline().strip().lower()
        if not header.startswith("%%matrixmarket matrix coordinate"):
            raise ValueError(f"not a MatrixMarket coordinate file: {header!r}")
        parts = header.split()
        field = parts[3] if len(parts) > 3 else "real"
        symmetry = parts[4] if len(parts) > 4 else "general"
        if field == "complex":
            raise ValueError("complex matrices are not supported")

        line = f.readline()
        while line.startswith("%"):
            line = f.readline()
        nrows, ncols, nnz = (int(x) for x in line.split())
        if nrows < 0 or ncols < 0 or nnz < 0:
            raise InvariantViolation(
                "io.size_line",
                f"size line declares ({nrows}, {ncols}) with {nnz} entries",
                context=str(path))

        if nnz == 0:
            return CSRMatrix.zeros((nrows, ncols))
        data = np.loadtxt(f, ndmin=2, max_rows=nnz)
    if data.size == 0:
        return CSRMatrix.zeros((nrows, ncols))
    rows = data[:, 0].astype(np.int64) - 1
    cols = data[:, 1].astype(np.int64) - 1
    vals = data[:, 2] if data.shape[1] > 2 else np.ones(len(rows))

    if (rows < 0).any() or (rows >= nrows).any() \
            or (cols < 0).any() or (cols >= ncols).any():
        k = int(np.argmax((rows < 0) | (rows >= nrows)
                          | (cols < 0) | (cols >= ncols)))
        raise InvariantViolation(
            "io.entry_range",
            f"entry #{k + 1} addresses ({int(rows[k]) + 1}, "
            f"{int(cols[k]) + 1}) outside the declared "
            f"{nrows}x{ncols} shape",
            context=str(path))

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows = np.concatenate([rows, cols[off]])
        cols_all = np.concatenate([cols, data[:, 0].astype(np.int64)[off] - 1])
        vals = np.concatenate([vals, sign * vals[off]])
        cols = cols_all
    try:
        A = CSRMatrix.from_coo((nrows, ncols), rows, cols, vals)
    except (ValueError, IndexError) as exc:
        raise InvariantViolation(
            "io.malformed", f"CSR assembly failed: {exc}", context=str(path)
        ) from exc
    return _checked(A, path)


def save_matrix_market(path, A: CSRMatrix, *, comment: str = "") -> None:
    """Write *A* as a general real MatrixMarket coordinate file."""
    with _open_maybe_gz(path, "w") as f:
        f.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                f.write(f"% {line}\n")
        f.write(f"{A.nrows} {A.ncols} {A.nnz}\n")
        rid = A.row_ids()
        for r, c, v in zip(rid, A.indices, A.data):
            f.write(f"{r + 1} {c + 1} {v:.17g}\n")


def save_npz(path, A: CSRMatrix) -> None:
    """Fast binary round-trip of a CSR matrix."""
    np.savez_compressed(
        path,
        shape=np.array(A.shape, dtype=np.int64),
        indptr=A.indptr,
        indices=A.indices,
        data=A.data,
    )


def load_npz(path) -> CSRMatrix:
    with np.load(path) as z:
        try:
            A = CSRMatrix(
                tuple(z["shape"]), z["indptr"], z["indices"], z["data"]
            )
        except (KeyError, ValueError, IndexError) as exc:
            raise InvariantViolation(
                "io.malformed", f"CSR assembly failed: {exc}",
                context=str(path)) from exc
    return _checked(A, path)
