"""Low-level vectorized helpers shared by the sparse kernels.

These are the numpy building blocks that stand in for the tight C loops of
the paper's kernels: segment gathers/reductions over CSR structure with no
Python-level per-row loops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "row_ids_from_indptr",
    "indptr_from_counts",
    "counts_from_indptr",
    "gather_range_indices",
    "segment_sum",
    "prefix_sum_partition",
]


def row_ids_from_indptr(indptr: np.ndarray) -> np.ndarray:
    """Expand a CSR row pointer into one row id per stored entry.

    ``indptr`` of length ``n+1`` yields an ``int64`` array of length
    ``indptr[-1]`` whose *k*-th element is the row that entry *k* belongs to.
    """
    n = len(indptr) - 1
    return np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))


def counts_from_indptr(indptr: np.ndarray) -> np.ndarray:
    return np.diff(indptr)


def indptr_from_counts(counts: np.ndarray) -> np.ndarray:
    indptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr


def gather_range_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate the ranges ``[starts[i], starts[i]+counts[i])`` vectorized.

    Equivalent to ``np.concatenate([np.arange(s, s+c) for s, c in ...])``
    without a Python loop.  Returns an empty int64 array for empty input.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Offset of each segment within the output.
    seg_offsets = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=seg_offsets[1:])
    out = np.arange(total, dtype=np.int64)
    out += np.repeat(starts - seg_offsets, counts)
    return out


def segment_sum(values: np.ndarray, seg_ids: np.ndarray, nseg: int) -> np.ndarray:
    """Sum *values* into ``nseg`` buckets keyed by *seg_ids*."""
    if len(values) == 0:
        return np.zeros(nseg, dtype=np.float64)
    return np.bincount(seg_ids, weights=values, minlength=nseg)[:nseg]


def prefix_sum_partition(counts: np.ndarray) -> tuple[np.ndarray, int]:
    """The parallel prefix-sum idiom used to assemble variable-size rows.

    The paper parallelizes final-matrix creation (strength matrix, §3.3)
    with a prefix sum over per-row output counts: each thread then knows
    where to write.  Returns ``(indptr, total)``.
    """
    indptr = indptr_from_counts(np.asarray(counts, dtype=np.int64))
    return indptr, int(indptr[-1])
